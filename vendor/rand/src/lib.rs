//! Offline in-tree shim for the subset of the `rand` 0.8 API this workspace
//! uses: `SmallRng::seed_from_u64`, `Rng::gen_range` over integer and float
//! ranges, and `Rng::gen_bool`. The build environment has no registry
//! access, so the workspace vendors this instead of the real crate.
//!
//! Determinism contract: `SmallRng` is xoshiro256++ seeded through
//! SplitMix64 — the same construction (though not the same stream) as the
//! real `SmallRng` on 64-bit targets. All workload generation in this repo
//! is keyed off explicit seeds, so only reproducibility matters, not stream
//! compatibility with crates.io `rand`.

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Uniform f64 in [0, 1) from the top 53 bits of a u64.
#[inline]
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one sample; panics on an empty range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                ((self.start as i128) + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                ((lo as i128) + v as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and deterministic; stands in for the
    /// real crate's `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    /// Alias: the shim has no OS entropy, so the "standard" RNG is the same
    /// generator.
    pub type StdRng = SmallRng;

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::SmallRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(0..10u64);
            assert!(v < 10);
            let w: i64 = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = r.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&f));
            let u: usize = r.gen_range(3usize..4);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..500 {
            seen[r.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
    }

    #[test]
    fn gen_bool_extremes_and_middle() {
        let mut r = SmallRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
