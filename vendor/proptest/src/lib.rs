//! Offline in-tree shim for the subset of the `proptest` 1.x API this
//! workspace uses. The build environment has no registry access, so the
//! workspace vendors this instead of the real crate.
//!
//! Scope: seeded random generation of strategy values and a `proptest!`
//! macro that runs each property for `Config::cases` deterministic cases.
//! There is **no shrinking** — a failing case panics with its case index so
//! it can be replayed (seeds derive from the test's module path + name, so
//! failures are stable across runs and machines). `prop_assert!` maps to
//! `assert!`. Supported strategy constructors: integer / float ranges,
//! tuples up to arity 6, `prop_map`, weighted and unweighted `prop_oneof!`,
//! `collection::vec`, and `collection::btree_set`.

/// Deterministic RNG + per-test configuration.
pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config` (the fields this workspace
    /// sets). Re-exported from [`crate::prelude`] as `ProptestConfig`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for API compatibility; the shim never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// xoshiro256++ seeded through SplitMix64; one instance per test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// RNG for case number `case` of a test whose base seed is `seed`.
        pub fn for_case(seed: u64, case: u64) -> TestRng {
            let mut sm = seed ^ case.wrapping_mul(0xA076_1D64_78BD_642F);
            TestRng {
                s: [
                    splitmix(&mut sm),
                    splitmix(&mut sm),
                    splitmix(&mut sm),
                    splitmix(&mut sm),
                ],
            }
        }

        /// Next uniform 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform usize in `[lo, hi)`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty size range");
            lo + (self.next_u64() as usize) % (hi - lo)
        }
    }

    /// Stable base seed for a test, derived from its fully qualified name
    /// (FNV-1a) so failures replay identically across runs.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Prints the failing case index when a property panics, since the shim
    /// cannot shrink. Replay by running the same test binary again — seeds
    /// are deterministic.
    pub struct CaseReporter {
        /// Case index this guard covers.
        pub case: u32,
        /// Test name for the report.
        pub name: &'static str,
    }

    impl Drop for CaseReporter {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest-shim: property `{}` failed at case {} (deterministic; rerun to replay)",
                    self.name, self.case
                );
            }
        }
    }
}

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted union of boxed strategies (backs `prop_oneof!`).
    pub struct OneOf<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> OneOf<T> {
        /// Build from `(weight, strategy)` arms; weights must not all be 0.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof: zero total weight");
            OneOf { arms, total }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.next_u64() % self.total;
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights exhausted")
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    ((self.start as i128) + v as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    ((lo as i128) + v as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// `vec` / `btree_set` collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Inclusive-exclusive size bound accepted by the collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.usize_in(self.lo, self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Result of [`vec`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` of distinct values from `element`, with size drawn from
    /// `size` (best-effort when the element domain is nearly exhausted, like
    /// the real crate).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Result of [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(50) + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Glob-import surface matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Run a block of `#[test]` property functions, each for `cases` random
/// deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let __seed = $crate::test_runner::seed_for(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__config.cases {
                let __reporter = $crate::test_runner::CaseReporter {
                    case: __case,
                    name: stringify!($name),
                };
                let mut __rng = $crate::test_runner::TestRng::for_case(__seed, __case as u64);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                // The closure returns false when `prop_assume!` discards the
                // case (the shim does not regenerate discarded cases).
                #[allow(clippy::redundant_closure_call)]
                let __accepted: bool = (move || {
                    $body
                    true
                })();
                let _ = __accepted;
                drop(__reporter);
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// Weighted (`w => strat`) or unweighted union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assertion inside a property; the shim simply panics (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Discard the current case when the precondition does not hold. Usable only
/// inside a `proptest!` body (expands to an early `return false` from the
/// per-case closure); the shim does not regenerate discarded cases.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return false;
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_case(1, 0);
        for _ in 0..500 {
            let v = (0i64..10).generate(&mut rng);
            assert!((0..10).contains(&v));
            let (a, b, c) = (0u16..4, 0i64..6, 1.0f64..2.0).generate(&mut rng);
            assert!(a < 4 && (0..6).contains(&b) && (1.0..2.0).contains(&c));
        }
    }

    #[test]
    fn vec_and_btree_set_respect_sizes() {
        let mut rng = TestRng::for_case(2, 0);
        for _ in 0..200 {
            let v = crate::collection::vec(0i64..100, 3..7).generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            let fixed = crate::collection::vec(0i64..100, 5usize).generate(&mut rng);
            assert_eq!(fixed.len(), 5);
            let s = crate::collection::btree_set(0i64..40, 1..30).generate(&mut rng);
            assert!(!s.is_empty() && s.len() < 30);
        }
    }

    #[test]
    fn oneof_weighted_mix() {
        let mut rng = TestRng::for_case(3, 0);
        let s = prop_oneof![
            3 => (0i64..1).prop_map(|_| true),
            1 => (0i64..1).prop_map(|_| false),
        ];
        let trues = (0..4000).filter(|_| s.generate(&mut rng)).count();
        assert!((2600..3400).contains(&trues), "3:1 mix gave {trues}/4000");
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_multiple_args(
            xs in crate::collection::vec(0i64..50, 1..20),
            k in 1u64..5,
        ) {
            prop_assert!(!xs.is_empty());
            prop_assert_eq!(k < 5, true);
        }
    }
}
