//! Offline in-tree shim for the subset of the `criterion` 0.5 API this
//! workspace uses. The build environment has no registry access, so the
//! workspace vendors this instead of the real crate.
//!
//! Behavior: each benchmark runs a short warmup, then a fixed number of
//! timed batches, and prints the minimum ns/iter (the minimum is robust to
//! scheduler noise). No statistics, plots, or baselines — just enough to
//! keep `cargo bench` working and give order-of-magnitude numbers.

use std::time::Instant;

/// Top-level driver handed to benchmark functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 30,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into(), self.sample_size, &mut f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), self.sample_size, &mut f);
        self
    }

    /// End the group (accepted for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        iters: 1,
        elapsed_ns: 0.0,
    };
    // Warmup + iteration-count calibration: grow until one sample takes
    // ≥ ~2ms or we hit a cap, so cheap ops get enough iterations to time.
    loop {
        b.elapsed_ns = 0.0;
        f(&mut b);
        if b.elapsed_ns >= 2_000_000.0 || b.iters >= 1 << 20 {
            break;
        }
        b.iters *= 8;
    }
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        b.elapsed_ns = 0.0;
        f(&mut b);
        best = best.min(b.elapsed_ns / b.iters as f64);
    }
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    eprintln!("  {label}: {best:.1} ns/iter ({} iters/sample)", b.iters);
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Time `routine` over the calibrated iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos() as f64;
    }

    /// Time `routine` with a fresh `setup()` input per iteration; setup time
    /// is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed_ns += start.elapsed().as_nanos() as f64;
        }
    }
}

/// Batch sizing hint (ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Opaque value barrier, re-exported for convenience.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        let mut count = 0u64;
        g.bench_function("iter", |b| b.iter(|| count += 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| 3u64, |x| x * 2, BatchSize::SmallInput)
        });
        g.finish();
        assert!(count > 0);
    }
}
