//! Property test: *every* binary join tree computes the same delta stream as
//! the oracle — bushy or deep, on chain and star queries, under inserts and
//! deletes. This pins down the XJoin baseline's incremental-maintenance
//! correctness for arbitrary plan shapes (the paper's `X` is picked by
//! exhaustive search over exactly this tree space).

use acq_mjoin::oracle::{canonical_rows, multiset_diff, Oracle};
use acq_mjoin::xjoin::{all_trees, XJoin};
use acq_stream::{QuerySchema, RelId, TupleData, Update};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Step {
    Insert { rel: u16, a: i64, b: i64 },
    DeleteOldest { rel: u16 },
}

fn steps(n_rels: u16) -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0..n_rels, 0i64..4, 0i64..4).prop_map(|(rel, a, b)| Step::Insert { rel, a, b }),
            1 => (0..n_rels).prop_map(|rel| Step::DeleteOldest { rel }),
        ],
        20..100,
    )
}

fn materialize(steps: &[Step], query: &QuerySchema) -> Vec<Update> {
    let n = query.num_relations();
    let mut live: Vec<std::collections::VecDeque<TupleData>> =
        vec![std::collections::VecDeque::new(); n];
    let mut out = Vec::new();
    for (ts, s) in steps.iter().enumerate() {
        match *s {
            Step::Insert { rel, a, b } => {
                let data = if query.relation(RelId(rel)).arity() == 1 {
                    TupleData::ints(&[a])
                } else {
                    TupleData::ints(&[a, b])
                };
                live[rel as usize].push_back(data.clone());
                out.push(Update::insert(RelId(rel), data, ts as u64));
            }
            Step::DeleteOldest { rel } => {
                if let Some(data) = live[rel as usize].pop_front() {
                    out.push(Update::delete(RelId(rel), data, ts as u64));
                }
            }
        }
    }
    out
}

fn check_all_trees(query: QuerySchema, updates: &[Update]) {
    let n = query.num_relations();
    // Reference deltas from the oracle.
    let mut oracle = Oracle::new(query.clone());
    let mut reference = Vec::new();
    for u in updates {
        reference.extend(oracle.apply_and_delta(u));
    }
    for tree in all_trees(&query) {
        let mut x = XJoin::new(query.clone(), tree.clone());
        let mut got = Vec::new();
        for u in updates {
            got.extend(
                x.process(u)
                    .into_iter()
                    .map(|(op, c)| (op, canonical_rows(&c, n))),
            );
        }
        let diff = multiset_diff(&got, &reference);
        assert!(diff.is_empty(), "tree {tree} diverged: {diff:?}");
        // After a full replay the memory accounting must be exact.
        if got.iter().map(|(op, _)| op.sign()).sum::<i64>() == 0 && x.materialized_rows() == 0 {
            assert_eq!(x.materialized_bytes(), 0, "byte accounting drifted");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn every_chain3_tree_matches_oracle(s in steps(3)) {
        let q = QuerySchema::chain3();
        let updates = materialize(&s, &q);
        check_all_trees(q, &updates);
    }

    #[test]
    fn every_star4_tree_matches_oracle(s in steps(4)) {
        let q = QuerySchema::star(4);
        let updates = materialize(&s, &q);
        check_all_trees(q, &updates);
    }
}
