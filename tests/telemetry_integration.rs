//! End-to-end telemetry: the cross-shard snapshot merge must be associative
//! and shard-count-invariant for counter totals (star queries route every
//! update, so no shard count may change what was counted); snapshot cache
//! hit/miss counters must agree exactly with [`EngineCounters`] on the
//! Figure 6 forced-cache workload; and the Figure 12 adaptivity lifecycle
//! (candidate scored → added → hits accrued → retained/dropped) must appear
//! with virtual-time stamps identically in the 1-shard and 4-shard merged
//! snapshots.

use acq::engine::{
    AdaptiveJoinEngine, CacheMode, EngineConfig, ReoptInterval, SelectionStrategy,
};
use acq::shard::{ShardConfig, ShardedEngine};
use acq::{ProfilerConfig, TelemetrySnapshot};
use acq_mjoin::plan::{PipelineOrder, PlanOrders};
use acq_stream::{QuerySchema, RelId, TupleData, Update};
use acq_telemetry::MetricValue;
use proptest::prelude::*;
use std::collections::VecDeque;

/// Fast-adaptivity settings (same shape as the sharded-equivalence tests) so
/// profiling, re-optimization, and cache churn all happen within short
/// sequences.
fn fast_config() -> EngineConfig {
    EngineConfig {
        profiler: ProfilerConfig {
            w: 3,
            profile_every: 3,
            bloom_window: 16,
            bloom_alpha: 8,
        },
        reopt_interval: ReoptInterval::Tuples(40),
        stats_epoch_ns: 1_000_000,
        ..Default::default()
    }
}

/// Deterministic star-query workload with count-window deletes: every
/// relation carries the partition attribute, so every update is routed (no
/// broadcast) and counter totals must not depend on the shard count.
fn star_workload(q: &QuerySchema, seed: u64, len: usize) -> Vec<Update> {
    let n = q.num_relations();
    let mut live: Vec<VecDeque<TupleData>> = vec![VecDeque::new(); n];
    let mut state = seed | 1;
    let mut next = || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let mut out = Vec::with_capacity(len);
    for ts in 0..len {
        let r = next();
        let rel = (r % n as u64) as u16;
        if r % 4 == 3 {
            if let Some(data) = live[rel as usize].pop_front() {
                out.push(Update::delete(RelId(rel), data, ts as u64));
                continue;
            }
        }
        let a = ((r >> 8) % 5) as i64;
        let p = ((r >> 16) % 7) as i64;
        let data = TupleData::ints(&[a, p]);
        live[rel as usize].push_back(data.clone());
        out.push(Update::insert(RelId(rel), data, ts as u64));
    }
    out
}

fn sharded(q: &QuerySchema, shards: usize) -> ShardedEngine {
    ShardedEngine::with_config(
        q.clone(),
        PlanOrders::identity(q),
        fast_config(),
        ShardConfig {
            num_shards: shards,
            partition_class: None,
        },
    )
}

/// Exact equality for the discrete merge algebra (counters, histograms),
/// tolerance for the float one (gauges, ratios), where different fold orders
/// legitimately reassociate `f64` additions.
fn assert_metrics_equivalent(a: &TelemetrySnapshot, b: &TelemetrySnapshot, what: &str) {
    assert_eq!(a.metrics().len(), b.metrics().len(), "{what}: metric counts");
    for m in a.metrics() {
        let labels: Vec<(&str, &str)> = m
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        let other = b
            .get(&m.name, &labels)
            .unwrap_or_else(|| panic!("{what}: {} {:?} missing", m.name, m.labels));
        match (&m.value, other) {
            (MetricValue::Counter(x), MetricValue::Counter(y)) => {
                assert_eq!(x, y, "{what}: counter {}", m.name)
            }
            (
                MetricValue::Histogram { buckets, count, sum },
                MetricValue::Histogram {
                    buckets: b2,
                    count: c2,
                    sum: s2,
                },
            ) => {
                assert_eq!((buckets, count, sum), (b2, c2, s2), "{what}: hist {}", m.name)
            }
            (MetricValue::Gauge(x), MetricValue::Gauge(y)) => {
                assert!((x - y).abs() <= 1e-9 * x.abs().max(1.0), "{what}: gauge {}", m.name)
            }
            (
                MetricValue::Ratio { num, den },
                MetricValue::Ratio { num: n2, den: d2 },
            ) => {
                assert!(
                    (num - n2).abs() <= 1e-9 * num.abs().max(1.0)
                        && (den - d2).abs() <= 1e-9 * den.abs().max(1.0),
                    "{what}: ratio {}",
                    m.name
                );
            }
            (x, y) => panic!("{what}: {} changed kind: {x:?} vs {y:?}", m.name),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Counter totals from the canonical cross-shard merge are invariant in
    /// the shard count on a routed-only (star) workload, and the merge
    /// itself is associative: left fold, right fold, and `merged()` agree.
    #[test]
    fn merge_associative_and_shard_invariant(seed in 1u64..u64::MAX, len in 120usize..320) {
        let q = QuerySchema::star(3);
        let updates = star_workload(&q, seed, len);

        let mut totals = Vec::new();
        for shards in [1usize, 2, 4] {
            let mut e = sharded(&q, shards);
            e.process_batch(&updates);
            let snap = e.telemetry_snapshot();
            totals.push((
                shards,
                snap.counter_total("engine.tuples_processed"),
                snap.counter_total("engine.outputs_emitted"),
                snap.counter_total("routing.routed"),
            ));

            // Associativity on this engine's real per-shard parts.
            let parts: Vec<TelemetrySnapshot> = (0..shards)
                .map(|i| {
                    let mut p = e.with_shard(i, |s| s.telemetry_snapshot());
                    p.tag_events("shard", acq_telemetry::FieldValue::U64(i as u64));
                    p
                })
                .collect();
            let mut left = TelemetrySnapshot::new();
            for p in &parts {
                left.merge(p);
            }
            let mut right = TelemetrySnapshot::new();
            for p in parts.iter().rev() {
                let mut acc = p.clone();
                acc.merge(&right);
                right = acc;
            }
            let canonical = TelemetrySnapshot::merged(&parts);
            assert_metrics_equivalent(&left, &right, "left vs right fold");
            assert_metrics_equivalent(&left, &canonical, "left fold vs merged()");
            prop_assert_eq!(left.events().len(), right.events().len());
            prop_assert_eq!(left.events().len(), canonical.events().len());
        }

        let (_, t1, o1, r1) = totals[0];
        prop_assert_eq!(t1, updates.len() as u64);
        for &(shards, t, o, r) in &totals[1..] {
            prop_assert_eq!(t, t1, "tuples_processed diverged at {} shards", shards);
            prop_assert_eq!(o, o1, "outputs_emitted diverged at {} shards", shards);
            prop_assert_eq!(r, r1, "routing.routed diverged at {} shards", shards);
        }
    }
}

/// Figure 6 plan orders: `∆T` joins S then R, making the R⋈S segment
/// cacheable in `∆T`'s pipeline.
fn fig6_orders() -> PlanOrders {
    PlanOrders::new(vec![
        PipelineOrder {
            stream: RelId(0),
            order: vec![RelId(1), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(1),
            order: vec![RelId(0), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(2),
            order: vec![RelId(1), RelId(0)],
        },
    ])
}

/// A deterministic Figure 6-style chain3 workload: `rate(∆T) = 5×` the
/// others with each `T.B` value arriving five times in a row (hit
/// probability ≈ 0.8 for the R⋈S cache), count-window deletes keeping
/// windows bounded.
fn fig6_workload(total: usize) -> Vec<Update> {
    const WINDOW: usize = 40;
    let mut live: Vec<VecDeque<TupleData>> = vec![VecDeque::new(); 3];
    let mut out = Vec::new();
    let mut ts = 0u64;
    let push = |live: &mut Vec<VecDeque<TupleData>>,
                    out: &mut Vec<Update>,
                    ts: &mut u64,
                    rel: u16,
                    data: TupleData| {
        live[rel as usize].push_back(data.clone());
        out.push(Update::insert(RelId(rel), data, *ts));
        *ts += 1;
        if live[rel as usize].len() > WINDOW {
            let old = live[rel as usize].pop_front().unwrap();
            out.push(Update::delete(RelId(rel), old, *ts));
            *ts += 1;
        }
    };
    let mut i = 0i64;
    while out.len() < total {
        push(&mut live, &mut out, &mut ts, 0, TupleData::ints(&[i % 24]));
        push(
            &mut live,
            &mut out,
            &mut ts,
            1,
            TupleData::ints(&[i % 24, i % 17]),
        );
        let b = i % 17;
        for _ in 0..5 {
            push(&mut live, &mut out, &mut ts, 2, TupleData::ints(&[b]));
        }
        i += 1;
    }
    out.truncate(total);
    out
}

/// On the Figure 6 forced-cache workload, the snapshot's per-cache
/// `cache.hits` / `cache.misses` totals, the `engine.cache_hits` /
/// `engine.cache_misses` counters, and the store-level `store.hits` /
/// `store.misses` totals (accumulated across stats epochs) must all equal
/// [`EngineCounters`] exactly.
#[test]
fn fig6_snapshot_counts_match_engine_counters() {
    let q = QuerySchema::chain3();
    let updates = fig6_workload(6_000);
    let cfg = EngineConfig {
        mode: CacheMode::Forced(vec![(RelId(2), vec![RelId(0), RelId(1)])]),
        ..Default::default()
    };
    let mut e = AdaptiveJoinEngine::with_config(q, fig6_orders(), cfg);
    assert_eq!(e.used_caches().len(), 1, "forced cache must exist");
    for u in &updates {
        e.process(u);
    }
    let c = e.counters();
    assert!(c.cache_hits > 0, "workload must produce cache hits");
    assert!(c.cache_misses > 0, "workload must produce cache misses");

    let snap = e.telemetry_snapshot();
    assert_eq!(snap.counter_total("engine.cache_hits"), c.cache_hits);
    assert_eq!(snap.counter_total("engine.cache_misses"), c.cache_misses);
    // Per-candidate counters (labelled by cache name) cover every probe.
    assert_eq!(snap.counter_total("cache.hits"), c.cache_hits);
    assert_eq!(snap.counter_total("cache.misses"), c.cache_misses);
    // Store-level stats survive `reset_stats` epochs via the accumulator.
    assert_eq!(snap.counter_total("store.hits"), c.cache_hits);
    assert_eq!(snap.counter_total("store.misses"), c.cache_misses);
    assert_eq!(
        snap.counter_total("engine.tuples_processed"),
        updates.len() as u64
    );
}

/// Lifecycle stages observed for one cache subject in a snapshot.
#[derive(Debug, PartialEq)]
struct Lifecycle {
    scored: bool,
    added: bool,
    hits: u64,
    retained_or_dropped: bool,
}

fn lifecycle_of(snap: &TelemetrySnapshot, name: &str) -> Lifecycle {
    let has = |kind: &str| snap.events_of_kind(kind).any(|e| e.subject == name);
    Lifecycle {
        scored: has("cache.scored"),
        added: has("cache.added"),
        hits: match snap.get("cache.hits", &[("cache", name)]) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        },
        retained_or_dropped: has("cache.retained") || has("cache.dropped"),
    }
}

/// The Figure 12 acceptance trace: an adaptive run over the Figure 6-style
/// workload must show, for at least one cache, the full lifecycle —
/// candidate scored → added → hits accrued → retained or dropped — with
/// virtual-time stamps, and the same lifecycle must be visible in the
/// 1-shard and 4-shard merged snapshots.
#[test]
fn fig12_lifecycle_identical_across_shard_merge() {
    let q = QuerySchema::chain3();
    let updates = fig6_workload(14_000);
    let cfg = EngineConfig {
        profiler: ProfilerConfig {
            w: 3,
            profile_every: 3,
            bloom_window: 16,
            bloom_alpha: 8,
        },
        reopt_interval: ReoptInterval::Tuples(200),
        selection: SelectionStrategy::Exhaustive,
        ..Default::default()
    };

    let mut snaps = Vec::new();
    for shards in [1usize, 4] {
        let mut e = ShardedEngine::with_config(
            q.clone(),
            fig6_orders(),
            cfg.clone(),
            ShardConfig {
                num_shards: shards,
                partition_class: None,
            },
        );
        for chunk in updates.chunks(1024) {
            e.process_batch(chunk);
        }
        let snap = e.telemetry_snapshot();

        // Virtual-time stamps: positive and nondecreasing after the merge.
        let events = snap.events();
        assert!(!events.is_empty(), "{shards} shards: no events");
        assert!(events.iter().all(|ev| ev.at_ns > 0));
        assert!(
            events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns),
            "{shards} shards: merged events out of virtual-time order"
        );
        snaps.push((shards, snap));
    }

    // A cache that completed the full lifecycle in the single-shard run …
    let (_, single) = &snaps[0];
    let full = |lc: &Lifecycle| lc.scored && lc.added && lc.hits > 0 && lc.retained_or_dropped;
    let subject = single
        .events_of_kind("cache.added")
        .map(|e| e.subject.clone())
        .find(|name| full(&lifecycle_of(single, name)))
        .expect("single-shard run must show a full cache lifecycle");

    // … must show the same lifecycle stages in the 4-shard merged snapshot.
    for (shards, snap) in &snaps {
        let lc = lifecycle_of(snap, &subject);
        assert!(
            full(&lc),
            "{shards} shards: lifecycle of {subject} incomplete: {lc:?}"
        );
        // Selection traces name the concrete solver that ran.
        assert!(
            snap.events_of_kind("selection.run")
                .all(|e| e.get("solver").is_some()),
            "{shards} shards: selection.run missing solver field"
        );
    }
}
