//! Model-based testing of the direct-mapped cache store (§3.3): compare
//! against an unbounded reference map. Direct-mapped replacement means the
//! store may *lose* entries relative to the model (completeness is never
//! promised), but anything it returns must match the model exactly
//! (consistency is absolute).

use acq::cache::CacheStore;
use acq_stream::tuple::make_ref;
use acq_stream::{Composite, RelId, TupleData, Value};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Clone)]
enum CacheOp {
    Create { key: i64, vals: Vec<u64> },
    Insert { key: i64, id: u64 },
    Delete { key: i64, id: u64 },
    Probe { key: i64 },
}

fn op_strategy() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        (0i64..12, proptest::collection::vec(0u64..20, 0..4))
            .prop_map(|(key, vals)| CacheOp::Create { key, vals }),
        (0i64..12, 0u64..20).prop_map(|(key, id)| CacheOp::Insert { key, id }),
        (0i64..12, 0u64..20).prop_map(|(key, id)| CacheOp::Delete { key, id }),
        (0i64..12).prop_map(|key| CacheOp::Probe { key }),
    ]
}

fn comp(id: u64) -> Composite {
    Composite::unit(make_ref(RelId(1), id, TupleData::ints(&[id as i64])))
}

fn key_of(k: i64) -> Vec<Value> {
    vec![Value::Int(k)]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn store_is_a_lossy_but_consistent_map(
        ops in proptest::collection::vec(op_strategy(), 1..250),
        buckets in 1usize..64,
    ) {
        let mut store = CacheStore::new(buckets);
        // Model: key → (id → witness count). The store's values are counted
        // multisets (globally-consistent caches need witness counting); an
        // id is visible while its count is positive.
        let mut model: BTreeMap<i64, BTreeMap<u64, u32>> = BTreeMap::new();

        for op in &ops {
            match op {
                CacheOp::Create { key, vals } => {
                    store.create(
                        key_of(*key),
                        vals.iter().map(|&v| (comp(v), 1)),
                    );
                    let mut counts: BTreeMap<u64, u32> = BTreeMap::new();
                    for &v in vals {
                        *counts.entry(v).or_insert(0) += 1;
                    }
                    model.insert(*key, counts);
                }
                CacheOp::Insert { key, id } => {
                    store.insert(&key_of(*key), comp(*id), 1);
                    // Applied only if the key is present *in the store*;
                    // mirror through a peek.
                    if store.peek(&key_of(*key)).is_some() {
                        if let Some(counts) = model.get_mut(key) {
                            *counts.entry(*id).or_insert(0) += 1;
                        }
                    }
                }
                CacheOp::Delete { key, id } => {
                    store.delete(&key_of(*key), &comp(*id), 1);
                    if let Some(counts) = model.get_mut(key) {
                        if let Some(c) = counts.get_mut(id) {
                            *c = c.saturating_sub(1);
                            if *c == 0 {
                                counts.remove(id);
                            }
                        }
                    }
                }
                CacheOp::Probe { key } => {
                    if let Some(entry) = store.probe(&key_of(*key)) {
                        let got: BTreeSet<u64> = entry
                            .composites()
                            .map(|c| c.identity().pair(0).1)
                            .collect();
                        let want: BTreeSet<u64> = model
                            .get(key)
                            .map(|c| c.keys().copied().collect())
                            .unwrap_or_default();
                        prop_assert_eq!(
                            got, want,
                            "store returned a value diverging from the model for key {}",
                            key
                        );
                    } else {
                        // Miss: either never created or evicted by a
                        // colliding create — drop from the model so later
                        // inserts don't accumulate there.
                        model.remove(key);
                    }
                }
            }
            // Sync: entries evicted by collisions must leave the model too.
            model.retain(|k, _| store.peek(&key_of(*k)).is_some());
            // Invariants that always hold:
            prop_assert!(store.len() <= store.num_buckets());
        }
    }

    #[test]
    fn resize_never_corrupts_surviving_entries(
        keys in proptest::collection::btree_set(0i64..40, 1..30),
        new_buckets in 1usize..16,
    ) {
        let mut store = CacheStore::new(64);
        for &k in &keys {
            store.create(key_of(k), vec![(comp(k as u64), 1)]);
        }
        store.resize(new_buckets);
        for &k in &keys {
            let expected_key = key_of(k);
            if let Some(e) = store.peek(&expected_key) {
                prop_assert_eq!(e.key(), expected_key.as_slice());
                prop_assert_eq!(e.len(), 1);
            }
        }
        prop_assert!(store.len() <= store.num_buckets());
    }
}

// Deterministic replay of tests/cache_store_model.proptest-regressions
// (cc6e66d0…): Create{9,[19]} → Insert{9,19} → Delete{9,19} → Probe{9}
// on a 1-bucket store. After create + insert the witness count for id 19
// is 2, so a single delete must leave it *visible*. The historical model
// tracked values as a set and removed the id on the first delete, then
// flagged the (correct) store as inconsistent. The model above counts
// witnesses, matching §6's globally-consistent semantics.
#[test]
fn regression_single_delete_keeps_double_witnessed_entry() {
    let mut store = CacheStore::new(1);
    store.create(key_of(9), vec![(comp(19), 1)]);
    store.insert(&key_of(9), comp(19), 1);
    store.delete(&key_of(9), &comp(19), 1);
    let entry = store.probe(&key_of(9)).expect("entry must survive");
    let ids: Vec<u64> = entry.composites().map(|c| c.identity().pair(0).1).collect();
    assert_eq!(ids, vec![19]);
    // The second delete exhausts the witness count and hides the id.
    store.delete(&key_of(9), &comp(19), 1);
    let entry = store.probe(&key_of(9)).expect("key entry persists");
    assert_eq!(entry.composites().count(), 0);
}
