//! §5 memory allocation after LP-based selection: rounding a fractional
//! selection to page grants must never exceed the byte budget, and partial
//! grants must respect the minimum-useful-fraction floor.

use acq::memory::{allocate, MemoryConfig, MemoryRequest, MIN_GRANT_FRACTION};
use acq::select::{solve_randomized, CacheChoice, SelectionInstance};
use proptest::prelude::*;

/// A small shared-group selection instance driven by a flat random vector
/// (mirrors the strategy in `selection_algorithms.rs`, but sized for the
/// allocator rather than solver cross-checks).
fn instance_strategy() -> impl Strategy<Value = SelectionInstance> {
    (
        proptest::collection::vec(proptest::collection::vec(10.0f64..100.0, 2..4), 1..3),
        proptest::collection::vec(0.0f64..1.0, 16),
    )
        .prop_map(|(op_proc, randoms)| {
            let mut r = randoms.into_iter().cycle();
            let mut next = move || r.next().unwrap();
            let mut choices = Vec::new();
            for (pi, pipeline) in op_proc.iter().enumerate() {
                let len = pipeline.len();
                for &(s, e) in &[(0usize, len - 1), (0usize, 0usize)] {
                    let covered: f64 = pipeline[s..=e].iter().sum();
                    let proc = next() * covered;
                    choices.push(CacheChoice {
                        id: choices.len(),
                        pipeline: pi,
                        start: s,
                        end: e,
                        benefit: covered - proc,
                        proc,
                        group: choices.len() % 3,
                    });
                }
            }
            SelectionInstance {
                op_proc,
                choices,
                group_cost: vec![5.0, 11.0, 17.0],
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn rounded_selection_never_exceeds_budget(
        inst in instance_strategy(),
        seed in 0u64..1000,
        budget_pages in 0usize..24,
        page_shift in 6u32..13, // 64 B … 4 KiB pages
        byte_scale in 1usize..40,
    ) {
        let page_bytes = 1usize << page_shift;
        let sol = solve_randomized(&inst, seed);
        prop_assert!(inst.is_feasible(&sol));

        // One request per selected cache: net benefit from the instance,
        // expected bytes loosely proportional to the span it covers.
        let requests: Vec<MemoryRequest> = sol
            .iter()
            .map(|&i| {
                let c = &inst.choices[i];
                MemoryRequest {
                    id: i,
                    net_benefit: c.benefit - inst.group_cost[c.group],
                    expected_bytes: (c.end - c.start + 1) * byte_scale * 97,
                }
            })
            .collect();
        let config = MemoryConfig {
            page_bytes,
            budget_bytes: Some(budget_pages * page_bytes),
        };
        let allocs = allocate(&config, &requests);
        prop_assert_eq!(allocs.len(), requests.len());

        let total: usize = allocs.iter().map(|a| a.bytes).sum();
        prop_assert!(
            total <= budget_pages * page_bytes,
            "allocated {} over a budget of {}",
            total,
            budget_pages * page_bytes
        );
        for (a, r) in allocs.iter().zip(&requests) {
            prop_assert_eq!(a.id, r.id);
            prop_assert_eq!(a.bytes, a.pages * page_bytes, "grants are whole pages");
            if a.pages > 0 {
                let want = r.expected_bytes.div_ceil(page_bytes).max(1);
                prop_assert!(
                    a.pages as f64 >= want as f64 * MIN_GRANT_FRACTION,
                    "grant below the useful-fraction floor"
                );
                prop_assert!(a.pages <= want, "over-allocation");
                prop_assert!(r.net_benefit > 0.0, "negative-net cache granted memory");
            }
        }
    }

    #[test]
    fn unlimited_budget_grants_every_positive_request(
        nets in proptest::collection::vec(-50.0f64..50.0, 1..8),
    ) {
        let requests: Vec<MemoryRequest> = nets
            .iter()
            .enumerate()
            .map(|(i, &n)| MemoryRequest {
                id: i,
                net_benefit: n,
                expected_bytes: 1000 + i * 777,
            })
            .collect();
        let allocs = allocate(&MemoryConfig::default(), &requests);
        for (a, r) in allocs.iter().zip(&requests) {
            if r.net_benefit > 0.0 {
                prop_assert!(a.bytes >= r.expected_bytes, "full grant expected");
            } else {
                prop_assert_eq!(a.pages, 0, "non-positive net must get nothing");
            }
        }
    }
}
