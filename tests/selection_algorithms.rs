//! Cross-checks of the four offline cache-selection algorithms (§4.4,
//! Appendix B) on randomly generated instances spanning sharing, nesting,
//! and multiple pipelines.

use acq::select::{
    solve_exhaustive, solve_greedy, solve_randomized, solve_recursive, CacheChoice,
    SelectionInstance,
};
use proptest::prelude::*;

/// Random instance: `pipelines × ops`, nested spans, optional sharing.
fn instance_strategy(share: bool) -> impl Strategy<Value = SelectionInstance> {
    let ops = proptest::collection::vec(proptest::collection::vec(10.0f64..200.0, 2..4), 2..4);
    (
        ops,
        proptest::collection::vec(0.0f64..1.0, 24),
        0u64..1_000_000,
    )
        .prop_map(move |(op_proc, randoms, _seed)| {
            let mut choices = Vec::new();
            let mut r = randoms.into_iter().cycle();
            let mut next = move || r.next().unwrap();
            let num_groups = 4usize;
            for (pi, pipeline) in op_proc.iter().enumerate() {
                let len = pipeline.len();
                // Laminar span family (as the prefix invariant guarantees):
                // whole pipeline, left part, right part.
                let mid = (len - 1) / 2;
                let spans = [(0usize, len - 1), (0, mid), (mid + 1, len - 1)];
                for &(s, e) in spans.iter() {
                    if next() < 0.3 {
                        continue;
                    }
                    let covered: f64 = pipeline[s..=e].iter().sum();
                    let proc = next() * covered;
                    let group = if share {
                        (next() * num_groups as f64) as usize % num_groups
                    } else {
                        choices.len()
                    };
                    choices.push(CacheChoice {
                        id: choices.len(),
                        pipeline: pi,
                        start: s,
                        end: e,
                        benefit: covered - proc,
                        proc,
                        group,
                    });
                }
            }
            let group_count = if share {
                num_groups
            } else {
                choices.len().max(1)
            };
            let mut inst = SelectionInstance {
                op_proc,
                choices,
                group_cost: vec![0.0; group_count],
            };
            for g in 0..group_count {
                inst.group_cost[g] = 10.0 + 13.0 * g as f64;
            }
            inst
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn all_solvers_feasible_and_objectives_consistent(inst in instance_strategy(true)) {
        let sols = [
            ("exhaustive", solve_exhaustive(&inst)),
            ("greedy", solve_greedy(&inst)),
            ("randomized", solve_randomized(&inst, 99)),
            ("recursive", solve_recursive(&inst)),
        ];
        let opt_net = inst.net_objective(&sols[0].1);
        for (name, sol) in &sols {
            prop_assert!(inst.is_feasible(sol), "{name} infeasible: {sol:?}");
            // Duality: max-form and min-form agree.
            let net = inst.net_objective(sol);
            let cost = inst.total_cost(sol);
            prop_assert!(
                (inst.total_op_proc() - net - cost).abs() < 1e-6,
                "{name}: duality broken"
            );
            // No solver beats the exact one.
            prop_assert!(net <= opt_net + 1e-9, "{name} 'beat' exhaustive?!");
        }
        // Approximation quality: within the proven O(log n) factor on the
        // min objective.
        let total_ops: usize = inst.op_proc.iter().map(Vec::len).sum();
        let bound = (total_ops as f64).ln() + 2.5;
        let opt_cost = inst.total_cost(&sols[0].1);
        for (name, sol) in &sols[1..3] {
            prop_assert!(
                inst.total_cost(sol) <= bound * opt_cost + 1e-6,
                "{name} exceeded the approximation bound"
            );
        }
    }

    #[test]
    fn recursive_is_exact_without_sharing(inst in instance_strategy(false)) {
        let dp = solve_recursive(&inst);
        let ex = solve_exhaustive(&inst);
        prop_assert!(inst.is_feasible(&dp));
        prop_assert!(
            (inst.net_objective(&dp) - inst.net_objective(&ex)).abs() < 1e-9,
            "DP {} != exhaustive {}",
            inst.net_objective(&dp),
            inst.net_objective(&ex)
        );
    }

    #[test]
    fn exhaustive_never_negative(inst in instance_strategy(true)) {
        // Choosing nothing is always allowed, so the optimum is ≥ 0.
        let sol = solve_exhaustive(&inst);
        prop_assert!(inst.net_objective(&sol) >= -1e-9);
    }
}

// Deterministic replay of tests/selection_algorithms.proptest-regressions
// (446b7c4e…): two *identical* choices (ids 1 and 2 — same pipeline, same
// span, same group) plus a small disjoint one. The heuristics used to
// treat choice ids as implying disjoint spans and could emit both
// duplicates, which `is_feasible` correctly rejects (overlapping spans in
// one pipeline, Appendix B). Solvers must pick at most one duplicate and
// still pay group 0's cost exactly once.
#[test]
fn regression_duplicate_choices_stay_feasible() {
    let inst = SelectionInstance {
        op_proc: vec![vec![10.0, 10.0], vec![10.0, 119.73537200912301]],
        choices: vec![
            CacheChoice { id: 0, pipeline: 0, start: 1, end: 1, benefit: 10.0, proc: 0.0, group: 0 },
            CacheChoice { id: 1, pipeline: 1, start: 0, end: 1, benefit: 129.735372009123, proc: 0.0, group: 0 },
            CacheChoice { id: 2, pipeline: 1, start: 0, end: 1, benefit: 129.735372009123, proc: 0.0, group: 0 },
        ],
        group_cost: vec![10.0, 23.0, 36.0, 49.0],
    };
    let sols = [
        ("exhaustive", solve_exhaustive(&inst)),
        ("greedy", solve_greedy(&inst)),
        ("randomized", solve_randomized(&inst, 99)),
        ("recursive", solve_recursive(&inst)),
    ];
    let opt_net = inst.net_objective(&sols[0].1);
    // Both disjoint choices are profitable: optimum takes {0, one dup}.
    assert!((opt_net - (10.0 + 129.735372009123 - 10.0)).abs() < 1e-9);
    for (name, sol) in &sols {
        assert!(inst.is_feasible(sol), "{} infeasible: {:?}", name, sol);
        assert!(inst.net_objective(sol) <= opt_net + 1e-9, "{} beat exhaustive", name);
    }
}
