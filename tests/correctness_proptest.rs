//! Property-based correctness: for arbitrary update sequences and arbitrary
//! engine configurations, the A-Caching engine's output delta stream must
//! equal a naive oracle's, and every active cache must satisfy its
//! consistency invariant (Definition 3.1 / 6.1).

use acq::engine::{AdaptiveJoinEngine, CacheMode, EngineConfig, ReoptInterval, SelectionStrategy};
use acq::{EnumerationConfig, MemoryConfig, ProfilerConfig};
use acq_mjoin::oracle::{canonical_rows, multiset_diff, Oracle};
use acq_mjoin::plan::PlanOrders;
use acq_stream::{Op, QuerySchema, RelId, TupleData, Update};
use proptest::prelude::*;

/// One step of a workload script.
#[derive(Debug, Clone)]
enum Step {
    Insert { rel: u16, a: i64, b: i64 },
    DeleteOldest { rel: u16 },
}

fn step_strategy(n_rels: u16) -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (0..n_rels, 0i64..6, 0i64..6).prop_map(|(rel, a, b)| Step::Insert { rel, a, b }),
        1 => (0..n_rels).prop_map(|rel| Step::DeleteOldest { rel }),
    ]
}

/// Materialize steps into updates (deletes target the oldest live tuple of
/// the relation, keeping windows bounded and deletes always valid).
fn materialize(steps: &[Step], query: &QuerySchema) -> Vec<Update> {
    let n = query.num_relations();
    let mut live: Vec<std::collections::VecDeque<TupleData>> =
        vec![std::collections::VecDeque::new(); n];
    let mut out = Vec::new();
    for (ts, s) in steps.iter().enumerate() {
        match *s {
            Step::Insert { rel, a, b } => {
                let arity = query.relation(RelId(rel)).arity();
                let data = if arity == 1 {
                    TupleData::ints(&[a])
                } else {
                    TupleData::ints(&[a, b])
                };
                live[rel as usize].push_back(data.clone());
                out.push(Update::insert(RelId(rel), data, ts as u64));
            }
            Step::DeleteOldest { rel } => {
                if let Some(data) = live[rel as usize].pop_front() {
                    out.push(Update::delete(RelId(rel), data, ts as u64));
                }
            }
        }
    }
    out
}

fn configs() -> Vec<(&'static str, EngineConfig)> {
    let fast_profiler = ProfilerConfig {
        w: 3,
        profile_every: 3,
        bloom_window: 16,
        bloom_alpha: 8,
    };
    let base = EngineConfig {
        profiler: fast_profiler,
        reopt_interval: ReoptInterval::Tuples(40),
        stats_epoch_ns: 1_000_000,
        ..Default::default()
    };
    vec![
        (
            "no-caches",
            EngineConfig {
                mode: CacheMode::None,
                ..base.clone()
            },
        ),
        ("adaptive-auto", base.clone()),
        (
            "adaptive-greedy",
            EngineConfig {
                selection: SelectionStrategy::Greedy,
                ..base.clone()
            },
        ),
        (
            "adaptive-randomized",
            EngineConfig {
                selection: SelectionStrategy::Randomized(7),
                ..base.clone()
            },
        ),
        (
            "adaptive-global",
            EngineConfig {
                enumeration: EnumerationConfig {
                    enable_global: true,
                    max_candidates: 6,
                    ..Default::default()
                },
                ..base.clone()
            },
        ),
        (
            "tiny-memory",
            EngineConfig {
                memory: MemoryConfig {
                    page_bytes: 512,
                    budget_bytes: Some(2048),
                },
                ..base
            },
        ),
    ]
}

fn check_engine(query: QuerySchema, updates: &[Update], label: &str, config: EngineConfig) {
    let n = query.num_relations();
    let mut engine =
        AdaptiveJoinEngine::with_config(query.clone(), PlanOrders::identity(&query), config);
    let mut oracle = Oracle::new(query);
    for (i, u) in updates.iter().enumerate() {
        let got: Vec<_> = engine
            .process(u)
            .into_iter()
            .map(|(op, c)| (op, canonical_rows(&c, n)))
            .collect();
        let want = oracle.apply_and_delta(u);
        let diff = multiset_diff(&got, &want);
        assert!(
            diff.is_empty(),
            "[{label}] step {i} ({u}): {diff:?}; caches {:?}",
            engine.used_caches()
        );
    }
    let violations = engine.check_consistency_invariant();
    assert!(violations.is_empty(), "[{label}]: {violations:?}");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    #[test]
    fn chain3_engine_matches_oracle_under_all_configs(
        steps in proptest::collection::vec(step_strategy(3), 40..220),
    ) {
        let query = QuerySchema::chain3();
        let updates = materialize(&steps, &query);
        for (label, config) in configs() {
            check_engine(query.clone(), &updates, label, config);
        }
    }

    #[test]
    fn star4_engine_matches_oracle_under_key_configs(
        steps in proptest::collection::vec(step_strategy(4), 40..160),
    ) {
        let query = QuerySchema::star(4);
        let updates = materialize(&steps, &query);
        for (label, config) in configs().into_iter().take(3) {
            check_engine(query.clone(), &updates, label, config);
        }
    }

    #[test]
    fn executors_agree_with_each_other(
        steps in proptest::collection::vec(step_strategy(3), 30..150),
    ) {
        use acq_mjoin::mjoin::MJoin;
        use acq_mjoin::xjoin::{JoinTree, XJoin};

        let query = QuerySchema::chain3();
        let updates = materialize(&steps, &query);
        let mut m = MJoin::new(query.clone(), PlanOrders::identity(&query));
        let mut x = XJoin::new(
            query.clone(),
            JoinTree::left_deep(&[RelId(0), RelId(1), RelId(2)]),
        );
        let mut all_m = Vec::new();
        let mut all_x = Vec::new();
        for u in &updates {
            all_m.extend(m.process(u).into_iter().map(|(op, c)| (op, canonical_rows(&c, 3))));
            all_x.extend(x.process(u).into_iter().map(|(op, c)| (op, canonical_rows(&c, 3))));
        }
        prop_assert!(multiset_diff(&all_m, &all_x).is_empty());
    }
}

#[test]
fn regression_delete_heavy_sequence() {
    // A hand-picked delete-heavy script that once exercised multiset
    // corner cases: duplicate tuples, delete of one duplicate, immediate
    // reinsert.
    let query = QuerySchema::chain3();
    let mut updates = Vec::new();
    let mut ts = 0u64;
    for _ in 0..3 {
        for (rel, vals) in [
            (0u16, vec![1i64]),
            (1, vec![1, 2]),
            (1, vec![1, 2]),
            (2, vec![2]),
        ] {
            updates.push(Update::insert(RelId(rel), TupleData::ints(&vals), ts));
            ts += 1;
        }
        updates.push(Update::delete(RelId(1), TupleData::ints(&[1, 2]), ts));
        ts += 1;
    }
    for (label, config) in configs() {
        check_engine(query.clone(), &updates, label, config);
    }
    let _ = Op::Insert;
}
