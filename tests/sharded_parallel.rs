//! Sharded executor equivalence: for randomized update sequences with both
//! inserts and deletes, the [`ShardedEngine`]'s merged output delta stream
//! must equal the single-engine output — per update as a multiset, and
//! bit-identically once both sides are put in canonical group order — at
//! 1, 2, and 4 shards, on queries with and without broadcast-routed
//! relations.

use acq::engine::{AdaptiveJoinEngine, EngineConfig, ReoptInterval};
use acq::shard::{canonicalize_group, ShardConfig, ShardedEngine};
use acq::ProfilerConfig;
use acq_mjoin::oracle::{canonical_rows, multiset_diff, CanonicalRow};
use acq_mjoin::plan::PlanOrders;
use acq_stream::{Op, QuerySchema, RelId, TupleData, Update};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Step {
    Insert { rel: u16, a: i64, b: i64 },
    DeleteOldest { rel: u16 },
}

fn step_strategy(n_rels: u16) -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (0..n_rels, 0i64..6, 0i64..6).prop_map(|(rel, a, b)| Step::Insert { rel, a, b }),
        1 => (0..n_rels).prop_map(|rel| Step::DeleteOldest { rel }),
    ]
}

fn materialize(steps: &[Step], query: &QuerySchema) -> Vec<Update> {
    let n = query.num_relations();
    let mut live: Vec<std::collections::VecDeque<TupleData>> =
        vec![std::collections::VecDeque::new(); n];
    let mut out = Vec::new();
    for (ts, s) in steps.iter().enumerate() {
        match *s {
            Step::Insert { rel, a, b } => {
                let arity = query.relation(RelId(rel)).arity();
                let data = if arity == 1 {
                    TupleData::ints(&[a])
                } else {
                    TupleData::ints(&[a, b])
                };
                live[rel as usize].push_back(data.clone());
                out.push(Update::insert(RelId(rel), data, ts as u64));
            }
            Step::DeleteOldest { rel } => {
                if let Some(data) = live[rel as usize].pop_front() {
                    out.push(Update::delete(RelId(rel), data, ts as u64));
                }
            }
        }
    }
    out
}

/// Fast-adaptivity settings so re-optimization, cache builds, and demotions
/// all fire within short test sequences — sharding must stay correct while
/// every shard's adaptive machinery is churning.
fn fast_config() -> EngineConfig {
    EngineConfig {
        profiler: ProfilerConfig {
            w: 3,
            profile_every: 3,
            bloom_window: 16,
            bloom_alpha: 8,
        },
        reopt_interval: ReoptInterval::Tuples(40),
        stats_epoch_ns: 1_000_000,
        ..Default::default()
    }
}

fn canon_group(group: &[(Op, acq_stream::Composite)], n: usize) -> Vec<(Op, CanonicalRow)> {
    group
        .iter()
        .map(|(op, c)| (*op, canonical_rows(c, n)))
        .collect()
}

/// Single-engine per-update delta groups, each put in canonical order — the
/// reference the sharded merge must reproduce bit-for-bit.
fn single_engine_groups(query: &QuerySchema, updates: &[Update]) -> Vec<Vec<(Op, CanonicalRow)>> {
    let n = query.num_relations();
    let mut engine = AdaptiveJoinEngine::with_config(
        query.clone(),
        PlanOrders::identity(query),
        fast_config(),
    );
    updates
        .iter()
        .map(|u| {
            let mut group = engine.process(u);
            canonicalize_group(&mut group, n);
            canon_group(&group, n)
        })
        .collect()
}

fn check_sharded(query: &QuerySchema, updates: &[Update], shards: usize) {
    let n = query.num_relations();
    let reference = single_engine_groups(query, updates);
    let mut sharded = ShardedEngine::with_config(
        query.clone(),
        PlanOrders::identity(query),
        fast_config(),
        ShardConfig {
            num_shards: shards,
            partition_class: None,
        },
    );
    let groups = sharded.process_batch_grouped(updates);
    assert_eq!(groups.len(), updates.len());
    for (i, (got, want)) in groups.iter().zip(&reference).enumerate() {
        let got = canon_group(got, n);
        // Multiset equality per update: the correctness contract.
        let diff = multiset_diff(&got, want);
        assert!(
            diff.is_empty(),
            "[{shards} shards] step {i} ({}): {diff:?}",
            updates[i]
        );
        // Bit-identity after canonical ordering on both sides: the
        // determinism contract ("bit-identical to the single-engine run").
        assert_eq!(
            got, *want,
            "[{shards} shards] step {i} ({}): canonical order diverged",
            updates[i]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        .. ProptestConfig::default()
    })]

    /// Star query: every relation carries the partition class, so all
    /// updates are hash-routed (no broadcast).
    #[test]
    fn star4_sharded_matches_single_engine(
        steps in proptest::collection::vec(step_strategy(4), 60..200),
    ) {
        let query = QuerySchema::star(4);
        let updates = materialize(&steps, &query);
        for shards in [1usize, 2, 4] {
            check_sharded(&query, &updates, shards);
        }
    }

    /// Chain query R(A) ⋈ S(A,B) ⋈ T(B) partitioned on class A: T has no
    /// A-attribute and is broadcast to every shard.
    #[test]
    fn chain3_sharded_matches_single_engine_with_broadcast(
        steps in proptest::collection::vec(step_strategy(3), 60..200),
    ) {
        let query = QuerySchema::chain3();
        let updates = materialize(&steps, &query);
        for shards in [1usize, 2, 4] {
            let mut probe = ShardedEngine::new(query.clone(), shards);
            assert_eq!(probe.broadcast_relations(), vec![RelId(2)]);
            probe.process(&updates[0]);
            check_sharded(&query, &updates, shards);
        }
    }

    /// Feeding the batch one update at a time must give the same output as
    /// one big batch (batching is an amortization, not a semantic change).
    #[test]
    fn incremental_feed_equals_batched_feed(
        steps in proptest::collection::vec(step_strategy(4), 40..120),
    ) {
        let query = QuerySchema::star(4);
        let updates = materialize(&steps, &query);
        let n = query.num_relations();
        let mut batched = ShardedEngine::new(query.clone(), 3);
        let batch_groups = batched.process_batch_grouped(&updates);
        let mut incremental = ShardedEngine::new(query.clone(), 3);
        for (i, u) in updates.iter().enumerate() {
            let got = canon_group(&incremental.process(u), n);
            let want = canon_group(&batch_groups[i], n);
            prop_assert_eq!(got, want);
        }
    }
}

#[test]
fn mixed_batch_sizes_cross_inline_threshold() {
    // The executor runs small batches inline on the caller thread and
    // streams large ones through the persistent worker runtime, switching
    // at a fixed threshold (32 updates). Feeding one stream through chunk
    // sizes straddling that threshold must produce bit-identical canonical
    // output to the one-big-batch run: batching (and therefore which path
    // executes each batch) is an amortization, never a semantic change.
    let query = QuerySchema::star(4);
    let mut steps = Vec::new();
    let mut x = 0x5EEDu64;
    for _ in 0..420 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let rel = (x % 4) as u16;
        if x.is_multiple_of(5) {
            steps.push(Step::DeleteOldest { rel });
        } else {
            // Narrow value domain so multi-row delta groups appear on both
            // sides of the threshold.
            steps.push(Step::Insert {
                rel,
                a: (x / 7 % 5) as i64,
                b: (x / 11 % 5) as i64,
            });
        }
    }
    let updates = materialize(&steps, &query);
    let n = query.num_relations();

    let shard_cfg = ShardConfig {
        num_shards: 4,
        partition_class: None,
    };
    let mut whole = ShardedEngine::with_config(
        query.clone(),
        PlanOrders::identity(&query),
        fast_config(),
        shard_cfg.clone(),
    );
    let want: Vec<_> = whole
        .process_batch_grouped(&updates)
        .iter()
        .map(|g| canon_group(g, n))
        .collect();

    let mut chunked = ShardedEngine::with_config(
        query.clone(),
        PlanOrders::identity(&query),
        fast_config(),
        shard_cfg,
    );
    let sizes = [1usize, 8, 31, 32, 33, 64, 3, 100];
    let mut got = Vec::new();
    let mut rest = &updates[..];
    let mut si = 0;
    while !rest.is_empty() {
        let k = sizes[si % sizes.len()].min(rest.len());
        si += 1;
        for g in chunked.process_batch_grouped(&rest[..k]) {
            got.push(canon_group(&g, n));
        }
        rest = &rest[k..];
    }
    assert_eq!(got, want, "mixed chunk sizes diverged from one-batch run");
}

#[test]
fn delete_heavy_regression_at_four_shards() {
    // Duplicate tuples, delete of one duplicate, immediate reinsert —
    // routed deletes must land in the shard holding their insert.
    let query = QuerySchema::chain3();
    let mut updates = Vec::new();
    let mut ts = 0u64;
    for _ in 0..4 {
        for (rel, vals) in [
            (0u16, vec![1i64]),
            (1, vec![1, 2]),
            (1, vec![1, 2]),
            (2, vec![2]),
        ] {
            updates.push(Update::insert(RelId(rel), TupleData::ints(&vals), ts));
            ts += 1;
        }
        updates.push(Update::delete(RelId(1), TupleData::ints(&[1, 2]), ts));
        ts += 1;
    }
    for shards in [1usize, 2, 4] {
        check_sharded(&query, &updates, shards);
    }
}
