//! Allocation regression guard for the hot path.
//!
//! Drives an int-only 3-way chain join to steady state (window full, slab
//! bands recycling, Arc pool and scratch buffers warm), then counts global
//! heap allocations across a block of updates. The whole point of the slab
//! stores, inline composites, and hash-once probes is that a steady-state
//! update allocates **nothing** — this test pins that property so it cannot
//! silently regress.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use acq::engine::{AdaptiveJoinEngine, CacheMode, EngineConfig, ReoptInterval};
use acq_gen::spec::chain3_default;
use acq_stream::QuerySchema;

/// System allocator wrapper counting every allocation (and reallocation —
/// a growing `Vec` is still an allocation for our purposes).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_update_is_allocation_free() {
    // Housekeeping (stat epochs, re-optimization) runs rarely by design and
    // may allocate; push it out of the measured window so the test observes
    // the pure per-update path.
    let config = EngineConfig {
        mode: CacheMode::None,
        reopt_interval: ReoptInterval::Tuples(u64::MAX),
        stats_epoch_ns: u64::MAX,
        ..EngineConfig::default()
    };
    let mut engine = AdaptiveJoinEngine::with_config(
        QuerySchema::chain3(),
        acq_mjoin::plan::PlanOrders::identity(&QuerySchema::chain3()),
        config,
    );

    // Int-only sliding-window chain workload, pre-generated so the stream
    // generator's own allocations stay outside the measurement.
    let updates = chain3_default(5, 100, 0xA110C).generate(30_000);
    let (warmup, measured) = updates.split_at(25_000);

    let mut out = Vec::new();
    for u in warmup {
        out.clear();
        engine.process_into(u, &mut out);
    }

    // One extra lap pre-sizes `out` for the largest delta burst in the
    // measured block, then the actual measurement.
    out.clear();
    let before = ALLOCS.load(Ordering::Relaxed);
    for u in measured {
        out.clear();
        engine.process_into(u, &mut out);
    }
    let after = ALLOCS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state hot path allocated {} times over {} updates",
        after - before,
        measured.len()
    );
}
