#!/usr/bin/env bash
# Repo CI: build, test, lint. All dependencies are vendored in-tree
# (vendor/), so this runs fully offline; --offline keeps cargo from
# touching the network at all. Clippy is optional tooling — skip
# gracefully where the component is not installed.
set -uo pipefail

cd "$(dirname "$0")/.."

run() {
  echo "==> $*"
  "$@"
}

fail=0

run cargo build --release --offline --workspace || fail=1
run cargo test -q --offline --workspace || fail=1

# Conformance sweep (tier 2, see TESTING.md): a short fixed-seed sweep
# plus a replay of every committed corpus reproducer. Fails if any sweep
# point diverges from the oracle or a corpus case is no longer green.
run cargo run --release --offline -q -p acq-harness -- --seed 1 --cases 6 --check-corpus --no-write || fail=1

# Persistent-runtime data plane (tier 2): the SPSC ring schedule-fuzz
# model and drop-while-nonempty leak tests, explicitly — the runtime's
# safety protocol rests on this ring behaving exactly like the model.
run cargo test -q --offline -p acq --test spsc_ring || fail=1

# Bench smoke (tier 2): the hot-path benchmark — including the sharded
# runtime scenario group — on a tiny workload, to catch bench-harness rot
# without paying full measurement time. Smoke numbers record under the
# "smoke" section, never "current".
run scripts/bench.sh --smoke || fail=1

# Documentation gate: every public item is documented (missing_docs is
# enabled crate-side) and rustdoc warnings are errors.
run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace || fail=1

if cargo clippy --version >/dev/null 2>&1; then
  run cargo clippy --offline --workspace --all-targets -- -D warnings || fail=1
else
  echo "==> cargo clippy not installed; skipping lint"
fi

if [ "$fail" -ne 0 ]; then
  echo "CI FAILED"
  exit 1
fi
echo "CI OK"
