#!/usr/bin/env bash
# Perf trajectory runner: builds release and runs the hotpath and
# shard_scaling benches, updating BENCH_hotpath.json in the repo root.
#
# Usage:
#   scripts/bench.sh                 # full run, records the "current" section
#   scripts/bench.sh --label NAME    # record under a different section
#   scripts/bench.sh --smoke         # 1-iteration-scale smoke pass (CI)
#
# BENCH_hotpath.json accumulates one section per label (e.g. "baseline"
# recorded from the pre-optimization layout, "current" from HEAD), so the
# before/after throughput and allocs/update comparison is in-repo.
set -euo pipefail

cd "$(dirname "$0")/.."

label="current"
smoke=""
while [ $# -gt 0 ]; do
  case "$1" in
    --label) label="$2"; shift 2 ;;
    --smoke) smoke="--smoke"; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

run() {
  echo "==> $*"
  "$@"
}

run cargo build --release --offline --workspace

# Hot-path throughput + allocations per update (writes BENCH_hotpath.json).
run cargo bench --offline -q -p acq-bench --bench hotpath -- --label "$label" $smoke

# Parallel scaling on the virtual cost substrate (writes
# EXPERIMENTS_OUTPUT/shard_scaling.csv). Skipped in smoke mode: its run
# length is fixed and the hotpath smoke already covers the build.
if [ -z "$smoke" ]; then
  run cargo run --release --offline -q -p acq-bench --bin shard_scaling
fi

echo "BENCH OK"
