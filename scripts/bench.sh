#!/usr/bin/env bash
# Perf trajectory runner: builds release and runs the hotpath and
# shard_scaling benches, updating BENCH_hotpath.json in the repo root.
#
# Usage:
#   scripts/bench.sh                 # full run, records the "current" section
#   scripts/bench.sh --label NAME    # record under a different section
#   scripts/bench.sh --smoke         # 1-iteration-scale smoke pass (CI;
#                                    # records the "smoke" section)
#   scripts/bench.sh --only GROUP    # hotpath|shard: one scenario group
#                                    # (any other value filters scenarios
#                                    # without recording)
#
# BENCH_hotpath.json / BENCH_shard.json (in crates/bench/) accumulate one
# section per label (e.g. "baseline"/"scoped" recorded from the
# pre-optimization layouts, "current" from HEAD), so the before/after
# throughput and allocs/update comparison is in-repo.
set -euo pipefail

cd "$(dirname "$0")/.."

label=""
smoke=""
only=""
while [ $# -gt 0 ]; do
  case "$1" in
    --label) label="$2"; shift 2 ;;
    --smoke) smoke="--smoke"; shift ;;
    --only) only="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

run() {
  echo "==> $*"
  "$@"
}

run cargo build --release --offline --workspace

# Hot-path throughput + allocations per update (writes BENCH_hotpath.json
# and/or BENCH_shard.json depending on the group selection).
hotpath_args=()
[ -n "$label" ] && hotpath_args+=(--label "$label")
[ -n "$smoke" ] && hotpath_args+=(--smoke)
[ -n "$only" ] && hotpath_args+=(--only "$only")
run cargo bench --offline -q -p acq-bench --bench hotpath -- "${hotpath_args[@]}"

# Parallel scaling on the virtual cost substrate (writes
# EXPERIMENTS_OUTPUT/shard_scaling.csv). Skipped in smoke mode (its run
# length is fixed and the hotpath smoke already covers the build) and when
# --only selects the hotpath group alone.
if [ -z "$smoke" ] && { [ -z "$only" ] || [ "$only" = "shard" ]; }; then
  run cargo run --release --offline -q -p acq-bench --bin shard_scaling
fi

echo "BENCH OK"
