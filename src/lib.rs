pub use acq;
