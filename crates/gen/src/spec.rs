//! Stream specifications and the workload generator.
//!
//! A [`Workload`] holds one [`StreamSpec`] per relation (relative rate,
//! sliding-window size, column generators) plus optional [`Burst`]s. The
//! generator interleaves streams by rate into a single globally ordered
//! append-only sequence (§3.1's global order), pushes each element through
//! its relation's count window, and emits the resulting insert/delete
//! [`Update`]s — exactly what §7.1 describes the STREAM prototype's window
//! operators doing.

use crate::column::ColumnGen;
use acq_stream::{CountWindow, RelId, StreamElement, TupleData, Update, WindowOp};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One input stream's characteristics.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// The relation this stream feeds.
    pub rel: RelId,
    /// Relative arrival rate (tuples per virtual second; only ratios
    /// matter).
    pub rate: f64,
    /// Sliding-window size in tuples.
    pub window: usize,
    /// One generator per column.
    pub columns: Vec<ColumnGen>,
}

impl StreamSpec {
    /// Convenience constructor.
    pub fn new(rel: u16, rate: f64, window: usize, columns: Vec<ColumnGen>) -> StreamSpec {
        StreamSpec {
            rel: RelId(rel),
            rate,
            window,
            columns,
        }
    }
}

/// A temporary rate multiplier on one stream (Figure 12's burst: ×20 on ∆R).
#[derive(Debug, Clone, Copy)]
pub struct Burst {
    /// Affected relation.
    pub rel: RelId,
    /// Burst starts when this many elements (across all streams) have been
    /// generated.
    pub start_after_elements: u64,
    /// Burst ends after this many elements; `u64::MAX` = never (the paper's
    /// burst "continues through the remainder of the run").
    pub end_after_elements: u64,
    /// Rate multiplier during the burst.
    pub factor: f64,
}

/// A mid-run window-size change on one stream (adversarial "window churn"
/// schedules: the adaptive loop must stay consistent while the windows it
/// sized its caches for move underneath it).
#[derive(Debug, Clone, Copy)]
pub struct WindowChurn {
    /// Affected relation.
    pub rel: RelId,
    /// Applied once this many elements (across all streams) have been
    /// generated.
    pub after_elements: u64,
    /// The new window size in tuples. Shrinking evicts immediately.
    pub new_window: usize,
}

/// A complete workload: streams + bursts + window churns + seed.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Per-stream specs, one per relation, in relation-id order.
    pub streams: Vec<StreamSpec>,
    /// Rate bursts.
    pub bursts: Vec<Burst>,
    /// Mid-run window resizes.
    pub churns: Vec<WindowChurn>,
    /// RNG seed (the generator is fully deterministic).
    pub seed: u64,
}

impl Workload {
    /// A workload with no bursts or churns.
    pub fn new(streams: Vec<StreamSpec>, seed: u64) -> Workload {
        Workload {
            streams,
            bursts: Vec::new(),
            churns: Vec::new(),
            seed,
        }
    }

    /// Add a burst.
    pub fn with_burst(mut self, burst: Burst) -> Workload {
        self.bursts.push(burst);
        self
    }

    /// Add a window churn.
    pub fn with_churn(mut self, churn: WindowChurn) -> Workload {
        self.churns.push(churn);
        self
    }

    fn rate_of(&self, rel: RelId, elements_so_far: u64) -> f64 {
        let base = self.streams[rel.0 as usize].rate;
        let mut rate = base;
        for b in &self.bursts {
            if b.rel == rel
                && elements_so_far >= b.start_after_elements
                && elements_so_far < b.end_after_elements
            {
                rate *= b.factor;
            }
        }
        rate
    }

    /// Generate `total_elements` append-only arrivals (across all streams),
    /// globally ordered by arrival time, *before* any windowing. Timestamps
    /// are in virtual nanoseconds with 1 unit of rate = 1 tuple per second.
    ///
    /// This is the raw stream the window operators consume; differential
    /// harnesses prefer it because removing an arrival always leaves a
    /// well-formed stream (re-windowing recomputes the deletes), whereas
    /// removing an [`Update`] can strand a dangling delete.
    pub fn generate_arrivals(&self, total_elements: usize) -> Vec<StreamElement> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let n = self.streams.len();
        // Next arrival time per stream (ns).
        let mut next_ns: Vec<f64> = (0..n).map(|_| 0.0).collect();
        // Stagger initial arrivals deterministically to avoid ties.
        for (i, t) in next_ns.iter_mut().enumerate() {
            *t = i as f64;
        }
        let mut counters: Vec<u64> = vec![0; n];
        let mut out = Vec::with_capacity(total_elements);
        for produced in 0..total_elements as u64 {
            // Earliest next arrival wins.
            let i = (0..n)
                .min_by(|&a, &b| next_ns[a].partial_cmp(&next_ns[b]).unwrap())
                .expect("at least one stream");
            let spec = &self.streams[i];
            let ts = next_ns[i] as u64;
            let k = counters[i];
            counters[i] += 1;
            let vals: Vec<i64> = spec.columns.iter().map(|c| c.value(k, &mut rng)).collect();
            out.push(StreamElement::new(spec.rel, TupleData::ints(&vals), ts));
            let rate = self.rate_of(spec.rel, produced).max(1e-9);
            next_ns[i] += 1e9 / rate;
        }
        out
    }

    /// Generate `total_elements` append-only arrivals (across all streams)
    /// and return the windowed update stream, globally ordered by arrival
    /// time. Window churns are applied between arrivals; evictions they
    /// force are stamped with the preceding arrival's timestamp.
    pub fn generate(&self, total_elements: usize) -> Vec<Update> {
        let mut windows: Vec<CountWindow> = self
            .streams
            .iter()
            .map(|s| CountWindow::new(s.rel, s.window))
            .collect();
        let mut out = Vec::new();
        let mut last_ts = 0u64;
        for (produced, elem) in self.generate_arrivals(total_elements).into_iter().enumerate() {
            for c in &self.churns {
                if c.after_elements == produced as u64 {
                    out.extend(windows[c.rel.0 as usize].set_capacity(c.new_window, last_ts));
                }
            }
            last_ts = elem.ts;
            let i = elem.rel.0 as usize;
            out.extend(windows[i].push(elem));
        }
        out
    }
}

/// The paper's §7.2 default 3-way setup: `R(A) ⋈ S(A,B) ⋈ T(B)`, sequential
/// domains, multiplicity `r` on `T.B`, `rate(∆T) = r × rate(∆R)`, windows of
/// `window` tuples.
pub fn chain3_default(r: u64, window: usize, seed: u64) -> Workload {
    Workload::new(
        vec![
            StreamSpec::new(0, 1.0, window, vec![ColumnGen::seq()]),
            StreamSpec::new(1, 1.0, window, vec![ColumnGen::seq(), ColumnGen::seq()]),
            StreamSpec::new(
                2,
                r as f64,
                window * r as usize,
                vec![ColumnGen::seq_mult(r)],
            ),
        ],
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use acq_stream::Op;

    #[test]
    fn rates_respected() {
        let w = Workload::new(
            vec![
                StreamSpec::new(0, 1.0, 100, vec![ColumnGen::seq()]),
                StreamSpec::new(1, 4.0, 100, vec![ColumnGen::seq()]),
            ],
            7,
        );
        let ups = w.generate(1000);
        let inserts_per_rel = |r: u16| {
            ups.iter()
                .filter(|u| u.rel == RelId(r) && u.op == Op::Insert)
                .count() as f64
        };
        let ratio = inserts_per_rel(1) / inserts_per_rel(0);
        assert!((ratio - 4.0).abs() < 0.2, "rate ratio {ratio}");
    }

    #[test]
    fn globally_ordered() {
        let w = chain3_default(5, 20, 1);
        let ups = w.generate(500);
        assert!(ups.windows(2).all(|p| p[0].ts <= p[1].ts));
    }

    #[test]
    fn windows_emit_deletes() {
        let w = Workload::new(vec![StreamSpec::new(0, 1.0, 10, vec![ColumnGen::seq()])], 3);
        let ups = w.generate(50);
        let inserts = ups.iter().filter(|u| u.op == Op::Insert).count();
        let deletes = ups.iter().filter(|u| u.op == Op::Delete).count();
        assert_eq!(inserts, 50);
        assert_eq!(deletes, 40, "window 10 retains the last 10");
    }

    #[test]
    fn burst_multiplies_rate() {
        let w = Workload::new(
            vec![
                StreamSpec::new(0, 1.0, 1000, vec![ColumnGen::seq()]),
                StreamSpec::new(1, 1.0, 1000, vec![ColumnGen::seq()]),
            ],
            5,
        )
        .with_burst(Burst {
            rel: RelId(0),
            start_after_elements: 1000,
            end_after_elements: u64::MAX,
            factor: 20.0,
        });
        let ups = w.generate(3000);
        // Before the burst both streams contribute ~equally; after it stream
        // 0 dominates ~20:1.
        let first: Vec<&Update> = ups.iter().take(800).collect();
        let last: Vec<&Update> = ups.iter().rev().take(800).collect();
        let frac0 =
            |v: &[&Update]| v.iter().filter(|u| u.rel == RelId(0)).count() as f64 / v.len() as f64;
        assert!(
            (frac0(&first) - 0.5).abs() < 0.1,
            "pre-burst {}",
            frac0(&first)
        );
        assert!(frac0(&last) > 0.85, "post-burst {}", frac0(&last));
    }

    #[test]
    fn arrivals_match_windowed_stream() {
        // generate() is exactly generate_arrivals() fed through the count
        // windows — the two representations of a workload agree.
        let w = chain3_default(3, 10, 42);
        let arrivals = w.generate_arrivals(300);
        assert_eq!(arrivals.len(), 300);
        assert!(arrivals.windows(2).all(|p| p[0].ts <= p[1].ts));
        let mut windows: Vec<CountWindow> = w
            .streams
            .iter()
            .map(|s| CountWindow::new(s.rel, s.window))
            .collect();
        let mut rebuilt = Vec::new();
        for e in arrivals {
            let i = e.rel.0 as usize;
            rebuilt.extend(windows[i].push(e));
        }
        assert_eq!(rebuilt, w.generate(300));
    }

    #[test]
    fn churn_shrink_evicts_midstream() {
        let w = Workload::new(vec![StreamSpec::new(0, 1.0, 20, vec![ColumnGen::seq()])], 1)
            .with_churn(WindowChurn {
                rel: RelId(0),
                after_elements: 30,
                new_window: 5,
            });
        let ups = w.generate(60);
        let inserts = ups.iter().filter(|u| u.op == Op::Insert).count();
        let deletes = ups.iter().filter(|u| u.op == Op::Delete).count();
        assert_eq!(inserts, 60);
        // Every insert not among the final 5 retained is eventually deleted.
        assert_eq!(deletes, 55);
        assert!(ups.windows(2).all(|p| p[0].ts <= p[1].ts), "still ordered");
    }

    #[test]
    fn churn_grow_defers_evictions() {
        let w = Workload::new(vec![StreamSpec::new(0, 1.0, 5, vec![ColumnGen::seq()])], 1)
            .with_churn(WindowChurn {
                rel: RelId(0),
                after_elements: 10,
                new_window: 50,
            });
        let ups = w.generate(40);
        let deletes = ups.iter().filter(|u| u.op == Op::Delete).count();
        // 5 evictions before the churn (arrivals 5..10); afterwards the
        // window never refills to 50, so no further deletes.
        assert_eq!(deletes, 5);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = chain3_default(5, 50, 99).generate(400);
        let b = chain3_default(5, 50, 99).generate(400);
        assert_eq!(a, b);
    }

    #[test]
    fn chain3_multiplicity_structure() {
        let w = chain3_default(3, 30, 2);
        let ups = w.generate(600);
        // T inserts: each B value appears exactly 3 times consecutively.
        let t_vals: Vec<i64> = ups
            .iter()
            .filter(|u| u.rel == RelId(2) && u.op == Op::Insert)
            .map(|u| u.data.get(0).as_int().unwrap())
            .collect();
        for chunk in t_vals.chunks_exact(3) {
            assert_eq!(chunk[0], chunk[1]);
            assert_eq!(chunk[1], chunk[2]);
        }
        // And T runs ~3× faster than R.
        let r_count = ups
            .iter()
            .filter(|u| u.rel == RelId(0) && u.op == Op::Insert)
            .count() as f64;
        let t_count = t_vals.len() as f64;
        assert!((t_count / r_count - 3.0).abs() < 0.3);
    }
}
