//! # acq-gen — synthetic stream workload generator
//!
//! Reproduces the paper's experimental setup (§7.1): *"We used a synthetic
//! data generator to produce multiple append-only streams with specified data
//! characteristics and relative arrival rates"*, with sliding windows turning
//! append-only streams into insert/delete update streams.
//!
//! * [`mod@column`] — per-column value generators: sequential domains with
//!   controlled **multiplicity** (the paper's Figures 6–9 knob), stride and
//!   offset (fractional/zero selectivities for Figure 7), uniform draws, and
//!   the hot-value mixture used to hit Table 2's pairwise selectivities.
//! * [`spec`] — stream specs (rate, window, columns), **bursts** (Figure 12's
//!   ×20 rate spike), and the generator that merges all streams into one
//!   globally ordered update sequence.
//! * [`fit`] — fits hot-value mixture parameters so a star equijoin realizes
//!   a *target pairwise-selectivity matrix* (Table 2's D1–D8 points).
//! * [`table2`] — the paper's Table 2 sample points, verbatim.

pub mod column;
pub mod fit;
pub mod spec;
pub mod table2;

pub use column::ColumnGen;
pub use fit::{fit_star_selectivities, HotValueModel};
pub use spec::{Burst, StreamSpec, WindowChurn, Workload};
pub use table2::{sample_point, SamplePoint, TABLE2};
