//! Per-column value generators.

use rand::rngs::SmallRng;
use rand::Rng;

/// A column value generator. Each stream column owns one, advanced once per
/// generated tuple.
#[derive(Debug, Clone)]
pub enum ColumnGen {
    /// Sequential domain walk: the `k`-th tuple gets
    /// `offset + stride · ⌊k / multiplicity⌋ mod domain` (when `domain > 0`;
    /// unbounded otherwise).
    ///
    /// This is the paper's §7.2 data model: *"the join attributes draw values
    /// from the same domain in the same order; the multiplicity of these
    /// values is 1 in R and S and a variable r in T."* `stride > 1` thins the
    /// covered domain (fractional Figure 7 selectivities); disjoint `offset`s
    /// give zero selectivity.
    Seq {
        /// Consecutive repeats of each value.
        multiplicity: u64,
        /// Gap between consecutive values.
        stride: u64,
        /// Additive shift.
        offset: i64,
        /// Wrap-around modulus in *value steps* (0 = unbounded).
        domain: u64,
    },
    /// Uniform draw from `offset .. offset + domain`.
    Uniform {
        /// Domain size.
        domain: u64,
        /// Lowest value.
        offset: i64,
    },
    /// Hot-value mixture: with probability `hot_prob` emit `0`, otherwise
    /// uniform from `1 ..= domain`. Two such columns join with probability
    /// `h_i·h_j + (1−h_i)(1−h_j)/domain` — the knob [`crate::fit`] tunes to
    /// hit Table 2's pairwise selectivities.
    HotValue {
        /// Probability of the hot value.
        hot_prob: f64,
        /// Cold-domain size.
        domain: u64,
    },
    /// Always the same value.
    Const(i64),
    /// Block-random walk: arrivals `k` with the same `⌊k / repeat⌋` share one
    /// pseudo-random value from `0..domain` (derived by hashing the block
    /// index with `salt`, so streams with different salts are independent).
    ///
    /// This realizes "multiplicity `repeat`" — each value arrives `repeat`
    /// times consecutively — *without* phase-locking several streams to the
    /// same recent domain region the way a shared sequential walk would
    /// (which makes star-join fanouts multiply, Figure 9).
    BlockRandom {
        /// Value domain `0..domain`.
        domain: u64,
        /// Arrivals sharing one value.
        repeat: u64,
        /// Stream-distinguishing salt.
        salt: u64,
    },
}

impl ColumnGen {
    /// The paper's default sequential column (multiplicity 1).
    pub fn seq() -> ColumnGen {
        ColumnGen::Seq {
            multiplicity: 1,
            stride: 1,
            offset: 0,
            domain: 0,
        }
    }

    /// Sequential with multiplicity `r`.
    pub fn seq_mult(r: u64) -> ColumnGen {
        ColumnGen::Seq {
            multiplicity: r.max(1),
            stride: 1,
            offset: 0,
            domain: 0,
        }
    }

    /// Generate the value for local tuple index `k` of this stream.
    pub fn value(&self, k: u64, rng: &mut SmallRng) -> i64 {
        match *self {
            ColumnGen::Seq {
                multiplicity,
                stride,
                offset,
                domain,
            } => {
                let step = k / multiplicity.max(1);
                let step = if domain > 0 { step % domain } else { step };
                offset + (step * stride.max(1)) as i64
            }
            ColumnGen::Uniform { domain, offset } => {
                offset + rng.gen_range(0..domain.max(1)) as i64
            }
            ColumnGen::HotValue { hot_prob, domain } => {
                if rng.gen_bool(hot_prob.clamp(0.0, 1.0)) {
                    0
                } else {
                    1 + rng.gen_range(0..domain.max(1)) as i64
                }
            }
            ColumnGen::Const(v) => v,
            ColumnGen::BlockRandom {
                domain,
                repeat,
                salt,
            } => {
                let block = k / repeat.max(1);
                (acq_sketch::fx_hash_u64(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ block)
                    % domain.max(1)) as i64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    #[test]
    fn seq_multiplicity() {
        let g = ColumnGen::seq_mult(3);
        let vals: Vec<i64> = (0..9).map(|k| g.value(k, &mut rng())).collect();
        assert_eq!(vals, vec![0, 0, 0, 1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn seq_stride_and_offset() {
        let g = ColumnGen::Seq {
            multiplicity: 1,
            stride: 2,
            offset: 100,
            domain: 0,
        };
        let vals: Vec<i64> = (0..4).map(|k| g.value(k, &mut rng())).collect();
        assert_eq!(vals, vec![100, 102, 104, 106]);
    }

    #[test]
    fn seq_domain_wraps() {
        let g = ColumnGen::Seq {
            multiplicity: 1,
            stride: 1,
            offset: 0,
            domain: 3,
        };
        let vals: Vec<i64> = (0..7).map(|k| g.value(k, &mut rng())).collect();
        assert_eq!(vals, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn uniform_in_range() {
        let g = ColumnGen::Uniform {
            domain: 10,
            offset: 5,
        };
        let mut r = rng();
        for k in 0..1000 {
            let v = g.value(k, &mut r);
            assert!((5..15).contains(&v));
        }
    }

    #[test]
    fn hot_value_frequency() {
        let g = ColumnGen::HotValue {
            hot_prob: 0.3,
            domain: 1000,
        };
        let mut r = rng();
        let hots = (0..10_000).filter(|&k| g.value(k, &mut r) == 0).count();
        let frac = hots as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "hot fraction {frac}");
    }

    #[test]
    fn const_is_const() {
        let g = ColumnGen::Const(42);
        assert_eq!(g.value(0, &mut rng()), 42);
        assert_eq!(g.value(999, &mut rng()), 42);
    }
}

#[cfg(test)]
mod block_random_tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn block_random_repeats_within_block() {
        let g = ColumnGen::BlockRandom {
            domain: 100,
            repeat: 5,
            salt: 1,
        };
        let mut r = rand::rngs::SmallRng::seed_from_u64(0);
        for b in 0..20u64 {
            let v0 = g.value(b * 5, &mut r);
            for k in 1..5 {
                assert_eq!(g.value(b * 5 + k, &mut r), v0, "block {b}");
            }
        }
    }

    #[test]
    fn block_random_salts_decorrelate() {
        let a = ColumnGen::BlockRandom {
            domain: 1000,
            repeat: 1,
            salt: 1,
        };
        let b = ColumnGen::BlockRandom {
            domain: 1000,
            repeat: 1,
            salt: 2,
        };
        let mut r = rand::rngs::SmallRng::seed_from_u64(0);
        let matches = (0..2000u64)
            .filter(|&k| a.value(k, &mut r) == b.value(k, &mut r))
            .count();
        assert!(
            matches < 20,
            "salted streams should rarely collide: {matches}"
        );
    }

    #[test]
    fn block_random_roughly_uniform() {
        let g = ColumnGen::BlockRandom {
            domain: 10,
            repeat: 1,
            salt: 7,
        };
        let mut r = rand::rngs::SmallRng::seed_from_u64(0);
        let mut counts = [0usize; 10];
        for k in 0..10_000u64 {
            counts[g.value(k, &mut r) as usize] += 1;
        }
        for (v, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "value {v}: {c}");
        }
    }
}
