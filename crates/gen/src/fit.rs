//! Fitting generator parameters to a target pairwise-selectivity matrix.
//!
//! Table 2 of the paper specifies, per sample point, *independent* pairwise
//! join selectivities for the 4-way star equijoin — something a plain uniform
//! domain cannot realize (uniform domains force `sel(i,j) = 1/max(D_i,D_j)`).
//! We use a **hot-value mixture**: relation `i` draws the hot value `0` with
//! probability `h_i`, otherwise a uniform cold value from `1..=D`. Then
//!
//! ```text
//! sel(i, j) = h_i·h_j + (1 − h_i)(1 − h_j) / D
//! ```
//!
//! [`fit_star_selectivities`] finds `(D, h_1..h_n)` minimizing the squared
//! relative error against the target matrix by deterministic coordinate
//! descent. Achieved selectivities are reported alongside the paper's targets
//! in EXPERIMENTS.md.

/// A fitted hot-value model.
#[derive(Debug, Clone)]
pub struct HotValueModel {
    /// Cold-domain size `D`.
    pub domain: u64,
    /// Hot probability per relation.
    pub hot: Vec<f64>,
}

impl HotValueModel {
    /// Predicted pairwise selectivity.
    pub fn sel(&self, i: usize, j: usize) -> f64 {
        let (hi, hj) = (self.hot[i], self.hot[j]);
        hi * hj + (1.0 - hi) * (1.0 - hj) / self.domain as f64
    }

    /// Sum of squared relative errors against a target matrix (upper
    /// triangle).
    pub fn loss(&self, target: &[Vec<f64>]) -> f64 {
        let n = self.hot.len();
        let mut loss = 0.0;
        #[allow(clippy::needless_range_loop)] // upper-triangle index math
        for i in 0..n {
            for j in i + 1..n {
                let t = target[i][j];
                let p = self.sel(i, j);
                let denom = t.max(1e-6);
                loss += ((p - t) / denom).powi(2);
            }
        }
        loss
    }
}

/// Fit `(D, h_i)` to a symmetric target selectivity matrix (diagonal
/// ignored). Deterministic; all-zero targets fit to `h = 0` with a huge
/// domain.
pub fn fit_star_selectivities(target: &[Vec<f64>]) -> HotValueModel {
    let n = target.len();
    assert!(n >= 2);
    let mut positive: Vec<f64> = Vec::new();
    #[allow(clippy::needless_range_loop)] // upper-triangle index math
    for i in 0..n {
        for j in i + 1..n {
            if target[i][j] > 0.0 {
                positive.push(target[i][j]);
            }
        }
    }
    if positive.is_empty() {
        // Zero selectivity everywhere: cold-only draws from a huge domain.
        return HotValueModel {
            domain: 1_000_000,
            hot: vec![0.0; n],
        };
    }
    let min_sel = positive.iter().cloned().fold(f64::INFINITY, f64::min);

    let mut best: Option<HotValueModel> = None;
    // Domain candidates around 1/min_sel: the cold term must be able to fall
    // below the smallest target.
    for dk in [1.0, 2.0, 4.0, 8.0, 16.0] {
        let domain = ((dk / min_sel).round() as u64).max(2);
        let mut model = HotValueModel {
            domain,
            hot: vec![0.02; n],
        };
        // Coordinate descent with a shrinking grid.
        let mut step = 0.25f64;
        for _ in 0..60 {
            for i in 0..n {
                let current = model.hot[i];
                let mut best_h = current;
                let mut best_loss = model.loss(target);
                let mut h = (current - step).max(0.0);
                while h <= (current + step).min(1.0) + 1e-12 {
                    model.hot[i] = h;
                    let l = model.loss(target);
                    if l < best_loss {
                        best_loss = l;
                        best_h = h;
                    }
                    h += step / 8.0;
                }
                model.hot[i] = best_h;
            }
            step *= 0.7;
        }
        if best
            .as_ref()
            .map(|b| model.loss(target) < b.loss(target))
            .unwrap_or(true)
        {
            best = Some(model);
        }
    }
    best.expect("at least one domain candidate")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(n: usize, f: impl Fn(usize, usize) -> f64) -> Vec<Vec<f64>> {
        (0..n).map(|i| (0..n).map(|j| f(i, j)).collect()).collect()
    }

    #[test]
    fn uniform_target_fits_exactly() {
        // sel = 0.001 everywhere: h = 0, D = 1000 is an exact solution.
        let t = matrix(4, |i, j| if i == j { 1.0 } else { 0.001 });
        let m = fit_star_selectivities(&t);
        for i in 0..4 {
            for j in i + 1..4 {
                let rel_err = (m.sel(i, j) - 0.001).abs() / 0.001;
                assert!(rel_err < 0.15, "sel({i},{j}) = {}", m.sel(i, j));
            }
        }
    }

    #[test]
    fn zero_target() {
        let t = matrix(4, |_, _| 0.0);
        let m = fit_star_selectivities(&t);
        assert!(m.hot.iter().all(|&h| h == 0.0));
        assert!(m.sel(0, 1) < 1e-5);
    }

    #[test]
    fn heterogeneous_targets_approximated() {
        // The paper's D1 selectivities.
        let vals = [
            (0, 1, 0.004),
            (0, 2, 0.005),
            (0, 3, 0.005),
            (1, 2, 0.007),
            (1, 3, 0.0045),
            (2, 3, 0.005),
        ];
        let mut t = matrix(4, |_, _| 0.0);
        for &(i, j, s) in &vals {
            t[i][j] = s;
            t[j][i] = s;
        }
        let m = fit_star_selectivities(&t);
        for &(i, j, s) in &vals {
            let rel_err = (m.sel(i, j) - s).abs() / s;
            assert!(
                rel_err < 0.5,
                "sel({i},{j}) = {} vs target {s} (err {rel_err:.2})",
                m.sel(i, j)
            );
        }
        // Aggregate fit should be decent.
        assert!(m.loss(&t) < 6.0 * 0.25, "loss {}", m.loss(&t));
    }

    #[test]
    fn hot_probabilities_bounded() {
        let t = matrix(3, |i, j| if i == j { 1.0 } else { 0.05 });
        let m = fit_star_selectivities(&t);
        assert!(m.hot.iter().all(|&h| (0.0..=1.0).contains(&h)));
        assert!(m.domain >= 2);
    }
}
