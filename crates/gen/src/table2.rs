//! The paper's Table 2: relative stream arrival rates and pairwise join
//! selectivities for the eight sample points D1–D8 of Figure 11, plus a
//! workload builder realizing each point with the hot-value model.

use crate::column::ColumnGen;
use crate::fit::{fit_star_selectivities, HotValueModel};
use crate::spec::{StreamSpec, Workload};

/// One sample point of Table 2 (4-way star join over R, S, T, U).
#[derive(Debug, Clone, Copy)]
pub struct SamplePoint {
    /// "D1" … "D8".
    pub name: &'static str,
    /// Relative arrival rates of R, S, T, U ("relative to the rate of
    /// stream T").
    pub rates: [f64; 4],
    /// Pairwise selectivities, upper-triangle order:
    /// [RS, RT, RU, ST, SU, TU].
    pub sel: [f64; 6],
}

/// Table 2, verbatim.
pub const TABLE2: [SamplePoint; 8] = [
    SamplePoint {
        name: "D1",
        rates: [10.0, 1.0, 1.0, 1.0],
        sel: [0.004, 0.005, 0.005, 0.007, 0.0045, 0.005],
    },
    SamplePoint {
        name: "D2",
        rates: [8.0, 1.0, 1.0, 8.0],
        sel: [0.004, 0.005, 0.005, 0.007, 0.0045, 0.005],
    },
    SamplePoint {
        name: "D3",
        rates: [10.0, 15.0, 1.0, 5.0],
        sel: [0.003, 0.005, 0.007, 0.0045, 0.006, 0.008],
    },
    SamplePoint {
        name: "D4",
        rates: [1.0, 1.0, 1.0, 1.0],
        sel: [0.003, 0.004, 0.0067, 0.002, 0.0023, 0.0027],
    },
    SamplePoint {
        name: "D5",
        rates: [4.0, 1.0, 1.0, 4.0],
        sel: [0.005, 0.007, 0.005, 0.006, 0.005, 0.002],
    },
    SamplePoint {
        name: "D6",
        rates: [1.0, 1.0, 1.0, 1.0],
        sel: [0.005, 0.0033, 0.0025, 0.0067, 0.005, 0.0075],
    },
    SamplePoint {
        name: "D7",
        rates: [1.0, 1.0, 1.0, 1.0],
        sel: [0.0; 6],
    },
    SamplePoint {
        name: "D8",
        rates: [1.0, 1.0, 1.0, 1.0],
        sel: [0.001; 6],
    },
];

/// Look up a sample point by name (`"D1"`…`"D8"`).
pub fn sample_point(name: &str) -> Option<&'static SamplePoint> {
    TABLE2.iter().find(|p| p.name.eq_ignore_ascii_case(name))
}

impl SamplePoint {
    /// The full symmetric selectivity matrix.
    pub fn sel_matrix(&self) -> Vec<Vec<f64>> {
        let mut m = vec![vec![0.0; 4]; 4];
        let pairs = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        for (k, &(i, j)) in pairs.iter().enumerate() {
            m[i][j] = self.sel[k];
            m[j][i] = self.sel[k];
        }
        m
    }

    /// Fit the hot-value model realizing this point's selectivities.
    pub fn fit(&self) -> HotValueModel {
        fit_star_selectivities(&self.sel_matrix())
    }

    /// Build the workload: 4 streams with the fitted hot-value join column
    /// plus a sequential payload column, windows of `window` tuples.
    pub fn workload(&self, window: usize, seed: u64) -> Workload {
        let model = self.fit();
        let streams = (0..4u16)
            .map(|i| {
                let join_col = if self.sel.iter().all(|&s| s == 0.0) {
                    // D7: zero selectivity — disjoint per-relation domains.
                    ColumnGen::Seq {
                        multiplicity: 1,
                        stride: 1,
                        offset: 1_000_000_000 * (i as i64 + 1),
                        domain: 1000,
                    }
                } else {
                    ColumnGen::HotValue {
                        hot_prob: model.hot[i as usize],
                        domain: model.domain,
                    }
                };
                StreamSpec::new(
                    i,
                    self.rates[i as usize],
                    window,
                    vec![join_col, ColumnGen::seq()],
                )
            })
            .collect();
        Workload::new(streams, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acq_stream::{Op, RelId};

    #[test]
    fn lookup_by_name() {
        assert_eq!(sample_point("D3").unwrap().rates, [10.0, 15.0, 1.0, 5.0]);
        assert_eq!(sample_point("d7").unwrap().sel, [0.0; 6]);
        assert!(sample_point("D9").is_none());
    }

    #[test]
    fn matrix_is_symmetric() {
        for p in &TABLE2 {
            let m = p.sel_matrix();
            #[allow(clippy::needless_range_loop)] // symmetric-matrix index math
            for i in 0..4 {
                assert_eq!(m[i][i], 0.0);
                for j in 0..4 {
                    assert_eq!(m[i][j], m[j][i]);
                }
            }
        }
        assert_eq!(TABLE2[2].sel_matrix()[0][2], 0.005, "D3 R⋈T");
    }

    #[test]
    fn d8_workload_realizes_selectivity() {
        // Empirically check pairwise selectivity of generated windows.
        let p = sample_point("D8").unwrap();
        let w = p.workload(500, 42);
        let ups = w.generate(4000);
        // Collect final window contents per relation.
        let mut windows: Vec<Vec<i64>> = vec![Vec::new(); 4];
        for u in &ups {
            let v = u.data.get(0).as_int().unwrap();
            match u.op {
                Op::Insert => windows[u.rel.0 as usize].push(v),
                Op::Delete => {
                    let idx = windows[u.rel.0 as usize]
                        .iter()
                        .position(|&x| x == v)
                        .unwrap();
                    windows[u.rel.0 as usize].swap_remove(idx);
                }
            }
        }
        let _ = RelId(0);
        // Measure sel(0,1).
        let (a, b) = (&windows[0], &windows[1]);
        assert!(a.len() >= 300 && b.len() >= 300);
        let mut matches = 0usize;
        for x in a {
            for y in b {
                if x == y {
                    matches += 1;
                }
            }
        }
        let sel = matches as f64 / (a.len() * b.len()) as f64;
        assert!(
            (sel - 0.001).abs() < 0.0012,
            "empirical sel {sel} vs target 0.001"
        );
    }

    #[test]
    fn d7_workload_produces_no_joins() {
        let p = sample_point("D7").unwrap();
        let w = p.workload(200, 7);
        let ups = w.generate(1000);
        let mut domains: Vec<Vec<i64>> = vec![Vec::new(); 4];
        for u in &ups {
            if u.op == Op::Insert {
                domains[u.rel.0 as usize].push(u.data.get(0).as_int().unwrap());
            }
        }
        for i in 0..4 {
            for j in i + 1..4 {
                assert!(
                    domains[i].iter().all(|v| !domains[j].contains(v)),
                    "domains {i} and {j} overlap"
                );
            }
        }
    }
}
