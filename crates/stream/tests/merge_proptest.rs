//! Property check: the heap-based k-way merge must agree *exactly* with the
//! sort-based reference — order by key, ties broken by run index, then by
//! within-run position (stability).

use acq_stream::merge::{merge_by_timestamp, merge_ordered_runs};
use acq_stream::{Op, RelId, TupleData, Update};
use proptest::prelude::*;

/// Sorted runs of `(key, payload)` pairs; payloads make equal keys
/// distinguishable so stability violations are visible.
fn runs_strategy() -> impl Strategy<Value = Vec<Vec<(u32, u32)>>> {
    proptest::collection::vec(
        proptest::collection::vec(0u32..16, 0..24).prop_map(|mut keys| {
            keys.sort_unstable();
            keys.into_iter()
                .enumerate()
                .map(|(pos, k)| (k, pos as u32))
                .collect::<Vec<_>>()
        }),
        0..6,
    )
}

/// The reference: tag every element with `(key, run, pos)` and stable-sort.
fn reference_merge(runs: &[Vec<(u32, u32)>]) -> Vec<(u32, u32)> {
    let mut tagged: Vec<(u32, usize, usize, (u32, u32))> = Vec::new();
    for (run, r) in runs.iter().enumerate() {
        for (pos, &item) in r.iter().enumerate() {
            tagged.push((item.0, run, pos, item));
        }
    }
    tagged.sort_by_key(|&(k, run, pos, _)| (k, run, pos));
    tagged.into_iter().map(|(_, _, _, item)| item).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn heap_merge_equals_sort_based_reference(runs in runs_strategy()) {
        let expected = reference_merge(&runs);
        let merged = merge_ordered_runs(runs, |&(k, _)| k);
        prop_assert_eq!(merged, expected);
    }

    #[test]
    fn timestamp_merge_is_a_stable_global_order(
        lens in proptest::collection::vec(0usize..12, 1..4),
    ) {
        // Build per-stream update runs with deliberately colliding
        // timestamps (ts = i / 2) so the tie rules are exercised.
        let streams: Vec<Vec<Update>> = lens
            .iter()
            .enumerate()
            .map(|(s, &len)| {
                (0..len)
                    .map(|i| Update {
                        rel: RelId(s as u16),
                        op: Op::Insert,
                        data: TupleData::ints(&[i as i64]),
                        ts: (i / 2) as u64,
                    })
                    .collect()
            })
            .collect();
        let merged = merge_by_timestamp(streams.clone());
        prop_assert_eq!(merged.len(), lens.iter().sum::<usize>());
        // Nondecreasing timestamps…
        prop_assert!(merged.windows(2).all(|w| w[0].ts <= w[1].ts));
        // …and within one (ts, stream) class the original order survives.
        for (s, stream) in streams.iter().enumerate() {
            let sub: Vec<&Update> = merged
                .iter()
                .filter(|u| u.rel == RelId(s as u16))
                .collect();
            prop_assert_eq!(sub.len(), stream.len());
            for (a, b) in sub.iter().zip(stream) {
                prop_assert_eq!(&a.data, &b.data);
            }
        }
    }
}
