//! Property tests for the stream substrate: windows, merging, and schema
//! equivalence classes.

use acq_stream::schema::EquivClassId;
use acq_stream::{
    merge_by_timestamp, AttrRef, CountWindow, JoinPredicate, Op, QuerySchema, RelId,
    RelationSchema, StreamElement, TimeWindow, TupleData, Update, WindowOp,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn count_window_contents_are_the_last_w(
        values in proptest::collection::vec(0i64..1000, 1..200),
        w in 1usize..20,
    ) {
        let mut win = CountWindow::new(RelId(0), w);
        // Replay updates into a model multiset.
        let mut model: Vec<i64> = Vec::new();
        for (ts, &v) in values.iter().enumerate() {
            for u in win.push(StreamElement::new(RelId(0), TupleData::ints(&[v]), ts as u64)) {
                let x = u.data.get(0).as_int().unwrap();
                match u.op {
                    Op::Insert => model.push(x),
                    Op::Delete => {
                        let pos = model.iter().position(|&m| m == x).expect("delete of resident");
                        model.remove(pos);
                    }
                }
            }
        }
        // The model must equal the last min(w, len) values, in order.
        let tail: Vec<i64> = values.iter().rev().take(w).rev().copied().collect();
        prop_assert_eq!(model, tail);
        prop_assert_eq!(win.len(), values.len().min(w));
    }

    #[test]
    fn time_window_keeps_exactly_the_recent_range(
        gaps in proptest::collection::vec(0u64..50, 1..150),
        range in 1u64..200,
    ) {
        let mut win = TimeWindow::new(RelId(1), range);
        let mut arrivals: Vec<u64> = Vec::new();
        let mut now = 0u64;
        let mut live: Vec<u64> = Vec::new();
        for (i, &g) in gaps.iter().enumerate() {
            now += g;
            arrivals.push(now);
            for u in win.push(StreamElement::new(RelId(1), TupleData::ints(&[i as i64]), now)) {
                match u.op {
                    Op::Insert => live.push(now),
                    Op::Delete => {
                        live.remove(0);
                    }
                }
            }
            // Everything still live must satisfy ts + range >= now.
            prop_assert!(live.iter().all(|&ts| ts + range >= now));
        }
        // And nothing old survives: expire to the far future empties it.
        win.expire(now + range + 1);
        prop_assert!(win.is_empty());
    }

    #[test]
    fn merge_is_a_stable_sorted_interleaving(
        lens in proptest::collection::vec(0usize..30, 1..5),
    ) {
        // Build per-stream sorted sequences with deliberately colliding
        // timestamps.
        let streams: Vec<Vec<Update>> = lens
            .iter()
            .enumerate()
            .map(|(r, &len)| {
                (0..len)
                    .map(|i| Update::insert(
                        RelId(r as u16),
                        TupleData::ints(&[i as i64]),
                        (i as u64 / 2) * 10,
                    ))
                    .collect()
            })
            .collect();
        let merged = merge_by_timestamp(streams.clone());
        let total: usize = lens.iter().sum();
        prop_assert_eq!(merged.len(), total);
        // Sorted by ts.
        prop_assert!(merged.windows(2).all(|w| w[0].ts <= w[1].ts));
        // Stable per stream: the subsequence of each relation preserves its
        // original order.
        for (r, s) in streams.iter().enumerate() {
            let sub: Vec<&Update> = merged.iter().filter(|u| u.rel == RelId(r as u16)).collect();
            prop_assert_eq!(sub.len(), s.len());
            for (a, b) in sub.iter().zip(s.iter()) {
                prop_assert_eq!(*a, b);
            }
        }
    }

    #[test]
    fn equivalence_classes_are_transitive_closures(
        edges in proptest::collection::vec((0u16..5, 0u16..5), 0..8),
    ) {
        // 5 single-column relations; random equality edges between distinct
        // relations. The schema's classes must match a union-find ground
        // truth.
        let rels: Vec<RelationSchema> =
            (0..5).map(|i| RelationSchema::new(&format!("R{i}"), &["a"])).collect();
        let preds: Vec<JoinPredicate> = edges
            .iter()
            .filter(|(a, b)| a != b)
            .map(|&(a, b)| JoinPredicate::new(AttrRef::new(a, 0), AttrRef::new(b, 0)))
            .collect();
        prop_assume!(!preds.is_empty());
        let q = QuerySchema::new(rels, preds.clone());

        // Ground-truth union-find over relations.
        let mut parent: Vec<usize> = (0..5).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        for pr in &preds {
            let (a, b) = (pr.left.rel.0 as usize, pr.right.rel.0 as usize);
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            parent[ra] = rb;
        }
        for i in 0..5u16 {
            for j in 0..5u16 {
                let same_truth =
                    find(&mut parent, i as usize) == find(&mut parent, j as usize);
                let ci = q.equiv_class(AttrRef::new(i, 0));
                let cj = q.equiv_class(AttrRef::new(j, 0));
                match (ci, cj) {
                    (Some(a), Some(b)) => prop_assert_eq!(
                        a == b, same_truth,
                        "classes disagree with union-find for R{} R{}", i, j
                    ),
                    _ => {
                        // Attributes in no predicate have no class; they must
                        // be singletons in the ground truth too (relative to
                        // any classed attribute).
                    }
                }
            }
        }
        // Clique closure: every same-class pair of relations has a direct
        // predicate.
        for i in 0..5u16 {
            for j in (i + 1)..5u16 {
                let (ci, cj) = (q.equiv_class(AttrRef::new(i, 0)), q.equiv_class(AttrRef::new(j, 0)));
                if ci.is_some() && ci == cj {
                    let direct = q
                        .predicates_between(&[RelId(i)], &[RelId(j)])
                        .next()
                        .is_some();
                    prop_assert!(direct, "closure missing for R{} R{}", i, j);
                }
            }
        }
        let _ = EquivClassId(0);
    }
}
