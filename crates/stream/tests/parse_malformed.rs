//! Malformed-input rejection for the query parser: every broken input must
//! come back as a positioned `ParseError`, never a panic or a silently
//! wrong schema.

use acq_stream::parse_query;

/// Assert `src` is rejected and the reported offset lies inside (or just
/// past) the input, so editors can point at it.
fn rejected(src: &str) -> (String, usize) {
    match parse_query(src) {
        Err(e) => {
            assert!(
                e.offset <= src.len(),
                "offset {} outside {:?} (len {})",
                e.offset,
                src,
                src.len()
            );
            (e.message, e.offset)
        }
        Ok(q) => panic!("{src:?} parsed into a {}-relation schema", q.num_relations()),
    }
}

#[test]
fn empty_and_whitespace_inputs() {
    rejected("");
    rejected("   \t\n ");
}

#[test]
fn single_relation_is_not_a_join() {
    let (msg, _) = rejected("R(A)");
    assert!(msg.contains("at least two relations"), "{msg}");
}

#[test]
fn truncated_inputs() {
    // Every prefix of a valid query that ends mid-production must fail, and
    // the error must point at (or past) the truncation, not byte 0.
    let full = "R(A) JOIN S(A) ON R.A = S.A";
    for cut in ["R", "R(", "R(A", "R(A)", "R(A) JOIN", "R(A) JOIN S(A)",
        "R(A) JOIN S(A) ON", "R(A) JOIN S(A) ON R.A", "R(A) JOIN S(A) ON R.A ="]
    {
        assert!(full.starts_with(cut));
        let (_, offset) = rejected(cut);
        assert!(offset >= cut.trim_end().len().min(2), "{cut:?} reported offset {offset}");
    }
}

#[test]
fn empty_column_list() {
    rejected("R() JOIN S(A) ON R.A = S.A");
}

#[test]
fn unknown_relation_in_predicate() {
    let (msg, offset) = rejected("R(A) JOIN S(A) ON R.A = T.A");
    assert!(msg.contains("unknown relation"), "{msg}");
    assert_eq!(offset, "R(A) JOIN S(A) ON R.A = ".len());
}

#[test]
fn unknown_column_in_predicate() {
    let (msg, _) = rejected("R(A) JOIN S(A) ON R.A = S.B");
    assert!(msg.contains("no column"), "{msg}");
}

#[test]
fn duplicate_relation_names() {
    let (msg, _) = rejected("R(A) JOIN R(A) ON R.A = R.A");
    assert!(msg.contains("duplicate relation"), "{msg}");
}

#[test]
fn illegal_characters_report_their_position() {
    let (msg, offset) = rejected("R(A) JOIN S(A) ON R.A = S.A; DROP");
    assert!(msg.contains("unexpected character"), "{msg}");
    assert_eq!(offset, "R(A) JOIN S(A) ON R.A = S.A".len());
    rejected("R(A) % S(A)");
    rejected("R(A) JOIN S(A) ON R.A < S.A");
}

#[test]
fn keywords_cannot_name_things() {
    // `JOIN` lexes as a keyword, so it can never serve as an identifier.
    rejected("JOIN(A) JOIN S(A) ON JOIN.A = S.A");
    rejected("R(ON) JOIN S(A) ON R.ON = S.A");
}

#[test]
fn trailing_garbage_after_valid_query() {
    rejected("R(A) JOIN S(A) ON R.A = S.A extra");
    rejected("R(A) JOIN S(A) ON R.A = S.A )");
}

#[test]
fn predicate_missing_and_between_conjuncts() {
    rejected("R(A,B) JOIN S(A,B) ON R.A = S.A R.B = S.B");
}

#[test]
fn non_ascii_is_either_valid_or_cleanly_rejected() {
    // The lexer must never split a multi-byte character (no panics); `⋈` is
    // the one non-ASCII token with meaning.
    assert!(parse_query("R(A) ⋈ S(A) ON R.A = S.A").is_ok());
    rejected("R(α) JOIN S(α) ON R.α = S.β");
    rejected("R(A) ⋈⋈ S(A) ON R.A = S.A");
}
