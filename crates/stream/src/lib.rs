//! # acq-stream — stream substrate
//!
//! Foundation types for the reproduction of *Adaptive Caching for Continuous
//! Queries* (ICDE 2005): values, schemas, reference-counted tuples, composite
//! (concatenated) tuples flowing through MJoin pipelines, insert/delete update
//! streams (`∆R_i`), sliding-window operators turning append-only streams into
//! update streams, and global-order merging of multiple update streams
//! (paper §3.1: *"updates ... have a global ordering on input ... updates are
//! processed strictly in this order"*).

pub mod merge;
pub mod parse;
pub mod schema;
pub mod tuple;
pub mod update;
pub mod value;
pub mod window;

pub use merge::{merge_by_timestamp, merge_ordered_runs};
pub use parse::{parse_query, ParseError};
pub use schema::{AttrRef, ColId, EquivClassId, JoinPredicate, QuerySchema, RelId, RelationSchema};
pub use tuple::{Composite, CompositeId, StoredTuple, TupleData, TupleId, TupleRef, MAX_PARTS};
pub use update::{Op, StreamElement, Update};
pub use value::Value;
pub use window::{CountWindow, TimeWindow, WindowOp};
