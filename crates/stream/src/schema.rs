//! Schemas, attribute references, and equijoin query graphs.
//!
//! A *stream join* (paper §3.1) is a continuous n-way join
//! `R_1 ⋈ R_2 ⋈ … ⋈ R_n` where all join predicates are equijoins
//! `R_i.attr_j = R_k.attr_l`. [`QuerySchema`] holds the relation schemas and
//! the predicate set, and precomputes the *attribute equivalence classes*
//! induced by the equijoins (union-find over attributes). Equivalence classes
//! are how cache keys are canonicalized: the key `K_ijk` of a cache is "the
//! set of join attributes between the relations before the cached segment and
//! the relations in the segment" (§3.2), which we represent as the set of
//! equivalence classes crossing that boundary. Two caches in different
//! pipelines are *shared* (Definition 4.1) iff they cache the same relation
//! set with the same key — i.e. the same crossing-class set.

use std::fmt;

/// Index of a relation within a query (0-based; the paper's `R_{i+1}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u16);

/// Index of a column within a relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColId(pub u16);

/// A fully qualified attribute `R_i.col`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrRef {
    /// Owning relation.
    pub rel: RelId,
    /// Column within the relation.
    pub col: ColId,
}

impl AttrRef {
    /// Shorthand constructor.
    pub fn new(rel: u16, col: u16) -> AttrRef {
        AttrRef {
            rel: RelId(rel),
            col: ColId(col),
        }
    }
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}.{}", self.rel.0, self.col.0)
    }
}

/// Schema of one relation: a name and column names.
#[derive(Debug, Clone)]
pub struct RelationSchema {
    /// Human-readable relation name (`"R"`, `"S"`, …).
    pub name: String,
    /// Column names, indexed by [`ColId`].
    pub columns: Vec<String>,
}

impl RelationSchema {
    /// Build a schema from a name and column-name list.
    pub fn new(name: &str, columns: &[&str]) -> RelationSchema {
        RelationSchema {
            name: name.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Find a column id by name.
    pub fn col(&self, name: &str) -> Option<ColId> {
        self.columns
            .iter()
            .position(|c| c == name)
            .map(|i| ColId(i as u16))
    }
}

/// An equijoin predicate `left = right` between two attributes of *different*
/// relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JoinPredicate {
    /// One side of the equality.
    pub left: AttrRef,
    /// The other side.
    pub right: AttrRef,
}

impl JoinPredicate {
    /// Construct a predicate; panics if both attributes belong to the same
    /// relation (selections are out of scope — the paper's query class is
    /// pure multiway equijoins).
    pub fn new(left: AttrRef, right: AttrRef) -> JoinPredicate {
        assert_ne!(
            left.rel, right.rel,
            "join predicates must span two relations"
        );
        JoinPredicate { left, right }
    }

    /// True if this predicate touches relation `r`.
    pub fn touches(&self, r: RelId) -> bool {
        self.left.rel == r || self.right.rel == r
    }

    /// If the predicate connects `r` with some other relation, return
    /// `(attr-on-r, attr-on-other)`.
    pub fn oriented(&self, r: RelId) -> Option<(AttrRef, AttrRef)> {
        if self.left.rel == r {
            Some((self.left, self.right))
        } else if self.right.rel == r {
            Some((self.right, self.left))
        } else {
            None
        }
    }
}

impl fmt::Display for JoinPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.left, self.right)
    }
}

/// Identifier of an attribute equivalence class (attributes transitively
/// equated by equijoin predicates share a class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EquivClassId(pub u32);

/// A complete n-way stream-join query: relation schemas + equijoin predicates.
#[derive(Debug, Clone)]
pub struct QuerySchema {
    relations: Vec<RelationSchema>,
    predicates: Vec<JoinPredicate>,
    /// `class_of[rel][col]` = equivalence class of that attribute, or `None`
    /// if the attribute participates in no join predicate.
    class_of: Vec<Vec<Option<EquivClassId>>>,
    num_classes: u32,
}

impl QuerySchema {
    /// Build a query schema and precompute attribute equivalence classes.
    ///
    /// The predicate set is **closed under transitivity**: if `a = b` and
    /// `b = c` are declared, the implied `a = c` is added (for attribute
    /// pairs in different relations). This is semantically neutral for
    /// equijoins (NULL never joins) and guarantees two properties the cache
    /// machinery relies on: (1) every pair of relations sharing an
    /// equivalence class is directly joinable, so no pipeline is forced into
    /// an avoidable cross product, and (2) all prefix-side attributes of a
    /// class are mutually equated by the time a cache is probed, making one
    /// representative per crossing class a *consistent* cache key (§3.2).
    ///
    /// # Panics
    /// Panics if a predicate references an out-of-range relation or column,
    /// or if fewer than two relations are given.
    pub fn new(relations: Vec<RelationSchema>, predicates: Vec<JoinPredicate>) -> QuerySchema {
        assert!(relations.len() >= 2, "a join needs at least two relations");
        assert!(relations.len() <= u16::MAX as usize, "too many relations");
        for p in &predicates {
            for a in [p.left, p.right] {
                assert!(
                    (a.rel.0 as usize) < relations.len(),
                    "predicate references unknown relation {a}"
                );
                assert!(
                    (a.col.0 as usize) < relations[a.rel.0 as usize].arity(),
                    "predicate references unknown column {a}"
                );
            }
        }

        // Union-find over all (rel, col) attributes.
        let flat = |a: AttrRef, rels: &[RelationSchema]| -> usize {
            let mut off = 0usize;
            for r in rels.iter().take(a.rel.0 as usize) {
                off += r.arity();
            }
            off + a.col.0 as usize
        };
        let total: usize = relations.iter().map(|r| r.arity()).sum();
        let mut parent: Vec<usize> = (0..total).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for p in &predicates {
            let (a, b) = (flat(p.left, &relations), flat(p.right, &relations));
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra] = rb;
            }
        }

        // Assign dense class ids only to attributes that appear in predicates.
        let mut in_predicate = vec![false; total];
        for p in &predicates {
            in_predicate[flat(p.left, &relations)] = true;
            in_predicate[flat(p.right, &relations)] = true;
        }
        let mut root_to_class: std::collections::HashMap<usize, EquivClassId> =
            std::collections::HashMap::new();
        let mut num_classes = 0u32;
        let mut class_of: Vec<Vec<Option<EquivClassId>>> = Vec::with_capacity(relations.len());
        let mut idx = 0usize;
        for r in &relations {
            let mut row = Vec::with_capacity(r.arity());
            for _ in 0..r.arity() {
                if in_predicate[idx] {
                    let root = find(&mut parent, idx);
                    let class = *root_to_class.entry(root).or_insert_with(|| {
                        let c = EquivClassId(num_classes);
                        num_classes += 1;
                        c
                    });
                    row.push(Some(class));
                } else {
                    row.push(None);
                }
                idx += 1;
            }
            class_of.push(row);
        }

        // Transitive closure: add implied equalities so each class's member
        // attributes form a predicate clique across relations.
        let mut predicates = predicates;
        let mut members: Vec<Vec<AttrRef>> = vec![Vec::new(); num_classes as usize];
        for (r, row) in class_of.iter().enumerate() {
            for (c, cls) in row.iter().enumerate() {
                if let Some(cls) = cls {
                    members[cls.0 as usize].push(AttrRef::new(r as u16, c as u16));
                }
            }
        }
        let existing: std::collections::HashSet<(AttrRef, AttrRef)> = predicates
            .iter()
            .flat_map(|p| [(p.left, p.right), (p.right, p.left)])
            .collect();
        for class in &members {
            for (ai, &a) in class.iter().enumerate() {
                for &b in &class[ai + 1..] {
                    if a.rel != b.rel && !existing.contains(&(a, b)) {
                        predicates.push(JoinPredicate::new(a, b));
                    }
                }
            }
        }

        QuerySchema {
            relations,
            predicates,
            class_of,
            num_classes,
        }
    }

    /// Number of relations `n`.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// All relation ids, in order.
    pub fn rel_ids(&self) -> impl Iterator<Item = RelId> {
        (0..self.relations.len() as u16).map(RelId)
    }

    /// Schema of relation `r`.
    pub fn relation(&self, r: RelId) -> &RelationSchema {
        &self.relations[r.0 as usize]
    }

    /// All equijoin predicates.
    pub fn predicates(&self) -> &[JoinPredicate] {
        &self.predicates
    }

    /// Number of attribute equivalence classes.
    pub fn num_equiv_classes(&self) -> u32 {
        self.num_classes
    }

    /// Equivalence class of an attribute (`None` if it joins with nothing).
    pub fn equiv_class(&self, a: AttrRef) -> Option<EquivClassId> {
        self.class_of[a.rel.0 as usize][a.col.0 as usize]
    }

    /// Predicates whose two sides lie one in `a` and one in `b` (disjoint
    /// relation sets).
    pub fn predicates_between<'s>(
        &'s self,
        a: &'s [RelId],
        b: &'s [RelId],
    ) -> impl Iterator<Item = JoinPredicate> + 's {
        self.predicates.iter().copied().filter(move |p| {
            (a.contains(&p.left.rel) && b.contains(&p.right.rel))
                || (b.contains(&p.left.rel) && a.contains(&p.right.rel))
        })
    }

    /// Equivalence classes that *cross* the boundary between relation sets
    /// `prefix` and `segment`: classes with at least one member attribute in
    /// each set, where membership is witnessed by an actual predicate
    /// endpoint. Sorted and deduplicated — this is the canonical cache key
    /// `K_ijk` (§3.2) used for shared-cache detection (Definition 4.1).
    pub fn crossing_classes(&self, prefix: &[RelId], segment: &[RelId]) -> Vec<EquivClassId> {
        let mut classes: Vec<EquivClassId> = self
            .predicates_between(prefix, segment)
            .filter_map(|p| self.equiv_class(p.left))
            .collect();
        classes.sort_unstable();
        classes.dedup();
        classes
    }

    /// For each crossing class, pick one representative attribute belonging to
    /// a relation in `side`. Used to *evaluate* a cache key from either the
    /// prefix side (probing) or the segment side (maintenance). Returns `None`
    /// if some class has no representative in `side` (cannot happen for
    /// genuine crossing classes, but callers handle it defensively).
    pub fn class_representatives(
        &self,
        classes: &[EquivClassId],
        side: &[RelId],
    ) -> Option<Vec<AttrRef>> {
        classes
            .iter()
            .map(|&cls| {
                for &r in side {
                    let row = &self.class_of[r.0 as usize];
                    for (c, v) in row.iter().enumerate() {
                        if *v == Some(cls) {
                            return Some(AttrRef {
                                rel: r,
                                col: ColId(c as u16),
                            });
                        }
                    }
                }
                None
            })
            .collect()
    }

    /// Pretty name of an attribute (`"S.B"`).
    pub fn attr_name(&self, a: AttrRef) -> String {
        let r = self.relation(a.rel);
        format!("{}.{}", r.name, r.columns[a.col.0 as usize])
    }
}

/// Convenience builders for the paper's two experiment query templates.
impl QuerySchema {
    /// The 3-way chain join `R(A) ⋈_A S(A,B) ⋈_B T(B)` used throughout §7.2.
    pub fn chain3() -> QuerySchema {
        QuerySchema::new(
            vec![
                RelationSchema::new("R", &["A"]),
                RelationSchema::new("S", &["A", "B"]),
                RelationSchema::new("T", &["B"]),
            ],
            vec![
                JoinPredicate::new(AttrRef::new(0, 0), AttrRef::new(1, 0)),
                JoinPredicate::new(AttrRef::new(1, 1), AttrRef::new(2, 0)),
            ],
        )
    }

    /// The n-way star equijoin `R_1(A) ⋈_A R_2(A) ⋈_A … ⋈_A R_n(A)` (§7.1),
    /// with each relation having one payload column besides `A` so tuples are
    /// not degenerate.
    pub fn star(n: usize) -> QuerySchema {
        assert!(n >= 2);
        let rels = (0..n)
            .map(|i| RelationSchema::new(&format!("R{}", i + 1), &["A", "P"]))
            .collect();
        // Chain of equalities R1.A = R2.A = ... ; equivalence classes make the
        // full clique implicit.
        let preds = (1..n)
            .map(|i| JoinPredicate::new(AttrRef::new(0, 0), AttrRef::new(i as u16, 0)))
            .collect();
        QuerySchema::new(rels, preds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain3_structure() {
        let q = QuerySchema::chain3();
        assert_eq!(q.num_relations(), 3);
        assert_eq!(q.predicates().len(), 2);
        // A-class: {R.A, S.A}; B-class: {S.B, T.B} — two distinct classes.
        assert_eq!(q.num_equiv_classes(), 2);
        let ra = q.equiv_class(AttrRef::new(0, 0)).unwrap();
        let sa = q.equiv_class(AttrRef::new(1, 0)).unwrap();
        let sb = q.equiv_class(AttrRef::new(1, 1)).unwrap();
        let tb = q.equiv_class(AttrRef::new(2, 0)).unwrap();
        assert_eq!(ra, sa);
        assert_eq!(sb, tb);
        assert_ne!(ra, sb);
    }

    #[test]
    fn star_single_class() {
        let q = QuerySchema::star(6);
        assert_eq!(q.num_relations(), 6);
        // All A columns share one class.
        assert_eq!(q.num_equiv_classes(), 1);
        for i in 0..6 {
            assert_eq!(q.equiv_class(AttrRef::new(i, 0)), Some(EquivClassId(0)));
            assert_eq!(
                q.equiv_class(AttrRef::new(i, 1)),
                None,
                "payload joins nothing"
            );
        }
    }

    #[test]
    fn crossing_classes_chain() {
        let q = QuerySchema::chain3();
        let r = RelId(0);
        let s = RelId(1);
        let t = RelId(2);
        // Boundary between {T} (prefix) and {R,S} (segment): only the B class
        // crosses (T.B = S.B).
        let crossing = q.crossing_classes(&[t], &[r, s]);
        assert_eq!(crossing.len(), 1);
        assert_eq!(crossing[0], q.equiv_class(AttrRef::new(2, 0)).unwrap());
        // Boundary between {R} and {S,T}: the A class crosses.
        let crossing = q.crossing_classes(&[r], &[s, t]);
        assert_eq!(crossing, vec![q.equiv_class(AttrRef::new(0, 0)).unwrap()]);
        // Boundary between {R} and {T}: nothing crosses directly.
        assert!(q.crossing_classes(&[r], &[t]).is_empty());
    }

    #[test]
    fn representatives_exist_on_both_sides() {
        let q = QuerySchema::chain3();
        let (r, s, t) = (RelId(0), RelId(1), RelId(2));
        let classes = q.crossing_classes(&[t], &[r, s]);
        let probe_side = q.class_representatives(&classes, &[t]).unwrap();
        assert_eq!(probe_side, vec![AttrRef::new(2, 0)]); // T.B
        let maint_side = q.class_representatives(&classes, &[r, s]).unwrap();
        assert_eq!(maint_side, vec![AttrRef::new(1, 1)]); // S.B
    }

    #[test]
    fn shared_cache_key_identity_in_star() {
        // In the star query, the {R1,R2} segment cached in any other pipeline
        // has the same crossing-class set — the precondition for sharing
        // (Definition 4.1, Example 4.2).
        let q = QuerySchema::star(6);
        let seg = [RelId(0), RelId(1)];
        let k3 = q.crossing_classes(&[RelId(2)], &seg);
        let k4 = q.crossing_classes(&[RelId(3)], &seg);
        let k6 = q.crossing_classes(&[RelId(5), RelId(4)], &seg);
        assert_eq!(k3, k4);
        assert_eq!(k3, k6);
        assert_eq!(k3.len(), 1);
    }

    #[test]
    fn predicates_between_filters() {
        let q = QuerySchema::chain3();
        let between: Vec<_> = q.predicates_between(&[RelId(0)], &[RelId(1)]).collect();
        assert_eq!(between.len(), 1);
        let none: Vec<_> = q.predicates_between(&[RelId(0)], &[RelId(2)]).collect();
        assert!(none.is_empty());
    }

    #[test]
    fn relation_schema_lookup() {
        let s = RelationSchema::new("S", &["A", "B"]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.col("B"), Some(ColId(1)));
        assert_eq!(s.col("Z"), None);
    }

    #[test]
    fn attr_name_pretty() {
        let q = QuerySchema::chain3();
        assert_eq!(q.attr_name(AttrRef::new(1, 1)), "S.B");
    }

    #[test]
    #[should_panic(expected = "join predicates must span two relations")]
    fn same_relation_predicate_panics() {
        let _ = JoinPredicate::new(AttrRef::new(0, 0), AttrRef::new(0, 1));
    }
}
