//! Tuples, stored tuples, and composite (concatenated) pipeline tuples.
//!
//! §3.3 of the paper: *"cached values are sets of references to tuples in
//! relations, so actual tuples are never copied into the caches."* We realize
//! that with reference-counted [`StoredTuple`]s: a relation store hands out
//! [`TupleRef`]s (`Arc<StoredTuple>`), and everything downstream — composite
//! tuples flowing through pipelines, cache entries, materialized XJoin
//! subresults — holds references, never copies.
//!
//! A [`Composite`] is the concatenation `r · r_1 · r_2 · …` built as a tuple
//! moves through a pipeline (§3.1): one part per relation already joined.

use crate::schema::{AttrRef, RelId};
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Unique id of a stored tuple within its relation store (never reused).
pub type TupleId = u64;

/// Raw column values of one tuple.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleData(pub Box<[Value]>);

impl TupleData {
    /// Build from a vector of values.
    pub fn new(values: Vec<Value>) -> TupleData {
        TupleData(values.into_boxed_slice())
    }

    /// Build a tuple of integer values (the common case in experiments).
    pub fn ints(values: &[i64]) -> TupleData {
        TupleData(values.iter().map(|&i| Value::Int(i)).collect())
    }

    /// Column accessor.
    #[inline]
    pub fn get(&self, col: u16) -> &Value {
        &self.0[col as usize]
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Approximate memory footprint in bytes (§5 memory accounting).
    pub fn memory_bytes(&self) -> usize {
        16 + self.0.iter().map(Value::memory_bytes).sum::<usize>()
    }
}

impl fmt::Display for TupleData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

/// A tuple as stored in a relation: identity + data.
///
/// Identity (`rel`, `id`) makes delete maintenance exact under multiset
/// semantics: two stored tuples with equal data are still distinct entities,
/// and cache entries / materialized subresults remove exactly the instance
/// that was deleted.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StoredTuple {
    /// Relation this tuple belongs to.
    pub rel: RelId,
    /// Store-assigned unique id.
    pub id: TupleId,
    /// The column values.
    pub data: TupleData,
}

/// Shared reference to a stored tuple.
pub type TupleRef = Arc<StoredTuple>;

/// A concatenated pipeline tuple: one [`TupleRef`] per relation joined so far.
///
/// Parts are kept in pipeline order. Lookup by relation is a linear scan —
/// `n ≤ 16` in every realistic stream join, so this beats any map.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Composite {
    parts: Vec<TupleRef>,
}

impl Composite {
    /// A composite with a single part (the update tuple entering a pipeline).
    pub fn unit(t: TupleRef) -> Composite {
        Composite { parts: vec![t] }
    }

    /// Empty composite (used to seed segment-restricted projections).
    pub fn empty() -> Composite {
        Composite { parts: Vec::new() }
    }

    /// Concatenation `self · t` (paper notation `r · r_j`): a new composite
    /// sharing all existing parts.
    pub fn extend_with(&self, t: TupleRef) -> Composite {
        let mut parts = Vec::with_capacity(self.parts.len() + 1);
        parts.extend(self.parts.iter().cloned());
        parts.push(t);
        Composite { parts }
    }

    /// Concatenate two composites (used when a cache hit splices a cached
    /// segment result `s` onto the probing prefix `r`: `r · s`, §3.2).
    pub fn concat(&self, other: &Composite) -> Composite {
        let mut parts = Vec::with_capacity(self.parts.len() + other.parts.len());
        parts.extend(self.parts.iter().cloned());
        parts.extend(other.parts.iter().cloned());
        Composite { parts }
    }

    /// The part for relation `r`, if present.
    #[inline]
    pub fn part(&self, r: RelId) -> Option<&TupleRef> {
        self.parts.iter().find(|t| t.rel == r)
    }

    /// Attribute accessor across parts; `None` if the relation isn't joined in
    /// yet.
    #[inline]
    pub fn get(&self, a: AttrRef) -> Option<&Value> {
        self.part(a.rel).map(|t| t.data.get(a.col.0))
    }

    /// All parts, in pipeline order.
    pub fn parts(&self) -> &[TupleRef] {
        &self.parts
    }

    /// Number of parts.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True if there are no parts.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Relations present in this composite.
    pub fn rels(&self) -> impl Iterator<Item = RelId> + '_ {
        self.parts.iter().map(|t| t.rel)
    }

    /// Project onto a subset of relations, preserving part order. Returns
    /// `None` if some requested relation is absent. Used by CacheUpdate
    /// operators to restrict a pipeline delta to the cached segment's
    /// relations (§3.2 maintenance).
    pub fn restrict(&self, rels: &[RelId]) -> Option<Composite> {
        let mut parts = Vec::with_capacity(rels.len());
        for t in &self.parts {
            if rels.contains(&t.rel) {
                parts.push(t.clone());
            }
        }
        if parts.len() == rels.len() {
            Some(Composite { parts })
        } else {
            None
        }
    }

    /// Canonical identity of this composite: sorted `(rel, id)` pairs.
    /// Two composites over the same stored tuples are the same join result
    /// regardless of pipeline order — this is the equality used by cache
    /// value sets and materialized subresults.
    pub fn identity(&self) -> Vec<(RelId, TupleId)> {
        let mut v: Vec<(RelId, TupleId)> = self.parts.iter().map(|t| (t.rel, t.id)).collect();
        v.sort_unstable();
        v
    }

    /// Approximate memory footprint of the *references* (not the tuples —
    /// those are owned by the relation stores).
    pub fn ref_memory_bytes(&self) -> usize {
        24 + self.parts.len() * std::mem::size_of::<TupleRef>()
    }
}

impl fmt::Display for Composite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, t) in self.parts.iter().enumerate() {
            if i > 0 {
                write!(f, " · ")?;
            }
            write!(f, "R{}{}", t.rel.0, t.data)?;
        }
        write!(f, "]")
    }
}

/// Build a [`TupleRef`] directly (handy in tests and generators; relation
/// stores normally mint these).
pub fn make_ref(rel: RelId, id: TupleId, data: TupleData) -> TupleRef {
    Arc::new(StoredTuple { rel, id, data })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rel: u16, id: u64, vals: &[i64]) -> TupleRef {
        make_ref(RelId(rel), id, TupleData::ints(vals))
    }

    #[test]
    fn tuple_data_accessors() {
        let d = TupleData::ints(&[1, 2, 3]);
        assert_eq!(d.arity(), 3);
        assert_eq!(d.get(1), &Value::Int(2));
        assert_eq!(format!("{d}"), "⟨1, 2, 3⟩");
        assert_eq!(d.memory_bytes(), 16 + 3 * 16);
    }

    #[test]
    fn composite_extension_and_access() {
        let c = Composite::unit(t(0, 1, &[10]));
        let c2 = c.extend_with(t(1, 7, &[10, 20]));
        assert_eq!(c.len(), 1, "extend_with must not mutate the original");
        assert_eq!(c2.len(), 2);
        assert_eq!(c2.get(AttrRef::new(1, 1)), Some(&Value::Int(20)));
        assert_eq!(c2.get(AttrRef::new(2, 0)), None);
        let rels: Vec<RelId> = c2.rels().collect();
        assert_eq!(rels, vec![RelId(0), RelId(1)]);
    }

    #[test]
    fn concat_splices_cached_segment() {
        let prefix = Composite::unit(t(2, 5, &[99]));
        let cached = Composite::unit(t(0, 1, &[1])).extend_with(t(1, 2, &[1, 99]));
        let full = prefix.concat(&cached);
        assert_eq!(full.len(), 3);
        assert_eq!(full.get(AttrRef::new(0, 0)), Some(&Value::Int(1)));
        assert_eq!(full.get(AttrRef::new(2, 0)), Some(&Value::Int(99)));
    }

    #[test]
    fn restrict_projects_segment() {
        let c = Composite::unit(t(2, 5, &[99]))
            .extend_with(t(0, 1, &[1]))
            .extend_with(t(1, 2, &[1, 99]));
        let seg = c.restrict(&[RelId(0), RelId(1)]).unwrap();
        assert_eq!(seg.len(), 2);
        assert!(seg.part(RelId(2)).is_none());
        assert!(c.restrict(&[RelId(3)]).is_none(), "absent relation");
    }

    #[test]
    fn identity_is_order_independent() {
        let a = t(0, 1, &[1]);
        let b = t(1, 2, &[1, 99]);
        let c1 = Composite::unit(a.clone()).extend_with(b.clone());
        let c2 = Composite::unit(b).extend_with(a);
        assert_eq!(c1.identity(), c2.identity());
    }

    #[test]
    fn identity_distinguishes_equal_data_different_instance() {
        // Multiset semantics: same values, different stored instance.
        let c1 = Composite::unit(t(0, 1, &[5]));
        let c2 = Composite::unit(t(0, 2, &[5]));
        assert_ne!(c1.identity(), c2.identity());
    }

    #[test]
    fn refs_are_shared_not_copied() {
        let base = t(0, 1, &[42]);
        let c = Composite::unit(base.clone());
        let c2 = c.extend_with(t(1, 2, &[42, 1]));
        // Strong count: base + c + c2 = 3.
        assert_eq!(Arc::strong_count(&base), 3);
        drop(c2);
        assert_eq!(Arc::strong_count(&base), 2);
    }

    #[test]
    fn display_formats() {
        let c = Composite::unit(t(0, 1, &[7]));
        assert_eq!(format!("{c}"), "[R0⟨7⟩]");
    }
}
