//! Tuples, stored tuples, and composite (concatenated) pipeline tuples.
//!
//! §3.3 of the paper: *"cached values are sets of references to tuples in
//! relations, so actual tuples are never copied into the caches."* We realize
//! that with reference-counted [`StoredTuple`]s: a relation store hands out
//! [`TupleRef`]s (`Arc<StoredTuple>`), and everything downstream — composite
//! tuples flowing through pipelines, cache entries, materialized XJoin
//! subresults — holds references, never copies.
//!
//! A [`Composite`] is the concatenation `r · r_1 · r_2 · …` built as a tuple
//! moves through a pipeline (§3.1): one part per relation already joined.

use crate::schema::{AttrRef, RelId};
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Unique id of a stored tuple within its relation store (never reused).
pub type TupleId = u64;

/// Raw column values of one tuple.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleData(pub Box<[Value]>);

impl TupleData {
    /// Build from a vector of values.
    pub fn new(values: Vec<Value>) -> TupleData {
        TupleData(values.into_boxed_slice())
    }

    /// Build a tuple of integer values (the common case in experiments).
    pub fn ints(values: &[i64]) -> TupleData {
        TupleData(values.iter().map(|&i| Value::Int(i)).collect())
    }

    /// Column accessor.
    #[inline]
    pub fn get(&self, col: u16) -> &Value {
        &self.0[col as usize]
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Approximate memory footprint in bytes (§5 memory accounting).
    pub fn memory_bytes(&self) -> usize {
        16 + self.0.iter().map(Value::memory_bytes).sum::<usize>()
    }
}

impl fmt::Display for TupleData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

/// A tuple as stored in a relation: identity + data.
///
/// Identity (`rel`, `id`) makes delete maintenance exact under multiset
/// semantics: two stored tuples with equal data are still distinct entities,
/// and cache entries / materialized subresults remove exactly the instance
/// that was deleted.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StoredTuple {
    /// Relation this tuple belongs to.
    pub rel: RelId,
    /// Store-assigned unique id.
    pub id: TupleId,
    /// The column values.
    pub data: TupleData,
}

/// Shared reference to a stored tuple.
pub type TupleRef = Arc<StoredTuple>;

/// Maximum number of parts (relations) a [`Composite`] can hold — the size
/// of [`CompositeId`]'s fixed inline buffer. Every experiment in the paper
/// (and every realistic stream join) has `n ≤ 16`.
pub const MAX_PARTS: usize = 16;

/// Inline part capacity of a [`Composite`]. Joins wider than this spill the
/// tail parts to a heap vector; at 7 the only workloads that ever spill are
/// the widest stars of the fig09 join-count sweep, and the composite struct
/// is exactly 72 bytes (len byte + 7 part slots + spill pointer) so the
/// constant moves/clones/drops the pipeline does per update stay cheap.
/// Benchmarked: chain3 steady-state throughput regressed ~20% with a
/// 16-slot inline array purely from the extra memcpy and drop-glue traffic.
const INLINE_PARTS: usize = 7;

/// A concatenated pipeline tuple: one [`TupleRef`] per relation joined so far.
///
/// Parts live in a fixed inline array (capacity `INLINE_PARTS`) rather
/// than a heap `Vec`: building a composite along a k-step pipeline is the
/// hottest operation in the engine, and the inline layout makes
/// [`Composite::unit`] / [`Composite::extend_with`] allocation-free for
/// every join the repo runs. Wider joins (up to [`MAX_PARTS`]) transparently
/// spill parts `8..` to a boxed vector. Lookup by relation is a linear scan
/// — `n ≤ 16`, so this beats any map.
///
/// The inline slots are `MaybeUninit` with only the first
/// `min(len, INLINE_PARTS)` initialized: clone and drop — the two dominant
/// costs of pipeline execution, since every probe output clones its prefix —
/// touch exactly the occupied slots instead of copying, zero-initializing,
/// or branch-testing all `INLINE_PARTS` every time.
pub struct Composite {
    /// Total part count (inline + spill).
    len: u8,
    /// Inline slots; the first `min(len, INLINE_PARTS)` are initialized.
    parts: [std::mem::MaybeUninit<TupleRef>; INLINE_PARTS],
    /// Parts `INLINE_PARTS..`, in pipeline order — `None` until a join
    /// exceeds the inline capacity (no repo workload does; boxed so the
    /// never-spilling hot path pays one null word, not an empty `Vec` —
    /// that is the point of the indirection the lint objects to).
    #[allow(clippy::box_collection)]
    spill: Option<Box<Vec<TupleRef>>>,
}

// The whole point of the inline layout: one cache line plus a word.
const _: () = assert!(std::mem::size_of::<Composite>() == 72);

impl Clone for Composite {
    fn clone(&self) -> Composite {
        let mut parts = [const { std::mem::MaybeUninit::uninit() }; INLINE_PARTS];
        for (slot, t) in parts.iter_mut().zip(self.inline_parts()) {
            slot.write(t.clone());
        }
        Composite {
            len: self.len,
            parts,
            spill: self.spill.clone(),
        }
    }
}

impl Drop for Composite {
    fn drop(&mut self) {
        let n = (self.len as usize).min(INLINE_PARTS);
        // SAFETY: the first `n` inline slots are initialized (struct
        // invariant) and are never read again — the composite is mid-drop.
        // `spill` is dropped by the normal field drop glue afterwards.
        unsafe {
            std::ptr::drop_in_place(std::ptr::slice_from_raw_parts_mut(
                self.parts.as_mut_ptr().cast::<TupleRef>(),
                n,
            ));
        }
    }
}

impl fmt::Debug for Composite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.parts()).finish()
    }
}

impl Composite {
    /// A composite with a single part (the update tuple entering a pipeline).
    pub fn unit(t: TupleRef) -> Composite {
        let mut c = Composite::empty();
        c.parts[0].write(t);
        c.len = 1;
        c
    }

    /// Empty composite (used to seed segment-restricted projections).
    pub fn empty() -> Composite {
        Composite {
            len: 0,
            parts: [const { std::mem::MaybeUninit::uninit() }; INLINE_PARTS],
            spill: None,
        }
    }

    /// The initialized inline slots, as a plain slice.
    #[inline]
    fn inline_parts(&self) -> &[TupleRef] {
        let n = (self.len as usize).min(INLINE_PARTS);
        // SAFETY: the first `n` inline slots are initialized (struct
        // invariant); `MaybeUninit<TupleRef>` has `TupleRef`'s layout.
        unsafe { std::slice::from_raw_parts(self.parts.as_ptr().cast::<TupleRef>(), n) }
    }

    /// Concatenation `self · t` (paper notation `r · r_j`): a new composite
    /// sharing all existing parts. Allocation-free — only the part
    /// refcounts are touched.
    pub fn extend_with(&self, t: TupleRef) -> Composite {
        let mut c = self.clone();
        c.push(t);
        c
    }

    /// Append one part in place.
    #[inline]
    pub fn push(&mut self, t: TupleRef) {
        let len = self.len as usize;
        if len < INLINE_PARTS {
            // The slot is uninitialized (it is the first one past the
            // occupied prefix), so `write` correctly skips dropping it.
            self.parts[len].write(t);
        } else {
            assert!(len < MAX_PARTS, "composite part overflow");
            self.spill.get_or_insert_default().push(t);
        }
        self.len += 1;
    }

    /// Visit every part in pipeline order. Internal iteration keeps the
    /// spill branch outside the loop — the `impl Iterator` chain in
    /// [`Composite::parts`] costs measurably more in the engine's hottest
    /// loops (identity packing, segment restriction).
    #[inline]
    fn for_each_part(&self, mut f: impl FnMut(&TupleRef)) {
        for p in self.inline_parts() {
            f(p);
        }
        if let Some(v) = &self.spill {
            for t in v.iter() {
                f(t);
            }
        }
    }

    /// Concatenate two composites (used when a cache hit splices a cached
    /// segment result `s` onto the probing prefix `r`: `r · s`, §3.2).
    pub fn concat(&self, other: &Composite) -> Composite {
        let mut c = self.clone();
        other.for_each_part(|t| c.push(t.clone()));
        c
    }

    /// [`concat`](Self::concat) consuming `self`: splices `other`'s parts
    /// onto the owned prefix without cloning it (no refcount traffic for the
    /// prefix parts).
    pub fn concat_owned(mut self, other: &Composite) -> Composite {
        other.for_each_part(|t| self.push(t.clone()));
        self
    }

    /// The part for relation `r`, if present.
    #[inline]
    pub fn part(&self, r: RelId) -> Option<&TupleRef> {
        // Scan the inline slots directly (the common, fully-inline case);
        // fall through to the spill only when the composite is that wide.
        for t in self.inline_parts() {
            if t.rel == r {
                return Some(t);
            }
        }
        match &self.spill {
            Some(v) => v.iter().find(|t| t.rel == r),
            None => None,
        }
    }

    /// Attribute accessor across parts; `None` if the relation isn't joined in
    /// yet.
    #[inline]
    pub fn get(&self, a: AttrRef) -> Option<&Value> {
        self.part(a.rel).map(|t| t.data.get(a.col.0))
    }

    /// All parts, in pipeline order.
    #[inline]
    pub fn parts(&self) -> impl Iterator<Item = &TupleRef> + '_ {
        self.inline_parts()
            .iter()
            .chain(self.spill.iter().flat_map(|v| v.iter()))
    }

    /// Number of parts.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if there are no parts.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Relations present in this composite.
    pub fn rels(&self) -> impl Iterator<Item = RelId> + '_ {
        self.parts().map(|t| t.rel)
    }

    /// Project onto a subset of relations (given in ascending `RelId`
    /// order), preserving part order. Returns `None` if some requested
    /// relation is absent. Used by CacheUpdate operators to restrict a
    /// pipeline delta to the cached segment's relations (§3.2 maintenance).
    pub fn restrict(&self, rels: &[RelId]) -> Option<Composite> {
        debug_assert!(rels.windows(2).all(|w| w[0] < w[1]), "rels must be sorted");
        let mut c = Composite::empty();
        self.for_each_part(|t| {
            if rels.binary_search(&t.rel).is_ok() {
                c.push(t.clone());
            }
        });
        if c.len() == rels.len() {
            Some(c)
        } else {
            None
        }
    }

    /// Canonical identity of this composite: sorted, packed `(rel, id)`
    /// pairs in a fixed inline buffer. Two composites over the same stored
    /// tuples are the same join result regardless of pipeline order — this
    /// is the equality used by cache value sets and materialized
    /// subresults. Allocation-free and `Copy`.
    pub fn identity(&self) -> CompositeId {
        let mut id = CompositeId {
            len: self.len,
            packed: [0; MAX_PARTS],
        };
        let mut i = 0usize;
        self.for_each_part(|t| {
            id.packed[i] = CompositeId::pack(t.rel, t.id);
            i += 1;
        });
        id.packed[..id.len as usize].sort_unstable();
        id
    }

    /// Approximate memory footprint of the *references* (not the tuples —
    /// those are owned by the relation stores). Charged as if the parts
    /// were a heap vector of refs — the §5 cost model prices cached
    /// *reference sets*, which the inline capacity merely pre-reserves.
    pub fn ref_memory_bytes(&self) -> usize {
        24 + self.len() * std::mem::size_of::<TupleRef>()
    }
}

impl PartialEq for Composite {
    fn eq(&self, other: &Composite) -> bool {
        self.len == other.len && self.parts().eq(other.parts())
    }
}

impl Eq for Composite {}

impl std::hash::Hash for Composite {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u8(self.len);
        self.for_each_part(|t| t.hash(state));
    }
}

impl fmt::Display for Composite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, t) in self.parts().enumerate() {
            if i > 0 {
                write!(f, " · ")?;
            }
            write!(f, "R{}{}", t.rel.0, t.data)?;
        }
        write!(f, "]")
    }
}

/// Canonical identity of a [`Composite`]: its sorted `(rel, id)` pairs,
/// packed one-per-`u64` (relation in the high 16 bits, tuple id in the low
/// 48) in a fixed inline buffer. `Copy`, allocation-free, and ordered —
/// the map key for cache value sets and materialized subresults.
#[derive(Debug, Clone, Copy)]
pub struct CompositeId {
    len: u8,
    packed: [u64; MAX_PARTS],
}

impl CompositeId {
    /// Bits of a `u64` reserved for the tuple id (low bits).
    const ID_BITS: u32 = 48;

    #[inline]
    fn pack(rel: RelId, id: TupleId) -> u64 {
        debug_assert!(id < 1 << Self::ID_BITS, "tuple id exceeds 48 bits");
        ((rel.0 as u64) << Self::ID_BITS) | id
    }

    /// Number of `(rel, id)` pairs.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if there are no pairs.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i`-th pair in canonical (sorted) order.
    pub fn pair(&self, i: usize) -> (RelId, TupleId) {
        let p = self.packed[..self.len as usize][i];
        (RelId((p >> Self::ID_BITS) as u16), p & ((1 << Self::ID_BITS) - 1))
    }

    /// All pairs in canonical order.
    pub fn pairs(&self) -> impl Iterator<Item = (RelId, TupleId)> + '_ {
        (0..self.len()).map(|i| self.pair(i))
    }

    /// Whether the identity includes stored tuple `(rel, id)`.
    pub fn contains(&self, rel: RelId, id: TupleId) -> bool {
        self.packed[..self.len as usize]
            .binary_search(&Self::pack(rel, id))
            .is_ok()
    }
}

impl PartialEq for CompositeId {
    fn eq(&self, other: &CompositeId) -> bool {
        self.packed[..self.len as usize] == other.packed[..other.len as usize]
    }
}

impl Eq for CompositeId {}

impl std::hash::Hash for CompositeId {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // No length prefix needed: the packed entries themselves determine
        // the boundary (equal prefixes of different lengths are unequal
        // slices and hash as such via the slice impl).
        self.packed[..self.len as usize].hash(state);
    }
}

impl PartialOrd for CompositeId {
    fn partial_cmp(&self, other: &CompositeId) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CompositeId {
    fn cmp(&self, other: &CompositeId) -> std::cmp::Ordering {
        self.packed[..self.len as usize].cmp(&other.packed[..other.len as usize])
    }
}

impl fmt::Display for CompositeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (rel, id)) in self.pairs().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "R{}#{}", rel.0, id)?;
        }
        write!(f, "}}")
    }
}

/// Build a [`TupleRef`] directly (handy in tests and generators; relation
/// stores normally mint these).
pub fn make_ref(rel: RelId, id: TupleId, data: TupleData) -> TupleRef {
    Arc::new(StoredTuple { rel, id, data })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rel: u16, id: u64, vals: &[i64]) -> TupleRef {
        make_ref(RelId(rel), id, TupleData::ints(vals))
    }

    #[test]
    fn tuple_data_accessors() {
        let d = TupleData::ints(&[1, 2, 3]);
        assert_eq!(d.arity(), 3);
        assert_eq!(d.get(1), &Value::Int(2));
        assert_eq!(format!("{d}"), "⟨1, 2, 3⟩");
        assert_eq!(d.memory_bytes(), 16 + 3 * 16);
    }

    #[test]
    fn composite_extension_and_access() {
        let c = Composite::unit(t(0, 1, &[10]));
        let c2 = c.extend_with(t(1, 7, &[10, 20]));
        assert_eq!(c.len(), 1, "extend_with must not mutate the original");
        assert_eq!(c2.len(), 2);
        assert_eq!(c2.get(AttrRef::new(1, 1)), Some(&Value::Int(20)));
        assert_eq!(c2.get(AttrRef::new(2, 0)), None);
        let rels: Vec<RelId> = c2.rels().collect();
        assert_eq!(rels, vec![RelId(0), RelId(1)]);
    }

    #[test]
    fn concat_splices_cached_segment() {
        let prefix = Composite::unit(t(2, 5, &[99]));
        let cached = Composite::unit(t(0, 1, &[1])).extend_with(t(1, 2, &[1, 99]));
        let full = prefix.concat(&cached);
        assert_eq!(full.len(), 3);
        assert_eq!(full.get(AttrRef::new(0, 0)), Some(&Value::Int(1)));
        assert_eq!(full.get(AttrRef::new(2, 0)), Some(&Value::Int(99)));
    }

    #[test]
    fn restrict_projects_segment() {
        let c = Composite::unit(t(2, 5, &[99]))
            .extend_with(t(0, 1, &[1]))
            .extend_with(t(1, 2, &[1, 99]));
        let seg = c.restrict(&[RelId(0), RelId(1)]).unwrap();
        assert_eq!(seg.len(), 2);
        assert!(seg.part(RelId(2)).is_none());
        assert!(c.restrict(&[RelId(3)]).is_none(), "absent relation");
    }

    #[test]
    fn wide_composites_spill_past_inline_capacity() {
        // Joins wider than INLINE_PARTS (e.g. fig09's 9-way star) spill the
        // tail parts to the heap; every accessor must see both halves.
        let mut c = Composite::empty();
        for r in 0..12u16 {
            c.push(t(r, r as u64 + 100, &[r as i64]));
        }
        assert_eq!(c.len(), 12);
        assert_eq!(c.part(RelId(11)).unwrap().id, 111);
        assert_eq!(c.get(AttrRef::new(9, 0)), Some(&Value::Int(9)));
        assert_eq!(c.parts().count(), 12);
        let cloned = c.clone();
        assert_eq!(cloned, c);
        assert_eq!(cloned.identity(), c.identity());
        let seg = c.restrict(&[RelId(2), RelId(10)]).unwrap();
        assert_eq!(seg.len(), 2);
        assert_eq!(c.identity().pair(11), (RelId(11), 111));
    }

    #[test]
    fn identity_is_order_independent() {
        let a = t(0, 1, &[1]);
        let b = t(1, 2, &[1, 99]);
        let c1 = Composite::unit(a.clone()).extend_with(b.clone());
        let c2 = Composite::unit(b).extend_with(a);
        assert_eq!(c1.identity(), c2.identity());
    }

    #[test]
    fn identity_distinguishes_equal_data_different_instance() {
        // Multiset semantics: same values, different stored instance.
        let c1 = Composite::unit(t(0, 1, &[5]));
        let c2 = Composite::unit(t(0, 2, &[5]));
        assert_ne!(c1.identity(), c2.identity());
    }

    #[test]
    fn refs_are_shared_not_copied() {
        let base = t(0, 1, &[42]);
        let c = Composite::unit(base.clone());
        let c2 = c.extend_with(t(1, 2, &[42, 1]));
        // Strong count: base + c + c2 = 3.
        assert_eq!(Arc::strong_count(&base), 3);
        drop(c2);
        assert_eq!(Arc::strong_count(&base), 2);
    }

    #[test]
    fn display_formats() {
        let c = Composite::unit(t(0, 1, &[7]));
        assert_eq!(format!("{c}"), "[R0⟨7⟩]");
    }
}
