//! Update streams `∆R_i`.
//!
//! §3.1: *"∆R_i denotes the continuous stream of insertions and deletions to
//! R_i"*. An [`Update`] is one insertion or deletion of a tuple in one
//! relation, carrying the global-order timestamp. A [`StreamElement`] is an
//! element of an *append-only* stream (insertions only) before a window
//! operator converts it into updates.

use crate::schema::RelId;
use crate::tuple::TupleData;
use std::fmt;

/// Insert or delete.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Tuple enters the relation (window).
    Insert,
    /// Tuple leaves the relation (window expiry or explicit delete).
    Delete,
}

impl Op {
    /// +1 for insert, −1 for delete: the sign of the delta this update
    /// contributes to the join result multiset.
    pub fn sign(self) -> i64 {
        match self {
            Op::Insert => 1,
            Op::Delete => -1,
        }
    }

    /// The inverse operation.
    pub fn inverse(self) -> Op {
        match self {
            Op::Insert => Op::Delete,
            Op::Delete => Op::Insert,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Insert => write!(f, "+"),
            Op::Delete => write!(f, "-"),
        }
    }
}

/// One element of an update stream `∆R`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Update {
    /// Insert or delete.
    pub op: Op,
    /// The relation being updated.
    pub rel: RelId,
    /// The tuple's column values. For deletes this identifies (by value) one
    /// instance to remove under multiset semantics.
    pub data: TupleData,
    /// Global-order timestamp (virtual nanoseconds). The engine processes
    /// updates strictly in nondecreasing `ts` order (§3.1).
    pub ts: u64,
}

impl Update {
    /// Construct an insertion.
    pub fn insert(rel: RelId, data: TupleData, ts: u64) -> Update {
        Update {
            op: Op::Insert,
            rel,
            data,
            ts,
        }
    }

    /// Construct a deletion.
    pub fn delete(rel: RelId, data: TupleData, ts: u64) -> Update {
        Update {
            op: Op::Delete,
            rel,
            data,
            ts,
        }
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}R{}{} @{}", self.op, self.rel.0, self.data, self.ts)
    }
}

/// One element of an *append-only* input stream, before windowing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamElement {
    /// Stream / relation this element belongs to.
    pub rel: RelId,
    /// Tuple values.
    pub data: TupleData,
    /// Arrival timestamp (virtual nanoseconds).
    pub ts: u64,
}

impl StreamElement {
    /// Construct an element.
    pub fn new(rel: RelId, data: TupleData, ts: u64) -> StreamElement {
        StreamElement { rel, data, ts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_sign_and_inverse() {
        assert_eq!(Op::Insert.sign(), 1);
        assert_eq!(Op::Delete.sign(), -1);
        assert_eq!(Op::Insert.inverse(), Op::Delete);
        assert_eq!(Op::Delete.inverse(), Op::Insert);
    }

    #[test]
    fn constructors() {
        let u = Update::insert(RelId(1), TupleData::ints(&[4]), 99);
        assert_eq!(u.op, Op::Insert);
        assert_eq!(u.ts, 99);
        let d = Update::delete(RelId(1), TupleData::ints(&[4]), 100);
        assert_eq!(d.op, Op::Delete);
        assert_eq!(format!("{u}"), "+R1⟨4⟩ @99");
        assert_eq!(format!("{d}"), "-R1⟨4⟩ @100");
    }
}
