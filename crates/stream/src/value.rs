//! Attribute values.
//!
//! The paper's evaluation uses small fixed-size tuples of integer join
//! attributes (32-byte tuples, §7.1). The library supports 64-bit integers and
//! interned strings; both are `Eq + Hash + Ord` so they can serve as join keys
//! and cache keys. Floats are deliberately excluded from the value domain:
//! equijoin semantics and hash-based cache keys require a total, reflexive
//! equality.

use std::fmt;
use std::sync::Arc;

/// A single attribute value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// SQL NULL. Compares equal to itself for storage purposes, but equijoin
    /// predicates treat NULL as matching nothing (see
    /// [`Value::join_eq`]).
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// Interned UTF-8 string (cheap to clone).
    Str(Arc<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// Equality under SQL equijoin semantics: `NULL` matches nothing,
    /// including another `NULL`.
    #[inline]
    pub fn join_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => false,
            (a, b) => a == b,
        }
    }

    /// True for [`Value::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Approximate in-memory footprint in bytes, used by the cache memory
    /// accountant (§5): enum discriminant + payload.
    pub fn memory_bytes(&self) -> usize {
        match self {
            Value::Null => 16,
            Value::Int(_) => 16,
            Value::Str(s) => 16 + s.len(),
        }
    }

    /// Feed this value into a hasher in a way that is stable across composite
    /// and base tuples (used for cache-key hashing and Bloom filters).
    pub fn hash_into(&self, h: &mut acq_sketch::FxHasher) {
        use std::hash::Hasher;
        match self {
            Value::Null => h.write_u8(0),
            Value::Int(i) => {
                h.write_u8(1);
                h.write_u64(*i as u64);
            }
            Value::Str(s) => {
                h.write_u8(2);
                h.write(s.as_bytes());
            }
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::str(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hasher;

    #[test]
    fn join_eq_null_semantics() {
        assert!(!Value::Null.join_eq(&Value::Null));
        assert!(!Value::Null.join_eq(&Value::Int(1)));
        assert!(!Value::Int(1).join_eq(&Value::Null));
        assert!(Value::Int(1).join_eq(&Value::Int(1)));
        assert!(!Value::Int(1).join_eq(&Value::Int(2)));
        assert!(Value::str("a").join_eq(&Value::str("a")));
        assert!(!Value::str("a").join_eq(&Value::Int(1)));
    }

    #[test]
    fn storage_equality_includes_null() {
        // Multiset storage / delete matching uses `==`, where NULL == NULL.
        assert_eq!(Value::Null, Value::Null);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn conversions_and_accessors() {
        let v: Value = 42i64.into();
        assert_eq!(v.as_int(), Some(42));
        let s: Value = "hi".into();
        assert_eq!(s.as_int(), None);
        assert_eq!(format!("{v} {s}"), "42 \"hi\"");
        assert_eq!(format!("{}", Value::Null), "NULL");
    }

    #[test]
    fn hash_into_distinguishes_types_and_values() {
        fn h(v: &Value) -> u64 {
            let mut hasher = acq_sketch::FxHasher::default();
            v.hash_into(&mut hasher);
            hasher.finish()
        }
        assert_ne!(h(&Value::Int(0)), h(&Value::Null));
        assert_ne!(h(&Value::Int(1)), h(&Value::Int(2)));
        assert_ne!(h(&Value::str("1")), h(&Value::Int(1)));
        assert_eq!(h(&Value::str("abc")), h(&Value::str("abc")));
    }

    #[test]
    fn memory_accounting() {
        assert_eq!(Value::Int(5).memory_bytes(), 16);
        assert_eq!(Value::str("abcd").memory_bytes(), 20);
    }
}
