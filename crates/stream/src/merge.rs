//! Global-order merging of per-stream update sequences.
//!
//! §3.1: updates across all of `∆R_1, …, ∆R_n` *"have a global ordering on
//! input, e.g., based on arrival time. (The system could break ties if
//! needed.)"* [`merge_by_timestamp`] performs a stable k-way merge by
//! timestamp, breaking ties by stream index (lower relation id first) and then
//! by within-stream position, so the global order is deterministic.
//!
//! The underlying [`merge_ordered_runs`] is generic over element and key:
//! the sharded executor reuses it to merge per-shard output-delta runs back
//! into global update order with the same determinism guarantee.

use crate::update::Update;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One run's head element, keyed for the min-heap. At most one entry per run
/// is in the heap at a time, so within-run order is preserved without an
/// explicit position component; ties across runs break toward the lower run
/// index.
struct HeapEntry<T, K> {
    key: K,
    run: usize,
    item: T,
}

impl<T, K: Ord> PartialEq for HeapEntry<T, K> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<T, K: Ord> Eq for HeapEntry<T, K> {}
impl<T, K: Ord> PartialOrd for HeapEntry<T, K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T, K: Ord> Ord for HeapEntry<T, K> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for min-by-(key, run).
        (&other.key, other.run).cmp(&(&self.key, self.run))
    }
}

/// Stable k-way merge of runs already sorted by `key_of`: output is ordered
/// by key, ties broken by run index then within-run position. Elements are
/// moved, not cloned.
///
/// # Panics
/// Panics (in debug builds) if an input run is not sorted by its keys.
pub fn merge_ordered_runs<T, K, F>(runs: Vec<Vec<T>>, key_of: F) -> Vec<T>
where
    K: Ord,
    F: Fn(&T) -> K,
{
    #[cfg(debug_assertions)]
    for r in &runs {
        debug_assert!(
            r.windows(2).all(|w| key_of(&w[0]) <= key_of(&w[1])),
            "input run not sorted by merge key"
        );
    }
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut iters: Vec<std::vec::IntoIter<T>> = runs.into_iter().map(Vec::into_iter).collect();
    let mut heap = BinaryHeap::with_capacity(iters.len());
    for (run, it) in iters.iter_mut().enumerate() {
        if let Some(item) = it.next() {
            heap.push(HeapEntry {
                key: key_of(&item),
                run,
                item,
            });
        }
    }
    while let Some(HeapEntry { run, item, .. }) = heap.pop() {
        out.push(item);
        if let Some(next) = iters[run].next() {
            heap.push(HeapEntry {
                key: key_of(&next),
                run,
                item: next,
            });
        }
    }
    out
}

/// Merge per-stream update sequences (each already sorted by timestamp) into
/// one globally ordered sequence.
///
/// # Panics
/// Panics (in debug builds) if an input sequence is not sorted by `ts`.
pub fn merge_by_timestamp(streams: Vec<Vec<Update>>) -> Vec<Update> {
    merge_ordered_runs(streams, |u| u.ts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelId;
    use crate::tuple::TupleData;

    fn u(rel: u16, v: i64, ts: u64) -> Update {
        Update::insert(RelId(rel), TupleData::ints(&[v]), ts)
    }

    #[test]
    fn merges_in_timestamp_order() {
        let merged = merge_by_timestamp(vec![
            vec![u(0, 1, 0), u(0, 2, 10), u(0, 3, 20)],
            vec![u(1, 4, 5), u(1, 5, 15)],
        ]);
        let ts: Vec<u64> = merged.iter().map(|x| x.ts).collect();
        assert_eq!(ts, vec![0, 5, 10, 15, 20]);
    }

    #[test]
    fn ties_broken_by_stream_index() {
        let merged = merge_by_timestamp(vec![vec![u(0, 1, 7)], vec![u(1, 2, 7)], vec![u(2, 3, 7)]]);
        let rels: Vec<u16> = merged.iter().map(|x| x.rel.0).collect();
        assert_eq!(rels, vec![0, 1, 2]);
    }

    #[test]
    fn within_stream_order_preserved_on_equal_ts() {
        let merged = merge_by_timestamp(vec![vec![u(0, 1, 3), u(0, 2, 3), u(0, 3, 3)]]);
        let vals: Vec<i64> = merged
            .iter()
            .map(|x| x.data.get(0).as_int().unwrap())
            .collect();
        assert_eq!(vals, vec![1, 2, 3]);
    }

    #[test]
    fn empty_inputs() {
        assert!(merge_by_timestamp(vec![]).is_empty());
        assert!(merge_by_timestamp(vec![vec![], vec![]]).is_empty());
        let one = merge_by_timestamp(vec![vec![], vec![u(1, 9, 1)]]);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn large_merge_is_sorted() {
        let streams: Vec<Vec<Update>> = (0..8u16)
            .map(|r| {
                (0..500u64)
                    .map(|i| u(r, i as i64, i * 7 + r as u64))
                    .collect()
            })
            .collect();
        let merged = merge_by_timestamp(streams);
        assert_eq!(merged.len(), 4000);
        assert!(merged.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn generic_merge_over_non_update_runs() {
        // The sharded executor's use case: (global index, payload) runs.
        let runs = vec![
            vec![(0u64, "a"), (3, "d"), (5, "f")],
            vec![(1u64, "b"), (2, "c"), (4, "e")],
        ];
        let merged = merge_ordered_runs(runs, |&(i, _)| i);
        let order: String = merged.iter().map(|&(_, s)| s).collect();
        assert_eq!(order, "abcdef");
    }

    #[test]
    fn generic_merge_is_stable_across_runs() {
        // Equal keys: run 0 wins, then run 1, preserving within-run order.
        let runs = vec![vec![(7u64, "x1"), (7, "x2")], vec![(7u64, "y1")]];
        let merged = merge_ordered_runs(runs, |&(i, _)| i);
        let order: Vec<&str> = merged.iter().map(|&(_, s)| s).collect();
        assert_eq!(order, vec!["x1", "x2", "y1"]);
    }
}
