//! Global-order merging of per-stream update sequences.
//!
//! §3.1: updates across all of `∆R_1, …, ∆R_n` *"have a global ordering on
//! input, e.g., based on arrival time. (The system could break ties if
//! needed.)"* [`merge_by_timestamp`] performs a stable k-way merge by
//! timestamp, breaking ties by stream index (lower relation id first) and then
//! by within-stream position, so the global order is deterministic.

use crate::update::Update;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct HeapEntry {
    ts: u64,
    stream: usize,
    pos: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for min-by-(ts, stream, pos).
        (other.ts, other.stream, other.pos).cmp(&(self.ts, self.stream, self.pos))
    }
}

/// Merge per-stream update sequences (each already sorted by timestamp) into
/// one globally ordered sequence.
///
/// # Panics
/// Panics (in debug builds) if an input sequence is not sorted by `ts`.
pub fn merge_by_timestamp(streams: Vec<Vec<Update>>) -> Vec<Update> {
    #[cfg(debug_assertions)]
    for s in &streams {
        debug_assert!(
            s.windows(2).all(|w| w[0].ts <= w[1].ts),
            "input stream not sorted by timestamp"
        );
    }
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut heap = BinaryHeap::with_capacity(streams.len());
    for (i, s) in streams.iter().enumerate() {
        if let Some(u) = s.first() {
            heap.push(HeapEntry {
                ts: u.ts,
                stream: i,
                pos: 0,
            });
        }
    }
    while let Some(HeapEntry { stream, pos, .. }) = heap.pop() {
        out.push(streams[stream][pos].clone());
        let next = pos + 1;
        if next < streams[stream].len() {
            heap.push(HeapEntry {
                ts: streams[stream][next].ts,
                stream,
                pos: next,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelId;
    use crate::tuple::TupleData;

    fn u(rel: u16, v: i64, ts: u64) -> Update {
        Update::insert(RelId(rel), TupleData::ints(&[v]), ts)
    }

    #[test]
    fn merges_in_timestamp_order() {
        let merged = merge_by_timestamp(vec![
            vec![u(0, 1, 0), u(0, 2, 10), u(0, 3, 20)],
            vec![u(1, 4, 5), u(1, 5, 15)],
        ]);
        let ts: Vec<u64> = merged.iter().map(|x| x.ts).collect();
        assert_eq!(ts, vec![0, 5, 10, 15, 20]);
    }

    #[test]
    fn ties_broken_by_stream_index() {
        let merged = merge_by_timestamp(vec![vec![u(0, 1, 7)], vec![u(1, 2, 7)], vec![u(2, 3, 7)]]);
        let rels: Vec<u16> = merged.iter().map(|x| x.rel.0).collect();
        assert_eq!(rels, vec![0, 1, 2]);
    }

    #[test]
    fn within_stream_order_preserved_on_equal_ts() {
        let merged = merge_by_timestamp(vec![vec![u(0, 1, 3), u(0, 2, 3), u(0, 3, 3)]]);
        let vals: Vec<i64> = merged
            .iter()
            .map(|x| x.data.get(0).as_int().unwrap())
            .collect();
        assert_eq!(vals, vec![1, 2, 3]);
    }

    #[test]
    fn empty_inputs() {
        assert!(merge_by_timestamp(vec![]).is_empty());
        assert!(merge_by_timestamp(vec![vec![], vec![]]).is_empty());
        let one = merge_by_timestamp(vec![vec![], vec![u(1, 9, 1)]]);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn large_merge_is_sorted() {
        let streams: Vec<Vec<Update>> = (0..8u16)
            .map(|r| {
                (0..500u64)
                    .map(|i| u(r, i as i64, i * 7 + r as u64))
                    .collect()
            })
            .collect();
        let merged = merge_by_timestamp(streams);
        assert_eq!(merged.len(), 4000);
        assert!(merged.windows(2).all(|w| w[0].ts <= w[1].ts));
    }
}
