//! A tiny textual query language for stream joins.
//!
//! Building a [`QuerySchema`] by hand means spelling out relation schemas and
//! `AttrRef` pairs; this module accepts the obvious SQL-ish one-liner
//! instead:
//!
//! ```text
//! R(A) JOIN S(A, B) ON R.A = S.A JOIN T(B) ON S.B = T.B
//! ```
//!
//! Grammar (case-insensitive keywords, `⋈` accepted for `JOIN`):
//!
//! ```text
//! query     := relation (join)*
//! join      := ("JOIN" | "⋈") relation "ON" predicate ("AND" predicate)*
//! relation  := ident "(" ident ("," ident)* ")"
//! predicate := ident "." ident "=" ident "." ident
//! ```
//!
//! Predicates may reference any relation declared so far. Errors carry the
//! offending token and a human-readable reason.

use crate::schema::{AttrRef, JoinPredicate, QuerySchema, RelationSchema};

/// Parse error with position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where the problem was detected.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Eq,
    Join,
    On,
    And,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer { src, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn next_tok(&mut self) -> Result<Option<(usize, Tok)>, ParseError> {
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len() && self.src[self.pos..].starts_with(char::is_whitespace) {
            self.pos += self.src[self.pos..].chars().next().unwrap().len_utf8();
        }
        if self.pos >= bytes.len() {
            return Ok(None);
        }
        let start = self.pos;
        let rest = &self.src[self.pos..];
        let c = rest.chars().next().unwrap();
        let tok = match c {
            '(' => {
                self.pos += 1;
                Tok::LParen
            }
            ')' => {
                self.pos += 1;
                Tok::RParen
            }
            ',' => {
                self.pos += 1;
                Tok::Comma
            }
            '.' => {
                self.pos += 1;
                Tok::Dot
            }
            '=' => {
                self.pos += 1;
                Tok::Eq
            }
            '⋈' => {
                self.pos += c.len_utf8();
                Tok::Join
            }
            c if c.is_alphanumeric() || c == '_' => {
                let end = rest
                    .char_indices()
                    .find(|(_, ch)| !(ch.is_alphanumeric() || *ch == '_'))
                    .map(|(i, _)| i)
                    .unwrap_or(rest.len());
                let word = &rest[..end];
                self.pos += end;
                match word.to_ascii_uppercase().as_str() {
                    "JOIN" => Tok::Join,
                    "ON" => Tok::On,
                    "AND" => Tok::And,
                    _ => Tok::Ident(word.to_string()),
                }
            }
            other => return Err(self.error(format!("unexpected character {other:?}"))),
        };
        Ok(Some((start, tok)))
    }
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    idx: usize,
    src_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.idx).map(|(_, t)| t)
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.idx)
            .map(|(o, _)| *o)
            .unwrap_or(self.src_len)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.offset(),
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.idx).map(|(_, t)| t.clone());
        self.idx += 1;
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.idx += 1;
                Ok(())
            }
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Ident(s)) => {
                self.idx += 1;
                Ok(s)
            }
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    fn relation(&mut self) -> Result<RelationSchema, ParseError> {
        let name = self.ident("relation name")?;
        self.expect(&Tok::LParen, "'('")?;
        let mut cols = vec![self.ident("column name")?];
        while self.peek() == Some(&Tok::Comma) {
            self.bump();
            cols.push(self.ident("column name")?);
        }
        self.expect(&Tok::RParen, "')'")?;
        let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
        Ok(RelationSchema::new(&name, &col_refs))
    }

    /// `rel.col` resolved against declared relations.
    fn attr(&mut self, rels: &[RelationSchema]) -> Result<AttrRef, ParseError> {
        let at = self.offset();
        let rel_name = self.ident("relation name")?;
        self.expect(&Tok::Dot, "'.'")?;
        let col_name = self.ident("column name")?;
        let rel_idx = rels
            .iter()
            .position(|r| r.name == rel_name)
            .ok_or(ParseError {
                message: format!("unknown relation {rel_name:?}"),
                offset: at,
            })?;
        let col = rels[rel_idx].col(&col_name).ok_or(ParseError {
            message: format!("relation {rel_name:?} has no column {col_name:?}"),
            offset: at,
        })?;
        Ok(AttrRef {
            rel: crate::schema::RelId(rel_idx as u16),
            col,
        })
    }
}

/// Parse a stream-join query. See the module docs for the grammar.
pub fn parse_query(src: &str) -> Result<QuerySchema, ParseError> {
    let mut lexer = Lexer::new(src);
    let mut toks = Vec::new();
    while let Some(t) = lexer.next_tok()? {
        toks.push(t);
    }
    let mut p = Parser {
        toks,
        idx: 0,
        src_len: src.len(),
    };

    let mut rels = vec![p.relation()?];
    let mut preds: Vec<JoinPredicate> = Vec::new();
    while p.peek().is_some() {
        p.expect(&Tok::Join, "JOIN")?;
        let rel = p.relation()?;
        if rels.iter().any(|r| r.name == rel.name) {
            return Err(p.error(format!("duplicate relation name {:?}", rel.name)));
        }
        rels.push(rel);
        p.expect(&Tok::On, "ON")?;
        loop {
            let at = p.offset();
            let left = p.attr(&rels)?;
            p.expect(&Tok::Eq, "'='")?;
            let right = p.attr(&rels)?;
            if left.rel == right.rel {
                return Err(ParseError {
                    message: "predicate must span two relations".into(),
                    offset: at,
                });
            }
            preds.push(JoinPredicate::new(left, right));
            if p.peek() == Some(&Tok::And) {
                p.bump();
            } else {
                break;
            }
        }
    }
    if rels.len() < 2 {
        return Err(p.error("a stream join needs at least two relations"));
    }
    Ok(QuerySchema::new(rels, preds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelId;

    #[test]
    fn parses_chain3() {
        let q = parse_query("R(A) JOIN S(A, B) ON R.A = S.A JOIN T(B) ON S.B = T.B").unwrap();
        assert_eq!(q.num_relations(), 3);
        assert_eq!(q.relation(RelId(0)).name, "R");
        assert_eq!(q.relation(RelId(1)).columns, vec!["A", "B"]);
        assert_eq!(q.num_equiv_classes(), 2);
        // Equivalent to the built-in chain3 (same classes, same structure).
        let builtin = QuerySchema::chain3();
        assert_eq!(q.predicates().len(), builtin.predicates().len());
    }

    #[test]
    fn bowtie_symbol_and_case_insensitivity() {
        let q = parse_query("flows(src) ⋈ dns(src, domain) on flows.src = dns.src").unwrap();
        assert_eq!(q.num_relations(), 2);
        assert_eq!(q.relation(RelId(1)).name, "dns");
    }

    #[test]
    fn multiple_predicates_with_and() {
        let q = parse_query("A(x, y) JOIN B(x, y) ON A.x = B.x AND A.y = B.y").unwrap();
        assert_eq!(q.predicates().len(), 2);
        assert_eq!(q.num_equiv_classes(), 2);
    }

    #[test]
    fn predicates_may_reference_earlier_relations() {
        let q = parse_query("R(a) JOIN S(b) ON R.a = S.b JOIN T(c) ON R.a = T.c").unwrap();
        assert_eq!(q.num_relations(), 3);
        // One equivalence class spanning all three.
        assert_eq!(q.num_equiv_classes(), 1);
    }

    #[test]
    fn error_unknown_relation() {
        let e = parse_query("R(a) JOIN S(b) ON R.a = X.b").unwrap_err();
        assert!(e.message.contains("unknown relation"), "{e}");
    }

    #[test]
    fn error_unknown_column() {
        let e = parse_query("R(a) JOIN S(b) ON R.z = S.b").unwrap_err();
        assert!(e.message.contains("no column"), "{e}");
    }

    #[test]
    fn error_same_relation_predicate() {
        let e = parse_query("R(a, b) JOIN S(c) ON R.a = R.b").unwrap_err();
        assert!(e.message.contains("span two relations"), "{e}");
    }

    #[test]
    fn error_duplicate_relation() {
        let e = parse_query("R(a) JOIN R(b) ON R.a = R.b").unwrap_err();
        assert!(e.message.contains("duplicate relation"), "{e}");
    }

    #[test]
    fn error_trailing_garbage_and_missing_pieces() {
        assert!(parse_query("R(a)").is_err(), "single relation");
        assert!(parse_query("R(a) JOIN").is_err());
        assert!(parse_query("R(a) JOIN S(b)").is_err(), "missing ON");
        assert!(
            parse_query("R(a) JOIN S(b) ON R.a S.b").is_err(),
            "missing ="
        );
        assert!(parse_query("R(a # b)").is_err(), "bad character");
        let e = parse_query("").unwrap_err();
        assert!(e.message.contains("relation name"));
    }

    #[test]
    fn error_positions_point_into_source() {
        let src = "R(a) JOIN S(b) ON R.a = X.b";
        let e = parse_query(src).unwrap_err();
        assert_eq!(&src[e.offset..e.offset + 1], "X");
    }
}
