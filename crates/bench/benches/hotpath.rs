//! Hot-path throughput and allocation-rate bench.
//!
//! Measures **host wall-clock** steady-state throughput (ns/update) and
//! heap allocations per update for the per-update execution path. Unlike
//! the figure experiments (which charge work to deterministic *virtual*
//! clocks to stay machine-independent), this bench deliberately reports
//! wall time: allocation and scheduling cost are exactly the things the
//! virtual cost model does not charge for, and the before/after comparison
//! is run on the same machine.
//!
//! Two scenario groups:
//!
//! * **hotpath** — the PR 4 acceptance scenarios on the paper's two
//!   canonical query shapes (`chain3`, the §7.2 default 3-way chain, and
//!   `star4`, the Figure 9 star with mixed multiplicity), each through a
//!   single [`AdaptiveJoinEngine`] and a 4-shard [`ShardedEngine`] at the
//!   shard_scaling chunk size. Merged into `BENCH_hotpath.json`.
//! * **shard** — the persistent-worker-runtime scenarios: chain3 at 1/2/4
//!   shards with 1024-update batches (the streaming SPSC pipeline), star4
//!   at 1/4 shards with 8-update batches (the inline small-batch path —
//!   star4 because every relation routes; chain3's broadcast relation
//!   duplicates its work on every shard, which would measure the query
//!   shape, not the dispatch path), and the 4-shard scoped-thread
//!   reference executor ([`acq::shard::reference::ScopedShardedEngine`])
//!   for an A/B against the spawn-per-batch model it replaced. The
//!   1-shard runs drive `ShardedEngine` with one shard — the
//!   shard_scaling convention — so shard-count ratios isolate
//!   routing/dispatch cost from the executor's fixed canonical-ordering
//!   tax; the hotpath group's 1shard scenarios keep the plain-engine
//!   floor on record. Merged into `BENCH_shard.json`.
//!
//! Results are merged under a section named by `--label <name>` (default
//! `current`; `baseline`/`scoped` sections are recorded once from the
//! pre-optimization layouts), so the files carry the perf trajectory
//! across PRs. `--smoke` runs a 1-iteration-scale sanity pass for CI,
//! recorded under the `smoke` section so real measurements survive it.
//! `--only hotpath|shard` runs one group and writes only its file; any
//! other `--only` substring filters scenarios without touching the JSON.

use acq::engine::{AdaptiveJoinEngine, EngineConfig, ReoptInterval, SelectionStrategy};
use acq::shard::reference::ScopedShardedEngine;
use acq::shard::{ShardConfig, ShardedEngine};
use acq_bench::report::{field_of, merge_label_section};
use acq_gen::column::ColumnGen;
use acq_gen::spec::{chain3_default, StreamSpec, Workload};
use acq_mjoin::plan::PlanOrders;
use acq_stream::{QuerySchema, Update};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Updates per ingestion batch for the hotpath group (matches the
/// shard_scaling bench); the shard group sets per-scenario chunk sizes.
const CHUNK: usize = 8192;

// ---------------------------------------------------------------------
// Counting allocator: every heap allocation in the process is tallied so
// the bench can report allocations per steady-state update.

struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOC_COUNT.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

// ---------------------------------------------------------------------
// Workloads

fn chain3_workload(total: usize) -> (QuerySchema, Vec<Update>) {
    (QuerySchema::chain3(), chain3_default(5, 100, 0xBEEF).generate(total))
}

fn star4_workload(total: usize) -> (QuerySchema, Vec<Update>) {
    let n = 4usize;
    let window = 60usize;
    let q = QuerySchema::star(n);
    let streams: Vec<StreamSpec> = (0..n as u16)
        .map(|r| {
            let mult = if (r as usize) < n / 2 { 1 } else { 5 };
            let join_col = ColumnGen::BlockRandom {
                domain: window as u64,
                repeat: mult,
                salt: 0xA5A5_0000 + r as u64,
            };
            StreamSpec::new(r, 1.0, window, vec![join_col, ColumnGen::seq()])
        })
        .collect();
    (q, Workload::new(streams, 0x5CA1E).generate(total))
}

fn config() -> EngineConfig {
    EngineConfig {
        selection: SelectionStrategy::Auto,
        reopt_interval: ReoptInterval::VirtualNs(2_000_000_000),
        ..Default::default()
    }
}

// ---------------------------------------------------------------------
// Measurement

#[derive(Clone, Copy)]
struct Measured {
    updates: usize,
    ns_per_update: f64,
    updates_per_sec: f64,
    allocs_per_update: f64,
    alloc_bytes_per_update: f64,
    deltas: u64,
}

/// Which executor a scenario drives.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// The plain single [`AdaptiveJoinEngine`] (the PR 4 scenarios; also
    /// the absolute floor no sharded run can beat — the sharded executor
    /// additionally pays for routing and canonical output order).
    Engine,
    /// `ShardedEngine` on the persistent worker runtime, at any shard
    /// count — 1-shard runs measure the executor's own dispatch overhead,
    /// the same convention as the shard_scaling bench.
    Runtime,
    /// The pre-runtime scoped-thread reference executor.
    Scoped,
}

enum Exec {
    // Boxed to keep the variants comparable in size (the engine is a large
    // flat struct; the sharded executors are mostly thread/ring handles).
    Single(Box<AdaptiveJoinEngine>),
    Sharded(Box<ShardedEngine>),
    Scoped(Box<ScopedShardedEngine>),
}

impl Exec {
    fn build(q: &QuerySchema, shards: usize, mode: Mode) -> Exec {
        let shard_cfg = ShardConfig {
            num_shards: shards,
            partition_class: None,
        };
        match mode {
            Mode::Engine => Exec::Single(Box::new(
                AdaptiveJoinEngine::with_config(q.clone(), PlanOrders::identity(q), config()),
            )),
            Mode::Runtime => Exec::Sharded(Box::new(ShardedEngine::with_config(
                q.clone(),
                PlanOrders::identity(q),
                config(),
                shard_cfg,
            ))),
            Mode::Scoped => Exec::Scoped(Box::new(ScopedShardedEngine::with_config(
                q.clone(),
                PlanOrders::identity(q),
                config(),
                shard_cfg,
            ))),
        }
    }

    fn feed(&mut self, updates: &[Update], chunk: usize) -> u64 {
        let mut deltas = 0u64;
        for chunk in updates.chunks(chunk) {
            deltas += match self {
                Exec::Single(e) => e.process_batch(chunk).len() as u64,
                Exec::Sharded(e) => e.process_batch(chunk).len() as u64,
                Exec::Scoped(e) => e.process_batch(chunk).len() as u64,
            };
        }
        deltas
    }
}

/// Warm the engine over a stream prefix (windows fill, plans settle), then
/// time the steady-state suffix.
fn run(q: &QuerySchema, updates: &[Update], shards: usize, mode: Mode, chunk: usize, warmup: usize) -> Measured {
    let mut e = Exec::build(q, shards, mode);
    let warmup = warmup.min(updates.len() / 2);
    let warm_deltas = e.feed(&updates[..warmup], chunk);
    std::hint::black_box(warm_deltas);
    let steady = &updates[warmup..];
    let (a0, b0) = alloc_snapshot();
    let t0 = Instant::now();
    let deltas = e.feed(steady, chunk);
    let elapsed = t0.elapsed();
    let (a1, b1) = alloc_snapshot();
    std::hint::black_box(deltas);
    let n = steady.len() as f64;
    // HOTPATH_COUNTERS=1: dump engine counters so per-update work (probes,
    // hits, misses) can be inspected when chasing regressions.
    if std::env::var_os("HOTPATH_COUNTERS").is_some() {
        if let Exec::Single(e) = &e {
            let c = e.counters();
            eprintln!(
                "counters: tuples={} outputs={} cache_hits={} cache_misses={} \
                 reopts={} ({:.3} hits/update, {:.4} misses/update)",
                c.tuples_processed,
                c.outputs_emitted,
                c.cache_hits,
                c.cache_misses,
                c.reoptimizations,
                c.cache_hits as f64 / c.tuples_processed as f64,
                c.cache_misses as f64 / c.tuples_processed as f64,
            );
        }
    }
    Measured {
        updates: steady.len(),
        ns_per_update: elapsed.as_nanos() as f64 / n,
        updates_per_sec: n / elapsed.as_secs_f64(),
        allocs_per_update: (a1 - a0) as f64 / n,
        alloc_bytes_per_update: (b1 - b0) as f64 / n,
        deltas,
    }
}

// ---------------------------------------------------------------------
// Bench-JSON output (shared helpers live in acq_bench::report)

fn scenario_json(m: &Measured) -> String {
    format!(
        "{{\n      \"updates\": {},\n      \"ns_per_update\": {:.1},\n      \
         \"updates_per_sec\": {:.0},\n      \"allocs_per_update\": {:.3},\n      \
         \"alloc_bytes_per_update\": {:.1},\n      \"deltas\": {}\n    }}",
        m.updates, m.ns_per_update, m.updates_per_sec, m.allocs_per_update,
        m.alloc_bytes_per_update, m.deltas
    )
}

fn write_bench_json(path: &str, label: &str, scenarios: &[(String, Measured)], smoke: bool) -> Vec<(String, String)> {
    let mut body = String::from("{\n");
    body.push_str(&format!("    \"smoke\": {smoke},\n"));
    for (i, (name, m)) in scenarios.iter().enumerate() {
        body.push_str(&format!("    \"{name}\": {}", scenario_json(m)));
        body.push_str(if i + 1 < scenarios.len() { ",\n" } else { "\n" });
    }
    body.push_str("  }");
    merge_label_section(path, label, body)
}

/// Print `name: a/b` when both scenario fields exist in `section`.
fn headline(section: &str, name: &str, num: &str, den: &str) {
    if let (Some(a), Some(b)) = (
        field_of(section, num, "ns_per_update"),
        field_of(section, den, "ns_per_update"),
    ) {
        println!("{name}: {:.2}x ({a:.0} vs {b:.0} ns/update)", a / b);
    }
}

// ---------------------------------------------------------------------

type WorkloadFn = fn(usize) -> (QuerySchema, Vec<Update>);

struct Scenario {
    group: &'static str,
    name: &'static str,
    gen: WorkloadFn,
    shards: usize,
    mode: Mode,
    chunk: usize,
}

const fn sc(
    group: &'static str,
    name: &'static str,
    gen: WorkloadFn,
    shards: usize,
    mode: Mode,
    chunk: usize,
) -> Scenario {
    Scenario {
        group,
        name,
        gen,
        shards,
        mode,
        chunk,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var_os("HOTPATH_SMOKE").is_some();
    let label = args
        .iter()
        .position(|a| a == "--label")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| std::env::var("BENCH_LABEL").ok())
        // Smoke numbers are not measurements: keep them out of "current"
        // unless a label is asked for explicitly.
        .unwrap_or_else(|| if smoke { "smoke" } else { "current" }.to_string());
    // `--only hotpath` / `--only shard` runs one whole group (its JSON is
    // written); any other substring filters scenarios without touching the
    // JSON — for quick A/B iterations and profiling single scenarios.
    let only = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let group_only = matches!(only.as_deref(), Some("hotpath") | Some("shard"));

    let (total, warmup) = if smoke { (3_000, 1_000) } else { (400_000, 50_000) };
    let scenarios: Vec<Scenario> = vec![
        sc("hotpath", "chain3/1shard", chain3_workload, 1, Mode::Engine, CHUNK),
        sc("hotpath", "chain3/4shard", chain3_workload, 4, Mode::Runtime, CHUNK),
        sc("hotpath", "star4/1shard", star4_workload, 1, Mode::Engine, CHUNK),
        sc("hotpath", "star4/4shard", star4_workload, 4, Mode::Runtime, CHUNK),
        sc("shard", "chain3/1shard/b1024", chain3_workload, 1, Mode::Runtime, 1024),
        sc("shard", "chain3/2shard/b1024", chain3_workload, 2, Mode::Runtime, 1024),
        sc("shard", "chain3/4shard/b1024", chain3_workload, 4, Mode::Runtime, 1024),
        sc("shard", "star4/1shard/b8", star4_workload, 1, Mode::Runtime, 8),
        sc("shard", "star4/4shard/b8", star4_workload, 4, Mode::Runtime, 8),
        sc("shard", "chain3/4shard/b1024/scoped", chain3_workload, 4, Mode::Scoped, 1024),
    ];

    println!(
        "hotpath bench: {} steady-state updates per scenario ({} warmup){}",
        total - warmup,
        warmup,
        if smoke { " [smoke]" } else { "" }
    );
    let mut results: Vec<(&'static str, String, Measured)> = Vec::new();
    for s in &scenarios {
        let selected = match only.as_deref() {
            None => true,
            Some(o) if group_only => s.group == o,
            Some(o) => s.name.contains(o),
        };
        if !selected {
            continue;
        }
        let (q, updates) = (s.gen)(total);
        let m = run(&q, &updates, s.shards, s.mode, s.chunk, warmup);
        println!(
            "{:>26}: {:>8.0} ns/update  {:>9.0} t/s  {:>7.2} allocs/update  \
             {:>8.0} B/update  ({} deltas)",
            s.name, m.ns_per_update, m.updates_per_sec, m.allocs_per_update,
            m.alloc_bytes_per_update, m.deltas
        );
        results.push((s.group, s.name.to_string(), m));
    }
    if only.is_some() && !group_only {
        return;
    }
    for (group, path) in [("hotpath", "BENCH_hotpath.json"), ("shard", "BENCH_shard.json")] {
        let group_results: Vec<(String, Measured)> = results
            .iter()
            .filter(|(g, _, _)| *g == group)
            .map(|(_, n, m)| (n.clone(), *m))
            .collect();
        if group_results.is_empty() {
            continue;
        }
        let sections = write_bench_json(path, &label, &group_results, smoke);
        let find = |l: &str| sections.iter().find(|(s, _)| s == l).map(|(_, b)| b.as_str());
        match group {
            "hotpath" => {
                // Headline ratio: single-shard chain3, current vs baseline.
                if let (Some(b), Some(c)) = (find("baseline"), find("current")) {
                    if let (Some(b_ns), Some(c_ns)) = (
                        field_of(b, "chain3/1shard", "ns_per_update"),
                        field_of(c, "chain3/1shard", "ns_per_update"),
                    ) {
                        println!(
                            "chain3/1shard speedup vs baseline: {:.2}x ({b_ns:.0} -> {c_ns:.0} ns/update)",
                            b_ns / c_ns
                        );
                    }
                }
            }
            _ => {
                if let Some(c) = find(&label) {
                    // Spawn-free batches vs per-batch scoped spawns, and the
                    // small-batch inline criterion (4shard/b8 must be ≤ 1x).
                    headline(c, "4shard/b1024 scoped vs persistent", "chain3/4shard/b1024/scoped", "chain3/4shard/b1024");
                    headline(c, "4shard/b8 vs 1shard/b8", "star4/4shard/b8", "star4/1shard/b8");
                }
            }
        }
    }
}
