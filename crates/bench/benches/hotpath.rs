//! Hot-path throughput and allocation-rate bench.
//!
//! Measures **host wall-clock** steady-state throughput (ns/update) and
//! heap allocations per update for the per-update execution path, on the
//! paper's two canonical query shapes:
//!
//! * `chain3` — the §7.2 default 3-way chain `R(A) ⋈ S(A,B) ⋈ T(B)`,
//!   int-only columns (the acceptance workload for the allocation-free
//!   hot path), and
//! * `star4` — the Figure 9 star join with mixed join-attribute
//!   multiplicity,
//!
//! each through a single [`AdaptiveJoinEngine`] and a 4-shard
//! [`ShardedEngine`]. Unlike the figure experiments (which charge work to
//! deterministic *virtual* clocks to stay machine-independent), this bench
//! deliberately reports wall time: allocation cost is exactly the thing the
//! virtual cost model does not charge for, and the before/after comparison
//! is run on the same machine.
//!
//! Results are merged into `BENCH_hotpath.json` under a section named by
//! `--label <name>` (default `current`; `baseline` is recorded once from
//! the pre-optimization layout), so the file carries the perf trajectory
//! across PRs. `--smoke` runs a 1-iteration-scale sanity pass for CI.

use acq::engine::{AdaptiveJoinEngine, EngineConfig, ReoptInterval, SelectionStrategy};
use acq::shard::{ShardConfig, ShardedEngine};
use acq_gen::column::ColumnGen;
use acq_gen::spec::{chain3_default, StreamSpec, Workload};
use acq_mjoin::plan::PlanOrders;
use acq_stream::{QuerySchema, Update};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Updates per ingestion batch (matches the shard_scaling bench).
const CHUNK: usize = 8192;

// ---------------------------------------------------------------------
// Counting allocator: every heap allocation in the process is tallied so
// the bench can report allocations per steady-state update.

struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOC_COUNT.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

// ---------------------------------------------------------------------
// Workloads

fn chain3_workload(total: usize) -> (QuerySchema, Vec<Update>) {
    (QuerySchema::chain3(), chain3_default(5, 100, 0xBEEF).generate(total))
}

fn star4_workload(total: usize) -> (QuerySchema, Vec<Update>) {
    let n = 4usize;
    let window = 60usize;
    let q = QuerySchema::star(n);
    let streams: Vec<StreamSpec> = (0..n as u16)
        .map(|r| {
            let mult = if (r as usize) < n / 2 { 1 } else { 5 };
            let join_col = ColumnGen::BlockRandom {
                domain: window as u64,
                repeat: mult,
                salt: 0xA5A5_0000 + r as u64,
            };
            StreamSpec::new(r, 1.0, window, vec![join_col, ColumnGen::seq()])
        })
        .collect();
    (q, Workload::new(streams, 0x5CA1E).generate(total))
}

fn config() -> EngineConfig {
    EngineConfig {
        selection: SelectionStrategy::Auto,
        reopt_interval: ReoptInterval::VirtualNs(2_000_000_000),
        ..Default::default()
    }
}

// ---------------------------------------------------------------------
// Measurement

struct Measured {
    updates: usize,
    ns_per_update: f64,
    updates_per_sec: f64,
    allocs_per_update: f64,
    alloc_bytes_per_update: f64,
    deltas: u64,
}

enum Exec {
    // Boxed to keep the variants comparable in size (the engine is a large
    // flat struct; the sharded executor is mostly thread handles).
    Single(Box<AdaptiveJoinEngine>),
    Sharded(ShardedEngine),
}

impl Exec {
    fn build(q: &QuerySchema, shards: usize) -> Exec {
        if shards == 1 {
            Exec::Single(Box::new(AdaptiveJoinEngine::with_config(
                q.clone(),
                PlanOrders::identity(q),
                config(),
            )))
        } else {
            Exec::Sharded(ShardedEngine::with_config(
                q.clone(),
                PlanOrders::identity(q),
                config(),
                ShardConfig {
                    num_shards: shards,
                    partition_class: None,
                },
            ))
        }
    }

    fn feed(&mut self, updates: &[Update]) -> u64 {
        let mut deltas = 0u64;
        for chunk in updates.chunks(CHUNK) {
            deltas += match self {
                Exec::Single(e) => e.process_batch(chunk).len() as u64,
                Exec::Sharded(e) => e.process_batch(chunk).len() as u64,
            };
        }
        deltas
    }
}

/// Warm the engine over a stream prefix (windows fill, plans settle), then
/// time the steady-state suffix.
fn run(q: &QuerySchema, updates: &[Update], shards: usize, warmup: usize) -> Measured {
    let mut e = Exec::build(q, shards);
    let warmup = warmup.min(updates.len() / 2);
    let warm_deltas = e.feed(&updates[..warmup]);
    std::hint::black_box(warm_deltas);
    let steady = &updates[warmup..];
    let (a0, b0) = alloc_snapshot();
    let t0 = Instant::now();
    let deltas = e.feed(steady);
    let elapsed = t0.elapsed();
    let (a1, b1) = alloc_snapshot();
    std::hint::black_box(deltas);
    let n = steady.len() as f64;
    // HOTPATH_COUNTERS=1: dump engine counters so per-update work (probes,
    // hits, misses) can be inspected when chasing regressions.
    if std::env::var_os("HOTPATH_COUNTERS").is_some() {
        if let Exec::Single(e) = &e {
            let c = e.counters();
            eprintln!(
                "counters: tuples={} outputs={} cache_hits={} cache_misses={} \
                 reopts={} ({:.3} hits/update, {:.4} misses/update)",
                c.tuples_processed,
                c.outputs_emitted,
                c.cache_hits,
                c.cache_misses,
                c.reoptimizations,
                c.cache_hits as f64 / c.tuples_processed as f64,
                c.cache_misses as f64 / c.tuples_processed as f64,
            );
        }
    }
    Measured {
        updates: steady.len(),
        ns_per_update: elapsed.as_nanos() as f64 / n,
        updates_per_sec: n / elapsed.as_secs_f64(),
        allocs_per_update: (a1 - a0) as f64 / n,
        alloc_bytes_per_update: (b1 - b0) as f64 / n,
        deltas,
    }
}

// ---------------------------------------------------------------------
// BENCH_hotpath.json merging (no JSON dep: the file format is our own, so
// balanced-brace extraction of the other labels' sections is safe).

/// Extract the `"label": { ... }` object text for every top-level label in
/// a previously written `BENCH_hotpath.json`.
fn existing_sections(text: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    // Skip the outermost '{'.
    let Some(start) = text.find('{') else {
        return out;
    };
    let mut i = start + 1;
    while i < bytes.len() {
        // Find the next quoted label at depth 1.
        let Some(q0) = text[i..].find('"').map(|p| i + p) else {
            break;
        };
        let Some(q1) = text[q0 + 1..].find('"').map(|p| q0 + 1 + p) else {
            break;
        };
        let label = text[q0 + 1..q1].to_string();
        let Some(o) = text[q1..].find('{').map(|p| q1 + p) else {
            break;
        };
        let mut depth = 0usize;
        let mut end = None;
        for (k, &c) in bytes.iter().enumerate().skip(o) {
            match c {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(k);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(end) = end else { break };
        out.push((label, text[o..=end].to_string()));
        i = end + 1;
    }
    out
}

fn scenario_json(m: &Measured) -> String {
    format!(
        "{{\n      \"updates\": {},\n      \"ns_per_update\": {:.1},\n      \
         \"updates_per_sec\": {:.0},\n      \"allocs_per_update\": {:.3},\n      \
         \"alloc_bytes_per_update\": {:.1},\n      \"deltas\": {}\n    }}",
        m.updates, m.ns_per_update, m.updates_per_sec, m.allocs_per_update,
        m.alloc_bytes_per_update, m.deltas
    )
}

/// Pull a numeric field out of one of our own scenario objects.
fn field_of(section: &str, scenario: &str, field: &str) -> Option<f64> {
    let s0 = section.find(&format!("\"{scenario}\""))?;
    let rest = &section[s0..];
    let f0 = rest.find(&format!("\"{field}\""))?;
    let after = &rest[f0..];
    let colon = after.find(':')?;
    let tail = after[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn write_bench_json(label: &str, scenarios: &[(String, Measured)], smoke: bool) {
    let path = "BENCH_hotpath.json";
    let mut sections: Vec<(String, String)> = std::fs::read_to_string(path)
        .map(|t| existing_sections(&t))
        .unwrap_or_default();
    let mut body = String::from("{\n");
    body.push_str(&format!("    \"smoke\": {smoke},\n"));
    for (i, (name, m)) in scenarios.iter().enumerate() {
        body.push_str(&format!("    \"{name}\": {}", scenario_json(m)));
        body.push_str(if i + 1 < scenarios.len() { ",\n" } else { "\n" });
    }
    body.push_str("  }");
    match sections.iter_mut().find(|(l, _)| l == label) {
        Some((_, s)) => *s = body,
        None => sections.push((label.to_string(), body)),
    }
    let mut out = String::from("{\n");
    for (i, (l, s)) in sections.iter().enumerate() {
        out.push_str(&format!("  \"{l}\": {s}"));
        out.push_str(if i + 1 < sections.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("warning: cannot write {path}: {e}");
        return;
    }
    println!("wrote {path} (section \"{label}\")");
    // Headline ratio: single-shard chain3 throughput, current vs baseline.
    let base = sections.iter().find(|(l, _)| l == "baseline");
    let cur = sections.iter().find(|(l, _)| l == "current");
    if let (Some((_, b)), Some((_, c))) = (base, cur) {
        if let (Some(b_ns), Some(c_ns)) = (
            field_of(b, "chain3/1shard", "ns_per_update"),
            field_of(c, "chain3/1shard", "ns_per_update"),
        ) {
            println!(
                "chain3/1shard speedup vs baseline: {:.2}x ({b_ns:.0} -> {c_ns:.0} ns/update)",
                b_ns / c_ns
            );
        }
    }
}

// ---------------------------------------------------------------------

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var_os("HOTPATH_SMOKE").is_some();
    let label = args
        .iter()
        .position(|a| a == "--label")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| std::env::var("BENCH_LABEL").ok())
        .unwrap_or_else(|| "current".to_string());
    // `--only <substr>` runs matching scenarios without touching the JSON —
    // for quick A/B iterations and profiling single scenarios.
    let only = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let (total, warmup) = if smoke { (3_000, 1_000) } else { (400_000, 50_000) };
    type WorkloadFn = fn(usize) -> (QuerySchema, Vec<Update>);
    let scenarios: Vec<(&str, WorkloadFn, usize)> = vec![
        ("chain3/1shard", chain3_workload, 1),
        ("chain3/4shard", chain3_workload, 4),
        ("star4/1shard", star4_workload, 1),
        ("star4/4shard", star4_workload, 4),
    ];

    println!(
        "hotpath bench: {} steady-state updates per scenario ({} warmup){}",
        total - warmup,
        warmup,
        if smoke { " [smoke]" } else { "" }
    );
    let mut results = Vec::new();
    for (name, gen, shards) in scenarios {
        if only.as_deref().is_some_and(|o| !name.contains(o)) {
            continue;
        }
        let (q, updates) = gen(total);
        let m = run(&q, &updates, shards, warmup);
        println!(
            "{name:>14}: {:>8.0} ns/update  {:>9.0} t/s  {:>7.2} allocs/update  \
             {:>8.0} B/update  ({} deltas)",
            m.ns_per_update, m.updates_per_sec, m.allocs_per_update,
            m.alloc_bytes_per_update, m.deltas
        );
        results.push((name.to_string(), m));
    }
    if only.is_none() {
        write_bench_json(&label, &results, smoke);
    }
}
