//! Criterion microbenchmarks for the A-Caching building blocks: cache-store
//! operations (§3.3), Bloom miss-probability estimation (Appendix A),
//! candidate enumeration (§4.2), each offline selection algorithm (§4.4 /
//! Appendix B), the simplex LP solver, and end-to-end engine throughput
//! with and without caches.

use acq::cache::CacheStore;
use acq::candidates::{enumerate_candidates, EnumerationConfig};
use acq::engine::{AdaptiveJoinEngine, CacheMode, EngineConfig};
use acq::select::{
    solve_exhaustive, solve_greedy, solve_randomized, solve_recursive, CacheChoice,
    SelectionInstance,
};
use acq_gen::spec::chain3_default;
use acq_lp::LinearProgram;
use acq_mjoin::mjoin::MJoin;
use acq_mjoin::plan::{PipelineOrder, PlanOrders};
use acq_sketch::bloom::MissProbEstimator;
use acq_stream::tuple::make_ref;
use acq_stream::{Composite, QuerySchema, RelId, TupleData, Value};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn comp(id: u64) -> Composite {
    Composite::unit(make_ref(
        RelId(1),
        id,
        TupleData::ints(&[id as i64, 2 * id as i64]),
    ))
}

fn bench_cache_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_store");
    // Hit path: direct-mapped store with all keys resident.
    let mut store = CacheStore::new(1024);
    for k in 0..512i64 {
        store.create(
            vec![Value::Int(k)],
            vec![(comp(k as u64), 1), (comp(k as u64 + 1000), 1)],
        );
    }
    let mut k = 0i64;
    g.bench_function("probe_hit", |b| {
        b.iter(|| {
            k = (k + 1) % 512;
            black_box(store.probe(&[Value::Int(k)]).is_some())
        })
    });
    g.bench_function("probe_miss", |b| {
        b.iter(|| {
            k = (k + 1) % 512;
            black_box(store.probe(&[Value::Int(k + 100_000)]).is_some())
        })
    });
    g.bench_function("create_with_two_values", |b| {
        b.iter(|| {
            k = (k + 1) % 4096;
            store.create(
                vec![Value::Int(k)],
                vec![(comp(k as u64), 1), (comp(k as u64 + 9), 1)],
            );
        })
    });
    g.bench_function("maintenance_insert_delete", |b| {
        b.iter(|| {
            k = (k + 1) % 512;
            store.insert(&[Value::Int(k)], comp(77_000), 1);
            store.delete(&[Value::Int(k)], &comp(77_000), 1);
        })
    });
    g.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let mut g = c.benchmark_group("miss_prob_estimation");
    g.bench_function("observe", |b| {
        let mut est = MissProbEstimator::new(600, 8);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(est.observe(acq_sketch::fx_hash_u64(i % 300)))
        })
    });
    g.finish();
}

fn bench_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("candidate_enumeration");
    for n in [4usize, 6, 9] {
        let q = QuerySchema::star(n);
        let orders = PlanOrders::identity(&q);
        g.bench_function(format!("star{n}_identity"), |b| {
            b.iter(|| {
                black_box(enumerate_candidates(&q, &orders, &EnumerationConfig::default()).len())
            })
        });
    }
    g.finish();
}

/// A selection instance shaped like the star(n) identity candidate family.
fn selection_instance(n: usize) -> SelectionInstance {
    let q = QuerySchema::star(n);
    let orders = PlanOrders::identity(&q);
    let cands = enumerate_candidates(&q, &orders, &EnumerationConfig::default());
    let op_proc: Vec<Vec<f64>> = (0..n).map(|i| vec![100.0 + i as f64; n - 1]).collect();
    let num_groups = acq::candidates::num_groups(&cands);
    let choices = cands
        .iter()
        .enumerate()
        .map(|(id, cand)| {
            let covered: f64 = (cand.start..=cand.end)
                .map(|j| op_proc[cand.pipeline.0 as usize][j])
                .sum();
            CacheChoice {
                id,
                pipeline: cand.pipeline.0 as usize,
                start: cand.start,
                end: cand.end,
                benefit: covered * 0.6,
                proc: covered * 0.4,
                group: cand.group,
            }
        })
        .collect();
    SelectionInstance {
        op_proc,
        choices,
        group_cost: vec![25.0; num_groups],
    }
}

fn bench_selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("offline_selection");
    for n in [5usize, 7, 9] {
        let inst = selection_instance(n);
        let m = inst.choices.len();
        if m <= 21 {
            // Exhaustive is O(2^m) worst case; keep the benched sizes sane.
            g.bench_function(format!("exhaustive_m{m}"), |b| {
                b.iter(|| black_box(solve_exhaustive(&inst).len()))
            });
        }
        g.bench_function(format!("greedy_m{m}"), |b| {
            b.iter(|| black_box(solve_greedy(&inst).len()))
        });
        g.bench_function(format!("recursive_m{m}"), |b| {
            b.iter(|| black_box(solve_recursive(&inst).len()))
        });
        g.bench_function(format!("randomized_m{m}"), |b| {
            b.iter(|| black_box(solve_randomized(&inst, 42).len()))
        });
    }
    g.finish();
}

fn bench_lp(c: &mut Criterion) {
    c.bench_function("simplex_20x30", |b| {
        b.iter_batched(
            || {
                let mut lp = LinearProgram::minimize((0..20).map(|i| 1.0 + i as f64).collect());
                for r in 0..30 {
                    let coeffs: Vec<f64> = (0..20)
                        .map(|i| ((i * 7 + r * 3) % 5) as f64 + 0.5)
                        .collect();
                    lp.add_ge(coeffs, 10.0 + r as f64);
                }
                lp
            },
            |lp| black_box(lp.solve()),
            BatchSize::SmallInput,
        )
    });
}

fn bench_engine_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_throughput");
    g.sample_size(10);
    let q = QuerySchema::chain3();
    let updates = chain3_default(5, 100, 11).generate(20_000);
    let orders = || {
        PlanOrders::new(vec![
            PipelineOrder {
                stream: RelId(0),
                order: vec![RelId(1), RelId(2)],
            },
            PipelineOrder {
                stream: RelId(1),
                order: vec![RelId(0), RelId(2)],
            },
            PipelineOrder {
                stream: RelId(2),
                order: vec![RelId(1), RelId(0)],
            },
        ])
    };
    g.bench_function("mjoin_plain", |b| {
        b.iter_batched(
            || MJoin::new(q.clone(), orders()),
            |mut m| {
                for u in &updates {
                    black_box(m.process(u).len());
                }
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("engine_forced_cache", |b| {
        b.iter_batched(
            || {
                let cfg = EngineConfig {
                    mode: CacheMode::Forced(vec![(RelId(2), vec![RelId(0), RelId(1)])]),
                    ..Default::default()
                };
                AdaptiveJoinEngine::with_config(q.clone(), orders(), cfg)
            },
            |mut e| {
                for u in &updates {
                    black_box(e.process(u).len());
                }
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("engine_adaptive", |b| {
        b.iter_batched(
            || AdaptiveJoinEngine::with_config(q.clone(), orders(), EngineConfig::default()),
            |mut e| {
                for u in &updates {
                    black_box(e.process(u).len());
                }
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cache_store,
    bench_bloom,
    bench_enumeration,
    bench_selection,
    bench_lp,
    bench_engine_throughput
);
criterion_main!(benches);
