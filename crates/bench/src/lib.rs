//! # acq-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§7). One
//! binary per figure (`fig06_hit_prob` … `fig13_memory`), a Table 2 /
//! Figure 11 runner, ablation drivers, and an `all_experiments` aggregator
//! that writes CSVs into `EXPERIMENTS_OUTPUT/`.
//!
//! The metric mirrors the paper: *"the maximum load the system can handle, in
//! terms of the number of tuples processed per second"* — here tuples per
//! **virtual** second on the deterministic cost clock (see
//! `acq-mjoin::clock`), measured over the steady-state portion of a run
//! (warmup excluded). All overheads — profiling, Bloom maintenance,
//! re-optimization, cache maintenance — are charged to the same clock, as in
//! the paper ("these numbers include all types of overheads").

pub mod plans;
pub mod report;
pub mod runner;

pub use plans::{best_mjoin_orders, PlanKind};
pub use report::{write_csv, Series, Table};
pub use runner::{run_engine, run_mjoin, run_xjoin, RunStats};
