//! Drive executors over update streams and measure steady-state rates.

use acq::engine::AdaptiveJoinEngine;
use acq_mjoin::mjoin::MJoin;
use acq_mjoin::xjoin::XJoin;
use acq_stream::Update;

/// Outcome of one measured run.
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Updates processed in the measured window.
    pub tuples: u64,
    /// Virtual seconds elapsed in the measured window.
    pub secs: f64,
    /// Tuples per virtual second (the paper's y-axis).
    pub rate: f64,
    /// Result deltas emitted during the whole run.
    pub outputs: u64,
    /// Cache hits (engines only).
    pub cache_hits: u64,
    /// Cache misses (engines only).
    pub cache_misses: u64,
    /// Cache memory bytes at end of run (engines only).
    pub cache_bytes: usize,
}

impl RunStats {
    fn from_window(tuples: u64, ns: u64) -> RunStats {
        let secs = ns as f64 / 1e9;
        RunStats {
            tuples,
            secs,
            rate: if secs > 0.0 {
                tuples as f64 / secs
            } else {
                0.0
            },
            outputs: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_bytes: 0,
        }
    }
}

/// Run an [`AdaptiveJoinEngine`] over `updates`, measuring the post-warmup
/// window (`warmup_frac` of the stream is excluded from rate measurement).
pub fn run_engine(
    engine: &mut AdaptiveJoinEngine,
    updates: &[Update],
    warmup_frac: f64,
) -> RunStats {
    let warm = (updates.len() as f64 * warmup_frac.clamp(0.0, 0.95)) as usize;
    for u in &updates[..warm] {
        engine.process(u);
    }
    let t0 = engine.counters().tuples_processed;
    let ns0 = engine.core().now_ns();
    for u in &updates[warm..] {
        engine.process(u);
    }
    let t1 = engine.counters().tuples_processed;
    let ns1 = engine.core().now_ns();
    let mut s = RunStats::from_window(t1 - t0, ns1 - ns0);
    s.outputs = engine.counters().outputs_emitted;
    s.cache_hits = engine.counters().cache_hits;
    s.cache_misses = engine.counters().cache_misses;
    s.cache_bytes = engine.cache_memory_bytes();
    s
}

/// Run a plain [`MJoin`] baseline the same way.
pub fn run_mjoin(m: &mut MJoin, updates: &[Update], warmup_frac: f64) -> RunStats {
    let warm = (updates.len() as f64 * warmup_frac.clamp(0.0, 0.95)) as usize;
    for u in &updates[..warm] {
        m.process(u);
    }
    let t0 = m.tuples_processed();
    let ns0 = m.core().now_ns();
    for u in &updates[warm..] {
        m.process(u);
    }
    let mut s = RunStats::from_window(m.tuples_processed() - t0, m.core().now_ns() - ns0);
    s.outputs = m.outputs_emitted();
    s
}

/// Run an [`XJoin`] baseline the same way.
pub fn run_xjoin(x: &mut XJoin, updates: &[Update], warmup_frac: f64) -> RunStats {
    let warm = (updates.len() as f64 * warmup_frac.clamp(0.0, 0.95)) as usize;
    for u in &updates[..warm] {
        x.process(u);
    }
    let t0 = x.tuples_processed();
    let ns0 = x.core().now_ns();
    for u in &updates[warm..] {
        x.process(u);
    }
    let mut s = RunStats::from_window(x.tuples_processed() - t0, x.core().now_ns() - ns0);
    s.outputs = x.outputs_emitted();
    s.cache_bytes = x.materialized_bytes();
    s
}

/// Time-series measurement for adaptivity experiments (Figure 12): sample
/// the instantaneous rate every `sample_every` updates. `x_of` extracts the
/// x-axis value (e.g. cumulative ∆S tuples) from the update count.
pub fn run_engine_timeseries(
    engine: &mut AdaptiveJoinEngine,
    updates: &[Update],
    sample_every: usize,
) -> Vec<(u64, f64)> {
    let mut out = Vec::new();
    let mut last_t = 0u64;
    let mut last_ns = 0u64;
    for (i, u) in updates.iter().enumerate() {
        engine.process(u);
        if (i + 1) % sample_every == 0 {
            let t = engine.counters().tuples_processed;
            let ns = engine.core().now_ns();
            let dt = t - last_t;
            let dns = ns - last_ns;
            if dns > 0 {
                out.push((i as u64 + 1, dt as f64 * 1e9 / dns as f64));
            }
            last_t = t;
            last_ns = ns;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use acq::engine::{CacheMode, EngineConfig};
    use acq_gen::spec::chain3_default;
    use acq_mjoin::plan::PlanOrders;
    use acq_stream::QuerySchema;

    #[test]
    fn engine_and_mjoin_runners_measure() {
        let q = QuerySchema::chain3();
        let w = chain3_default(3, 30, 5).generate(600);
        let cfg = EngineConfig {
            mode: CacheMode::None,
            ..Default::default()
        };
        let mut e = AdaptiveJoinEngine::with_config(q.clone(), PlanOrders::identity(&q), cfg);
        let se = run_engine(&mut e, &w, 0.2);
        assert!(se.rate > 0.0);
        assert!(se.tuples > 0);

        let mut m = MJoin::new(q.clone(), PlanOrders::identity(&q));
        let sm = run_mjoin(&mut m, &w, 0.2);
        assert!(sm.rate > 0.0);
        assert_eq!(se.outputs, sm.outputs, "same deltas regardless of executor");
    }

    #[test]
    fn timeseries_produces_samples() {
        let q = QuerySchema::chain3();
        let w = chain3_default(2, 20, 9).generate(500);
        let cfg = EngineConfig {
            mode: CacheMode::None,
            ..Default::default()
        };
        let mut e = AdaptiveJoinEngine::with_config(q.clone(), PlanOrders::identity(&q), cfg);
        let ts = run_engine_timeseries(&mut e, &w, 100);
        assert!(ts.len() >= 4);
        assert!(ts.iter().all(|&(_, r)| r > 0.0));
    }
}
