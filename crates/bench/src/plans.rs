//! Plan construction helpers for the §7.3 plan-spectrum comparison.

use acq::engine::{CacheMode, EngineConfig, ReoptInterval, SelectionStrategy};
use acq::EnumerationConfig;
use acq_mjoin::ordering::GreedyOrderer;
use acq_mjoin::plan::PlanOrders;
use acq_mjoin::stats::WorkloadStats;
use acq_stream::QuerySchema;

/// The four plan families compared in Figure 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// `M`: best MJoin (A-Greedy ordering), no caches.
    MJoin,
    /// `X`: best XJoin (exhaustive tree search).
    XJoin,
    /// `P`: caching plan restricted to the prefix invariant (§4).
    PrefixCaching,
    /// `G`: caching plan with globally-consistent caches (§6, `m = 6`).
    GlobalCaching,
}

impl PlanKind {
    /// Paper label.
    pub fn label(&self) -> &'static str {
        match self {
            PlanKind::MJoin => "M",
            PlanKind::XJoin => "X",
            PlanKind::PrefixCaching => "P",
            PlanKind::GlobalCaching => "G",
        }
    }
}

/// Best MJoin orders for the given workload statistics (the paper's `M` is
/// "chosen using the A-Greedy algorithm from \[5\]", §7.3).
pub fn best_mjoin_orders(query: &QuerySchema, stats: &WorkloadStats) -> PlanOrders {
    GreedyOrderer::default().plan(query, stats)
}

/// Assemble a [`WorkloadStats`] from explicit pieces.
pub fn make_stats(rates: &[f64], windows: &[usize], sel: Vec<Vec<f64>>) -> WorkloadStats {
    WorkloadStats {
        rates: rates.to_vec(),
        sizes: windows.iter().map(|&w| w as f64).collect(),
        sel,
    }
}

/// Engine configuration for the `P` plan: adaptive prefix-invariant caching
/// with exhaustive selection ("both P and G are chosen by exhaustive
/// search", §7.3).
pub fn config_p() -> EngineConfig {
    EngineConfig {
        selection: SelectionStrategy::Exhaustive,
        reopt_interval: ReoptInterval::VirtualNs(2_000_000_000),
        mode: CacheMode::Adaptive,
        ..Default::default()
    }
}

/// Engine configuration for the `G` plan: `P` plus globally-consistent
/// candidates under the §6 quota `m`.
pub fn config_g(m: usize) -> EngineConfig {
    EngineConfig {
        enumeration: EnumerationConfig {
            enable_global: true,
            max_candidates: m,
            ..Default::default()
        },
        ..config_p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acq_stream::RelId;

    #[test]
    fn labels() {
        assert_eq!(PlanKind::MJoin.label(), "M");
        assert_eq!(PlanKind::GlobalCaching.label(), "G");
    }

    #[test]
    fn best_orders_validate() {
        let q = QuerySchema::star(4);
        let stats = WorkloadStats::uniform(4, 100.0);
        let orders = best_mjoin_orders(&q, &stats);
        orders.validate(&q).unwrap();
    }

    #[test]
    fn configs_differ_only_in_enumeration() {
        let p = config_p();
        let g = config_g(6);
        assert!(!p.enumeration.enable_global);
        assert!(g.enumeration.enable_global);
        assert_eq!(g.enumeration.max_candidates, 6);
        assert_eq!(p.selection, SelectionStrategy::Exhaustive);
    }

    #[test]
    fn make_stats_shapes() {
        let s = make_stats(&[1.0, 2.0], &[10, 20], vec![vec![0.0, 0.1], vec![0.1, 0.0]]);
        assert_eq!(s.sizes[1], 20.0);
        assert!((s.fanout(RelId(0), RelId(1)) - 2.0).abs() < 1e-12);
    }
}
