//! Figure 6 — varying cache hit probability.
//!
//! Query `R(A) ⋈_A S(A,B) ⋈_B T(B)` with sequential domains; the
//! multiplicity `r` of `T.B` varies 1..10 (each B value arrives `r` times in
//! `∆T`, so the forced R⋈S cache in `∆T`'s pipeline hits with probability
//! ≈ `1 − 1/r`, plus window-deletion re-probes). `rate(∆T) = r × rate(∆R)`.
//! Reports the absolute rates of the cached plan and the best MJoin, plus
//! the paper's ratio (MJoin ÷ cached).

use acq::engine::{AdaptiveJoinEngine, CacheMode, EngineConfig};
use acq_bench::report::{write_csv, write_snapshot, Table};
use acq_bench::runner::{run_engine, run_mjoin};
use acq_gen::spec::chain3_default;
use acq_mjoin::mjoin::MJoin;
use acq_mjoin::plan::{PipelineOrder, PlanOrders};
use acq_stream::{QuerySchema, RelId};

fn orders() -> PlanOrders {
    // ∆T joins S then R (the cached R⋈S segment); {R,S} satisfies the prefix
    // invariant because ∆R starts with S and ∆S starts with R (Figure 3's
    // shape, rotated to the ∆T cache of §7.2).
    PlanOrders::new(vec![
        PipelineOrder {
            stream: RelId(0),
            order: vec![RelId(1), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(1),
            order: vec![RelId(0), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(2),
            order: vec![RelId(1), RelId(0)],
        },
    ])
}

fn main() {
    let window = 100usize;
    let total = 30_000usize;
    let q = QuerySchema::chain3();

    let rs: Vec<u64> = (1..=10).collect();
    let mut cached_rates = Vec::new();
    let mut mjoin_rates = Vec::new();
    let mut ratios = Vec::new();
    let mut hit_fracs = Vec::new();
    let mut last_snapshot = None;

    for &r in &rs {
        let updates = chain3_default(r, window, 0xF160 + r).generate(total);

        // Force the single candidate cache, as the paper does ("there is only
        // one candidate cache, which we force to be chosen").
        let cfg = EngineConfig {
            mode: CacheMode::Forced(vec![(RelId(2), vec![RelId(0), RelId(1)])]),
            ..Default::default()
        };
        let mut engine = AdaptiveJoinEngine::with_config(q.clone(), orders(), cfg);
        assert_eq!(engine.used_caches().len(), 1, "forced cache must exist");
        let sc = run_engine(&mut engine, &updates, 0.2);

        let mut mjoin = MJoin::new(q.clone(), orders());
        let sm = run_mjoin(&mut mjoin, &updates, 0.2);

        last_snapshot = Some(engine.telemetry_snapshot());
        cached_rates.push(sc.rate);
        mjoin_rates.push(sm.rate);
        ratios.push(sm.rate / sc.rate);
        let probes = sc.cache_hits + sc.cache_misses;
        hit_fracs.push(if probes > 0 {
            sc.cache_hits as f64 / probes as f64
        } else {
            0.0
        });
    }

    let mut t = Table::new(
        "Figure 6: varying cache hit probability (multiplicity of T.B)",
        "multiplicity",
        rs.iter().map(|&r| r as f64).collect(),
    );
    t.push_series("With caches (t/s)", cached_rates);
    t.push_series("MJoin (t/s)", mjoin_rates);
    t.push_series("ratio MJoin/cached", ratios);
    t.push_series("observed hit frac", hit_fracs);
    print!("{}", t.render());
    if let Some(p) = write_csv(&t, "fig06_hit_prob") {
        eprintln!("wrote {}", p.display());
    }
    // Snapshot of the last (r = 10, highest hit probability) run.
    if let Some(p) = last_snapshot.and_then(|s| write_snapshot(&s, "fig06_hit_prob")) {
        eprintln!("wrote {}", p.display());
    }
}
