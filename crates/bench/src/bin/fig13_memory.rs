//! Figure 13 — adaptivity to the amount of memory available for join
//! subresults.
//!
//! Sample point D8 (uniform rates, pairwise selectivity 0.001). MJoin keeps
//! no subresults — flat line. The best XJoin needs its full materialization
//! (reported at its observed requirement; infeasible below). Adaptive
//! caching degrades smoothly: the §5 allocator gives pages to caches by net
//! benefit per byte, shrinking or dropping caches as the budget tightens.

use acq::engine::AdaptiveJoinEngine;
use acq::MemoryConfig;
use acq_bench::plans::{best_mjoin_orders, config_g, make_stats};
use acq_bench::report::{write_csv, write_snapshot, Table};
use acq_bench::runner::{run_engine, run_mjoin, run_xjoin};
use acq_gen::table2::sample_point;
use acq_mjoin::mjoin::MJoin;
use acq_mjoin::xjoin::{best_tree, XJoin};
use acq_stream::QuerySchema;

fn main() {
    let window = 200usize;
    let total = 150_000usize;
    let q = QuerySchema::star(4);
    let point = sample_point("D8").unwrap();
    let updates = point.workload(window, 0xF1D).generate(total);
    let stats = make_stats(&point.rates, &[window; 4], point.sel_matrix());
    let orders = best_mjoin_orders(&q, &stats);

    // MJoin: memory-insensitive baseline.
    let mut m = MJoin::new(q.clone(), orders.clone());
    let sm = run_mjoin(&mut m, &updates, 0.25);

    // Best XJoin: measure its rate and actual materialization requirement.
    let tree = best_tree(&q, &stats, None).expect("tree");
    let mut x = XJoin::new(q.clone(), tree);
    let sx = run_xjoin(&mut x, &updates, 0.25);
    let xjoin_kb = x.materialized_bytes() as f64 / 1024.0;

    let budgets_kb: Vec<f64> = vec![
        0.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0,
    ];
    let mut adaptive_rates = Vec::new();
    let mut adaptive_mem = Vec::new();
    let mut last_snapshot = None;
    for (i, &kb) in budgets_kb.iter().enumerate() {
        let cfg = acq::engine::EngineConfig {
            memory: MemoryConfig {
                page_bytes: 1024,
                budget_bytes: Some((kb * 1024.0) as usize),
            },
            ..config_g(6)
        };
        let mut e = AdaptiveJoinEngine::with_config(q.clone(), orders.clone(), cfg);
        let s = run_engine(&mut e, &updates, 0.25);
        eprintln!(
            "budget {kb} KB: rate {:.0}, used {:?}, cache mem {} B (seed {i})",
            s.rate,
            e.used_caches(),
            e.cache_memory_bytes()
        );
        adaptive_rates.push(s.rate);
        adaptive_mem.push(e.cache_memory_bytes() as f64 / 1024.0);
        last_snapshot = Some(e.telemetry_snapshot());
    }
    // Snapshot of the largest-budget run (memory.granted_bytes per group).
    if let Some(p) = last_snapshot.and_then(|s| write_snapshot(&s, "fig13_memory")) {
        eprintln!("wrote {}", p.display());
    }

    let mut t = Table::new(
        &format!(
            "Figure 13: adaptivity to memory (D8; XJoin needs ~{xjoin_kb:.1} KB, rate {:.0}; MJoin flat at {:.0})",
            sx.rate, sm.rate
        ),
        "budget KB",
        budgets_kb.clone(),
    );
    t.push_series("Adaptive caching (t/s)", adaptive_rates);
    t.push_series("MJoin (t/s)", vec![sm.rate; budgets_kb.len()]);
    t.push_series(
        "XJoin (t/s, needs full mem)",
        budgets_kb
            .iter()
            .map(|&kb| if kb >= xjoin_kb { sx.rate } else { 0.0 })
            .collect(),
    );
    t.push_series("cache mem used KB", adaptive_mem);
    print!("{}", t.render());
    if let Some(p) = write_csv(&t, "fig13_memory") {
        eprintln!("wrote {}", p.display());
    }
}
