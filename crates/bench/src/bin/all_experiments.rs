//! Run every figure/table reproduction in sequence, writing CSVs into
//! `EXPERIMENTS_OUTPUT/`. Invokes the sibling figure binaries from the same
//! build directory.

use std::process::Command;

const FIGURES: &[&str] = &[
    "fig06_hit_prob",
    "fig07_selectivity",
    "fig08_update_probe",
    "fig09_num_joins",
    "fig10_join_cost",
    "fig11_plan_spectrum",
    "fig12_adaptivity",
    "fig13_memory",
];

fn main() {
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("exe dir");
    let mut failures = Vec::new();
    for fig in FIGURES {
        println!("\n──────── running {fig} ────────");
        let status = Command::new(dir.join(fig)).status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("{fig} failed: {other:?}");
                failures.push(*fig);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall experiments complete; CSVs in EXPERIMENTS_OUTPUT/");
    } else {
        eprintln!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}
