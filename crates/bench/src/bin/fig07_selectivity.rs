//! Figure 7 — varying join selectivity (multiplicity) in ∆T's pipeline.
//!
//! The number of `R ⋈ S` tuples joining each `∆T` tuple varies 0..4. Values
//! cycle over a fixed domain (windows sized to cover exactly one cycle) so
//! the match probability is set purely by multiplicities, independent of
//! arrival rates: integer selectivities via `S` multiplicity `m` (each
//! A/B value appears in `m` S tuples), 0.5 via stride-2 S values (T probes
//! odd values in vain), 0 via disjoint domains. `T.B` keeps multiplicity 5.
//! The paper's observation: caching wins across the whole range, least near
//! selectivity 1 (hits save little there, and misses insert little).

use acq::engine::{AdaptiveJoinEngine, CacheMode, EngineConfig};
use acq_bench::report::{write_csv, Table};
use acq_bench::runner::{run_engine, run_mjoin};
use acq_gen::column::ColumnGen;
use acq_gen::spec::{StreamSpec, Workload};
use acq_mjoin::mjoin::MJoin;
use acq_mjoin::plan::{PipelineOrder, PlanOrders};
use acq_stream::{QuerySchema, RelId};

const DOMAIN: u64 = 100;

fn orders() -> PlanOrders {
    PlanOrders::new(vec![
        PipelineOrder {
            stream: RelId(0),
            order: vec![RelId(1), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(1),
            order: vec![RelId(0), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(2),
            order: vec![RelId(1), RelId(0)],
        },
    ])
}

fn cyc(mult: u64, stride: u64, offset: i64, domain: u64) -> ColumnGen {
    ColumnGen::Seq {
        multiplicity: mult,
        stride,
        offset,
        domain,
    }
}

/// Build the workload for one target ∆T selectivity.
fn workload(sel: f64, seed: u64) -> Workload {
    let r = 5u64; // T.B multiplicity (default)
    let (s_cols, s_window) = if sel == 0.0 {
        // T.B still matches S (the ∆T pipeline does real work), but S.A is
        // disjoint from R.A, so zero R⋈S tuples join any ∆T tuple — the
        // cached (empty) entries skip the whole wasted segment.
        (
            vec![cyc(1, 1, -1_000_000_000, DOMAIN), cyc(1, 1, 0, DOMAIN)],
            DOMAIN as usize,
        )
    } else if sel < 1.0 {
        // S covers only even values; T probes all → half match.
        (
            vec![cyc(1, 2, 0, DOMAIN / 2), cyc(1, 2, 0, DOMAIN / 2)],
            (DOMAIN / 2) as usize,
        )
    } else {
        // Each value appears in `sel` S tuples.
        let m = sel as u64;
        (
            vec![cyc(m, 1, 0, DOMAIN), cyc(m, 1, 0, DOMAIN)],
            (DOMAIN * m) as usize,
        )
    };
    Workload::new(
        vec![
            StreamSpec::new(0, 1.0, DOMAIN as usize, vec![cyc(1, 1, 0, DOMAIN)]),
            StreamSpec::new(1, 1.0, s_window, s_cols),
            StreamSpec::new(
                2,
                r as f64,
                (DOMAIN * r) as usize,
                vec![cyc(r, 1, 0, DOMAIN)],
            ),
        ],
        seed,
    )
}

fn main() {
    let total = 30_000usize;
    let q = QuerySchema::chain3();
    let sels = [0.0, 0.5, 1.0, 2.0, 3.0, 4.0];

    let mut cached = Vec::new();
    let mut mjoin = Vec::new();
    let mut ratios = Vec::new();
    for (i, &sel) in sels.iter().enumerate() {
        let updates = workload(sel, 0xF170 + i as u64).generate(total);
        let cfg = EngineConfig {
            mode: CacheMode::Forced(vec![(RelId(2), vec![RelId(0), RelId(1)])]),
            ..Default::default()
        };
        let mut engine = AdaptiveJoinEngine::with_config(q.clone(), orders(), cfg);
        let sc = run_engine(&mut engine, &updates, 0.2);
        let mut m = MJoin::new(q.clone(), orders());
        let sm = run_mjoin(&mut m, &updates, 0.2);
        cached.push(sc.rate);
        mjoin.push(sm.rate);
        ratios.push(sm.rate / sc.rate);
    }

    let mut t = Table::new(
        "Figure 7: varying join selectivity for T tuples",
        "selectivity",
        sels.to_vec(),
    );
    t.push_series("With caches (t/s)", cached);
    t.push_series("MJoin (t/s)", mjoin);
    t.push_series("ratio MJoin/cached", ratios);
    print!("{}", t.render());
    if let Some(p) = write_csv(&t, "fig07_selectivity") {
        eprintln!("wrote {}", p.display());
    }
}
