//! Figure 8 — varying the cache-update to cache-probe rate ratio.
//!
//! The forced R⋈S cache in ∆T's pipeline is probed at `rate(∆T)` and updated
//! at `rate(∆R) + rate(∆S)`. The x-axis is `rate(R⋈S updates) / rate(∆T)`,
//! swept 0.25..4 by scaling R's and S's arrival rates. The paper finds
//! caching degrades with update rate but stays ahead even past parity.

use acq::engine::{AdaptiveJoinEngine, CacheMode, EngineConfig};
use acq_bench::report::{write_csv, Table};
use acq_bench::runner::{run_engine, run_mjoin};
use acq_gen::column::ColumnGen;
use acq_gen::spec::{StreamSpec, Workload};
use acq_mjoin::mjoin::MJoin;
use acq_mjoin::plan::{PipelineOrder, PlanOrders};
use acq_stream::{QuerySchema, RelId};

fn orders() -> PlanOrders {
    PlanOrders::new(vec![
        PipelineOrder {
            stream: RelId(0),
            order: vec![RelId(1), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(1),
            order: vec![RelId(0), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(2),
            order: vec![RelId(1), RelId(0)],
        },
    ])
}

fn main() {
    let window = 100usize;
    let total = 30_000usize;
    let r_mult = 5u64;
    let q = QuerySchema::chain3();
    let xs = [0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0];

    let mut cached = Vec::new();
    let mut mjoin = Vec::new();
    let mut ratios = Vec::new();
    for (i, &x) in xs.iter().enumerate() {
        // rate(∆T) fixed at 1; R and S each at x/2 so their combined update
        // rate is x × rate(∆T). Values cycle over a fixed domain so match
        // probabilities are rate-independent.
        let rs_rate: f64 = (x / 2.0_f64).max(0.01);
        let cyc = |mult: u64| ColumnGen::Seq {
            multiplicity: mult,
            stride: 1,
            offset: 0,
            domain: window as u64,
        };
        let w = Workload::new(
            vec![
                StreamSpec::new(0, rs_rate, window, vec![cyc(1)]),
                StreamSpec::new(1, rs_rate, window, vec![cyc(1), cyc(1)]),
                StreamSpec::new(2, 1.0, window * r_mult as usize, vec![cyc(r_mult)]),
            ],
            0xF180 + i as u64,
        );
        let updates = w.generate(total);

        let cfg = EngineConfig {
            mode: CacheMode::Forced(vec![(RelId(2), vec![RelId(0), RelId(1)])]),
            ..Default::default()
        };
        let mut engine = AdaptiveJoinEngine::with_config(q.clone(), orders(), cfg);
        let sc = run_engine(&mut engine, &updates, 0.2);
        let mut m = MJoin::new(q.clone(), orders());
        let sm = run_mjoin(&mut m, &updates, 0.2);
        cached.push(sc.rate);
        mjoin.push(sm.rate);
        ratios.push(sm.rate / sc.rate);
    }

    let mut t = Table::new(
        "Figure 8: varying update-to-probe rate ratio",
        "rate(RjoinS)/rate(T)",
        xs.to_vec(),
    );
    t.push_series("With caches (t/s)", cached);
    t.push_series("MJoin (t/s)", mjoin);
    t.push_series("ratio MJoin/cached", ratios);
    print!("{}", t.render());
    if let Some(p) = write_csv(&t, "fig08_update_probe") {
        eprintln!("wrote {}", p.display());
    }
}
