//! Figure 12 — adaptivity to a changing stream rate.
//!
//! 3-way join `R(A) ⋈ S(A,B) ⋈ T(B)`; initially `rate(∆T) = 5×` the others
//! (the §7.2 default), so the static plan `T ⋈ (R ⋈ S)` — an R⋈S cache in
//! ∆T's pipeline — is optimal. A burst then multiplies `rate(∆R)` by 20 and
//! persists, making `R ⋈ (T ⋈ S)` — an S⋈T cache in ∆R's pipeline — the
//! winner. The adaptive engine (A-Caching with globally-consistent caches
//! and I = 10,000 tuples) must converge to each regime's best plan.
//!
//! x-axis: cumulative ∆S arrivals (thousands); y: instantaneous
//! tuple-processing rate.

use acq::engine::{AdaptiveJoinEngine, CacheMode, EngineConfig, ReoptInterval, SelectionStrategy};
use acq::EnumerationConfig;
use acq_bench::report::{write_csv, write_snapshot, Table};
use acq_gen::column::ColumnGen;
use acq_gen::spec::{Burst, StreamSpec, Workload};
use acq_mjoin::plan::{PipelineOrder, PlanOrders};
use acq_stream::{Op, QuerySchema, RelId, Update};

const DOMAIN: u64 = 100;

fn cyc(mult: u64) -> ColumnGen {
    ColumnGen::Seq {
        multiplicity: mult,
        stride: 1,
        offset: 0,
        domain: DOMAIN,
    }
}

/// The workload: cyclic domains (so the burst changes load, not match
/// alignment), burst ×20 on ∆R after `burst_at` generated elements.
fn workload(burst_at: u64, seed: u64) -> Workload {
    Workload::new(
        vec![
            StreamSpec::new(0, 1.0, DOMAIN as usize, vec![cyc(1)]),
            StreamSpec::new(1, 1.0, DOMAIN as usize, vec![cyc(1), cyc(1)]),
            StreamSpec::new(2, 5.0, (DOMAIN * 5) as usize, vec![cyc(5)]),
        ],
        seed,
    )
    .with_burst(Burst {
        rel: RelId(0),
        start_after_elements: burst_at,
        end_after_elements: u64::MAX,
        factor: 20.0,
    })
}

/// Orders making the R⋈S segment cacheable in ∆T's pipeline.
fn orders_t_rs() -> PlanOrders {
    PlanOrders::new(vec![
        PipelineOrder {
            stream: RelId(0),
            order: vec![RelId(1), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(1),
            order: vec![RelId(0), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(2),
            order: vec![RelId(1), RelId(0)],
        },
    ])
}

/// Orders making the S⋈T segment cacheable in ∆R's pipeline.
fn orders_r_st() -> PlanOrders {
    PlanOrders::new(vec![
        PipelineOrder {
            stream: RelId(0),
            order: vec![RelId(1), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(1),
            order: vec![RelId(2), RelId(0)],
        },
        PipelineOrder {
            stream: RelId(2),
            order: vec![RelId(1), RelId(0)],
        },
    ])
}

/// Run one engine over the updates, sampling (∆S count, rate) per bucket of
/// `sample_s` ∆S arrivals.
fn run_sampled(
    engine: &mut AdaptiveJoinEngine,
    updates: &[Update],
    sample_s: u64,
) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    let mut s_count = 0u64;
    let mut next_sample = sample_s;
    let mut last_t = 0u64;
    let mut last_ns = 0u64;
    for u in updates {
        engine.process(u);
        if u.rel == RelId(1) && u.op == Op::Insert {
            s_count += 1;
            if s_count >= next_sample {
                next_sample += sample_s;
                let t = engine.counters().tuples_processed;
                let ns = engine.core().now_ns();
                if ns > last_ns {
                    out.push((
                        s_count as f64 / 1000.0,
                        (t - last_t) as f64 * 1e9 / (ns - last_ns) as f64,
                    ));
                }
                last_t = t;
                last_ns = ns;
            }
        }
    }
    out
}

fn main() {
    // ∆S is 1/7 of arrivals pre-burst; burst at 100k ∆S tuples ≈ 700k
    // elements. Run through 160k ∆S tuples.
    let burst_at_elems = 700_000u64;
    let total_elems = 1_500_000usize;
    let sample_s = 5_000u64;
    let q = QuerySchema::chain3();
    let updates = workload(burst_at_elems, 0xF1C).generate(total_elems);
    eprintln!("{} updates generated", updates.len());

    // Static plan 1: T ⋈ (R ⋈ S).
    let cfg1 = EngineConfig {
        mode: CacheMode::Forced(vec![(RelId(2), vec![RelId(0), RelId(1)])]),
        ..Default::default()
    };
    let mut e1 = AdaptiveJoinEngine::with_config(q.clone(), orders_t_rs(), cfg1);
    let ts1 = run_sampled(&mut e1, &updates, sample_s);

    // Static plan 2: R ⋈ (T ⋈ S).
    let cfg2 = EngineConfig {
        mode: CacheMode::Forced(vec![(RelId(0), vec![RelId(1), RelId(2)])]),
        ..Default::default()
    };
    let mut e2 = AdaptiveJoinEngine::with_config(q.clone(), orders_r_st(), cfg2);
    let ts2 = run_sampled(&mut e2, &updates, sample_s);

    // Adaptive caching (I = 10,000 tuples, globally-consistent caches on).
    let cfg3 = EngineConfig {
        reopt_interval: ReoptInterval::Tuples(10_000),
        selection: SelectionStrategy::Exhaustive,
        enumeration: EnumerationConfig {
            enable_global: true,
            max_candidates: 6,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut e3 = AdaptiveJoinEngine::with_config(q.clone(), orders_t_rs(), cfg3);
    let ts3 = run_sampled(&mut e3, &updates, sample_s);
    eprintln!(
        "adaptive: reopts {} demotions {} final caches {:?}",
        e3.counters().reoptimizations,
        e3.counters().demotions,
        e3.used_caches()
    );

    let len = ts1.len().min(ts2.len()).min(ts3.len());
    let mut t = Table::new(
        "Figure 12: adaptivity to changing stream rate (burst ×20 on ∆R)",
        "kS tuples",
        ts1[..len].iter().map(|&(x, _)| x).collect(),
    );
    t.push_series(
        "T join (R join S)",
        ts1[..len].iter().map(|&(_, y)| y).collect(),
    );
    t.push_series(
        "R join (T join S)",
        ts2[..len].iter().map(|&(_, y)| y).collect(),
    );
    t.push_series(
        "Adaptive caching",
        ts3[..len].iter().map(|&(_, y)| y).collect(),
    );
    print!("{}", t.render());
    if let Some(p) = write_csv(&t, "fig12_adaptivity") {
        eprintln!("wrote {}", p.display());
    }
    // Telemetry of the adaptive run: the cache lifecycle (scored → added →
    // hits/misses → dropped/retained) across the rate burst, virtual-time
    // stamped — the end-to-end adaptivity trace.
    if let Some(p) = write_snapshot(&e3.telemetry_snapshot(), "fig12_adaptivity") {
        eprintln!("wrote {}", p.display());
    }
}
