//! Figure 11 + Table 2 — performance of the four plan families at sample
//! points D1–D8.
//!
//! 4-way star join `R(A) ⋈ S(A) ⋈ T(A) ⋈ U(A)`; per point, relative rates
//! and pairwise selectivities from Table 2 (realized with the fitted
//! hot-value generator). Plans: `M` (best MJoin via A-Greedy), `X` (best
//! XJoin via exhaustive tree search), `P` (A-Caching with the prefix
//! invariant, exhaustive selection), `G` (with globally-consistent caches,
//! m = 6). All plans get unconstrained memory (§7.3).

use acq::engine::AdaptiveJoinEngine;
use acq_bench::plans::{best_mjoin_orders, config_g, config_p, make_stats};
use acq_bench::report::{write_csv, Table};
use acq_bench::runner::{run_engine, run_mjoin, run_xjoin};
use acq_gen::table2::TABLE2;
use acq_mjoin::mjoin::MJoin;
use acq_mjoin::xjoin::{best_tree, XJoin};
use acq_stream::QuerySchema;

fn main() {
    let window = 200usize;
    let total = 120_000usize;
    let q = QuerySchema::star(4);

    let mut m_rates = Vec::new();
    let mut x_rates = Vec::new();
    let mut p_rates = Vec::new();
    let mut g_rates = Vec::new();

    for (i, point) in TABLE2.iter().enumerate() {
        let workload = point.workload(window, 0xF1B0 + i as u64);
        let updates = workload.generate(total);
        let stats = make_stats(&point.rates, &[window; 4], point.sel_matrix());
        let orders = best_mjoin_orders(&q, &stats);

        // M: best MJoin.
        let mut m = MJoin::new(q.clone(), orders.clone());
        let sm = run_mjoin(&mut m, &updates, 0.25);

        // X: best XJoin by exhaustive tree search over estimated cost.
        let tree = best_tree(&q, &stats, None).expect("some tree");
        let mut x = XJoin::new(q.clone(), tree.clone());
        let sx = run_xjoin(&mut x, &updates, 0.25);

        // P: prefix-invariant A-Caching.
        let mut pe = AdaptiveJoinEngine::with_config(q.clone(), orders.clone(), config_p());
        let sp = run_engine(&mut pe, &updates, 0.25);

        // G: + globally-consistent caches (m = 6).
        let mut ge = AdaptiveJoinEngine::with_config(q.clone(), orders.clone(), config_g(6));
        let sg = run_engine(&mut ge, &updates, 0.25);

        eprintln!(
            "{}: M {:.0} X {:.0} (tree {tree}, {} rows) P {:.0} ({:?}) G {:.0} ({:?})",
            point.name,
            sm.rate,
            sx.rate,
            x.materialized_rows(),
            sp.rate,
            pe.used_caches(),
            sg.rate,
            ge.used_caches()
        );
        m_rates.push(sm.rate);
        x_rates.push(sx.rate);
        p_rates.push(sp.rate);
        g_rates.push(sg.rate);
    }

    let mut t = Table::new(
        "Figure 11 / Table 2: plan spectrum at sample points D1-D8",
        "point",
        (1..=TABLE2.len()).map(|i| i as f64).collect(),
    );
    t.push_series("M (t/s)", m_rates);
    t.push_series("X (t/s)", x_rates);
    t.push_series("P (t/s)", p_rates);
    t.push_series("G (t/s)", g_rates);
    print!("{}", t.render());
    if let Some(p) = write_csv(&t, "fig11_plan_spectrum") {
        eprintln!("wrote {}", p.display());
    }
}
