//! Shard scaling — parallel speedup of the sharded A-Caching executor.
//!
//! The Figure 9 star workload (§7.2: n-way star equijoin, join-attribute
//! multiplicity 1 for half the streams and 5 for the rest) processed by
//! [`ShardedEngine`] at 1, 2, 4, and 8 shards versus a plain single
//! [`AdaptiveJoinEngine`].
//!
//! Throughput is the **virtual-cost rate per wall-clock second**: updates
//! processed per second of the executor's elapsed clock on the virtual cost
//! substrate. Every experiment in this repo charges work to deterministic
//! virtual clocks precisely to be machine-independent (see
//! `acq-mjoin::clock`); for the sharded executor the elapsed clock is the
//! **parallel critical path** — the slowest shard's virtual time
//! (`ClockAggregate::max_ns`) — since shards run concurrently and the
//! merge completes when the last one does. Speedup is therefore
//! `single-engine virtual time / critical-path virtual time`, which equals
//! shard count divided by load imbalance. Host wall-clock seconds are also
//! reported for reference, but they measure the CI container (often a
//! single core), not the executor.
//!
//! Before measuring, the merged sharded output is checked bit-identical to
//! the single-engine output (both in canonical per-update group order) on a
//! prefix of the stream.

use acq::engine::{AdaptiveJoinEngine, EngineConfig, ReoptInterval, SelectionStrategy};
use acq::shard::{canonicalize_group, ShardConfig, ShardedEngine};
use acq_bench::report::{write_csv, write_snapshot, Table};
use acq_gen::column::ColumnGen;
use acq_gen::spec::{StreamSpec, Workload};
use acq_mjoin::oracle::canonical_rows;
use acq_mjoin::plan::PlanOrders;
use acq_stream::{Op, QuerySchema, Update};
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// Updates per ingestion batch: large enough to amortize the per-batch
/// thread fan-out, small enough to bound delta buffering.
const CHUNK: usize = 8192;

fn fig9_star_workload(n: usize, window: usize, total: usize) -> (QuerySchema, Vec<Update>) {
    let q = QuerySchema::star(n);
    let streams: Vec<StreamSpec> = (0..n as u16)
        .map(|r| {
            let mult = if (r as usize) < n / 2 { 1 } else { 5 };
            let join_col = ColumnGen::BlockRandom {
                domain: window as u64,
                repeat: mult,
                salt: 0xA5A5_0000 + r as u64,
            };
            StreamSpec::new(r, 1.0, window, vec![join_col, ColumnGen::seq()])
        })
        .collect();
    (q, Workload::new(streams, 0x5CA1E).generate(total))
}

fn config() -> EngineConfig {
    EngineConfig {
        selection: SelectionStrategy::Auto,
        reopt_interval: ReoptInterval::VirtualNs(2_000_000_000),
        ..Default::default()
    }
}

/// Order-sensitive fingerprint of a canonicalized delta group.
fn fold_group(h: &mut std::collections::hash_map::DefaultHasher, group: &[(Op, acq_stream::Composite)], n: usize) {
    for (op, c) in group {
        h.write_i64(op.sign());
        canonical_rows(c, n).hash(h);
    }
}

/// Assert the sharded merge reproduces the single-engine delta stream
/// bit-for-bit (canonical group order on both sides) over a stream prefix.
fn check_bit_identical(q: &QuerySchema, updates: &[Update], shards: usize) {
    let n = q.num_relations();
    let mut single = AdaptiveJoinEngine::with_config(q.clone(), PlanOrders::identity(q), config());
    let mut sharded = ShardedEngine::with_config(
        q.clone(),
        PlanOrders::identity(q),
        config(),
        ShardConfig {
            num_shards: shards,
            partition_class: None,
        },
    );
    let mut hs = std::collections::hash_map::DefaultHasher::new();
    let mut hp = std::collections::hash_map::DefaultHasher::new();
    let mut count_s = 0u64;
    let mut count_p = 0u64;
    for chunk in updates.chunks(CHUNK) {
        for mut group in single.process_batch_grouped(chunk) {
            canonicalize_group(&mut group, n);
            count_s += group.len() as u64;
            fold_group(&mut hs, &group, n);
        }
        for group in sharded.process_batch_grouped(chunk) {
            count_p += group.len() as u64;
            fold_group(&mut hp, &group, n);
        }
    }
    assert_eq!(count_s, count_p, "delta counts diverged at {shards} shards");
    assert_eq!(
        hs.finish(),
        hp.finish(),
        "delta fingerprints diverged at {shards} shards"
    );
    println!(
        "output check: {count_s} deltas bit-identical at {shards} shards over {} updates",
        updates.len()
    );
}

struct Measured {
    /// Elapsed executor clock: single-engine virtual time, or the parallel
    /// critical path (slowest shard) for the sharded engine.
    elapsed_secs: f64,
    /// Total virtual work performed across all shards.
    total_virtual_secs: f64,
    /// Host wall-clock seconds (reference only; machine-dependent).
    host_wall_secs: f64,
    /// Updates per elapsed virtual second.
    rate: f64,
    imbalance: f64,
    /// End-of-run telemetry: the engine's snapshot, or the canonical
    /// cross-shard merge for the sharded executor.
    snapshot: acq::TelemetrySnapshot,
}

fn run_single(q: &QuerySchema, updates: &[Update]) -> Measured {
    let mut e = AdaptiveJoinEngine::with_config(q.clone(), PlanOrders::identity(q), config());
    let t0 = Instant::now();
    let mut emitted = 0usize;
    for chunk in updates.chunks(CHUNK) {
        emitted += e.process_batch(chunk).len();
    }
    let wall = t0.elapsed().as_secs_f64();
    std::hint::black_box(emitted);
    let vsecs = e.core().now_ns() as f64 / 1e9;
    Measured {
        elapsed_secs: vsecs,
        total_virtual_secs: vsecs,
        host_wall_secs: wall,
        rate: updates.len() as f64 / vsecs,
        imbalance: 1.0,
        snapshot: e.telemetry_snapshot(),
    }
}

fn run_sharded(q: &QuerySchema, updates: &[Update], shards: usize) -> Measured {
    let mut e = ShardedEngine::with_config(
        q.clone(),
        PlanOrders::identity(q),
        config(),
        ShardConfig {
            num_shards: shards,
            partition_class: None,
        },
    );
    let t0 = Instant::now();
    let mut emitted = 0usize;
    for chunk in updates.chunks(CHUNK) {
        emitted += e.process_batch(chunk).len();
    }
    let wall = t0.elapsed().as_secs_f64();
    std::hint::black_box(emitted);
    let agg = e.clock_aggregate();
    Measured {
        elapsed_secs: agg.critical_path_secs(),
        total_virtual_secs: agg.total_secs(),
        host_wall_secs: wall,
        rate: updates.len() as f64 / agg.critical_path_secs(),
        imbalance: agg.imbalance(),
        snapshot: e.telemetry_snapshot(),
    }
}

fn main() {
    let n = 5usize;
    let window = 60usize;
    let total = 250_000usize;
    let shard_counts = [1usize, 2, 4, 8];

    let (q, updates) = fig9_star_workload(n, window, total);
    println!(
        "workload: {n}-way star, window {window}, {} updates",
        updates.len()
    );

    // Determinism/equality gate before any timing.
    check_bit_identical(&q, &updates[..updates.len().min(60_000)], 4);

    let base = run_single(&q, &updates);
    println!(
        "single engine: {:.2} elapsed virtual s ({:.2} host wall s) → {:.0} t/s",
        base.elapsed_secs, base.host_wall_secs, base.rate
    );

    let mut elapsed = Vec::new();
    let mut total_work = Vec::new();
    let mut wall = Vec::new();
    let mut rates = Vec::new();
    let mut speedups = Vec::new();
    let mut imbalances = Vec::new();
    for &s in &shard_counts {
        let m = run_sharded(&q, &updates, s);
        let speedup = m.rate / base.rate;
        // Cross-shard merged telemetry for the headline 4-shard point; the
        // single-engine snapshot rides along for counter comparison (the
        // star query routes every update, so counter totals must match).
        if s == 4 {
            if let Some(p) = write_snapshot(&m.snapshot, "shard_scaling_4shard") {
                eprintln!("wrote {}", p.display());
            }
            if let Some(p) = write_snapshot(&base.snapshot, "shard_scaling_single") {
                eprintln!("wrote {}", p.display());
            }
        }
        println!(
            "{s} shards: critical path {:.2} virtual s, total work {:.2} virtual s \
             ({:.2} host wall s) → {:.0} t/s ({speedup:.2}x, imbalance {:.2})",
            m.elapsed_secs, m.total_virtual_secs, m.host_wall_secs, m.rate, m.imbalance
        );
        elapsed.push(m.elapsed_secs);
        total_work.push(m.total_virtual_secs);
        wall.push(m.host_wall_secs);
        rates.push(m.rate);
        speedups.push(speedup);
        imbalances.push(m.imbalance);
    }

    let four = shard_counts.iter().position(|&s| s == 4).unwrap();
    if speedups[four] >= 2.0 {
        println!("PASS: 4-shard speedup {:.2}x >= 2x", speedups[four]);
    } else {
        eprintln!("WARN: 4-shard speedup {:.2}x < 2x target", speedups[four]);
    }

    let mut t = Table::new(
        "Shard scaling: virtual-cost rate per wall-clock second",
        "shards",
        shard_counts.iter().map(|&s| s as f64).collect(),
    );
    t.push_series("critical path (virtual s)", elapsed);
    t.push_series("total work (virtual s)", total_work);
    t.push_series("host wall secs", wall);
    t.push_series("throughput (t/s)", rates);
    t.push_series("speedup vs single", speedups);
    t.push_series("imbalance (max/mean)", imbalances);
    print!("{}", t.render());
    if let Some(p) = write_csv(&t, "shard_scaling") {
        eprintln!("wrote {}", p.display());
    }
}
