//! Ablations over A-Caching's design knobs (DESIGN.md):
//!
//! * statistics window `W` (paper default 10),
//! * re-optimization trigger threshold `p` (paper: 20%, §4.5c),
//! * profiling stride (sampling overhead vs. statistics freshness),
//! * direct-mapped store size (collision evictions vs. memory).
//!
//! Each ablation runs the Figure 12 burst workload (the harshest test of
//! adaptivity) and reports steady-state rates before and after the burst,
//! plus how often the re-optimizer actually ran.

use acq::engine::{AdaptiveJoinEngine, CacheMode, EngineConfig, ReoptInterval, SelectionStrategy};
use acq::EnumerationConfig;
use acq_bench::report::{write_csv, Table};
use acq_gen::column::ColumnGen;
use acq_gen::spec::{Burst, StreamSpec, Workload};
use acq_mjoin::plan::{PipelineOrder, PlanOrders};
use acq_stream::{QuerySchema, RelId, Update};

fn workload() -> Vec<Update> {
    let cyc = |mult: u64| ColumnGen::Seq {
        multiplicity: mult,
        stride: 1,
        offset: 0,
        domain: 100,
    };
    Workload::new(
        vec![
            StreamSpec::new(0, 1.0, 100, vec![cyc(1)]),
            StreamSpec::new(1, 1.0, 100, vec![cyc(1), cyc(1)]),
            StreamSpec::new(2, 5.0, 500, vec![cyc(5)]),
        ],
        0xAB1A,
    )
    .with_burst(Burst {
        rel: RelId(0),
        start_after_elements: 400_000,
        end_after_elements: u64::MAX,
        factor: 20.0,
    })
    .generate(900_000)
}

fn orders() -> PlanOrders {
    PlanOrders::new(vec![
        PipelineOrder {
            stream: RelId(0),
            order: vec![RelId(1), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(1),
            order: vec![RelId(0), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(2),
            order: vec![RelId(1), RelId(0)],
        },
    ])
}

fn base_config() -> EngineConfig {
    EngineConfig {
        reopt_interval: ReoptInterval::Tuples(10_000),
        selection: SelectionStrategy::Exhaustive,
        enumeration: EnumerationConfig {
            enable_global: true,
            max_candidates: 6,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Run and report (pre-burst rate, post-burst rate, reoptimizations).
fn run(config: EngineConfig, updates: &[Update]) -> (f64, f64, f64) {
    let q = QuerySchema::chain3();
    let mut e = AdaptiveJoinEngine::with_config(q, orders(), config);
    // Burst lands at ~55% of the update stream (generated elements × ~2).
    let split = updates.len() * 55 / 100;
    let tail_start = updates.len() * 80 / 100;
    // Pre-burst steady state: measure the 30%..55% window.
    let warm = updates.len() * 30 / 100;
    for u in &updates[..warm] {
        e.process(u);
    }
    let (t0, ns0) = (e.counters().tuples_processed, e.core().now_ns());
    for u in &updates[warm..split] {
        e.process(u);
    }
    let (t1, ns1) = (e.counters().tuples_processed, e.core().now_ns());
    for u in &updates[split..tail_start] {
        e.process(u);
    }
    let (t2, ns2) = (e.counters().tuples_processed, e.core().now_ns());
    for u in &updates[tail_start..] {
        e.process(u);
    }
    let (t3, ns3) = (e.counters().tuples_processed, e.core().now_ns());
    let _ = (t2, ns2);
    let pre = (t1 - t0) as f64 * 1e9 / (ns1 - ns0).max(1) as f64;
    let post = (t3 - t2) as f64 * 1e9 / (ns3 - ns2).max(1) as f64;
    (pre, post, e.counters().reoptimizations as f64)
}

fn main() {
    let updates = workload();
    eprintln!("{} updates; burst at ~55%", updates.len());

    // Ablation 1: statistics window W.
    let ws = [2usize, 5, 10, 25, 50];
    let mut pre = Vec::new();
    let mut post = Vec::new();
    let mut reopts = Vec::new();
    for &w in &ws {
        let mut cfg = base_config();
        cfg.profiler.w = w;
        let (a, b, r) = run(cfg, &updates);
        pre.push(a);
        post.push(b);
        reopts.push(r);
    }
    let mut t = Table::new(
        "Ablation: statistics window W",
        "W",
        ws.iter().map(|&w| w as f64).collect(),
    );
    t.push_series("pre-burst t/s", pre);
    t.push_series("post-burst t/s", post);
    t.push_series("reoptimizations", reopts);
    print!("{}", t.render());
    write_csv(&t, "ablation_w");

    // Ablation 2: re-optimization trigger threshold p.
    let ps = [0.0, 0.05, 0.2, 0.5, 2.0];
    let mut pre = Vec::new();
    let mut post = Vec::new();
    let mut reopts = Vec::new();
    for &p in &ps {
        let mut cfg = base_config();
        cfg.p_threshold = p;
        let (a, b, r) = run(cfg, &updates);
        pre.push(a);
        post.push(b);
        reopts.push(r);
    }
    let mut t = Table::new(
        "Ablation: re-optimization trigger threshold p (§4.5c)",
        "p",
        ps.to_vec(),
    );
    t.push_series("pre-burst t/s", pre);
    t.push_series("post-burst t/s", post);
    t.push_series("reoptimizations", reopts);
    print!("{}", t.render());
    write_csv(&t, "ablation_p");

    // Ablation 3: profiling stride (1 in k tuples fully profiled).
    let strides = [2u64, 4, 8, 16, 64];
    let mut pre = Vec::new();
    let mut post = Vec::new();
    let mut reopts = Vec::new();
    for &s in &strides {
        let mut cfg = base_config();
        cfg.profiler.profile_every = s;
        let (a, b, r) = run(cfg, &updates);
        pre.push(a);
        post.push(b);
        reopts.push(r);
    }
    let mut t = Table::new(
        "Ablation: profiling stride (overhead vs statistics freshness)",
        "stride",
        strides.iter().map(|&s| s as f64).collect(),
    );
    t.push_series("pre-burst t/s", pre);
    t.push_series("post-burst t/s", post);
    t.push_series("reoptimizations", reopts);
    print!("{}", t.render());
    write_csv(&t, "ablation_stride");

    // Ablation 4: direct-mapped store size under a fixed forced cache.
    // (Collision evictions vs memory; ~100 distinct keys in the workload.)
    let budgets_kb = [1usize, 4, 16, 64, 256];
    let mut rates = Vec::new();
    let mut hitf = Vec::new();
    for &kb in &budgets_kb {
        let mut cfg = base_config();
        cfg.mode = CacheMode::Adaptive;
        cfg.memory = acq::MemoryConfig {
            page_bytes: 512,
            budget_bytes: Some(kb * 1024),
        };
        let q = QuerySchema::chain3();
        let mut e = AdaptiveJoinEngine::with_config(q, orders(), cfg);
        let warm = updates.len() / 4;
        for u in &updates[..warm] {
            e.process(u);
        }
        let (t0, ns0) = (e.counters().tuples_processed, e.core().now_ns());
        for u in &updates[warm..updates.len() / 2] {
            e.process(u);
        }
        let (t1, ns1) = (e.counters().tuples_processed, e.core().now_ns());
        rates.push((t1 - t0) as f64 * 1e9 / (ns1 - ns0).max(1) as f64);
        let c = e.counters();
        hitf.push(if c.cache_hits + c.cache_misses > 0 {
            c.cache_hits as f64 / (c.cache_hits + c.cache_misses) as f64
        } else {
            0.0
        });
    }
    let mut t = Table::new(
        "Ablation: cache memory budget (direct-mapped collisions)",
        "budget KB",
        budgets_kb.iter().map(|&b| b as f64).collect(),
    );
    t.push_series("pre-burst t/s", rates);
    t.push_series("hit fraction", hitf);
    print!("{}", t.render());
    write_csv(&t, "ablation_store_size");

    // Ablation 5: cache-store associativity (§3.3 future work). Constrain
    // memory so collisions matter, then compare direct-mapped vs N-way.
    let ways_list = [1usize, 2, 4, 8];
    let mut rates = Vec::new();
    let mut hitf = Vec::new();
    for &ways in &ways_list {
        let mut cfg = base_config();
        cfg.cache_ways = ways;
        cfg.memory = acq::MemoryConfig {
            page_bytes: 512,
            budget_bytes: Some(48 * 1024),
        };
        let q = QuerySchema::chain3();
        let mut e = AdaptiveJoinEngine::with_config(q, orders(), cfg);
        let warm = updates.len() / 4;
        for u in &updates[..warm] {
            e.process(u);
        }
        let (t0, ns0) = (e.counters().tuples_processed, e.core().now_ns());
        for u in &updates[warm..updates.len() / 2] {
            e.process(u);
        }
        let (t1, ns1) = (e.counters().tuples_processed, e.core().now_ns());
        rates.push((t1 - t0) as f64 * 1e9 / (ns1 - ns0).max(1) as f64);
        let c = e.counters();
        hitf.push(if c.cache_hits + c.cache_misses > 0 {
            c.cache_hits as f64 / (c.cache_hits + c.cache_misses) as f64
        } else {
            0.0
        });
    }
    let mut t = Table::new(
        "Ablation: cache associativity (direct-mapped vs N-way, §3.3 future work)",
        "ways",
        ways_list.iter().map(|&w| w as f64).collect(),
    );
    t.push_series("pre-burst t/s", rates);
    t.push_series("hit fraction", hitf);
    print!("{}", t.render());
    write_csv(&t, "ablation_ways");

    // Ablation 6: selection strategy end-to-end (including the §8
    // incremental warm-started local search).
    let strategies: [(&str, SelectionStrategy); 4] = [
        ("exhaustive", SelectionStrategy::Exhaustive),
        ("greedy", SelectionStrategy::Greedy),
        ("randomized", SelectionStrategy::Randomized(42)),
        ("incremental", SelectionStrategy::Incremental),
    ];
    let mut pre = Vec::new();
    let mut post = Vec::new();
    let mut reopts = Vec::new();
    for (name, strat) in &strategies {
        let mut cfg = base_config();
        cfg.selection = *strat;
        let (a, b, r) = run(cfg, &updates);
        eprintln!("strategy {name}: pre {a:.0} post {b:.0} reopts {r}");
        pre.push(a);
        post.push(b);
        reopts.push(r);
    }
    let mut t = Table::new(
        "Ablation: selection strategy (1=exhaustive 2=greedy 3=randomized 4=incremental)",
        "strategy",
        (1..=strategies.len()).map(|i| i as f64).collect(),
    );
    t.push_series("pre-burst t/s", pre);
    t.push_series("post-burst t/s", post);
    t.push_series("reoptimizations", reopts);
    print!("{}", t.render());
    write_csv(&t, "ablation_selection");
}
