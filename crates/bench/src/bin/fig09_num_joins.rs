//! Figure 9 — varying the number of joining relations.
//!
//! n-way star equijoin `R_1(A) ⋈_A … ⋈_A R_n(A)`, n = 3..9. Per §7.2, the
//! join-attribute multiplicity is 1 for ⌊n/2⌋ of the streams and 5 for the
//! others. Full A-Caching (adaptive selection over all candidates — identity
//! orders yield the paper's `(n−1)(n−2)/2` candidate family, e.g. 15
//! candidates for the 7-way join) versus the plain MJoin.

use acq::engine::{AdaptiveJoinEngine, EngineConfig, ReoptInterval, SelectionStrategy};
use acq_bench::report::{write_csv, Table};
use acq_bench::runner::{run_engine, run_mjoin};
use acq_gen::column::ColumnGen;
use acq_gen::spec::{StreamSpec, Workload};
use acq_mjoin::mjoin::MJoin;
use acq_mjoin::plan::PlanOrders;
use acq_stream::QuerySchema;

fn main() {
    let window = 60usize;
    let total = 250_000usize;
    let ns: Vec<usize> = (3..=9).collect();

    let mut cached = Vec::new();
    let mut mjoin = Vec::new();
    let mut ratios = Vec::new();
    let mut used_counts = Vec::new();
    let mut candidate_counts = Vec::new();

    for (i, &n) in ns.iter().enumerate() {
        let q = QuerySchema::star(n);
        // Block-random join values over a common domain, independent across
        // streams (so star fanouts don't phase-lock and multiply);
        // multiplicity-5 streams repeat each drawn value 5× consecutively —
        // the cache-hit-probability knob of §7.2.
        let streams: Vec<StreamSpec> = (0..n as u16)
            .map(|r| {
                // First ⌊n/2⌋ streams multiplicity 1, the rest 5.
                let mult = if (r as usize) < n / 2 { 1 } else { 5 };
                let join_col = ColumnGen::BlockRandom {
                    domain: window as u64,
                    repeat: mult,
                    salt: 0xA5A5_0000 + r as u64,
                };
                StreamSpec::new(r, 1.0, window, vec![join_col, ColumnGen::seq()])
            })
            .collect();
        let updates = Workload::new(streams, 0xF190 + i as u64).generate(total);

        let cfg = EngineConfig {
            selection: SelectionStrategy::Auto,
            reopt_interval: ReoptInterval::VirtualNs(2_000_000_000),
            ..Default::default()
        };
        let mut engine = AdaptiveJoinEngine::with_config(q.clone(), PlanOrders::identity(&q), cfg);
        candidate_counts.push(engine.candidate_states().len() as f64);
        let sc = run_engine(&mut engine, &updates, 0.25);
        used_counts.push(engine.used_caches().len() as f64);

        let mut m = MJoin::new(q.clone(), PlanOrders::identity(&q));
        let sm = run_mjoin(&mut m, &updates, 0.25);
        cached.push(sc.rate);
        mjoin.push(sm.rate);
        ratios.push(sm.rate / sc.rate);
    }

    let mut t = Table::new(
        "Figure 9: varying number of joining relations",
        "n",
        ns.iter().map(|&n| n as f64).collect(),
    );
    t.push_series("With caches (t/s)", cached);
    t.push_series("MJoin (t/s)", mjoin);
    t.push_series("ratio MJoin/cached", ratios);
    t.push_series("caches used", used_counts);
    t.push_series("candidates", candidate_counts);
    print!("{}", t.render());
    if let Some(p) = write_csv(&t, "fig09_num_joins") {
        eprintln!("wrote {}", p.display());
    }
}
