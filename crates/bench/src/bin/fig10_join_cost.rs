//! Figure 10 — varying join cost (nested-loop joins).
//!
//! The hash index on `S.B` is dropped, forcing ∆T's join with S into a
//! nested-loop scan whose cost is proportional to `|S|`; the S window size
//! varies 100..2000. The paper: *"the relative performance of caching
//! improves significantly with increasing join cost."*

use acq::engine::{AdaptiveJoinEngine, CacheMode, EngineConfig};
use acq_bench::report::{write_csv, Table};
use acq_bench::runner::{run_engine, run_mjoin};
use acq_gen::spec::chain3_default;
use acq_mjoin::mjoin::MJoin;
use acq_mjoin::plan::{PipelineOrder, PlanOrders};
use acq_stream::{ColId, QuerySchema, RelId};

fn orders() -> PlanOrders {
    PlanOrders::new(vec![
        PipelineOrder {
            stream: RelId(0),
            order: vec![RelId(1), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(1),
            order: vec![RelId(0), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(2),
            order: vec![RelId(1), RelId(0)],
        },
    ])
}

fn main() {
    let total = 20_000usize;
    let q = QuerySchema::chain3();
    let sizes = [100usize, 250, 500, 1000, 1500, 2000];

    let mut cached = Vec::new();
    let mut mjoin = Vec::new();
    let mut ratios = Vec::new();
    for (i, &s_window) in sizes.iter().enumerate() {
        // R/T windows stay proportional to the default setup; S's window is
        // the x-axis. Base multiplicity r = 5.
        let mut w = chain3_default(5, 100, 0xF1A0 + i as u64);
        w.streams[1].window = s_window;
        let updates = w.generate(total);

        let cfg = EngineConfig {
            mode: CacheMode::Forced(vec![(RelId(2), vec![RelId(0), RelId(1)])]),
            ..Default::default()
        };
        let mut engine = AdaptiveJoinEngine::with_config(q.clone(), orders(), cfg);
        // Drop the S.B index: ∆T's first operator becomes a nested loop.
        engine
            .core_mut()
            .relation_mut(RelId(1))
            .drop_index(ColId(1));
        engine.recompile();
        let sc = run_engine(&mut engine, &updates, 0.2);

        let mut m = MJoin::new(q.clone(), orders());
        m.core_mut().relation_mut(RelId(1)).drop_index(ColId(1));
        m.recompile();
        let sm = run_mjoin(&mut m, &updates, 0.2);

        cached.push(sc.rate);
        mjoin.push(sm.rate);
        ratios.push(sm.rate / sc.rate);
    }

    let mut t = Table::new(
        "Figure 10: varying join cost (no S.B index; |S| window swept)",
        "|S| window",
        sizes.iter().map(|&s| s as f64).collect(),
    );
    t.push_series("With caches (t/s)", cached);
    t.push_series("MJoin (t/s)", mjoin);
    t.push_series("ratio MJoin/cached", ratios);
    print!("{}", t.render());
    if let Some(p) = write_csv(&t, "fig10_join_cost") {
        eprintln!("wrote {}", p.display());
    }
}
