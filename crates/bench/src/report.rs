//! Result tables, aligned console output, and CSV export.

use std::fmt::Write as _;
use std::path::Path;

/// One named series over a common x-axis.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// y values, aligned with the owning table's x values.
    pub y: Vec<f64>,
}

/// A whole figure: x-axis + series.
#[derive(Debug, Clone)]
pub struct Table {
    /// Figure/table title (e.g. `"Figure 6: varying cache hit probability"`).
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// x values.
    pub x: Vec<f64>,
    /// The series.
    pub series: Vec<Series>,
}

impl Table {
    /// Start a table.
    pub fn new(title: &str, x_label: &str, x: Vec<f64>) -> Table {
        Table {
            title: title.to_string(),
            x_label: x_label.to_string(),
            x,
            series: Vec::new(),
        }
    }

    /// Add one series (must match the x length).
    pub fn push_series(&mut self, label: &str, y: Vec<f64>) -> &mut Self {
        assert_eq!(y.len(), self.x.len(), "series length mismatch");
        self.series.push(Series {
            label: label.to_string(),
            y,
        });
        self
    }

    /// Render as an aligned console table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut header = format!("{:>14}", self.x_label);
        for s in &self.series {
            let _ = write!(header, " {:>16}", s.label);
        }
        let _ = writeln!(out, "{header}");
        for (i, x) in self.x.iter().enumerate() {
            let mut row = format!("{x:>14.4}");
            for s in &self.series {
                let _ = write!(row, " {:>16.2}", s.y[i]);
            }
            let _ = writeln!(out, "{row}");
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let mut header = self.x_label.clone();
        for s in &self.series {
            let _ = write!(header, ",{}", s.label);
        }
        let _ = writeln!(out, "{header}");
        for (i, x) in self.x.iter().enumerate() {
            let mut row = format!("{x}");
            for s in &self.series {
                let _ = write!(row, ",{}", s.y[i]);
            }
            let _ = writeln!(out, "{row}");
        }
        out
    }
}

/// Write a table as CSV under `EXPERIMENTS_OUTPUT/` (created on demand),
/// returning the path written. Failures are reported, not fatal — the
/// console output is the primary artifact.
pub fn write_csv(table: &Table, file_stem: &str) -> Option<std::path::PathBuf> {
    let dir = Path::new("EXPERIMENTS_OUTPUT");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {dir:?}: {e}");
        return None;
    }
    let path = dir.join(format!("{file_stem}.csv"));
    match std::fs::write(&path, table.to_csv()) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: cannot write {path:?}: {e}");
            None
        }
    }
}

/// Write a telemetry snapshot as `EXPERIMENTS_OUTPUT/<file_stem>.telemetry.json`
/// (and echo its aligned-text rendering to stderr when `ACQ_TELEMETRY_TEXT`
/// is set), returning the path written. Same failure policy as
/// [`write_csv`]: the CSV/console output remains the primary artifact.
pub fn write_snapshot(
    snapshot: &acq::TelemetrySnapshot,
    file_stem: &str,
) -> Option<std::path::PathBuf> {
    let dir = Path::new("EXPERIMENTS_OUTPUT");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {dir:?}: {e}");
        return None;
    }
    if std::env::var_os("ACQ_TELEMETRY_TEXT").is_some() {
        eprintln!("{}", snapshot.render_text());
    }
    let path = dir.join(format!("{file_stem}.telemetry.json"));
    match std::fs::write(&path, snapshot.to_json()) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: cannot write {path:?}: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_csv() {
        let mut t = Table::new("Figure X", "r", vec![1.0, 2.0]);
        t.push_series("With caches", vec![100.0, 200.0]);
        t.push_series("MJoin", vec![90.0, 120.0]);
        let text = t.render();
        assert!(text.contains("Figure X"));
        assert!(text.contains("With caches"));
        assert!(text.lines().count() == 4);
        let csv = t.to_csv();
        assert_eq!(csv.lines().next().unwrap(), "r,With caches,MJoin");
        assert!(csv.lines().nth(1).unwrap().starts_with("1,100"));
    }

    #[test]
    #[should_panic(expected = "series length mismatch")]
    fn mismatched_series_panics() {
        let mut t = Table::new("t", "x", vec![1.0]);
        t.push_series("bad", vec![1.0, 2.0]);
    }
}
