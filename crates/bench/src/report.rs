//! Result tables, aligned console output, and CSV export.

use std::fmt::Write as _;
use std::path::Path;

/// One named series over a common x-axis.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// y values, aligned with the owning table's x values.
    pub y: Vec<f64>,
}

/// A whole figure: x-axis + series.
#[derive(Debug, Clone)]
pub struct Table {
    /// Figure/table title (e.g. `"Figure 6: varying cache hit probability"`).
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// x values.
    pub x: Vec<f64>,
    /// The series.
    pub series: Vec<Series>,
}

impl Table {
    /// Start a table.
    pub fn new(title: &str, x_label: &str, x: Vec<f64>) -> Table {
        Table {
            title: title.to_string(),
            x_label: x_label.to_string(),
            x,
            series: Vec::new(),
        }
    }

    /// Add one series (must match the x length).
    pub fn push_series(&mut self, label: &str, y: Vec<f64>) -> &mut Self {
        assert_eq!(y.len(), self.x.len(), "series length mismatch");
        self.series.push(Series {
            label: label.to_string(),
            y,
        });
        self
    }

    /// Render as an aligned console table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut header = format!("{:>14}", self.x_label);
        for s in &self.series {
            let _ = write!(header, " {:>16}", s.label);
        }
        let _ = writeln!(out, "{header}");
        for (i, x) in self.x.iter().enumerate() {
            let mut row = format!("{x:>14.4}");
            for s in &self.series {
                let _ = write!(row, " {:>16.2}", s.y[i]);
            }
            let _ = writeln!(out, "{row}");
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let mut header = self.x_label.clone();
        for s in &self.series {
            let _ = write!(header, ",{}", s.label);
        }
        let _ = writeln!(out, "{header}");
        for (i, x) in self.x.iter().enumerate() {
            let mut row = format!("{x}");
            for s in &self.series {
                let _ = write!(row, ",{}", s.y[i]);
            }
            let _ = writeln!(out, "{row}");
        }
        out
    }
}

/// Write a table as CSV under `EXPERIMENTS_OUTPUT/` (created on demand),
/// returning the path written. Failures are reported, not fatal — the
/// console output is the primary artifact.
pub fn write_csv(table: &Table, file_stem: &str) -> Option<std::path::PathBuf> {
    let dir = Path::new("EXPERIMENTS_OUTPUT");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {dir:?}: {e}");
        return None;
    }
    let path = dir.join(format!("{file_stem}.csv"));
    match std::fs::write(&path, table.to_csv()) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: cannot write {path:?}: {e}");
            None
        }
    }
}

/// Write a telemetry snapshot as `EXPERIMENTS_OUTPUT/<file_stem>.telemetry.json`
/// (and echo its aligned-text rendering to stderr when `ACQ_TELEMETRY_TEXT`
/// is set), returning the path written. Same failure policy as
/// [`write_csv`]: the CSV/console output remains the primary artifact.
pub fn write_snapshot(
    snapshot: &acq::TelemetrySnapshot,
    file_stem: &str,
) -> Option<std::path::PathBuf> {
    let dir = Path::new("EXPERIMENTS_OUTPUT");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {dir:?}: {e}");
        return None;
    }
    if std::env::var_os("ACQ_TELEMETRY_TEXT").is_some() {
        eprintln!("{}", snapshot.render_text());
    }
    let path = dir.join(format!("{file_stem}.telemetry.json"));
    match std::fs::write(&path, snapshot.to_json()) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: cannot write {path:?}: {e}");
            None
        }
    }
}

// ---------------------------------------------------------------------
// Labeled bench-JSON files (BENCH_hotpath.json / BENCH_shard.json). No
// JSON dep: the format is our own, so balanced-brace extraction of the
// other labels' sections is safe.

/// Extract the `"label": { ... }` object text for every top-level label in
/// a previously written bench-JSON file.
pub fn existing_sections(text: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    // Skip the outermost '{'.
    let Some(start) = text.find('{') else {
        return out;
    };
    let mut i = start + 1;
    while i < bytes.len() {
        // Find the next quoted label at depth 1.
        let Some(q0) = text[i..].find('"').map(|p| i + p) else {
            break;
        };
        let Some(q1) = text[q0 + 1..].find('"').map(|p| q0 + 1 + p) else {
            break;
        };
        let label = text[q0 + 1..q1].to_string();
        let Some(o) = text[q1..].find('{').map(|p| q1 + p) else {
            break;
        };
        let mut depth = 0usize;
        let mut end = None;
        for (k, &c) in bytes.iter().enumerate().skip(o) {
            match c {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(k);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(end) = end else { break };
        out.push((label, text[o..=end].to_string()));
        i = end + 1;
    }
    out
}

/// Pull a numeric field out of one scenario object inside a section.
pub fn field_of(section: &str, scenario: &str, field: &str) -> Option<f64> {
    let s0 = section.find(&format!("\"{scenario}\""))?;
    let rest = &section[s0..];
    let f0 = rest.find(&format!("\"{field}\""))?;
    let after = &rest[f0..];
    let colon = after.find(':')?;
    let tail = after[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Merge one label's section body into a bench-JSON file, preserving every
/// other label, and return the file's resulting sections. Write failures
/// are reported, not fatal (console output is the primary artifact).
pub fn merge_label_section(path: &str, label: &str, body: String) -> Vec<(String, String)> {
    let mut sections: Vec<(String, String)> = std::fs::read_to_string(path)
        .map(|t| existing_sections(&t))
        .unwrap_or_default();
    match sections.iter_mut().find(|(l, _)| l == label) {
        Some((_, s)) => *s = body,
        None => sections.push((label.to_string(), body)),
    }
    let mut out = String::from("{\n");
    for (i, (l, s)) in sections.iter().enumerate() {
        out.push_str(&format!("  \"{l}\": {s}"));
        out.push_str(if i + 1 < sections.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("warning: cannot write {path}: {e}");
    } else {
        println!("wrote {path} (section \"{label}\")");
    }
    sections
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_roundtrip_and_field_lookup() {
        let text = "{\n  \"baseline\": {\n    \"a/b\": { \"ns_per_update\": 12.5 }\n  },\n  \
                    \"current\": {\n    \"a/b\": { \"ns_per_update\": 7.0 }\n  }\n}\n";
        let sections = existing_sections(text);
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].0, "baseline");
        assert_eq!(field_of(&sections[0].1, "a/b", "ns_per_update"), Some(12.5));
        assert_eq!(field_of(&sections[1].1, "a/b", "ns_per_update"), Some(7.0));
        assert_eq!(field_of(&sections[1].1, "a/b", "missing"), None);
        assert_eq!(field_of(&sections[1].1, "zzz", "ns_per_update"), None);
    }

    #[test]
    fn render_and_csv() {
        let mut t = Table::new("Figure X", "r", vec![1.0, 2.0]);
        t.push_series("With caches", vec![100.0, 200.0]);
        t.push_series("MJoin", vec![90.0, 120.0]);
        let text = t.render();
        assert!(text.contains("Figure X"));
        assert!(text.contains("With caches"));
        assert!(text.lines().count() == 4);
        let csv = t.to_csv();
        assert_eq!(csv.lines().next().unwrap(), "r,With caches,MJoin");
        assert!(csv.lines().nth(1).unwrap().starts_with("1,100"));
    }

    #[test]
    #[should_panic(expected = "series length mismatch")]
    fn mismatched_series_panics() {
        let mut t = Table::new("t", "x", vec![1.0]);
        t.push_series("bad", vec![1.0, 2.0]);
    }
}
