//! Pipeline orders and compiled join operators.
//!
//! §3.1: an MJoin for `R_1 ⋈ … ⋈ R_n` has `n` pipelines; `∆R_i`'s pipeline is
//! `./_{i_1}, …, ./_{i_{n−1}}` where `./_{i_j}` joins its input with relation
//! `R_{i_j}`, *"enforcing all join predicates between `R_{i_j}` and
//! `R_i, R_{i_1}, …, R_{i_{j−1}}`, using indexes on `R_{i_j}` whenever
//! applicable."*
//!
//! [`PipelineOrder`] is the join order of one pipeline; [`PlanOrders`] the
//! full plan. [`CompiledOp`] is one `./_{i_j}` resolved against the query
//! graph and current index availability: at most one index access plus
//! residual predicates.

use acq_relation::Relation;
use acq_stream::{AttrRef, ColId, QuerySchema, RelId};

/// The join order of one pipeline: `stream`'s updates joined with `order[0]`,
/// then `order[1]`, ….
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineOrder {
    /// The update stream this pipeline processes (`∆R_i`).
    pub stream: RelId,
    /// The other `n − 1` relations, in join order (`R_{i_1}, …, R_{i_{n−1}}`).
    pub order: Vec<RelId>,
}

impl PipelineOrder {
    /// Relations joined before position `j` (the paper's
    /// `{R_i, R_{i_1}, …, R_{i_{j−1}}}`): the stream itself plus the first
    /// `j` entries of the order.
    pub fn prefix_rels(&self, j: usize) -> Vec<RelId> {
        let mut v = Vec::with_capacity(j + 1);
        v.push(self.stream);
        v.extend_from_slice(&self.order[..j]);
        v
    }

    /// Validate against the query: `order` must be a permutation of all
    /// relations except `stream`.
    pub fn validate(&self, query: &QuerySchema) -> Result<(), String> {
        let n = query.num_relations();
        if self.order.len() != n - 1 {
            return Err(format!(
                "pipeline for R{} has {} operators, expected {}",
                self.stream.0,
                self.order.len(),
                n - 1
            ));
        }
        let mut seen = vec![false; n];
        seen[self.stream.0 as usize] = true;
        for r in &self.order {
            let idx = r.0 as usize;
            if idx >= n {
                return Err(format!("pipeline references unknown relation R{}", r.0));
            }
            if seen[idx] {
                return Err(format!("relation R{} appears twice", r.0));
            }
            seen[idx] = true;
        }
        Ok(())
    }
}

/// A complete MJoin plan: one pipeline order per stream, indexed by
/// relation id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanOrders {
    /// `pipelines[i]` is the order for `∆R_i`.
    pub pipelines: Vec<PipelineOrder>,
}

impl PlanOrders {
    /// The identity plan: each pipeline joins the remaining relations in
    /// relation-id order.
    pub fn identity(query: &QuerySchema) -> PlanOrders {
        let n = query.num_relations() as u16;
        PlanOrders {
            pipelines: (0..n)
                .map(|i| PipelineOrder {
                    stream: RelId(i),
                    order: (0..n).filter(|&j| j != i).map(RelId).collect(),
                })
                .collect(),
        }
    }

    /// Build from explicit orders (must cover every stream exactly once, in
    /// relation-id order).
    pub fn new(pipelines: Vec<PipelineOrder>) -> PlanOrders {
        for (i, p) in pipelines.iter().enumerate() {
            assert_eq!(
                p.stream.0 as usize, i,
                "pipelines must be listed in relation-id order"
            );
        }
        PlanOrders { pipelines }
    }

    /// Validate every pipeline.
    pub fn validate(&self, query: &QuerySchema) -> Result<(), String> {
        if self.pipelines.len() != query.num_relations() {
            return Err(format!(
                "{} pipelines for {} relations",
                self.pipelines.len(),
                query.num_relations()
            ));
        }
        for p in &self.pipelines {
            p.validate(query)?;
        }
        Ok(())
    }

    /// The pipeline for stream `r`.
    pub fn pipeline(&self, r: RelId) -> &PipelineOrder {
        &self.pipelines[r.0 as usize]
    }
}

/// One join operator `./_{i_j}` compiled against the query graph and current
/// index availability.
#[derive(Debug, Clone)]
pub struct CompiledOp {
    /// The relation this operator joins with (`R_{i_j}`).
    pub target: RelId,
    /// Index access path: `(indexed column on target, prefix attribute whose
    /// value probes it)`. `None` forces a nested-loop scan.
    pub index_access: Option<(ColId, AttrRef)>,
    /// Residual equality predicates as `(target attribute, prefix attribute)`
    /// pairs, evaluated on every candidate match.
    pub residual: Vec<(AttrRef, AttrRef)>,
}

impl CompiledOp {
    /// Compile the operator joining `target` after `prefix_rels` have been
    /// joined. Picks the first applicable predicate with an index on the
    /// target side as the access path; everything else becomes residual.
    ///
    /// An operator with *no* predicate against the prefix is a cross product
    /// (legal but expensive — the orderer avoids it when the join graph is
    /// connected); it compiles to a scan with no residuals.
    pub fn compile(
        query: &QuerySchema,
        relations: &[Relation],
        prefix_rels: &[RelId],
        target: RelId,
    ) -> CompiledOp {
        let mut index_access = None;
        let mut residual = Vec::new();
        for p in query.predicates_between(&[target], prefix_rels) {
            let (t_attr, p_attr) = p
                .oriented(target)
                .expect("predicates_between guarantees one side on target");
            if index_access.is_none() && relations[target.0 as usize].has_index(t_attr.col) {
                index_access = Some((t_attr.col, p_attr));
            } else {
                residual.push((t_attr, p_attr));
            }
        }
        CompiledOp {
            target,
            index_access,
            residual,
        }
    }

    /// Compile a whole pipeline.
    pub fn compile_pipeline(
        query: &QuerySchema,
        relations: &[Relation],
        order: &PipelineOrder,
    ) -> Vec<CompiledOp> {
        (0..order.order.len())
            .map(|j| {
                let prefix = order.prefix_rels(j);
                CompiledOp::compile(query, relations, &prefix, order.order[j])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acq_stream::QuerySchema;

    fn chain3_relations(indexed: bool) -> Vec<Relation> {
        let q = QuerySchema::chain3();
        (0..3u16)
            .map(|i| {
                let mut r = Relation::new(RelId(i), q.relation(RelId(i)).arity());
                if indexed {
                    for c in 0..q.relation(RelId(i)).arity() as u16 {
                        r.add_index(ColId(c));
                    }
                }
                r
            })
            .collect()
    }

    #[test]
    fn identity_plan_valid() {
        let q = QuerySchema::star(5);
        let plan = PlanOrders::identity(&q);
        plan.validate(&q).unwrap();
        assert_eq!(plan.pipeline(RelId(2)).order.len(), 4);
        assert!(!plan.pipeline(RelId(2)).order.contains(&RelId(2)));
    }

    #[test]
    fn prefix_rels_includes_stream() {
        let q = QuerySchema::chain3();
        let plan = PlanOrders::identity(&q);
        let p = plan.pipeline(RelId(1));
        assert_eq!(p.prefix_rels(0), vec![RelId(1)]);
        assert_eq!(p.prefix_rels(1), vec![RelId(1), RelId(0)]);
    }

    #[test]
    fn validation_catches_duplicates_and_lengths() {
        let q = QuerySchema::chain3();
        let bad = PipelineOrder {
            stream: RelId(0),
            order: vec![RelId(1), RelId(1)],
        };
        assert!(bad.validate(&q).is_err());
        let short = PipelineOrder {
            stream: RelId(0),
            order: vec![RelId(1)],
        };
        assert!(short.validate(&q).is_err());
        let self_ref = PipelineOrder {
            stream: RelId(0),
            order: vec![RelId(0), RelId(1)],
        };
        assert!(self_ref.validate(&q).is_err());
    }

    #[test]
    fn compile_uses_index_when_available() {
        let q = QuerySchema::chain3();
        let rels = chain3_relations(true);
        // ∆R's pipeline: join with S first (R.A = S.A).
        let op = CompiledOp::compile(&q, &rels, &[RelId(0)], RelId(1));
        let (col, probe) = op.index_access.expect("index on S.A");
        assert_eq!(col, ColId(0));
        assert_eq!(probe, AttrRef::new(0, 0)); // read R.A from prefix
        assert!(op.residual.is_empty());
    }

    #[test]
    fn compile_falls_back_to_scan() {
        let q = QuerySchema::chain3();
        let rels = chain3_relations(false);
        let op = CompiledOp::compile(&q, &rels, &[RelId(0)], RelId(1));
        assert!(op.index_access.is_none());
        assert_eq!(op.residual.len(), 1, "predicate becomes residual");
    }

    #[test]
    fn cross_product_op_has_no_predicates() {
        let q = QuerySchema::chain3();
        let rels = chain3_relations(true);
        // Joining T directly after R: no predicate connects them.
        let op = CompiledOp::compile(&q, &rels, &[RelId(0)], RelId(2));
        assert!(op.index_access.is_none());
        assert!(op.residual.is_empty());
    }

    #[test]
    fn later_position_enforces_all_prefix_predicates() {
        let q = QuerySchema::star(4);
        let rels: Vec<Relation> = (0..4u16)
            .map(|i| {
                let mut r = Relation::new(RelId(i), 2);
                r.add_index(ColId(0));
                r
            })
            .collect();
        // ∆R1 pipeline [R2, R3, R4]: at position 2 (target R3), predicates
        // R3.A = R1.A and R3.A = R2.A both apply (QuerySchema closes each
        // equivalence class into a predicate clique).
        let op = CompiledOp::compile(&q, &rels, &[RelId(0), RelId(1)], RelId(2));
        assert!(op.index_access.is_some());
        assert_eq!(op.residual.len(), 1, "second clique predicate is residual");
    }

    #[test]
    fn compile_pipeline_covers_all_positions() {
        let q = QuerySchema::chain3();
        let rels = chain3_relations(true);
        let order = PipelineOrder {
            stream: RelId(0),
            order: vec![RelId(1), RelId(2)],
        };
        let ops = CompiledOp::compile_pipeline(&q, &rels, &order);
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].target, RelId(1));
        assert_eq!(ops[1].target, RelId(2));
        // Second op probes T on B using S.B from the prefix.
        let (col, probe) = ops[1].index_access.unwrap();
        assert_eq!(col, ColId(0));
        assert_eq!(probe, AttrRef::new(1, 1));
    }
}
