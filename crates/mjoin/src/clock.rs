//! Deterministic virtual cost clock.
//!
//! Every executor in this workspace charges operations against a
//! [`VirtualClock`] using the per-operation constants in [`CostModel`].
//! "Processing rate" in experiments is `tuples processed / virtual seconds`,
//! mirroring the paper's tuples-per-second metric without wall-clock noise.
//! The constants are calibrated to mid-2000s *absolute* costs (the paper's
//! testbed sustains 25k–80k tuples/s, i.e. tens of microseconds per update):
//! a hash probe costs ~7 µs, each retrieved match a few µs, and so on. The
//! absolute scale matters beyond cosmetics — the paper's re-optimization
//! interval `I = 2 seconds` and epoch-based statistics only behave as in the
//! paper when virtual time advances at a comparable tuples-per-second rate.
//! Ratios between constants drive who wins; the scale drives adaptivity
//! cadence.

/// Per-operation virtual costs in nanoseconds.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// One hash-index probe (bucket lookup).
    pub index_probe: u64,
    /// Each matching tuple retrieved from an index posting list.
    pub per_match: u64,
    /// Each tuple examined during a nested-loop scan.
    pub scan_per_tuple: u64,
    /// Evaluating one residual equality predicate.
    pub predicate_eval: u64,
    /// Building one output composite (concatenation `r · r_j`).
    pub concat: u64,
    /// Inserting a tuple into a relation store (incl. index maintenance).
    pub store_insert: u64,
    /// Deleting a tuple from a relation store.
    pub store_delete: u64,
    /// Emitting one result delta to the output stream.
    pub emit_output: u64,
    /// Cache probe: fixed part (hashing the key, bucket lookup).
    pub cache_probe_base: u64,
    /// Cache probe: per key attribute hashed.
    pub cache_probe_per_attr: u64,
    /// Cache hit: per cached value tuple spliced onto the probing prefix.
    pub cache_hit_per_tuple: u64,
    /// Cache maintenance (insert/delete/create): fixed part.
    pub cache_update_base: u64,
    /// Cache maintenance: per value tuple added/removed.
    pub cache_update_per_tuple: u64,
    /// One Bloom-filter insertion (profiling a candidate's probe stream).
    pub bloom_insert: u64,
    /// Per-bucket cost of scanning a cache store (globally-consistent cache
    /// invalidation on segment-relation deletes, §6).
    pub cache_scan_per_bucket: u64,
    /// Fixed overhead per profiled tuple (timer reads, bookkeeping).
    pub profile_overhead: u64,
    /// One run of the offline cache-selection algorithm (re-optimization).
    pub reoptimize: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            index_probe: 7_000,
            per_match: 3_500,
            scan_per_tuple: 1_500,
            predicate_eval: 750,
            concat: 3_500,
            store_insert: 5_500,
            store_delete: 5_500,
            emit_output: 1_250,
            cache_probe_base: 2_250,
            cache_probe_per_attr: 500,
            cache_hit_per_tuple: 1_250,
            cache_update_base: 3_000,
            cache_update_per_tuple: 1_250,
            bloom_insert: 400,
            cache_scan_per_bucket: 50,
            profile_overhead: 500,
            reoptimize: 2_500_000,
        }
    }
}

impl CostModel {
    /// Cost of probing an index and retrieving `matches` tuples while
    /// evaluating `extra_preds` residual predicates on each.
    #[inline]
    pub fn indexed_join(&self, matches: usize, extra_preds: usize) -> u64 {
        self.index_probe
            + matches as u64 * (self.per_match + extra_preds as u64 * self.predicate_eval)
    }

    /// Cost of scanning `scanned` tuples evaluating `preds` predicates each.
    #[inline]
    pub fn scan_join(&self, scanned: usize, preds: usize) -> u64 {
        scanned as u64 * (self.scan_per_tuple + preds as u64 * self.predicate_eval)
    }

    /// Cost of one cache probe with a `key_attrs`-attribute key.
    #[inline]
    pub fn cache_probe(&self, key_attrs: usize) -> u64 {
        self.cache_probe_base + key_attrs as u64 * self.cache_probe_per_attr
    }

    /// Cost of one cache maintenance call affecting `tuples` value tuples.
    #[inline]
    pub fn cache_update(&self, tuples: usize) -> u64 {
        self.cache_update_base + tuples as u64 * self.cache_update_per_tuple
    }
}

/// Monotone virtual-time accumulator.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    ns: u64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Current virtual time in nanoseconds.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.ns
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn now_secs(&self) -> f64 {
        self.ns as f64 / 1e9
    }

    /// Advance the clock by `ns`.
    #[inline]
    pub fn charge(&mut self, ns: u64) {
        self.ns += ns;
    }
}

/// Aggregate of several executors' virtual clocks — the sharded engine's
/// cost accounting. `total_ns` is the work performed across all shards
/// (the single-engine-equivalent cost), `max_ns` the critical path (what a
/// wall clock would see with perfect overlap), and their ratio measures
/// load balance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClockAggregate {
    /// Sum of all shards' virtual time.
    pub total_ns: u64,
    /// Slowest shard's virtual time (parallel critical path).
    pub max_ns: u64,
    /// Fastest shard's virtual time.
    pub min_ns: u64,
    /// Number of shards aggregated.
    pub shards: usize,
}

impl ClockAggregate {
    /// Aggregate a set of per-shard virtual times.
    pub fn from_ns(times: impl IntoIterator<Item = u64>) -> ClockAggregate {
        let mut agg = ClockAggregate::default();
        for ns in times {
            if agg.shards == 0 || ns < agg.min_ns {
                agg.min_ns = ns;
            }
            agg.max_ns = agg.max_ns.max(ns);
            agg.total_ns += ns;
            agg.shards += 1;
        }
        agg
    }

    /// Total virtual work in seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }

    /// Critical-path virtual time in seconds (the slowest shard).
    pub fn critical_path_secs(&self) -> f64 {
        self.max_ns as f64 / 1e9
    }

    /// Load-balance factor: slowest shard over the per-shard mean. 1.0 is
    /// perfectly balanced; `shards as f64` means one shard did everything.
    pub fn imbalance(&self) -> f64 {
        if self.shards == 0 || self.total_ns == 0 {
            return 1.0;
        }
        let mean = self.total_ns as f64 / self.shards as f64;
        self.max_ns as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_accumulates() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.charge(100);
        c.charge(50);
        assert_eq!(c.now_ns(), 150);
        assert!((c.now_secs() - 1.5e-7).abs() < 1e-15);
    }

    #[test]
    fn composite_costs() {
        let m = CostModel::default();
        assert_eq!(m.indexed_join(0, 0), m.index_probe);
        assert_eq!(
            m.indexed_join(3, 2),
            m.index_probe + 3 * (m.per_match + 2 * m.predicate_eval)
        );
        assert_eq!(
            m.scan_join(10, 1),
            10 * (m.scan_per_tuple + m.predicate_eval)
        );
        assert_eq!(
            m.cache_probe(2),
            m.cache_probe_base + 2 * m.cache_probe_per_attr
        );
        assert_eq!(
            m.cache_update(5),
            m.cache_update_base + 5 * m.cache_update_per_tuple
        );
    }

    #[test]
    fn clock_aggregate_stats() {
        let agg = ClockAggregate::from_ns([100, 300, 200, 400]);
        assert_eq!(agg.total_ns, 1000);
        assert_eq!(agg.max_ns, 400);
        assert_eq!(agg.min_ns, 100);
        assert_eq!(agg.shards, 4);
        assert!((agg.total_secs() - 1e-6).abs() < 1e-15);
        assert!((agg.critical_path_secs() - 4e-7).abs() < 1e-15);
        // mean 250, max 400 → imbalance 1.6
        assert!((agg.imbalance() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn clock_aggregate_degenerate_cases() {
        let empty = ClockAggregate::from_ns([]);
        assert_eq!(empty.shards, 0);
        assert_eq!(empty.total_ns, 0);
        assert!((empty.imbalance() - 1.0).abs() < 1e-12);
        let single = ClockAggregate::from_ns([42]);
        assert_eq!(single.min_ns, 42);
        assert_eq!(single.max_ns, 42);
        assert!((single.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cache_hit_cheaper_than_recompute() {
        // Sanity: the default calibration must make a cache hit that returns
        // k tuples cheaper than an indexed join producing the same k tuples —
        // otherwise no cache could ever have positive benefit.
        let m = CostModel::default();
        for k in [0usize, 1, 5, 50] {
            let hit = m.cache_probe(1) + k as u64 * m.cache_hit_per_tuple;
            let recompute = m.indexed_join(k, 1) + k as u64 * m.concat;
            assert!(
                hit < recompute + m.index_probe,
                "k={k}: {hit} !< {recompute}"
            );
        }
    }
}
