//! # acq-mjoin — MJoin execution engine and baselines
//!
//! The execution substrate the paper's A-Caching algorithm runs on, plus the
//! two baseline plan families it is evaluated against:
//!
//! * [`clock`] — the deterministic **virtual cost clock**. The paper reports
//!   wall-clock tuple-processing rates on the authors' testbed; we charge
//!   every physical operation (index probe, match retrieval, predicate
//!   evaluation, tuple concatenation, store maintenance, cache probe/update,
//!   Bloom insert) a calibrated number of virtual nanoseconds, making every
//!   experiment deterministic and machine-independent while preserving
//!   *relative* costs (see DESIGN.md, substitution 1).
//! * [`plan`] — pipeline orders and compiled join operators (`./_ij` of §3.1:
//!   each operator joins its input with one relation, enforcing all
//!   predicates against the relations already joined, via hash index when
//!   available).
//! * [`exec`] — [`exec::JoinCore`]: relation stores + query graph + clock;
//!   the single-operator `probe_join` primitive that MJoin, XJoin, and the
//!   A-Caching engine all drive.
//! * [`metrics`] — per-pipeline / per-operator execution metrics
//!   ([`metrics::OpStats`], [`metrics::PipelineMetrics`]) shared by every
//!   executor, exportable into `acq-telemetry` snapshots.
//! * [`mjoin`] — the plain MJoin executor [`mjoin::MJoin`] (baseline `M`).
//! * [`ordering`] — A-Greedy–style adaptive join ordering (reference \[5\] of
//!   the paper), used by both MJoin and A-Caching plans.
//! * [`xjoin`] — the XJoin baseline (`X`): binary join trees with fully
//!   materialized intermediate subresults, plus exhaustive best-tree search.
//! * [`oracle`] — a naive full-recomputation oracle used by tests to verify
//!   that every executor produces exactly the correct output delta multiset.

#![warn(missing_docs)]

pub mod clock;
pub mod exec;
pub mod metrics;
pub mod mjoin;
pub mod oracle;
pub mod ordering;
pub mod plan;
pub mod stats;
pub mod xjoin;

pub use clock::{ClockAggregate, CostModel, VirtualClock};
pub use exec::JoinCore;
pub use metrics::{OpStats, PipelineMetrics};
pub use mjoin::MJoin;
pub use ordering::GreedyOrderer;
pub use plan::{CompiledOp, PipelineOrder, PlanOrders};
pub use stats::WorkloadStats;
pub use xjoin::{JoinTree, XJoin};
