//! The plain MJoin executor (baseline `M`).
//!
//! §3.1 semantics: updates arrive in a single global order; each update `r` on
//! `∆R_i` is joined with the other `n − 1` relations along `R_i`'s pipeline,
//! producing the insertions/deletions to the n-way result, and `R_i`'s store
//! is updated. No intermediate subresults are maintained.
//!
//! The executor keeps per-operator statistics (`d_ij`-style tuple counts and
//! virtual costs) and an [`OnlineStats`] collector
//! so the A-Greedy-style orderer can adapt the pipelines when stream
//! characteristics drift.

use crate::exec::JoinCore;
use crate::metrics::PipelineMetrics;
use crate::ordering::GreedyOrderer;
use crate::plan::{CompiledOp, PlanOrders};
use crate::stats::OnlineStats;
use acq_stream::{Composite, Op, QuerySchema, RelId, Update};
use acq_telemetry::TelemetrySnapshot;

pub use crate::metrics::OpStats;

/// Plain MJoin executor.
#[derive(Debug)]
pub struct MJoin {
    core: JoinCore,
    orders: PlanOrders,
    compiled: Vec<Vec<CompiledOp>>,
    metrics: Vec<PipelineMetrics>,
    online: OnlineStats,
    tuples_processed: u64,
    outputs_emitted: u64,
    reorder_count: u64,
}

impl MJoin {
    /// Build an MJoin with explicit pipeline orders.
    pub fn new(query: QuerySchema, orders: PlanOrders) -> MJoin {
        orders.validate(&query).expect("invalid plan");
        let core = JoinCore::new(query);
        MJoin::from_core(core, orders)
    }

    /// Build from an existing [`JoinCore`] (lets experiments preconfigure
    /// indexes / cost models).
    pub fn from_core(core: JoinCore, orders: PlanOrders) -> MJoin {
        let n = core.query().num_relations();
        let compiled = Self::compile_all(&core, &orders);
        let metrics = compiled
            .iter()
            .map(|ops| PipelineMetrics::new(ops.len()))
            .collect();
        MJoin {
            online: OnlineStats::new(n, 10, 0.01),
            core,
            orders,
            compiled,
            metrics,
            tuples_processed: 0,
            outputs_emitted: 0,
            reorder_count: 0,
        }
    }

    fn compile_all(core: &JoinCore, orders: &PlanOrders) -> Vec<Vec<CompiledOp>> {
        orders
            .pipelines
            .iter()
            .map(|p| CompiledOp::compile_pipeline(core.query(), core.relations(), p))
            .collect()
    }

    /// The execution core.
    pub fn core(&self) -> &JoinCore {
        &self.core
    }

    /// Mutable core access (index experiments).
    pub fn core_mut(&mut self) -> &mut JoinCore {
        &mut self.core
    }

    /// Current pipeline orders.
    pub fn orders(&self) -> &PlanOrders {
        &self.orders
    }

    /// Per-operator statistics for stream `r`.
    pub fn op_stats(&self, r: RelId) -> &[OpStats] {
        &self.metrics[r.0 as usize].ops
    }

    /// The online workload-statistics collector.
    pub fn online_stats_mut(&mut self) -> &mut OnlineStats {
        &mut self.online
    }

    /// Replace pipeline orders (recompiles operators and resets per-operator
    /// statistics, which are order-specific).
    pub fn set_orders(&mut self, orders: PlanOrders) {
        orders.validate(self.core.query()).expect("invalid plan");
        self.compiled = Self::compile_all(&self.core, &orders);
        for (pm, ops) in self.metrics.iter_mut().zip(self.compiled.iter()) {
            pm.reset(ops.len());
        }
        self.orders = orders;
        self.reorder_count += 1;
    }

    /// Recompile operators against current index availability without
    /// changing orders (call after dropping/adding an index).
    pub fn recompile(&mut self) {
        self.compiled = Self::compile_all(&self.core, &self.orders);
    }

    /// Number of updates processed.
    pub fn tuples_processed(&self) -> u64 {
        self.tuples_processed
    }

    /// Number of result deltas emitted.
    pub fn outputs_emitted(&self) -> u64 {
        self.outputs_emitted
    }

    /// Times the plan was reordered.
    pub fn reorder_count(&self) -> u64 {
        self.reorder_count
    }

    /// Average updates processed per virtual second so far — the paper's
    /// tuple-processing-rate metric.
    pub fn processing_rate(&self) -> f64 {
        let secs = self.core.now_secs();
        if secs <= 0.0 {
            0.0
        } else {
            self.tuples_processed as f64 / secs
        }
    }

    /// A point-in-time [`TelemetrySnapshot`]: executor counters
    /// (`engine.*`), the processing-rate ratio, and per-pipeline /
    /// per-operator metrics (`pipeline.*`, `op.*`). See OBSERVABILITY.md
    /// for the namespace.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::new();
        s.counter("engine.tuples_processed", &[], self.tuples_processed);
        s.counter("engine.outputs_emitted", &[], self.outputs_emitted);
        s.counter("engine.reorderings", &[], self.reorder_count);
        s.counter("engine.virtual_ns", &[], self.core.now_ns());
        s.ratio(
            "engine.rate",
            &[],
            self.tuples_processed as f64,
            self.core.now_secs(),
        );
        for (pi, pm) in self.metrics.iter().enumerate() {
            pm.snapshot_into(&mut s, pi);
        }
        s
    }

    /// Process one update through its pipeline; returns the result deltas.
    pub fn process(&mut self, u: &Update) -> Vec<(Op, Composite)> {
        self.tuples_processed += 1;
        self.online.record_update(u.rel);
        let Some(tref) = self.core.apply_update(u) else {
            return Vec::new(); // delete of absent tuple
        };
        self.online
            .record_size(u.rel, self.core.relation(u.rel).len());

        let pipeline = u.rel.0 as usize;
        self.metrics[pipeline].record_update();
        let ops = &self.compiled[pipeline];
        let mut frontier = vec![Composite::unit(tref)];
        let mut next: Vec<Composite> = Vec::new();
        for (j, op) in ops.iter().enumerate() {
            if frontier.is_empty() {
                break;
            }
            next.clear();
            let t0 = self.core.now_ns();
            let in_count = frontier.len() as u64;
            for c in &frontier {
                let produced_before = next.len();
                self.core.probe_join(c, op, &mut next);
                // Identifiable single-predicate probe → selectivity sample.
                let total_preds = op.index_access.is_some() as usize + op.residual.len();
                if total_preds == 1 {
                    let source = op
                        .index_access
                        .map(|(_, p)| p.rel)
                        .unwrap_or_else(|| op.residual[0].1.rel);
                    let produced = next.len() - produced_before;
                    self.online.record_probe(
                        source,
                        op.target,
                        produced,
                        self.core.relation(op.target).len(),
                    );
                }
            }
            self.metrics[pipeline].record_op(
                j,
                in_count,
                next.len() as u64,
                self.core.now_ns() - t0,
            );
            std::mem::swap(&mut frontier, &mut next);
        }

        self.core.charge_outputs(frontier.len());
        self.outputs_emitted += frontier.len() as u64;
        frontier.into_iter().map(|c| (u.op, c)).collect()
    }

    /// Adaptive-ordering hook: snapshot online statistics and reorder if the
    /// greedy invariant is violated. Returns `true` when the plan changed.
    pub fn maybe_reorder(&mut self, orderer: &GreedyOrderer) -> bool {
        let now = self.core.now_ns();
        let stats = self.online.snapshot(now);
        if let Some(better) = orderer.check_violation(self.core.query(), &stats, &self.orders) {
            self.set_orders(better);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acq_stream::{QuerySchema, TupleData};

    fn upd(rel: u16, op: Op, vals: &[i64], ts: u64) -> Update {
        Update {
            op,
            rel: RelId(rel),
            data: TupleData::ints(vals),
            ts,
        }
    }

    fn setup_chain3() -> MJoin {
        MJoin::new(
            QuerySchema::chain3(),
            PlanOrders::identity(&QuerySchema::chain3()),
        )
    }

    #[test]
    fn example_3_1_end_to_end() {
        let mut m = setup_chain3();
        for (rel, vals) in [
            (0u16, vec![0i64]),
            (0, vec![2]),
            (1, vec![1, 2]),
            (1, vec![1, 3]),
            (1, vec![3, 4]),
            (2, vec![2]),
            (2, vec![6]),
        ] {
            let out = m.process(&upd(rel, Op::Insert, &vals, 0));
            assert!(out.is_empty(), "no complete join results yet");
        }
        let out = m.process(&upd(0, Op::Insert, &[1], 1));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, Op::Insert);
        assert_eq!(m.outputs_emitted(), 1);
        assert_eq!(m.tuples_processed(), 8);
    }

    #[test]
    fn deletes_produce_negative_deltas() {
        let mut m = setup_chain3();
        m.process(&upd(0, Op::Insert, &[1], 0));
        m.process(&upd(1, Op::Insert, &[1, 2], 1));
        let out = m.process(&upd(2, Op::Insert, &[2], 2));
        assert_eq!(out.len(), 1);
        // Deleting the S tuple removes the single result.
        let out = m.process(&upd(1, Op::Delete, &[1, 2], 3));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, Op::Delete);
        // Another T insertion now finds no S to join through.
        let out = m.process(&upd(2, Op::Insert, &[2], 4));
        assert!(out.is_empty(), "S is gone, no results");
    }

    #[test]
    fn delete_of_absent_tuple_emits_nothing() {
        let mut m = setup_chain3();
        let out = m.process(&upd(0, Op::Delete, &[42], 0));
        assert!(out.is_empty());
    }

    #[test]
    fn op_stats_accumulate() {
        let mut m = setup_chain3();
        m.process(&upd(1, Op::Insert, &[1, 2], 0));
        m.process(&upd(1, Op::Insert, &[1, 3], 0));
        m.process(&upd(0, Op::Insert, &[1], 1));
        let stats = m.op_stats(RelId(0));
        assert_eq!(stats[0].tuples_in, 1, "one update entered the pipeline");
        assert_eq!(stats[0].tuples_out, 2, "fanout 2 into S");
        assert!(stats[0].cost_ns > 0);
        assert_eq!(stats[1].tuples_in, 2);
        assert_eq!(stats[1].tuples_out, 0, "T empty");
    }

    #[test]
    fn processing_rate_positive() {
        let mut m = setup_chain3();
        for i in 0..100 {
            m.process(&upd(0, Op::Insert, &[i], i as u64));
        }
        assert!(m.processing_rate() > 0.0);
    }

    #[test]
    fn reorder_resets_stats_and_recompiles() {
        let q = QuerySchema::chain3();
        let mut m = setup_chain3();
        m.process(&upd(1, Op::Insert, &[1, 2], 0));
        m.process(&upd(0, Op::Insert, &[1], 1));
        assert!(m.op_stats(RelId(0))[0].tuples_in > 0);
        let mut orders = PlanOrders::identity(&q);
        orders.pipelines[0].order = vec![RelId(2), RelId(1)];
        m.set_orders(orders);
        assert_eq!(m.op_stats(RelId(0))[0].tuples_in, 0);
        assert_eq!(m.reorder_count(), 1);
        assert_eq!(m.orders().pipeline(RelId(0)).order[0], RelId(2));
        // Still correct after reorder.
        m.process(&upd(2, Op::Insert, &[2], 2));
        let out = m.process(&upd(0, Op::Insert, &[1], 3));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn maybe_reorder_adapts_to_skew() {
        // Start with identity orders on a star query, then feed a workload
        // where R3 has huge fanout; the orderer should move R3 last in R1's
        // pipeline.
        let q = QuerySchema::star(3);
        // Start from the *suboptimal* order [R3, R2] in ∆R1's pipeline.
        let mut orders = PlanOrders::identity(&q);
        orders.pipelines[0].order = vec![RelId(2), RelId(1)];
        let mut m = MJoin::new(q.clone(), orders);
        // R2 sparse (distinct keys), R3 dense (all same key).
        for i in 0..50 {
            m.process(&upd(1, Op::Insert, &[i, 0], i as u64));
        }
        for i in 0..50 {
            m.process(&upd(2, Op::Insert, &[7, i], (50 + i) as u64));
        }
        for i in 0..30 {
            m.process(&upd(0, Op::Insert, &[7, i], (100 + i) as u64));
        }
        // Only ∆R1's pipeline improves, so the whole-plan gain sits near the
        // default 20% hysteresis; use a tighter threshold for the check.
        let orderer = GreedyOrderer {
            violation_threshold: 0.05,
        };
        let changed = m.maybe_reorder(&orderer);
        assert!(changed, "should adapt to the skew");
        assert_eq!(
            m.orders().pipeline(RelId(0)).order,
            vec![RelId(1), RelId(2)],
            "join sparse R2 before dense R3"
        );
    }
}
