//! [`JoinCore`]: relation stores + query graph + virtual clock.
//!
//! The single-operator primitive [`JoinCore::probe_join`] implements `./_{i_j}`
//! of §3.1 — join a (composite) input tuple with one relation, enforcing all
//! compiled predicates, via hash index when the operator has an access path
//! and nested-loop scan otherwise — charging the virtual clock for every
//! physical step. Plain MJoin, the XJoin baseline, and the A-Caching engine
//! all drive this primitive; they differ only in *when* they call it and what
//! state they maintain around it.

use crate::clock::{CostModel, VirtualClock};
use crate::plan::CompiledOp;
use acq_relation::Relation;
use acq_stream::{Composite, Op, QuerySchema, RelId, TupleRef, Update};

/// Shared execution state: one [`Relation`] per joined relation, the query
/// graph, the cost model, and the virtual clock.
#[derive(Debug)]
pub struct JoinCore {
    query: QuerySchema,
    relations: Vec<Relation>,
    cost: CostModel,
    clock: VirtualClock,
    /// Index-probe matches resolved `TupleId → TupleRef` by direct slab
    /// indexing (i.e. without a second hash lookup). Telemetry:
    /// `probe.resolved_direct`.
    resolved_direct: u64,
}

impl JoinCore {
    /// Build a core for `query` with hash indexes on **every join-attribute
    /// column** (§7.1: hash indexes by default).
    pub fn new(query: QuerySchema) -> JoinCore {
        JoinCore::with_cost_model(query, CostModel::default())
    }

    /// Like [`JoinCore::new`] with an explicit cost model.
    pub fn with_cost_model(query: QuerySchema, cost: CostModel) -> JoinCore {
        let mut relations: Vec<Relation> = query
            .rel_ids()
            .map(|r| Relation::new(r, query.relation(r).arity()))
            .collect();
        for p in query.predicates() {
            for a in [p.left, p.right] {
                if !relations[a.rel.0 as usize].has_index(a.col) {
                    relations[a.rel.0 as usize].add_index(a.col);
                }
            }
        }
        JoinCore {
            query,
            relations,
            cost,
            clock: VirtualClock::new(),
            resolved_direct: 0,
        }
    }

    /// The query graph.
    pub fn query(&self) -> &QuerySchema {
        &self.query
    }

    /// Relation store accessor.
    pub fn relation(&self, r: RelId) -> &Relation {
        &self.relations[r.0 as usize]
    }

    /// Mutable relation store accessor (index management in experiments).
    pub fn relation_mut(&mut self, r: RelId) -> &mut Relation {
        &mut self.relations[r.0 as usize]
    }

    /// All relation stores.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Current virtual time (ns).
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Current virtual time (s).
    pub fn now_secs(&self) -> f64 {
        self.clock.now_secs()
    }

    /// Index-probe matches resolved to their [`TupleRef`] by direct slab
    /// indexing rather than a second hash lookup (the whole probe path
    /// after the one hash on the key value).
    pub fn resolved_direct(&self) -> u64 {
        self.resolved_direct
    }

    /// Charge arbitrary virtual time (callers layering extra machinery —
    /// caches, profiling — charge through this).
    pub fn charge(&mut self, ns: u64) {
        self.clock.charge(ns);
    }

    /// Apply an update to its relation store, charging maintenance cost.
    ///
    /// * `Insert` mints and returns the stored tuple's reference.
    /// * `Delete` removes one instance with matching data and returns its
    ///   reference; returns `None` (and charges nothing further) if no
    ///   instance matches — a window never produces such a delete, but
    ///   defensive callers may feed arbitrary update streams.
    pub fn apply_update(&mut self, u: &Update) -> Option<TupleRef> {
        match u.op {
            Op::Insert => {
                self.clock.charge(self.cost.store_insert);
                Some(self.relations[u.rel.0 as usize].insert(&u.data))
            }
            Op::Delete => {
                self.clock.charge(self.cost.store_delete);
                self.relations[u.rel.0 as usize].delete(&u.data)
            }
        }
    }

    /// Execute one join operator: join `input` with `op.target`, returning
    /// the matching concatenations `input · t`.
    ///
    /// Results are appended to `out` (callers reuse buffers across calls to
    /// keep the hot path allocation-free). Returns the number of matches.
    pub fn probe_join(
        &mut self,
        input: &Composite,
        op: &CompiledOp,
        out: &mut Vec<Composite>,
    ) -> usize {
        let rel = &self.relations[op.target.0 as usize];
        let before = out.len();
        match op.index_access {
            Some((col, probe_attr)) => {
                let v = input
                    .get(probe_attr)
                    .expect("probe attribute must be bound in the prefix");
                if v.is_null() {
                    // Equijoin: NULL matches nothing; still pay the probe.
                    self.clock.charge(self.cost.index_probe);
                    return 0;
                }
                let mut matches = 0usize;
                for t in rel.probe(col, v) {
                    matches += 1;
                    if residuals_hold(input, t, &op.residual) {
                        out.push(input.extend_with(t.clone()));
                    }
                }
                self.resolved_direct += matches as u64;
                let produced = out.len() - before;
                self.clock.charge(
                    self.cost.indexed_join(matches, op.residual.len())
                        + produced as u64 * self.cost.concat,
                );
                produced
            }
            None => {
                let scanned = rel.len();
                for t in rel.scan() {
                    if residuals_hold(input, t, &op.residual) {
                        out.push(input.extend_with(t.clone()));
                    }
                }
                let produced = out.len() - before;
                self.clock.charge(
                    self.cost.scan_join(scanned, op.residual.len())
                        + produced as u64 * self.cost.concat,
                );
                produced
            }
        }
    }

    /// [`probe_join`](Self::probe_join) with an owned input: the prefix is
    /// *moved* into the output for the final qualifying match instead of
    /// cloned, so a probe with m matches touches the prefix refcounts m-1
    /// times rather than m (and zero times for the common m = 1 case).
    /// Output content and order are identical to the by-ref version.
    pub fn probe_join_owned(
        &mut self,
        input: Composite,
        op: &CompiledOp,
        out: &mut Vec<Composite>,
    ) -> usize {
        let rel = &self.relations[op.target.0 as usize];
        let before = out.len();
        match op.index_access {
            Some((col, probe_attr)) => {
                let matches;
                {
                    let mut input = Some(input);
                    let mut it = {
                        let v = input
                            .as_ref()
                            .unwrap()
                            .get(probe_attr)
                            .expect("probe attribute must be bound in the prefix");
                        if v.is_null() {
                            // Equijoin: NULL matches nothing; still pay the probe.
                            self.clock.charge(self.cost.index_probe);
                            return 0;
                        }
                        // `probe` captures only the relation borrow, so `v`'s
                        // borrow of `input` ends with this block.
                        rel.probe(col, v).peekable()
                    };
                    let mut n = 0usize;
                    while let Some(t) = it.next() {
                        n += 1;
                        if !residuals_hold(input.as_ref().unwrap(), t, &op.residual) {
                            continue;
                        }
                        if it.peek().is_none() {
                            let mut c = input.take().unwrap();
                            c.push(t.clone());
                            out.push(c);
                        } else {
                            out.push(input.as_ref().unwrap().extend_with(t.clone()));
                        }
                    }
                    matches = n;
                }
                self.resolved_direct += matches as u64;
                let produced = out.len() - before;
                self.clock.charge(
                    self.cost.indexed_join(matches, op.residual.len())
                        + produced as u64 * self.cost.concat,
                );
                produced
            }
            None => {
                let scanned = rel.len();
                for t in rel.scan() {
                    if residuals_hold(&input, t, &op.residual) {
                        out.push(input.extend_with(t.clone()));
                    }
                }
                let produced = out.len() - before;
                self.clock.charge(
                    self.cost.scan_join(scanned, op.residual.len())
                        + produced as u64 * self.cost.concat,
                );
                produced
            }
        }
    }

    /// Run `seed` through a full compiled pipeline (no caches), returning all
    /// n-way results. This is the inner loop of plain MJoin processing.
    pub fn run_pipeline(&mut self, seed: Composite, ops: &[CompiledOp]) -> Vec<Composite> {
        let mut frontier = vec![seed];
        let mut next = Vec::new();
        for op in ops {
            if frontier.is_empty() {
                break;
            }
            next.clear();
            for c in frontier.drain(..) {
                self.probe_join_owned(c, op, &mut next);
            }
            std::mem::swap(&mut frontier, &mut next);
        }
        frontier
    }

    /// Charge the per-result output cost for `count` emitted deltas.
    pub fn charge_outputs(&mut self, count: usize) {
        self.clock.charge(count as u64 * self.cost.emit_output);
    }
}

/// Evaluate residual predicates `(target attr, prefix attr)` between a
/// candidate target tuple and the bound prefix.
#[inline]
fn residuals_hold(
    input: &Composite,
    candidate: &TupleRef,
    residual: &[(acq_stream::AttrRef, acq_stream::AttrRef)],
) -> bool {
    // Single-predicate equijoins (the overwhelmingly common compiled shape)
    // carry no residuals; skip the iterator machinery outright.
    if residual.is_empty() {
        return true;
    }
    residual.iter().all(|(t_attr, p_attr)| {
        let tv = candidate.data.get(t_attr.col.0);
        match input.get(*p_attr) {
            Some(pv) => tv.join_eq(pv),
            None => false,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CompiledOp, PipelineOrder};
    use acq_stream::{QuerySchema, TupleData};

    fn chain3_core() -> JoinCore {
        JoinCore::new(QuerySchema::chain3())
    }

    fn ins(core: &mut JoinCore, rel: u16, vals: &[i64]) -> TupleRef {
        core.apply_update(&Update::insert(RelId(rel), TupleData::ints(vals), 0))
            .unwrap()
    }

    #[test]
    fn indexes_created_on_join_columns() {
        let core = chain3_core();
        assert!(core.relation(RelId(0)).has_index(acq_stream::ColId(0))); // R.A
        assert!(core.relation(RelId(1)).has_index(acq_stream::ColId(0))); // S.A
        assert!(core.relation(RelId(1)).has_index(acq_stream::ColId(1))); // S.B
        assert!(core.relation(RelId(2)).has_index(acq_stream::ColId(0))); // T.B
    }

    #[test]
    fn paper_example_3_1() {
        // Figure 2(b): R1 = {0,2}, R2 = {(1,2),(1,3),(3,4)}, R3 = {2,6};
        // insertion ⟨1⟩ on ∆R1 produces ⟨1,1,2,2⟩ only.
        let mut core = chain3_core();
        ins(&mut core, 0, &[0]);
        ins(&mut core, 0, &[2]);
        ins(&mut core, 1, &[1, 2]);
        ins(&mut core, 1, &[1, 3]);
        ins(&mut core, 1, &[3, 4]);
        ins(&mut core, 2, &[2]);
        ins(&mut core, 2, &[6]);

        let r_new = ins(&mut core, 0, &[1]);
        let order = PipelineOrder {
            stream: RelId(0),
            order: vec![RelId(1), RelId(2)],
        };
        let ops = CompiledOp::compile_pipeline(core.query(), core.relations(), &order);
        let results = core.run_pipeline(Composite::unit(r_new), &ops);
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(
            r.get(acq_stream::AttrRef::new(0, 0)).unwrap().as_int(),
            Some(1)
        );
        assert_eq!(
            r.get(acq_stream::AttrRef::new(1, 1)).unwrap().as_int(),
            Some(2)
        );
        assert_eq!(
            r.get(acq_stream::AttrRef::new(2, 0)).unwrap().as_int(),
            Some(2)
        );
    }

    #[test]
    fn intermediate_fanout() {
        // The first operator in Example 3.1 produces two intermediate tuples.
        let mut core = chain3_core();
        ins(&mut core, 1, &[1, 2]);
        ins(&mut core, 1, &[1, 3]);
        let r_new = ins(&mut core, 0, &[1]);
        let op = CompiledOp::compile(core.query(), core.relations(), &[RelId(0)], RelId(1));
        let mut out = Vec::new();
        let n = core.probe_join(&Composite::unit(r_new), &op, &mut out);
        assert_eq!(n, 2);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn probe_charges_clock() {
        let mut core = chain3_core();
        ins(&mut core, 1, &[1, 2]);
        let before = core.now_ns();
        let r_new = ins(&mut core, 0, &[1]);
        let op = CompiledOp::compile(core.query(), core.relations(), &[RelId(0)], RelId(1));
        let mut out = Vec::new();
        core.probe_join(&Composite::unit(r_new), &op, &mut out);
        let cost = core.now_ns() - before;
        let m = core.cost_model();
        assert_eq!(cost, m.store_insert + m.indexed_join(1, 0) + m.concat);
    }

    #[test]
    fn scan_join_without_index() {
        let mut core = chain3_core();
        core.relation_mut(RelId(1)).drop_index(acq_stream::ColId(0));
        ins(&mut core, 1, &[1, 2]);
        ins(&mut core, 1, &[2, 3]);
        ins(&mut core, 1, &[1, 4]);
        let r_new = ins(&mut core, 0, &[1]);
        let op = CompiledOp::compile(core.query(), core.relations(), &[RelId(0)], RelId(1));
        assert!(op.index_access.is_none());
        let mut out = Vec::new();
        let n = core.probe_join(&Composite::unit(r_new), &op, &mut out);
        assert_eq!(n, 2, "two S tuples with A=1");
    }

    #[test]
    fn null_probe_matches_nothing() {
        let mut core = chain3_core();
        core.apply_update(&Update::insert(
            RelId(1),
            TupleData::new(vec![acq_stream::Value::Null, acq_stream::Value::Int(1)]),
            0,
        ));
        let r_new = core
            .apply_update(&Update::insert(
                RelId(0),
                TupleData::new(vec![acq_stream::Value::Null]),
                0,
            ))
            .unwrap();
        let op = CompiledOp::compile(core.query(), core.relations(), &[RelId(0)], RelId(1));
        let mut out = Vec::new();
        let n = core.probe_join(&Composite::unit(r_new), &op, &mut out);
        assert_eq!(n, 0, "NULL = NULL must not join");
    }

    #[test]
    fn delete_of_absent_tuple_is_noop() {
        let mut core = chain3_core();
        let removed = core.apply_update(&Update::delete(RelId(0), TupleData::ints(&[9]), 0));
        assert!(removed.is_none());
        assert_eq!(core.relation(RelId(0)).len(), 0);
    }

    #[test]
    fn run_pipeline_empty_frontier_short_circuits() {
        let mut core = chain3_core();
        // Empty S: pipeline dies at the first operator.
        let r_new = ins(&mut core, 0, &[1]);
        let order = PipelineOrder {
            stream: RelId(0),
            order: vec![RelId(1), RelId(2)],
        };
        let ops = CompiledOp::compile_pipeline(core.query(), core.relations(), &order);
        let results = core.run_pipeline(Composite::unit(r_new), &ops);
        assert!(results.is_empty());
    }
}
