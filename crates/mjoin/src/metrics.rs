//! Per-pipeline / per-operator execution metrics and their export into
//! [`acq_telemetry::TelemetrySnapshot`]s.
//!
//! Every executor in this crate (and the A-Caching engine in `acq`) drives
//! pipelines of compiled operators; the raw observables are identical —
//! tuples in, tuples out, virtual time spent — so the accumulation type
//! lives here and is shared. These counts are the raw material for the
//! paper's `d_ij` (drop/fanout) and `c_ij` (per-tuple cost) estimates.

use acq_telemetry::TelemetrySnapshot;

/// Per-operator execution statistics (the raw material for the paper's
/// `d_ij` / `c_ij` estimates).
#[derive(Debug, Clone, Copy, Default)]
pub struct OpStats {
    /// Tuples that entered this operator.
    pub tuples_in: u64,
    /// Tuples the operator produced.
    pub tuples_out: u64,
    /// Virtual nanoseconds spent in the operator.
    pub cost_ns: u64,
}

impl OpStats {
    /// Record one operator invocation.
    #[inline]
    pub fn record(&mut self, tuples_in: u64, tuples_out: u64, cost_ns: u64) {
        self.tuples_in += tuples_in;
        self.tuples_out += tuples_out;
        self.cost_ns += cost_ns;
    }
}

/// Accumulated metrics for one update pipeline: an update counter plus one
/// [`OpStats`] per operator position.
#[derive(Debug, Clone, Default)]
pub struct PipelineMetrics {
    /// Updates that entered this pipeline.
    pub updates: u64,
    /// Per-position operator statistics, in pipeline order.
    pub ops: Vec<OpStats>,
}

impl PipelineMetrics {
    /// Metrics for a pipeline of `n_ops` operators, all zero.
    pub fn new(n_ops: usize) -> PipelineMetrics {
        PipelineMetrics {
            updates: 0,
            ops: vec![OpStats::default(); n_ops],
        }
    }

    /// Count one update entering the pipeline.
    #[inline]
    pub fn record_update(&mut self) {
        self.updates += 1;
    }

    /// Record one invocation of the operator at position `j`.
    #[inline]
    pub fn record_op(&mut self, j: usize, tuples_in: u64, tuples_out: u64, cost_ns: u64) {
        self.ops[j].record(tuples_in, tuples_out, cost_ns);
    }

    /// Reset all counts, resizing to `n_ops` positions (used when a plan is
    /// reordered — per-position stats are order-specific).
    pub fn reset(&mut self, n_ops: usize) {
        self.updates = 0;
        self.ops.clear();
        self.ops.resize(n_ops, OpStats::default());
    }

    /// Emit this pipeline's metrics into a snapshot.
    ///
    /// Produces, per operator position `j` (labels `pipeline`, `op`):
    /// `op.tuples_in`, `op.tuples_out`, `op.cost_ns` counters plus the
    /// `op.fanout` ratio (`tuples_out / tuples_in`, the complement of the
    /// paper's drop probability `d_ij`), and a per-pipeline
    /// `pipeline.updates` counter.
    pub fn snapshot_into(&self, s: &mut TelemetrySnapshot, pipeline: usize) {
        let pl = pipeline.to_string();
        s.counter("pipeline.updates", &[("pipeline", &pl)], self.updates);
        for (j, op) in self.ops.iter().enumerate() {
            let opl = j.to_string();
            let labels: [(&str, &str); 2] = [("pipeline", &pl), ("op", &opl)];
            s.counter("op.tuples_in", &labels, op.tuples_in);
            s.counter("op.tuples_out", &labels, op.tuples_out);
            s.counter("op.cost_ns", &labels, op.cost_ns);
            s.ratio(
                "op.fanout",
                &labels,
                op.tuples_out as f64,
                op.tuples_in as f64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acq_telemetry::MetricValue;

    #[test]
    fn pipeline_metrics_snapshot_round_trip() {
        let mut pm = PipelineMetrics::new(2);
        pm.record_update();
        pm.record_op(0, 1, 3, 500);
        pm.record_op(1, 3, 0, 900);
        let mut s = TelemetrySnapshot::new();
        pm.snapshot_into(&mut s, 0);
        assert_eq!(
            s.get("op.tuples_out", &[("pipeline", "0"), ("op", "0")]),
            Some(&MetricValue::Counter(3))
        );
        assert_eq!(
            s.get("pipeline.updates", &[("pipeline", "0")]),
            Some(&MetricValue::Counter(1))
        );
        let fanout = s
            .get("op.fanout", &[("pipeline", "0"), ("op", "0")])
            .and_then(|v| v.as_ratio());
        assert_eq!(fanout, Some(3.0));
    }

    #[test]
    fn reset_resizes_and_zeroes() {
        let mut pm = PipelineMetrics::new(1);
        pm.record_update();
        pm.record_op(0, 5, 5, 100);
        pm.reset(3);
        assert_eq!(pm.updates, 0);
        assert_eq!(pm.ops.len(), 3);
        assert_eq!(pm.ops[0].tuples_in, 0);
    }
}
