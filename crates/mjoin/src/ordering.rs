//! Adaptive join ordering in the spirit of A-Greedy.
//!
//! The paper's modular approach (§4) takes the join ordering from previous
//! work — A-Greedy \[5\] — and layers cache selection on top: *"We use A-Greedy
//! from \[5\] for adaptive join ordering in our implementation, but the
//! benefits of our approach should be independent of the ordering algorithm
//! used."*
//!
//! [`GreedyOrderer`] implements the greedy rule specialized to join
//! pipelines: order each `∆R_i` pipeline to minimize expected intermediate
//! cardinality at every step (pick next the relation with the smallest
//! expected fanout against the already-joined set, preferring connected
//! relations to avoid cross products). Like A-Greedy, it re-derives the
//! ordering from current statistics and reports whether the greedy invariant
//! was violated — the adaptive executor reorders (and flushes affected
//! caches, §4.5 step 5) only when it was.

use crate::plan::{PipelineOrder, PlanOrders};
use crate::stats::WorkloadStats;
use acq_stream::{QuerySchema, RelId};

/// Greedy minimum-intermediate-cardinality orderer.
#[derive(Debug, Clone)]
pub struct GreedyOrderer {
    /// Relative tolerance before a better ordering is considered a violation
    /// (hysteresis so statistical noise doesn't cause thrashing).
    pub violation_threshold: f64,
}

impl Default for GreedyOrderer {
    fn default() -> GreedyOrderer {
        GreedyOrderer {
            violation_threshold: 0.2,
        }
    }
}

impl GreedyOrderer {
    /// Derive the greedy order for one pipeline.
    ///
    /// Expected cardinality after joining `j` into the current set `S` is
    /// `card(S) × Π_{s∈S, s~j} sel(s,j) × |R_j|` where `s ~ j` ranges over
    /// predicates between set members and `j` (via the query graph). Among
    /// relations connected to `S` (all of them, if none are connected — a
    /// forced cross product), pick the one minimizing that cardinality,
    /// breaking ties toward cheaper (smaller) relations and then lower ids
    /// for determinism.
    pub fn order_pipeline(
        &self,
        query: &QuerySchema,
        stats: &WorkloadStats,
        stream: RelId,
    ) -> PipelineOrder {
        let n = query.num_relations();
        let mut in_set = vec![false; n];
        in_set[stream.0 as usize] = true;
        let mut order = Vec::with_capacity(n - 1);
        for _ in 1..n {
            let set: Vec<RelId> = (0..n as u16)
                .map(RelId)
                .filter(|r| in_set[r.0 as usize])
                .collect();
            let candidates: Vec<RelId> = (0..n as u16)
                .map(RelId)
                .filter(|r| !in_set[r.0 as usize])
                .collect();
            let connected: Vec<RelId> = candidates
                .iter()
                .copied()
                .filter(|&c| query.predicates_between(&[c], &set).next().is_some())
                .collect();
            let pool = if connected.is_empty() {
                &candidates
            } else {
                &connected
            };
            let best = pool
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let fa = Self::growth_factor(query, stats, &set, a);
                    let fb = Self::growth_factor(query, stats, &set, b);
                    fa.partial_cmp(&fb)
                        .unwrap()
                        .then_with(|| {
                            stats.sizes[a.0 as usize]
                                .partial_cmp(&stats.sizes[b.0 as usize])
                                .unwrap()
                        })
                        .then_with(|| a.0.cmp(&b.0))
                })
                .expect("pool non-empty");
            in_set[best.0 as usize] = true;
            order.push(best);
        }
        PipelineOrder { stream, order }
    }

    /// Multiplicative growth of intermediate cardinality when joining `j`
    /// after `set`.
    fn growth_factor(query: &QuerySchema, stats: &WorkloadStats, set: &[RelId], j: RelId) -> f64 {
        let mut sel_product = 1.0;
        let mut any = false;
        for p in query.predicates_between(&[j], set) {
            let other = if p.left.rel == j {
                p.right.rel
            } else {
                p.left.rel
            };
            sel_product *= stats.sel[other.0 as usize][j.0 as usize];
            any = true;
        }
        if !any {
            sel_product = 1.0; // cross product: full fanout
        }
        sel_product * stats.sizes[j.0 as usize].max(1.0)
    }

    /// Derive the full plan (all pipelines).
    pub fn plan(&self, query: &QuerySchema, stats: &WorkloadStats) -> PlanOrders {
        PlanOrders {
            pipelines: query
                .rel_ids()
                .map(|r| self.order_pipeline(query, stats, r))
                .collect(),
        }
    }

    /// Estimated unit-time processing cost of a plan: for each pipeline, the
    /// stream rate times the cumulative expected intermediate cardinality
    /// (each intermediate tuple costs roughly one probe + match work).
    pub fn plan_cost(&self, query: &QuerySchema, stats: &WorkloadStats, plan: &PlanOrders) -> f64 {
        let mut total = 0.0;
        for p in &plan.pipelines {
            let mut card = 1.0;
            let mut pipeline_work = 0.0;
            let mut set = vec![p.stream];
            for &next in &p.order {
                // Each of `card` tuples probes `next`.
                pipeline_work += card;
                card *= Self::growth_factor(query, stats, &set, next);
                set.push(next);
            }
            pipeline_work += card; // producing the final results
            total += stats.rates[p.stream.0 as usize] * pipeline_work;
        }
        total
    }

    /// Would re-deriving the plan from `stats` improve on `current` by more
    /// than the hysteresis threshold? Returns the better plan if so — the
    /// A-Greedy-style violation check.
    pub fn check_violation(
        &self,
        query: &QuerySchema,
        stats: &WorkloadStats,
        current: &PlanOrders,
    ) -> Option<PlanOrders> {
        let fresh = self.plan(query, stats);
        if fresh == *current {
            return None;
        }
        let cost_cur = self.plan_cost(query, stats, current);
        let cost_new = self.plan_cost(query, stats, &fresh);
        if cost_new < cost_cur * (1.0 - self.violation_threshold) {
            Some(fresh)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_prefers_connected_order() {
        // R(A) ⋈ S(A,B) ⋈ T(B): from R, joining S first is connected; T first
        // would be a cross product. Greedy must pick S.
        let q = QuerySchema::chain3();
        let stats = WorkloadStats::uniform(3, 100.0);
        let o = GreedyOrderer::default();
        let p = o.order_pipeline(&q, &stats, RelId(0));
        assert_eq!(p.order, vec![RelId(1), RelId(2)]);
        // From T likewise: S first.
        let p = o.order_pipeline(&q, &stats, RelId(2));
        assert_eq!(p.order, vec![RelId(1), RelId(0)]);
    }

    #[test]
    fn selective_relation_joined_first() {
        // Star join: R2 has tiny fanout, R3 huge — greedy puts R2 before R3.
        let q = QuerySchema::star(4);
        let mut stats = WorkloadStats::uniform(4, 100.0);
        stats.set_sel(RelId(0), RelId(1), 0.001); // fanout 0.1
        stats.set_sel(RelId(0), RelId(2), 0.1); // fanout 10
        stats.set_sel(RelId(0), RelId(3), 0.01); // fanout 1
        let o = GreedyOrderer::default();
        let p = o.order_pipeline(&q, &stats, RelId(0));
        assert_eq!(p.order[0], RelId(1));
        assert_eq!(p.order.last(), Some(&RelId(2)));
    }

    #[test]
    fn plan_covers_all_streams() {
        let q = QuerySchema::star(5);
        let stats = WorkloadStats::uniform(5, 50.0);
        let plan = GreedyOrderer::default().plan(&q, &stats);
        plan.validate(&q).unwrap();
    }

    #[test]
    fn plan_cost_monotone_in_rate() {
        let q = QuerySchema::chain3();
        let o = GreedyOrderer::default();
        let stats = WorkloadStats::uniform(3, 100.0);
        let plan = o.plan(&q, &stats);
        let c1 = o.plan_cost(&q, &stats, &plan);
        let mut fast = stats.clone();
        fast.rates[0] = 10.0;
        let c2 = o.plan_cost(&q, &fast, &plan);
        assert!(c2 > c1);
    }

    #[test]
    fn violation_triggers_on_large_shift() {
        let q = QuerySchema::star(4);
        let o = GreedyOrderer::default();
        let mut stats = WorkloadStats::uniform(4, 100.0);
        stats.set_sel(RelId(0), RelId(1), 0.001);
        stats.set_sel(RelId(0), RelId(2), 0.5);
        let plan = o.plan(&q, &stats);
        assert!(
            o.check_violation(&q, &stats, &plan).is_none(),
            "fresh plan is stable"
        );
        // Invert the world: R1 now expensive, R2 cheap.
        stats.set_sel(RelId(0), RelId(1), 0.5);
        stats.set_sel(RelId(0), RelId(2), 0.001);
        let better = o.check_violation(&q, &stats, &plan);
        assert!(better.is_some(), "large shift must trigger reordering");
        let better = better.unwrap();
        assert_ne!(better, plan);
    }

    #[test]
    fn small_shift_does_not_thrash() {
        let q = QuerySchema::chain3();
        let o = GreedyOrderer::default();
        let mut stats = WorkloadStats::uniform(3, 100.0);
        let plan = o.plan(&q, &stats);
        // 5% wobble in one selectivity: same-or-similar plan, no violation.
        stats.set_sel(RelId(0), RelId(1), 0.0105);
        assert!(o.check_violation(&q, &stats, &plan).is_none());
    }
}
