//! XJoin baseline: binary join trees with materialized subresults.
//!
//! §1 of the paper: *"an XJoin, which is a tree of two-way joins, maintains a
//! join subresult for each intermediate two-way join in the plan"* (Figure
//! 1(b)). The root's result is streamed out, not stored; every other internal
//! node keeps its subresult fully materialized and incrementally maintained.
//!
//! [`XJoin`] implements the executor; [`JoinTree`] the plan shape;
//! [`best_tree`] an exhaustive search over all binary trees ranked by an
//! estimated unit-time cost (the paper's `X` baseline is also *"chosen by
//! exhaustive search"*, §7.3).

use crate::clock::CostModel;
use crate::exec::JoinCore;
use crate::plan::CompiledOp;
use crate::stats::WorkloadStats;
use acq_sketch::FxHashMap;
use acq_stream::schema::EquivClassId;
use acq_stream::{AttrRef, Composite, Op, QuerySchema, RelId, Update, Value};
use std::fmt;

/// A binary join tree over the query's relations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum JoinTree {
    /// A base relation.
    Leaf(RelId),
    /// A two-way join of two subtrees.
    Node(Box<JoinTree>, Box<JoinTree>),
}

impl JoinTree {
    /// Convenience: left-deep tree over `rels` in the given order.
    pub fn left_deep(rels: &[RelId]) -> JoinTree {
        assert!(rels.len() >= 2);
        let mut t = JoinTree::Leaf(rels[0]);
        for &r in &rels[1..] {
            t = JoinTree::Node(Box::new(t), Box::new(JoinTree::Leaf(r)));
        }
        t
    }

    /// Relations covered by this subtree, sorted.
    pub fn rels(&self) -> Vec<RelId> {
        let mut v = Vec::new();
        self.collect_rels(&mut v);
        v.sort_unstable();
        v
    }

    fn collect_rels(&self, out: &mut Vec<RelId>) {
        match self {
            JoinTree::Leaf(r) => out.push(*r),
            JoinTree::Node(l, r) => {
                l.collect_rels(out);
                r.collect_rels(out);
            }
        }
    }

    /// Number of internal nodes.
    pub fn internal_nodes(&self) -> usize {
        match self {
            JoinTree::Leaf(_) => 0,
            JoinTree::Node(l, r) => 1 + l.internal_nodes() + r.internal_nodes(),
        }
    }
}

impl fmt::Display for JoinTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinTree::Leaf(r) => write!(f, "R{}", r.0),
            JoinTree::Node(l, r) => write!(f, "({l} ⋈ {r})"),
        }
    }
}

/// Reference to a child of an internal node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChildRef {
    Leaf(RelId),
    Node(usize),
}

/// Identity of a stored composite row (packed, `Copy`).
type RowKey = acq_stream::CompositeId;

/// Materialized subresult of one internal node: rows indexed by the
/// equivalence-class values crossing to the node's sibling.
#[derive(Debug, Default)]
struct SubStore {
    rows: FxHashMap<RowKey, Composite>,
    /// probe-key values → row keys.
    index: FxHashMap<Vec<Value>, Vec<RowKey>>,
    /// Attributes (one per crossing class at the parent boundary) used to
    /// compute a stored row's index key.
    key_attrs: Vec<AttrRef>,
    bytes: usize,
}

impl SubStore {
    fn key_of(&self, c: &Composite) -> Vec<Value> {
        self.key_attrs
            .iter()
            .map(|a| c.get(*a).expect("key attr bound in subresult").clone())
            .collect()
    }

    fn insert(&mut self, c: Composite) {
        let key = self.key_of(&c);
        let id = c.identity();
        self.bytes += c.ref_memory_bytes() + key.iter().map(Value::memory_bytes).sum::<usize>();
        self.index.entry(key).or_default().push(id);
        self.rows.insert(id, c);
    }

    fn delete(&mut self, c: &Composite) {
        let id = c.identity();
        if let Some(stored) = self.rows.remove(&id) {
            let key = self.key_of(&stored);
            self.bytes -=
                stored.ref_memory_bytes() + key.iter().map(Value::memory_bytes).sum::<usize>();
            if let Some(list) = self.index.get_mut(&key) {
                if let Some(pos) = list.iter().position(|k| *k == id) {
                    list.swap_remove(pos);
                }
                if list.is_empty() {
                    self.index.remove(&key);
                }
            }
        }
    }

    fn probe(&self, key: &[Value]) -> impl Iterator<Item = &Composite> {
        self.index
            .get(key)
            .into_iter()
            .flat_map(|list| list.iter())
            .map(|id| self.rows.get(id).expect("index/rows in sync"))
    }

    fn len(&self) -> usize {
        self.rows.len()
    }
}

/// One internal node of the flattened tree.
#[derive(Debug)]
struct NodeState {
    left: ChildRef,
    right: ChildRef,
    rels: Vec<RelId>,
    /// Crossing classes between left and right child (the node's own join).
    /// For each: (class, attr on left side, attr on right side).
    join_keys: Vec<(EquivClassId, AttrRef, AttrRef)>,
    /// Materialization; `None` for the root.
    store: Option<SubStore>,
    /// Parent node index (`usize::MAX` for root).
    parent: usize,
}

/// XJoin executor.
#[derive(Debug)]
pub struct XJoin {
    core: JoinCore,
    tree: JoinTree,
    nodes: Vec<NodeState>,
    /// For each relation: path of node indexes from its leaf's parent to the
    /// root, plus which side the relation enters on at each step.
    paths: Vec<Vec<(usize, bool)>>, // (node idx, entering_left)
    tuples_processed: u64,
    outputs_emitted: u64,
}

impl XJoin {
    /// Build an XJoin for `query` with plan `tree`.
    ///
    /// # Panics
    /// Panics if the tree's leaves are not exactly the query's relations.
    pub fn new(query: QuerySchema, tree: JoinTree) -> XJoin {
        XJoin::from_core(JoinCore::new(query), tree)
    }

    /// Build from a preconfigured core.
    pub fn from_core(core: JoinCore, tree: JoinTree) -> XJoin {
        let n = core.query().num_relations();
        let expected: Vec<RelId> = core.query().rel_ids().collect();
        assert_eq!(tree.rels(), expected, "tree must cover the query exactly");

        let mut nodes: Vec<NodeState> = Vec::new();
        build_nodes(core.query(), &tree, &mut nodes);
        let root = nodes.len() - 1;
        // Root is streamed, not stored.
        nodes[root].store = None;

        // Parent links.
        for i in 0..nodes.len() {
            for child in [nodes[i].left, nodes[i].right] {
                if let ChildRef::Node(c) = child {
                    nodes[c].parent = i;
                }
            }
        }
        // Index keys for materialized nodes: crossing classes at the parent
        // boundary, evaluated from the node's side.
        for i in 0..nodes.len() {
            let parent = nodes[i].parent;
            if parent == usize::MAX {
                continue;
            }
            let sibling_rels: Vec<RelId> = {
                let p = &nodes[parent];
                let sib = if p.left == ChildRef::Node(i) {
                    p.right
                } else {
                    p.left
                };
                child_rels(&nodes, sib)
            };
            let classes = core.query().crossing_classes(&sibling_rels, &nodes[i].rels);
            let key_attrs = core
                .query()
                .class_representatives(&classes, &nodes[i].rels)
                .expect("crossing classes have representatives on the node side");
            if let Some(store) = nodes[i].store.as_mut() {
                store.key_attrs = key_attrs;
            }
        }

        // Leaf → root paths.
        let mut paths = vec![Vec::new(); n];
        for (idx, node) in nodes.iter().enumerate() {
            for (child, is_left) in [(node.left, true), (node.right, false)] {
                if let ChildRef::Leaf(r) = child {
                    // Start of the path for r.
                    let mut path = vec![(idx, is_left)];
                    let mut cur = idx;
                    while nodes[cur].parent != usize::MAX {
                        let p = nodes[cur].parent;
                        let entering_left = nodes[p].left == ChildRef::Node(cur);
                        path.push((p, entering_left));
                        cur = p;
                    }
                    paths[r.0 as usize] = path;
                }
            }
        }

        XJoin {
            core,
            tree,
            nodes,
            paths,
            tuples_processed: 0,
            outputs_emitted: 0,
        }
    }

    /// The plan shape.
    pub fn tree(&self) -> &JoinTree {
        &self.tree
    }

    /// The execution core.
    pub fn core(&self) -> &JoinCore {
        &self.core
    }

    /// Total bytes of materialized subresults (the paper's Figure 13 memory
    /// axis).
    pub fn materialized_bytes(&self) -> usize {
        self.nodes
            .iter()
            .filter_map(|n| n.store.as_ref())
            .map(|s| s.bytes)
            .sum()
    }

    /// Total materialized rows across internal nodes.
    pub fn materialized_rows(&self) -> usize {
        self.nodes
            .iter()
            .filter_map(|n| n.store.as_ref())
            .map(SubStore::len)
            .sum()
    }

    /// Updates processed so far.
    pub fn tuples_processed(&self) -> u64 {
        self.tuples_processed
    }

    /// Result deltas emitted so far.
    pub fn outputs_emitted(&self) -> u64 {
        self.outputs_emitted
    }

    /// Human-readable description of each internal node: covered relations,
    /// join equivalence classes, and current materialized row count.
    pub fn describe_nodes(&self) -> Vec<String> {
        self.nodes
            .iter()
            .map(|n| {
                let rels: Vec<String> = n.rels.iter().map(|r| format!("R{}", r.0)).collect();
                let keys: Vec<String> = n
                    .join_keys
                    .iter()
                    .map(|(c, l, r)| format!("class{}:{}={}", c.0, l, r))
                    .collect();
                let rows = n.store.as_ref().map(SubStore::len);
                match rows {
                    Some(rows) => format!(
                        "[{}] on {} ({} rows materialized)",
                        rels.join(","),
                        keys.join(","),
                        rows
                    ),
                    None => format!(
                        "[{}] on {} (root, streamed)",
                        rels.join(","),
                        keys.join(",")
                    ),
                }
            })
            .collect()
    }

    /// Updates per virtual second.
    pub fn processing_rate(&self) -> f64 {
        let secs = self.core.now_secs();
        if secs <= 0.0 {
            0.0
        } else {
            self.tuples_processed as f64 / secs
        }
    }

    /// Process one update; returns the n-way result deltas.
    pub fn process(&mut self, u: &Update) -> Vec<(Op, Composite)> {
        self.tuples_processed += 1;
        let Some(tref) = self.core.apply_update(u) else {
            return Vec::new();
        };
        let mut deltas = vec![Composite::unit(tref)];
        let path = self.paths[u.rel.0 as usize].clone();
        for (node_idx, entering_left) in path {
            if deltas.is_empty() {
                break;
            }
            deltas = self.join_at_node(node_idx, entering_left, deltas, u.op);
        }
        self.core.charge_outputs(deltas.len());
        self.outputs_emitted += deltas.len() as u64;
        deltas.into_iter().map(|c| (u.op, c)).collect()
    }

    /// Join a batch of child deltas with the opposite child at `node_idx`,
    /// maintain the node's materialization, and return the node's deltas.
    fn join_at_node(
        &mut self,
        node_idx: usize,
        entering_left: bool,
        deltas: Vec<Composite>,
        op: Op,
    ) -> Vec<Composite> {
        let opposite = if entering_left {
            self.nodes[node_idx].right
        } else {
            self.nodes[node_idx].left
        };
        let mut out = Vec::new();
        match opposite {
            ChildRef::Leaf(r) => {
                // Compile an operator joining the leaf against the delta's
                // bound relations (all rels of the entering child).
                let entering = if entering_left {
                    self.nodes[node_idx].left
                } else {
                    self.nodes[node_idx].right
                };
                let prefix = child_rels(&self.nodes, entering);
                let op_c =
                    CompiledOp::compile(self.core.query(), self.core.relations(), &prefix, r);
                for d in &deltas {
                    self.core.probe_join(d, &op_c, &mut out);
                }
            }
            ChildRef::Node(sib) => {
                // Probe the sibling's materialization on the crossing-class
                // key evaluated from the delta side.
                let (key_attrs_delta, probe_cost, hit_cost) = {
                    assert!(
                        self.nodes[sib].store.is_some(),
                        "non-root internal nodes are materialized"
                    );
                    let entering_rels = if entering_left {
                        child_rels(&self.nodes, self.nodes[node_idx].left)
                    } else {
                        child_rels(&self.nodes, self.nodes[node_idx].right)
                    };
                    let classes: Vec<EquivClassId> = self
                        .core
                        .query()
                        .crossing_classes(&entering_rels, &self.nodes[sib].rels);
                    let key_attrs = self
                        .core
                        .query()
                        .class_representatives(&classes, &entering_rels)
                        .expect("representatives on delta side");
                    let m = self.core.cost_model();
                    (key_attrs, m.index_probe, m.per_match + m.concat)
                };
                let mut total_cost = 0u64;
                for d in &deltas {
                    let key: Vec<Value> = key_attrs_delta
                        .iter()
                        .map(|a| d.get(*a).expect("delta binds key attr").clone())
                        .collect();
                    total_cost += probe_cost;
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    let store = self.nodes[sib].store.as_ref().unwrap();
                    for partner in store.probe(&key) {
                        out.push(d.concat(partner));
                        total_cost += hit_cost;
                    }
                }
                self.core.charge(total_cost);
            }
        }
        // Maintain this node's materialization (root has none).
        let maint_cost = {
            let m = self.core.cost_model();
            match op {
                Op::Insert => m.store_insert,
                Op::Delete => m.store_delete,
            }
        };
        if self.nodes[node_idx].store.is_some() {
            let store = self.nodes[node_idx].store.as_mut().unwrap();
            match op {
                Op::Insert => {
                    for c in &out {
                        store.insert(c.clone());
                    }
                }
                Op::Delete => {
                    for c in &out {
                        store.delete(c);
                    }
                }
            }
            self.core.charge(out.len() as u64 * maint_cost);
        }
        out
    }
}

fn child_rels(nodes: &[NodeState], c: ChildRef) -> Vec<RelId> {
    match c {
        ChildRef::Leaf(r) => vec![r],
        ChildRef::Node(i) => nodes[i].rels.clone(),
    }
}

/// Flatten the tree into post-order `NodeState`s; returns the subtree's
/// child-ref.
fn build_nodes(query: &QuerySchema, tree: &JoinTree, nodes: &mut Vec<NodeState>) -> ChildRef {
    match tree {
        JoinTree::Leaf(r) => ChildRef::Leaf(*r),
        JoinTree::Node(l, r) => {
            let left = build_nodes(query, l, nodes);
            let right = build_nodes(query, r, nodes);
            let mut rels = match left {
                ChildRef::Leaf(x) => vec![x],
                ChildRef::Node(i) => nodes[i].rels.clone(),
            };
            rels.extend(match right {
                ChildRef::Leaf(x) => vec![x],
                ChildRef::Node(i) => nodes[i].rels.clone(),
            });
            rels.sort_unstable();
            let left_rels = match left {
                ChildRef::Leaf(x) => vec![x],
                ChildRef::Node(i) => nodes[i].rels.clone(),
            };
            let right_rels = match right {
                ChildRef::Leaf(x) => vec![x],
                ChildRef::Node(i) => nodes[i].rels.clone(),
            };
            let classes = query.crossing_classes(&left_rels, &right_rels);
            let join_keys = classes
                .iter()
                .map(|&cls| {
                    let la = query.class_representatives(&[cls], &left_rels).unwrap()[0];
                    let ra = query.class_representatives(&[cls], &right_rels).unwrap()[0];
                    (cls, la, ra)
                })
                .collect();
            nodes.push(NodeState {
                left,
                right,
                rels,
                join_keys,
                store: Some(SubStore::default()),
                parent: usize::MAX,
            });
            ChildRef::Node(nodes.len() - 1)
        }
    }
}

/// Estimated cardinality of the join of `rels` under independence
/// assumptions: product of sizes, discounted once per "extra" member of each
/// equivalence class present in the set.
pub fn estimated_size(query: &QuerySchema, stats: &WorkloadStats, rels: &[RelId]) -> f64 {
    let mut size: f64 = rels
        .iter()
        .map(|r| stats.sizes[r.0 as usize].max(0.0))
        .product();
    // For each equivalence class, count predicates spanning inside the set;
    // apply each spanning predicate's selectivity once per independent
    // constraint (class members − 1).
    let mut per_class: FxHashMap<EquivClassId, (usize, f64, usize)> = FxHashMap::default();
    for p in query.predicates() {
        if rels.contains(&p.left.rel) && rels.contains(&p.right.rel) {
            if let Some(c) = query.equiv_class(p.left) {
                let e = per_class.entry(c).or_insert((0, 0.0, 0));
                e.0 += 1;
                e.1 += stats.sel[p.left.rel.0 as usize][p.right.rel.0 as usize];
            }
        }
        // Count class membership inside the set (for transitive closure).
        for a in [p.left, p.right] {
            if rels.contains(&a.rel) {
                if let Some(c) = query.equiv_class(a) {
                    per_class.entry(c).or_insert((0, 0.0, 0));
                }
            }
        }
    }
    for (&class, &(npreds, sel_sum, _)) in per_class.iter() {
        if npreds == 0 {
            continue;
        }
        let avg_sel = (sel_sum / npreds as f64).clamp(0.0, 1.0);
        // Members of this class inside the set:
        let members = rels
            .iter()
            .filter(|&&r| {
                let schema = query.relation(r);
                (0..schema.arity() as u16).any(|c| {
                    query.equiv_class(AttrRef {
                        rel: r,
                        col: acq_stream::ColId(c),
                    }) == Some(class)
                })
            })
            .count();
        if members >= 2 {
            size *= avg_sel.powi(members as i32 - 1);
        }
    }
    size
}

/// Estimated unit-time maintenance cost of an XJoin tree: for each stream,
/// rate × (sum over ancestor nodes of expected delta cardinality there),
/// where the delta cardinality at node `N ∋ i` is `|N| / |R_i|`.
pub fn estimated_tree_cost(query: &QuerySchema, stats: &WorkloadStats, tree: &JoinTree) -> f64 {
    let mut cost = 0.0;
    let mut node_sets: Vec<Vec<RelId>> = Vec::new();
    collect_node_sets(tree, &mut node_sets);
    for r in query.rel_ids() {
        let rate = stats.rates[r.0 as usize];
        let size_r = stats.sizes[r.0 as usize].max(1.0);
        for set in &node_sets {
            if set.contains(&r) {
                let card = estimated_size(query, stats, set) / size_r;
                cost += rate * card.max(1.0);
            }
        }
    }
    cost
}

fn collect_node_sets(tree: &JoinTree, out: &mut Vec<Vec<RelId>>) {
    if let JoinTree::Node(l, r) = tree {
        collect_node_sets(l, out);
        collect_node_sets(r, out);
        out.push(tree.rels());
    }
}

/// Total expected memory (rows) of a tree's materialized non-root nodes.
pub fn estimated_tree_memory_rows(
    query: &QuerySchema,
    stats: &WorkloadStats,
    tree: &JoinTree,
) -> f64 {
    let mut sets = Vec::new();
    collect_node_sets(tree, &mut sets);
    sets.pop(); // root not materialized
    sets.iter().map(|s| estimated_size(query, stats, s)).sum()
}

/// Enumerate every binary join tree over the query's relations.
/// Exponential — intended for `n ≤ 7` (the paper's XJoin comparisons use
/// `n = 4`).
pub fn all_trees(query: &QuerySchema) -> Vec<JoinTree> {
    let rels: Vec<RelId> = query.rel_ids().collect();
    enumerate(&rels)
}

fn enumerate(rels: &[RelId]) -> Vec<JoinTree> {
    if rels.len() == 1 {
        return vec![JoinTree::Leaf(rels[0])];
    }
    let mut out = Vec::new();
    let n = rels.len();
    // Iterate proper subsets containing rels[0] (to halve symmetric
    // duplicates): mask bits select which of rels[1..] join the left side;
    // the all-ones mask (empty right side) is excluded by the range.
    for mask in 0u32..((1 << (n - 1)) - 1) {
        let mut left = vec![rels[0]];
        let mut right = Vec::new();
        for (i, &r) in rels.iter().enumerate().skip(1) {
            if mask & (1 << (i - 1)) != 0 {
                left.push(r);
            } else {
                right.push(r);
            }
        }
        if right.is_empty() {
            continue;
        }
        for l in enumerate(&left) {
            for r in enumerate(&right) {
                out.push(JoinTree::Node(Box::new(l.clone()), Box::new(r.clone())));
            }
        }
    }
    out
}

/// Exhaustive best-tree search by estimated cost; optionally constrained to
/// trees whose estimated materialized rows fit `memory_rows`.
pub fn best_tree(
    query: &QuerySchema,
    stats: &WorkloadStats,
    memory_rows: Option<f64>,
) -> Option<JoinTree> {
    all_trees(query)
        .into_iter()
        .filter(|t| match memory_rows {
            Some(cap) => estimated_tree_memory_rows(query, stats, t) <= cap,
            None => true,
        })
        .min_by(|a, b| {
            estimated_tree_cost(query, stats, a)
                .partial_cmp(&estimated_tree_cost(query, stats, b))
                .unwrap()
        })
}

/// Unused cost-model accessor kept for cost experiments.
pub fn subresult_maintenance_cost(model: &CostModel, rows: usize) -> u64 {
    rows as u64 * model.store_insert
}

#[cfg(test)]
mod tests {
    use super::*;
    use acq_stream::TupleData;

    fn upd(rel: u16, op: Op, vals: &[i64], ts: u64) -> Update {
        Update {
            op,
            rel: RelId(rel),
            data: TupleData::ints(vals),
            ts,
        }
    }

    #[test]
    fn tree_shapes() {
        let t = JoinTree::left_deep(&[RelId(0), RelId(1), RelId(2)]);
        assert_eq!(t.rels(), vec![RelId(0), RelId(1), RelId(2)]);
        assert_eq!(t.internal_nodes(), 2);
        assert_eq!(format!("{t}"), "((R0 ⋈ R1) ⋈ R2)");
    }

    #[test]
    fn enumeration_counts() {
        // Unordered binary trees over n labeled leaves: (2n-3)!! shapes.
        assert_eq!(all_trees(&QuerySchema::star(2)).len(), 1);
        assert_eq!(all_trees(&QuerySchema::star(3)).len(), 3);
        assert_eq!(all_trees(&QuerySchema::star(4)).len(), 15);
        assert_eq!(all_trees(&QuerySchema::star(5)).len(), 105);
    }

    #[test]
    fn xjoin_matches_mjoin_semantics() {
        use crate::mjoin::MJoin;
        use crate::oracle::{canonical_rows, multiset_diff, Oracle};
        use crate::plan::PlanOrders;

        let q = QuerySchema::chain3();
        let tree = JoinTree::left_deep(&[RelId(0), RelId(1), RelId(2)]);
        let mut x = XJoin::new(q.clone(), tree);
        let mut m = MJoin::new(q.clone(), PlanOrders::identity(&q));
        let mut o = Oracle::new(q.clone());

        let updates = vec![
            upd(0, Op::Insert, &[1], 0),
            upd(1, Op::Insert, &[1, 2], 1),
            upd(2, Op::Insert, &[2], 2),
            upd(0, Op::Insert, &[1], 3), // duplicate R tuple
            upd(2, Op::Insert, &[2], 4),
            upd(1, Op::Delete, &[1, 2], 5),
            upd(1, Op::Insert, &[1, 2], 6),
            upd(0, Op::Delete, &[1], 7),
        ];
        for u in &updates {
            let xo: Vec<_> = x
                .process(u)
                .into_iter()
                .map(|(op, c)| (op, canonical_rows(&c, 3)))
                .collect();
            let mo: Vec<_> = m
                .process(u)
                .into_iter()
                .map(|(op, c)| (op, canonical_rows(&c, 3)))
                .collect();
            let oo = o.apply_and_delta(u);
            assert!(
                multiset_diff(&xo, &oo).is_empty(),
                "xjoin diverged from oracle on {u}: {xo:?} vs {oo:?}"
            );
            assert!(
                multiset_diff(&mo, &oo).is_empty(),
                "mjoin diverged from oracle on {u}"
            );
        }
    }

    #[test]
    fn materialization_tracks_subresult() {
        let q = QuerySchema::chain3();
        let tree = JoinTree::left_deep(&[RelId(0), RelId(1), RelId(2)]);
        let mut x = XJoin::new(q, tree);
        x.process(&upd(0, Op::Insert, &[1], 0));
        assert_eq!(x.materialized_rows(), 0);
        x.process(&upd(1, Op::Insert, &[1, 2], 1));
        assert_eq!(x.materialized_rows(), 1, "R⋈S has one row");
        assert!(x.materialized_bytes() > 0);
        x.process(&upd(1, Op::Insert, &[1, 3], 2));
        assert_eq!(x.materialized_rows(), 2);
        x.process(&upd(0, Op::Delete, &[1], 3));
        assert_eq!(x.materialized_rows(), 0, "deleting R empties the subresult");
        assert_eq!(x.materialized_bytes(), 0);
    }

    #[test]
    fn bushy_tree_works() {
        // ((R1 ⋈ R2) ⋈ (R3 ⋈ R4)) on star(4).
        let q = QuerySchema::star(4);
        let tree = JoinTree::Node(
            Box::new(JoinTree::Node(
                Box::new(JoinTree::Leaf(RelId(0))),
                Box::new(JoinTree::Leaf(RelId(1))),
            )),
            Box::new(JoinTree::Node(
                Box::new(JoinTree::Leaf(RelId(2))),
                Box::new(JoinTree::Leaf(RelId(3))),
            )),
        );
        let mut x = XJoin::new(q.clone(), tree);
        let mut o = crate::oracle::Oracle::new(q);
        let mut all_x = Vec::new();
        let mut all_o = Vec::new();
        let ups = vec![
            upd(0, Op::Insert, &[1, 0], 0),
            upd(1, Op::Insert, &[1, 0], 1),
            upd(2, Op::Insert, &[1, 0], 2),
            upd(3, Op::Insert, &[1, 0], 3),
            upd(2, Op::Insert, &[1, 1], 4),
            upd(0, Op::Delete, &[1, 0], 5),
            upd(0, Op::Insert, &[1, 2], 6),
        ];
        for u in &ups {
            all_x.extend(
                x.process(u)
                    .into_iter()
                    .map(|(op, c)| (op, crate::oracle::canonical_rows(&c, 4))),
            );
            all_o.extend(o.apply_and_delta(u));
        }
        assert!(
            crate::oracle::multiset_diff(&all_x, &all_o).is_empty(),
            "bushy xjoin diverged"
        );
    }

    #[test]
    fn size_estimation_sane() {
        let q = QuerySchema::star(3);
        let mut stats = WorkloadStats::uniform(3, 100.0);
        stats.set_sel(RelId(0), RelId(1), 0.01);
        stats.set_sel(RelId(0), RelId(2), 0.01);
        let two = estimated_size(&q, &stats, &[RelId(0), RelId(1)]);
        assert!((two - 100.0).abs() < 1e-6, "100*100*0.01 = 100, got {two}");
        let one = estimated_size(&q, &stats, &[RelId(0)]);
        assert!((one - 100.0).abs() < 1e-6);
    }

    #[test]
    fn best_tree_prefers_cheap_subresults() {
        // Star(4) where R1⋈R2 is tiny and R3,R4 churn fast: best tree should
        // avoid materializing anything containing R3 or R4 beneath the root
        // if possible — i.e. prefer (R1 ⋈ R2) low in the tree.
        let q = QuerySchema::star(4);
        let mut stats = WorkloadStats::uniform(4, 100.0);
        stats.set_sel(RelId(0), RelId(1), 0.0001);
        stats.rates = vec![1.0, 1.0, 50.0, 50.0];
        let t = best_tree(&q, &stats, None).unwrap();
        // The subtree {R1, R2} should appear as a node.
        let mut sets = Vec::new();
        collect_node_sets(&t, &mut sets);
        assert!(
            sets.iter().any(|s| s == &vec![RelId(0), RelId(1)]),
            "expected R1⋈R2 node in {t}"
        );
    }

    #[test]
    fn memory_cap_filters_trees() {
        let q = QuerySchema::star(4);
        let stats = WorkloadStats::uniform(4, 100.0);
        // Impossible cap: no tree fits.
        assert!(best_tree(&q, &stats, Some(0.0)).is_none());
        // Generous cap: some tree fits.
        assert!(best_tree(&q, &stats, Some(1e12)).is_some());
    }

    #[test]
    #[should_panic(expected = "tree must cover the query exactly")]
    fn wrong_tree_panics() {
        let q = QuerySchema::chain3();
        let tree = JoinTree::left_deep(&[RelId(0), RelId(1)]);
        let _ = XJoin::new(q, tree);
    }
}
