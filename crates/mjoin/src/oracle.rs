//! Naive full-recomputation oracle for correctness testing.
//!
//! Every executor in this workspace (MJoin, XJoin, the A-Caching engine in
//! any cache configuration) must produce *exactly* the delta multiset that a
//! from-scratch nested-loop join would. [`Oracle`] maintains plain multiset
//! relation contents and computes, per update, the canonical delta rows —
//! tests diff these against executor output via [`canonical_rows`] /
//! [`multiset_diff`].

use acq_stream::{Composite, Op, QuerySchema, RelId, TupleData, Update};
use std::collections::HashMap;

/// Canonical form of one n-way join result: the per-relation tuple data in
/// relation-id order.
pub type CanonicalRow = Vec<TupleData>;

/// Canonicalize an executor's composite result (must contain all n parts).
pub fn canonical_rows(c: &Composite, n: usize) -> CanonicalRow {
    let mut row: Vec<Option<TupleData>> = vec![None; n];
    for part in c.parts() {
        let slot = &mut row[part.rel.0 as usize];
        assert!(slot.is_none(), "duplicate relation in composite");
        *slot = Some(part.data.clone());
    }
    row.into_iter()
        .map(|t| t.expect("composite must be complete"))
        .collect()
}

/// Signed multiset over canonical rows: `+k` means k more insertions than
/// deletions of that row.
pub fn signed_multiset(deltas: &[(Op, CanonicalRow)]) -> HashMap<CanonicalRow, i64> {
    let mut m: HashMap<CanonicalRow, i64> = HashMap::new();
    for (op, row) in deltas {
        let e = m.entry(row.clone()).or_insert(0);
        *e += op.sign();
        if *e == 0 {
            m.remove(row);
        }
    }
    m
}

/// Difference between two delta lists as signed multisets; empty when they
/// represent the same net effect.
pub fn multiset_diff(
    a: &[(Op, CanonicalRow)],
    b: &[(Op, CanonicalRow)],
) -> HashMap<CanonicalRow, i64> {
    let mut m = signed_multiset(a);
    for (op, row) in b {
        let e = m.entry(row.clone()).or_insert(0);
        *e -= op.sign();
        if *e == 0 {
            m.remove(row);
        }
    }
    m
}

/// Naive relation state + delta computation.
#[derive(Debug, Clone)]
pub struct Oracle {
    query: QuerySchema,
    contents: Vec<Vec<TupleData>>,
}

impl Oracle {
    /// Empty oracle for a query.
    pub fn new(query: QuerySchema) -> Oracle {
        let n = query.num_relations();
        Oracle {
            query,
            contents: vec![Vec::new(); n],
        }
    }

    /// Current multiset contents of relation `r`.
    pub fn contents(&self, r: RelId) -> &[TupleData] {
        &self.contents[r.0 as usize]
    }

    /// Apply one update and return the canonical delta rows it induces
    /// (paired with the update's own op — an insert yields `Insert` rows, a
    /// delete `Delete` rows).
    pub fn apply_and_delta(&mut self, u: &Update) -> Vec<(Op, CanonicalRow)> {
        match u.op {
            Op::Insert => {
                self.contents[u.rel.0 as usize].push(u.data.clone());
                self.join_fixed(u.rel, &u.data)
                    .into_iter()
                    .map(|row| (Op::Insert, row))
                    .collect()
            }
            Op::Delete => {
                let list = &mut self.contents[u.rel.0 as usize];
                match list.iter().rposition(|t| *t == u.data) {
                    Some(pos) => {
                        list.remove(pos);
                        self.join_fixed(u.rel, &u.data)
                            .into_iter()
                            .map(|row| (Op::Delete, row))
                            .collect()
                    }
                    None => Vec::new(),
                }
            }
        }
    }

    /// All n-way join rows where relation `fixed` is bound to `tuple` and the
    /// other relations range over current contents.
    pub fn join_fixed(&self, fixed: RelId, tuple: &TupleData) -> Vec<CanonicalRow> {
        let n = self.query.num_relations();
        let mut row: Vec<Option<&TupleData>> = vec![None; n];
        row[fixed.0 as usize] = Some(tuple);
        let mut out = Vec::new();
        self.recurse(0, fixed, &mut row, &mut out);
        out
    }

    /// The complete n-way join of current contents.
    pub fn full_join(&self) -> Vec<CanonicalRow> {
        let n = self.query.num_relations();
        let mut out = Vec::new();
        // Fix nothing: recurse with a sentinel fixed relation out of range.
        let mut row: Vec<Option<&TupleData>> = vec![None; n];
        self.recurse(0, RelId(u16::MAX), &mut row, &mut out);
        out
    }

    fn recurse<'s>(
        &'s self,
        depth: usize,
        fixed: RelId,
        row: &mut Vec<Option<&'s TupleData>>,
        out: &mut Vec<CanonicalRow>,
    ) {
        let n = self.query.num_relations();
        if depth == n {
            out.push(row.iter().map(|t| (*t.unwrap()).clone()).collect());
            return;
        }
        let r = RelId(depth as u16);
        if r == fixed {
            if self.check_preds(depth, row) {
                self.recurse(depth + 1, fixed, row, out);
            }
            return;
        }
        // Clone the candidate list indices to satisfy borrowck cheaply.
        for i in 0..self.contents[depth].len() {
            row[depth] = Some(&self.contents[depth][i]);
            if self.check_preds(depth, row) {
                self.recurse(depth + 1, fixed, row, out);
            }
        }
        row[depth] = None;
    }

    /// Check every predicate whose endpoints are both bound at `row[..=depth]`
    /// and involve relation `depth` (earlier predicates were checked at
    /// earlier depths).
    fn check_preds(&self, depth: usize, row: &[Option<&TupleData>]) -> bool {
        for p in self.query.predicates() {
            let (hi, lo) = if p.left.rel.0 as usize >= p.right.rel.0 as usize {
                (p.left, p.right)
            } else {
                (p.right, p.left)
            };
            if hi.rel.0 as usize != depth {
                continue;
            }
            let (Some(a), Some(b)) = (row[hi.rel.0 as usize], row[lo.rel.0 as usize]) else {
                continue;
            };
            if !a.get(hi.col.0).join_eq(b.get(lo.col.0)) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(rel: u16, op: Op, vals: &[i64]) -> Update {
        Update {
            op,
            rel: RelId(rel),
            data: TupleData::ints(vals),
            ts: 0,
        }
    }

    #[test]
    fn oracle_matches_paper_example() {
        let mut o = Oracle::new(QuerySchema::chain3());
        for (rel, vals) in [
            (0u16, vec![0i64]),
            (0, vec![2]),
            (1, vec![1, 2]),
            (1, vec![1, 3]),
            (1, vec![3, 4]),
            (2, vec![2]),
            (2, vec![6]),
        ] {
            assert!(o.apply_and_delta(&upd(rel, Op::Insert, &vals)).is_empty());
        }
        let delta = o.apply_and_delta(&upd(0, Op::Insert, &[1]));
        assert_eq!(delta.len(), 1);
        let (op, row) = &delta[0];
        assert_eq!(*op, Op::Insert);
        assert_eq!(row[0], TupleData::ints(&[1]));
        assert_eq!(row[1], TupleData::ints(&[1, 2]));
        assert_eq!(row[2], TupleData::ints(&[2]));
    }

    #[test]
    fn example_3_3_after_r3_insert() {
        // Continue: inserting ⟨3⟩ into R3 makes a future ⟨1⟩ on ∆R1 produce
        // two results (paper Example 3.3).
        let mut o = Oracle::new(QuerySchema::chain3());
        for (rel, vals) in [
            (0u16, vec![0i64]),
            (0, vec![2]),
            (0, vec![1]),
            (1, vec![1, 2]),
            (1, vec![1, 3]),
            (1, vec![3, 4]),
            (2, vec![2]),
            (2, vec![6]),
        ] {
            o.apply_and_delta(&upd(rel, Op::Insert, &vals));
        }
        let delta = o.apply_and_delta(&upd(2, Op::Insert, &[3]));
        assert_eq!(delta.len(), 1, "⟨1,1,3,3⟩ appears");
        let another_r1 = o.apply_and_delta(&upd(0, Op::Insert, &[1]));
        assert_eq!(another_r1.len(), 2, "⟨1,1,2,2⟩ and ⟨1,1,3,3⟩");
    }

    #[test]
    fn delete_yields_negative_delta() {
        let mut o = Oracle::new(QuerySchema::chain3());
        o.apply_and_delta(&upd(0, Op::Insert, &[1]));
        o.apply_and_delta(&upd(1, Op::Insert, &[1, 2]));
        o.apply_and_delta(&upd(2, Op::Insert, &[2]));
        let d = o.apply_and_delta(&upd(1, Op::Delete, &[1, 2]));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, Op::Delete);
        assert!(o.full_join().is_empty());
    }

    #[test]
    fn delete_of_absent_is_empty_delta() {
        let mut o = Oracle::new(QuerySchema::chain3());
        assert!(o.apply_and_delta(&upd(0, Op::Delete, &[5])).is_empty());
    }

    #[test]
    fn multiset_duplicates_counted() {
        let mut o = Oracle::new(QuerySchema::chain3());
        o.apply_and_delta(&upd(0, Op::Insert, &[1]));
        o.apply_and_delta(&upd(1, Op::Insert, &[1, 2]));
        o.apply_and_delta(&upd(1, Op::Insert, &[1, 2])); // duplicate S tuple
        let d = o.apply_and_delta(&upd(2, Op::Insert, &[2]));
        assert_eq!(d.len(), 2, "duplicate S yields two identical rows");
        let ms = signed_multiset(&d);
        assert_eq!(ms.len(), 1);
        assert_eq!(*ms.values().next().unwrap(), 2);
    }

    #[test]
    fn diff_detects_mismatch_and_match() {
        let row1: CanonicalRow = vec![TupleData::ints(&[1])];
        let row2: CanonicalRow = vec![TupleData::ints(&[2])];
        let a = vec![(Op::Insert, row1.clone()), (Op::Insert, row2.clone())];
        let b = vec![(Op::Insert, row2), (Op::Insert, row1.clone())];
        assert!(multiset_diff(&a, &b).is_empty(), "order-insensitive");
        let c = vec![(Op::Insert, row1)];
        assert!(!multiset_diff(&a, &c).is_empty());
    }

    #[test]
    fn full_join_counts() {
        let mut o = Oracle::new(QuerySchema::star(3));
        // Two tuples per relation, all on key 1 → 8 results.
        for r in 0..3u16 {
            o.apply_and_delta(&upd(r, Op::Insert, &[1, 0]));
            o.apply_and_delta(&upd(r, Op::Insert, &[1, 1]));
        }
        assert_eq!(o.full_join().len(), 8);
    }
}
