//! Naive full-recomputation oracle for correctness testing.
//!
//! Every executor in this workspace (MJoin, XJoin, the A-Caching engine in
//! any cache configuration) must produce *exactly* the delta multiset that a
//! from-scratch nested-loop join would. [`Oracle`] maintains plain multiset
//! relation contents and computes, per update, the canonical delta rows —
//! tests diff these against executor output via [`canonical_rows`] /
//! [`multiset_diff`].

use acq_stream::{
    Composite, CountWindow, Op, QuerySchema, RelId, StreamElement, TimeWindow, TupleData, Update,
    WindowOp,
};
use std::collections::HashMap;

/// Canonical form of one n-way join result: the per-relation tuple data in
/// relation-id order.
pub type CanonicalRow = Vec<TupleData>;

/// Canonicalize an executor's composite result (must contain all n parts).
pub fn canonical_rows(c: &Composite, n: usize) -> CanonicalRow {
    let mut row: Vec<Option<TupleData>> = vec![None; n];
    for part in c.parts() {
        let slot = &mut row[part.rel.0 as usize];
        assert!(slot.is_none(), "duplicate relation in composite");
        *slot = Some(part.data.clone());
    }
    row.into_iter()
        .map(|t| t.expect("composite must be complete"))
        .collect()
}

/// Signed multiset over canonical rows: `+k` means k more insertions than
/// deletions of that row.
pub fn signed_multiset(deltas: &[(Op, CanonicalRow)]) -> HashMap<CanonicalRow, i64> {
    let mut m: HashMap<CanonicalRow, i64> = HashMap::new();
    for (op, row) in deltas {
        let e = m.entry(row.clone()).or_insert(0);
        *e += op.sign();
        if *e == 0 {
            m.remove(row);
        }
    }
    m
}

/// Difference between two delta lists as signed multisets; empty when they
/// represent the same net effect.
pub fn multiset_diff(
    a: &[(Op, CanonicalRow)],
    b: &[(Op, CanonicalRow)],
) -> HashMap<CanonicalRow, i64> {
    let mut m = signed_multiset(a);
    for (op, row) in b {
        let e = m.entry(row.clone()).or_insert(0);
        *e -= op.sign();
        if *e == 0 {
            m.remove(row);
        }
    }
    m
}

/// Naive relation state + delta computation.
#[derive(Debug, Clone)]
pub struct Oracle {
    query: QuerySchema,
    contents: Vec<Vec<TupleData>>,
}

impl Oracle {
    /// Empty oracle for a query.
    pub fn new(query: QuerySchema) -> Oracle {
        let n = query.num_relations();
        Oracle {
            query,
            contents: vec![Vec::new(); n],
        }
    }

    /// Current multiset contents of relation `r`.
    pub fn contents(&self, r: RelId) -> &[TupleData] {
        &self.contents[r.0 as usize]
    }

    /// Apply one update and return the canonical delta rows it induces
    /// (paired with the update's own op — an insert yields `Insert` rows, a
    /// delete `Delete` rows).
    pub fn apply_and_delta(&mut self, u: &Update) -> Vec<(Op, CanonicalRow)> {
        match u.op {
            Op::Insert => {
                self.contents[u.rel.0 as usize].push(u.data.clone());
                self.join_fixed(u.rel, &u.data)
                    .into_iter()
                    .map(|row| (Op::Insert, row))
                    .collect()
            }
            Op::Delete => {
                let list = &mut self.contents[u.rel.0 as usize];
                match list.iter().rposition(|t| *t == u.data) {
                    Some(pos) => {
                        list.remove(pos);
                        self.join_fixed(u.rel, &u.data)
                            .into_iter()
                            .map(|row| (Op::Delete, row))
                            .collect()
                    }
                    None => Vec::new(),
                }
            }
        }
    }

    /// All n-way join rows where relation `fixed` is bound to `tuple` and the
    /// other relations range over current contents.
    pub fn join_fixed(&self, fixed: RelId, tuple: &TupleData) -> Vec<CanonicalRow> {
        let n = self.query.num_relations();
        let mut row: Vec<Option<&TupleData>> = vec![None; n];
        row[fixed.0 as usize] = Some(tuple);
        let mut out = Vec::new();
        self.recurse(0, fixed, &mut row, &mut out);
        out
    }

    /// The complete n-way join of current contents.
    pub fn full_join(&self) -> Vec<CanonicalRow> {
        let n = self.query.num_relations();
        let mut out = Vec::new();
        // Fix nothing: recurse with a sentinel fixed relation out of range.
        let mut row: Vec<Option<&TupleData>> = vec![None; n];
        self.recurse(0, RelId(u16::MAX), &mut row, &mut out);
        out
    }

    fn recurse<'s>(
        &'s self,
        depth: usize,
        fixed: RelId,
        row: &mut Vec<Option<&'s TupleData>>,
        out: &mut Vec<CanonicalRow>,
    ) {
        let n = self.query.num_relations();
        if depth == n {
            out.push(row.iter().map(|t| (*t.unwrap()).clone()).collect());
            return;
        }
        let r = RelId(depth as u16);
        if r == fixed {
            if self.check_preds(depth, row) {
                self.recurse(depth + 1, fixed, row, out);
            }
            return;
        }
        // Clone the candidate list indices to satisfy borrowck cheaply.
        for i in 0..self.contents[depth].len() {
            row[depth] = Some(&self.contents[depth][i]);
            if self.check_preds(depth, row) {
                self.recurse(depth + 1, fixed, row, out);
            }
        }
        row[depth] = None;
    }

    /// Check every predicate whose endpoints are both bound at `row[..=depth]`
    /// and involve relation `depth` (earlier predicates were checked at
    /// earlier depths).
    fn check_preds(&self, depth: usize, row: &[Option<&TupleData>]) -> bool {
        for p in self.query.predicates() {
            let (hi, lo) = if p.left.rel.0 as usize >= p.right.rel.0 as usize {
                (p.left, p.right)
            } else {
                (p.right, p.left)
            };
            if hi.rel.0 as usize != depth {
                continue;
            }
            let (Some(a), Some(b)) = (row[hi.rel.0 as usize], row[lo.rel.0 as usize]) else {
                continue;
            };
            if !a.get(hi.col.0).join_eq(b.get(lo.col.0)) {
                return false;
            }
        }
        true
    }
}

/// Window clause for one relation of a [`WindowedOracle`] — mirrors the
/// engine facade's window kinds without depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleWindow {
    /// `ROWS n`: keep the most recent `n` tuples.
    Count(usize),
    /// `RANGE t`: keep tuples younger than `t` nanoseconds.
    TimeNs(u64),
    /// No window; the relation shrinks only via explicit deletes fed through
    /// [`WindowedOracle::apply`].
    Unbounded,
}

enum OracleWindowState {
    Count(CountWindow),
    Time(TimeWindow),
    Unbounded,
}

/// A clock-aware oracle for append-only streams: owns the *same*
/// [`CountWindow`]/[`TimeWindow`] operators the engine facade uses, so the
/// insert/delete update stream it derives — including expiry timing and the
/// delete-before-insert order at a full count window — is identical to the
/// engine's by construction. Differential runs against `StreamJoin` (or any
/// windowed executor) therefore need no output filtering: every retraction
/// the executor emits for a window expiry is matched by an oracle delta.
pub struct WindowedOracle {
    oracle: Oracle,
    windows: Vec<OracleWindowState>,
    last_ts: u64,
}

impl WindowedOracle {
    /// An empty windowed oracle; `specs` gives one window clause per
    /// relation, in relation-id order.
    ///
    /// # Panics
    /// Panics if `specs` does not cover every relation exactly once.
    pub fn new(query: QuerySchema, specs: &[OracleWindow]) -> WindowedOracle {
        assert_eq!(
            specs.len(),
            query.num_relations(),
            "one window spec per relation"
        );
        let windows = specs
            .iter()
            .enumerate()
            .map(|(i, spec)| match spec {
                OracleWindow::Count(n) => {
                    OracleWindowState::Count(CountWindow::new(RelId(i as u16), *n))
                }
                OracleWindow::TimeNs(t) => {
                    OracleWindowState::Time(TimeWindow::new(RelId(i as u16), *t))
                }
                OracleWindow::Unbounded => OracleWindowState::Unbounded,
            })
            .collect();
        WindowedOracle {
            oracle: Oracle::new(query),
            windows,
            last_ts: 0,
        }
    }

    /// The wrapped un-windowed oracle (current relation contents).
    pub fn oracle(&self) -> &Oracle {
        &self.oracle
    }

    /// Push one arriving tuple through its window and return the canonical
    /// result deltas — expirations (negative rows) first, then the insert's
    /// rows, exactly as the engine emits them.
    ///
    /// # Panics
    /// Panics if `ts` goes backwards (§3.1 requires a global arrival order).
    pub fn push(&mut self, rel: RelId, data: TupleData, ts: u64) -> Vec<(Op, CanonicalRow)> {
        assert!(ts >= self.last_ts, "timestamps must be nondecreasing");
        self.last_ts = ts;
        let updates = match &mut self.windows[rel.0 as usize] {
            OracleWindowState::Count(w) => w.push(StreamElement::new(rel, data, ts)),
            OracleWindowState::Time(w) => w.push(StreamElement::new(rel, data, ts)),
            OracleWindowState::Unbounded => vec![Update::insert(rel, data, ts)],
        };
        let mut out = Vec::new();
        for u in &updates {
            out.extend(self.oracle.apply_and_delta(u));
        }
        out
    }

    /// Advance the clock on time-windowed relations without pushing tuples,
    /// returning the expiry deltas.
    ///
    /// # Panics
    /// Panics if `now` goes backwards.
    pub fn advance_time(&mut self, now: u64) -> Vec<(Op, CanonicalRow)> {
        assert!(now >= self.last_ts, "timestamps must be nondecreasing");
        self.last_ts = now;
        let mut expired = Vec::new();
        for w in &mut self.windows {
            if let OracleWindowState::Time(tw) = w {
                expired.extend(tw.expire(now));
            }
        }
        let mut out = Vec::new();
        for u in &expired {
            out.extend(self.oracle.apply_and_delta(u));
        }
        out
    }

    /// Apply a raw update (explicit delete on an unbounded relation —
    /// materialized-view maintenance mode), bypassing the windows.
    ///
    /// # Panics
    /// Panics if the update's timestamp goes backwards.
    pub fn apply(&mut self, u: &Update) -> Vec<(Op, CanonicalRow)> {
        assert!(u.ts >= self.last_ts, "timestamps must be nondecreasing");
        self.last_ts = u.ts;
        self.oracle.apply_and_delta(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(rel: u16, op: Op, vals: &[i64]) -> Update {
        Update {
            op,
            rel: RelId(rel),
            data: TupleData::ints(vals),
            ts: 0,
        }
    }

    #[test]
    fn oracle_matches_paper_example() {
        let mut o = Oracle::new(QuerySchema::chain3());
        for (rel, vals) in [
            (0u16, vec![0i64]),
            (0, vec![2]),
            (1, vec![1, 2]),
            (1, vec![1, 3]),
            (1, vec![3, 4]),
            (2, vec![2]),
            (2, vec![6]),
        ] {
            assert!(o.apply_and_delta(&upd(rel, Op::Insert, &vals)).is_empty());
        }
        let delta = o.apply_and_delta(&upd(0, Op::Insert, &[1]));
        assert_eq!(delta.len(), 1);
        let (op, row) = &delta[0];
        assert_eq!(*op, Op::Insert);
        assert_eq!(row[0], TupleData::ints(&[1]));
        assert_eq!(row[1], TupleData::ints(&[1, 2]));
        assert_eq!(row[2], TupleData::ints(&[2]));
    }

    #[test]
    fn example_3_3_after_r3_insert() {
        // Continue: inserting ⟨3⟩ into R3 makes a future ⟨1⟩ on ∆R1 produce
        // two results (paper Example 3.3).
        let mut o = Oracle::new(QuerySchema::chain3());
        for (rel, vals) in [
            (0u16, vec![0i64]),
            (0, vec![2]),
            (0, vec![1]),
            (1, vec![1, 2]),
            (1, vec![1, 3]),
            (1, vec![3, 4]),
            (2, vec![2]),
            (2, vec![6]),
        ] {
            o.apply_and_delta(&upd(rel, Op::Insert, &vals));
        }
        let delta = o.apply_and_delta(&upd(2, Op::Insert, &[3]));
        assert_eq!(delta.len(), 1, "⟨1,1,3,3⟩ appears");
        let another_r1 = o.apply_and_delta(&upd(0, Op::Insert, &[1]));
        assert_eq!(another_r1.len(), 2, "⟨1,1,2,2⟩ and ⟨1,1,3,3⟩");
    }

    #[test]
    fn delete_yields_negative_delta() {
        let mut o = Oracle::new(QuerySchema::chain3());
        o.apply_and_delta(&upd(0, Op::Insert, &[1]));
        o.apply_and_delta(&upd(1, Op::Insert, &[1, 2]));
        o.apply_and_delta(&upd(2, Op::Insert, &[2]));
        let d = o.apply_and_delta(&upd(1, Op::Delete, &[1, 2]));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, Op::Delete);
        assert!(o.full_join().is_empty());
    }

    #[test]
    fn delete_of_absent_is_empty_delta() {
        let mut o = Oracle::new(QuerySchema::chain3());
        assert!(o.apply_and_delta(&upd(0, Op::Delete, &[5])).is_empty());
    }

    #[test]
    fn multiset_duplicates_counted() {
        let mut o = Oracle::new(QuerySchema::chain3());
        o.apply_and_delta(&upd(0, Op::Insert, &[1]));
        o.apply_and_delta(&upd(1, Op::Insert, &[1, 2]));
        o.apply_and_delta(&upd(1, Op::Insert, &[1, 2])); // duplicate S tuple
        let d = o.apply_and_delta(&upd(2, Op::Insert, &[2]));
        assert_eq!(d.len(), 2, "duplicate S yields two identical rows");
        let ms = signed_multiset(&d);
        assert_eq!(ms.len(), 1);
        assert_eq!(*ms.values().next().unwrap(), 2);
    }

    #[test]
    fn diff_detects_mismatch_and_match() {
        let row1: CanonicalRow = vec![TupleData::ints(&[1])];
        let row2: CanonicalRow = vec![TupleData::ints(&[2])];
        let a = vec![(Op::Insert, row1.clone()), (Op::Insert, row2.clone())];
        let b = vec![(Op::Insert, row2), (Op::Insert, row1.clone())];
        assert!(multiset_diff(&a, &b).is_empty(), "order-insensitive");
        let c = vec![(Op::Insert, row1)];
        assert!(!multiset_diff(&a, &c).is_empty());
    }

    #[test]
    fn windowed_oracle_count_expiry_retracts_results() {
        let mut o = WindowedOracle::new(QuerySchema::chain3(), &[OracleWindow::Count(2); 3]);
        o.push(RelId(0), TupleData::ints(&[1]), 0);
        o.push(RelId(1), TupleData::ints(&[1, 2]), 1);
        let d = o.push(RelId(2), TupleData::ints(&[2]), 2);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, Op::Insert);
        // Two more R arrivals evict R=⟨1⟩: the result is retracted even
        // though neither arriving tuple joins — this is the delta an engine
        // with identical windows must also emit.
        o.push(RelId(0), TupleData::ints(&[5]), 3);
        let d = o.push(RelId(0), TupleData::ints(&[6]), 4);
        let deletes = d.iter().filter(|(op, _)| *op == Op::Delete).count();
        assert_eq!(deletes, 1, "window expiry retracts the join result");
    }

    #[test]
    fn windowed_oracle_count_full_window_delete_precedes_insert() {
        // A full count window's eviction is applied before the insert at the
        // same timestamp — the relation never transiently exceeds w, matching
        // CountWindow's ordering exactly.
        let mut o = WindowedOracle::new(QuerySchema::chain3(), &[OracleWindow::Count(1); 3]);
        o.push(RelId(0), TupleData::ints(&[1]), 0);
        o.push(RelId(1), TupleData::ints(&[1, 2]), 1);
        o.push(RelId(2), TupleData::ints(&[2]), 2);
        // New R=⟨1⟩ (same value) evicts old R=⟨1⟩: a retraction then a
        // re-assertion of the same row, in that order.
        let d = o.push(RelId(0), TupleData::ints(&[1]), 3);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].0, Op::Delete);
        assert_eq!(d[1].0, Op::Insert);
    }

    #[test]
    fn windowed_oracle_time_windows_and_advance() {
        let mut o = WindowedOracle::new(QuerySchema::chain3(), &[OracleWindow::TimeNs(100); 3]);
        o.push(RelId(0), TupleData::ints(&[1]), 0);
        o.push(RelId(1), TupleData::ints(&[1, 2]), 10);
        assert_eq!(o.push(RelId(2), TupleData::ints(&[2]), 20).len(), 1);
        let d = o.advance_time(500);
        let deletes = d.iter().filter(|(op, _)| *op == Op::Delete).count();
        assert_eq!(deletes, 1, "expiry retracts the result");
        assert!(o.advance_time(600).is_empty(), "idempotent");
        assert!(o.oracle().full_join().is_empty());
    }

    #[test]
    fn windowed_oracle_unbounded_with_explicit_deletes() {
        let mut o = WindowedOracle::new(QuerySchema::chain3(), &[OracleWindow::Unbounded; 3]);
        o.push(RelId(0), TupleData::ints(&[1]), 0);
        o.push(RelId(1), TupleData::ints(&[1, 2]), 1);
        assert_eq!(o.push(RelId(2), TupleData::ints(&[2]), 2).len(), 1);
        let d = o.apply(&Update::delete(RelId(1), TupleData::ints(&[1, 2]), 3));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, Op::Delete);
    }

    #[test]
    #[should_panic(expected = "timestamps must be nondecreasing")]
    fn windowed_oracle_backwards_time_panics() {
        let mut o = WindowedOracle::new(QuerySchema::chain3(), &[OracleWindow::Count(4); 3]);
        o.push(RelId(0), TupleData::ints(&[1]), 100);
        o.push(RelId(0), TupleData::ints(&[2]), 50);
    }

    #[test]
    fn full_join_counts() {
        let mut o = Oracle::new(QuerySchema::star(3));
        // Two tuples per relation, all on key 1 → 8 results.
        for r in 0..3u16 {
            o.apply_and_delta(&upd(r, Op::Insert, &[1, 0]));
            o.apply_and_delta(&upd(r, Op::Insert, &[1, 1]));
        }
        assert_eq!(o.full_join().len(), 8);
    }
}
