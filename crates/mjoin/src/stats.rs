//! Workload statistics: configured (from a generator) or observed (online).
//!
//! Join ordering — both the A-Greedy baseline ordering and the "best XJoin"
//! search — needs stream rates, window sizes, and pairwise join
//! selectivities. [`WorkloadStats`] is the static snapshot; [`OnlineStats`]
//! accumulates the same quantities from execution observations (`W`-window
//! averages, Table 1) so adaptive components can react when the workload
//! drifts.

use acq_sketch::WindowStat;
use acq_stream::RelId;

/// A static snapshot of workload characteristics for an n-way join.
#[derive(Debug, Clone)]
pub struct WorkloadStats {
    /// Update-stream rate per relation (tuples per virtual second; relative
    /// scale suffices).
    pub rates: Vec<f64>,
    /// Expected window cardinality per relation.
    pub sizes: Vec<f64>,
    /// `sel[i][j]`: probability that a random `R_i` tuple joins a random
    /// `R_j` tuple (symmetric; diagonal unused/1.0).
    pub sel: Vec<Vec<f64>>,
}

impl WorkloadStats {
    /// Uniform defaults: unit rates, given window size, selectivity
    /// `1/size` (each probe matches one tuple on average).
    pub fn uniform(n: usize, window: f64) -> WorkloadStats {
        WorkloadStats {
            rates: vec![1.0; n],
            sizes: vec![window; n],
            sel: vec![vec![1.0 / window.max(1.0); n]; n],
        }
    }

    /// Number of relations.
    pub fn n(&self) -> usize {
        self.rates.len()
    }

    /// Expected matches in `R_j` for one tuple already bound on the other
    /// side of an `i–j` predicate: `sel[i][j] · |R_j|`.
    pub fn fanout(&self, i: RelId, j: RelId) -> f64 {
        self.sel[i.0 as usize][j.0 as usize] * self.sizes[j.0 as usize]
    }

    /// Set a symmetric pairwise selectivity.
    pub fn set_sel(&mut self, i: RelId, j: RelId, s: f64) {
        self.sel[i.0 as usize][j.0 as usize] = s;
        self.sel[j.0 as usize][i.0 as usize] = s;
    }

    /// Largest relative change of any field versus `other` (drives the
    /// paper's "changed beyond a certain percentage p" re-optimization
    /// trigger, §4.5c).
    pub fn max_relative_change(&self, other: &WorkloadStats) -> f64 {
        fn rel_change(a: f64, b: f64) -> f64 {
            let denom = a.abs().max(b.abs());
            if denom < 1e-12 {
                0.0
            } else {
                (a - b).abs() / denom
            }
        }
        let mut worst: f64 = 0.0;
        for i in 0..self.n() {
            worst = worst.max(rel_change(self.rates[i], other.rates[i]));
            worst = worst.max(rel_change(self.sizes[i], other.sizes[i]));
            for j in 0..self.n() {
                worst = worst.max(rel_change(self.sel[i][j], other.sel[i][j]));
            }
        }
        worst
    }
}

/// Online estimator of [`WorkloadStats`] from execution observations.
///
/// * Rates: counts of updates per relation over the observation period.
/// * Sizes: last observed window cardinalities.
/// * Selectivities: whenever a join operator with a *single identifiable
///   source predicate* runs (one predicate connecting the probing prefix to
///   the target), `matches / |target|` is one observation of that pair's
///   selectivity, folded into a `W`-window average.
#[derive(Debug)]
pub struct OnlineStats {
    n: usize,
    w: usize,
    update_counts: Vec<u64>,
    epoch_start_ns: u64,
    sizes: Vec<f64>,
    sel: Vec<Vec<WindowStat>>,
    /// Prior selectivity used until observations arrive.
    default_sel: f64,
}

impl OnlineStats {
    /// `n` relations, `w`-observation windows, `default_sel` prior.
    pub fn new(n: usize, w: usize, default_sel: f64) -> OnlineStats {
        OnlineStats {
            n,
            w,
            update_counts: vec![0; n],
            epoch_start_ns: 0,
            sizes: vec![0.0; n],
            sel: (0..n)
                .map(|_| (0..n).map(|_| WindowStat::new(w)).collect())
                .collect(),
            default_sel,
        }
    }

    /// Record one update arriving on `∆R_i`.
    pub fn record_update(&mut self, rel: RelId) {
        self.update_counts[rel.0 as usize] += 1;
    }

    /// Record the current window cardinality of a relation.
    pub fn record_size(&mut self, rel: RelId, size: usize) {
        self.sizes[rel.0 as usize] = size as f64;
    }

    /// Record one identifiable probe: joining into `target` from `source`
    /// found `matches` of `target_size` tuples.
    pub fn record_probe(
        &mut self,
        source: RelId,
        target: RelId,
        matches: usize,
        target_size: usize,
    ) {
        if target_size == 0 {
            return;
        }
        let s = matches as f64 / target_size as f64;
        self.sel[source.0 as usize][target.0 as usize].push(s);
        self.sel[target.0 as usize][source.0 as usize].push(s);
    }

    /// Produce a snapshot as of virtual time `now_ns`, resetting the rate
    /// epoch.
    pub fn snapshot(&mut self, now_ns: u64) -> WorkloadStats {
        let span_s = ((now_ns.saturating_sub(self.epoch_start_ns)) as f64 / 1e9).max(1e-9);
        let rates = self
            .update_counts
            .iter()
            .map(|&c| c as f64 / span_s)
            .collect();
        self.update_counts.iter_mut().for_each(|c| *c = 0);
        self.epoch_start_ns = now_ns;
        let sel = (0..self.n)
            .map(|i| {
                (0..self.n)
                    .map(|j| self.sel[i][j].average_or(self.default_sel))
                    .collect()
            })
            .collect();
        WorkloadStats {
            rates,
            sizes: self.sizes.clone(),
            sel,
        }
    }

    /// Statistics window size `W`.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Forget everything (pipeline reordering invalidates statistics).
    pub fn clear(&mut self) {
        self.update_counts.iter_mut().for_each(|c| *c = 0);
        for row in &mut self.sel {
            for s in row {
                s.clear();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_defaults() {
        let s = WorkloadStats::uniform(3, 100.0);
        assert_eq!(s.n(), 3);
        assert!((s.fanout(RelId(0), RelId(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fanout_uses_target_size() {
        let mut s = WorkloadStats::uniform(3, 100.0);
        s.sizes[2] = 500.0;
        s.set_sel(RelId(0), RelId(2), 0.01);
        assert!((s.fanout(RelId(0), RelId(2)) - 5.0).abs() < 1e-12);
        assert!(
            (s.fanout(RelId(2), RelId(0)) - 1.0).abs() < 1e-12,
            "asymmetric via sizes"
        );
    }

    #[test]
    fn relative_change_detects_burst() {
        let a = WorkloadStats::uniform(2, 10.0);
        let mut b = a.clone();
        assert_eq!(a.max_relative_change(&b), 0.0);
        b.rates[0] = 20.0; // 1 → 20
        let change = a.max_relative_change(&b);
        assert!(change > 0.9, "got {change}");
    }

    #[test]
    fn online_rates_from_counts() {
        let mut o = OnlineStats::new(2, 5, 0.1);
        for _ in 0..100 {
            o.record_update(RelId(0));
        }
        for _ in 0..10 {
            o.record_update(RelId(1));
        }
        let snap = o.snapshot(1_000_000_000); // 1 virtual second
        assert!((snap.rates[0] - 100.0).abs() < 1e-6);
        assert!((snap.rates[1] - 10.0).abs() < 1e-6);
        // Epoch reset: an immediate second snapshot sees zero new updates.
        let snap2 = o.snapshot(2_000_000_000);
        assert_eq!(snap2.rates[0], 0.0);
    }

    #[test]
    fn online_selectivity_window_average() {
        let mut o = OnlineStats::new(2, 3, 0.5);
        // Before observations: prior.
        let prior = o.snapshot(1);
        assert_eq!(prior.sel[0][1], 0.5);
        o.record_probe(RelId(0), RelId(1), 5, 100); // 0.05
        o.record_probe(RelId(0), RelId(1), 15, 100); // 0.15
        let snap = o.snapshot(2);
        assert!((snap.sel[0][1] - 0.10).abs() < 1e-9);
        assert!((snap.sel[1][0] - 0.10).abs() < 1e-9, "symmetric");
    }

    #[test]
    fn online_probe_on_empty_target_ignored() {
        let mut o = OnlineStats::new(2, 3, 0.5);
        o.record_probe(RelId(0), RelId(1), 0, 0);
        assert_eq!(o.snapshot(1).sel[0][1], 0.5);
    }

    #[test]
    fn clear_resets_to_prior() {
        let mut o = OnlineStats::new(2, 3, 0.25);
        o.record_probe(RelId(0), RelId(1), 99, 100);
        o.clear();
        assert_eq!(o.snapshot(1).sel[0][1], 0.25);
    }
}
