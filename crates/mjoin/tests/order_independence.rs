//! Property test: an MJoin's output delta stream is independent of its
//! pipeline orders — any valid permutation of any pipeline yields the same
//! multiset of deltas (§3.1's semantics fix *what* is computed; ordering
//! only changes cost). This is the precondition for adaptive reordering
//! being transparent.

use acq_mjoin::mjoin::MJoin;
use acq_mjoin::oracle::{canonical_rows, multiset_diff, Oracle};
use acq_mjoin::plan::{PipelineOrder, PlanOrders};
use acq_stream::{QuerySchema, RelId, TupleData, Update};
use proptest::prelude::*;

/// A permutation of 0..n−1 encoded by repeated selection.
fn permutation(n: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..1000, n).prop_map(move |keys| {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by_key(|&i| keys[i]);
        idx
    })
}

fn orders_strategy(n: u16) -> impl Strategy<Value = PlanOrders> {
    proptest::collection::vec(permutation(n as usize - 1), n as usize).prop_map(move |perms| {
        PlanOrders::new(
            (0..n)
                .map(|stream| {
                    let others: Vec<RelId> = (0..n).filter(|&r| r != stream).map(RelId).collect();
                    PipelineOrder {
                        stream: RelId(stream),
                        order: perms[stream as usize].iter().map(|&i| others[i]).collect(),
                    }
                })
                .collect(),
        )
    })
}

fn workload(query: &QuerySchema, seed: u64, len: usize) -> Vec<Update> {
    let mut state = seed.max(1);
    let mut rng = move |m: u64| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state % m
    };
    let n = query.num_relations() as u64;
    let mut live: Vec<Vec<TupleData>> = vec![Vec::new(); n as usize];
    let mut out = Vec::new();
    for ts in 0..len as u64 {
        let rel = rng(n) as usize;
        let arity = query.relation(RelId(rel as u16)).arity();
        if !live[rel].is_empty() && rng(4) == 0 {
            let data = live[rel].remove(0);
            out.push(Update::delete(RelId(rel as u16), data, ts));
        } else {
            let vals: Vec<i64> = (0..arity).map(|_| rng(4) as i64).collect();
            let data = TupleData::ints(&vals);
            live[rel].push(data.clone());
            out.push(Update::insert(RelId(rel as u16), data, ts));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn any_pipeline_orders_give_oracle_deltas(
        orders in orders_strategy(4),
        seed in 1u64..10_000,
    ) {
        let q = QuerySchema::star(4);
        orders.validate(&q).unwrap();
        let updates = workload(&q, seed, 80);
        let mut m = MJoin::new(q.clone(), orders);
        let mut oracle = Oracle::new(q);
        for u in &updates {
            let got: Vec<_> = m
                .process(u)
                .into_iter()
                .map(|(op, c)| (op, canonical_rows(&c, 4)))
                .collect();
            let want = oracle.apply_and_delta(u);
            prop_assert!(multiset_diff(&got, &want).is_empty(), "diverged on {}", u);
        }
    }

    #[test]
    fn mid_stream_reordering_is_transparent(
        before in orders_strategy(3),
        after in orders_strategy(3),
        seed in 1u64..10_000,
    ) {
        let q = QuerySchema::chain3();
        let updates = workload(&q, seed, 120);
        let mut m = MJoin::new(q.clone(), before);
        let mut oracle = Oracle::new(q);
        for (i, u) in updates.iter().enumerate() {
            if i == updates.len() / 2 {
                m.set_orders(after.clone());
            }
            let got: Vec<_> = m
                .process(u)
                .into_iter()
                .map(|(op, c)| (op, canonical_rows(&c, 3)))
                .collect();
            let want = oracle.apply_and_delta(u);
            prop_assert!(multiset_diff(&got, &want).is_empty(), "diverged at step {i}");
        }
    }
}
