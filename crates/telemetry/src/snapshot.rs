//! Point-in-time telemetry snapshots: named metrics plus an event trace,
//! with JSON / aligned-text renderers and an associative cross-shard merge.

use crate::event::{Event, FieldValue};
use crate::metric::{Histogram, HISTOGRAM_BUCKETS};

/// The value carried by one [`Metric`] in a snapshot.
///
/// The variant determines merge semantics (see
/// [`TelemetrySnapshot::merge`]): counters, gauges, and histograms sum;
/// ratios merge component-wise so the quotient stays meaningful after a
/// cross-shard merge.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic count; merges by summation.
    Counter(u64),
    /// Extensive instantaneous value (bytes, entries); merges by summation.
    Gauge(f64),
    /// An intensive quantity kept as `num / den` (probability, per-tuple
    /// cost, rate). Merging sums numerators and denominators separately,
    /// which makes the merge associative and keeps the quotient a properly
    /// weighted average.
    Ratio {
        /// Numerator (e.g. misses, total τ, tuple count).
        num: f64,
        /// Denominator (e.g. probes, total δ, elapsed virtual seconds).
        den: f64,
    },
    /// Log-scale distribution; merges bucket-wise.
    Histogram {
        /// Per-bucket counts, indexed as in [`Histogram::bucket_of`].
        buckets: Vec<u64>,
        /// Total number of samples.
        count: u64,
        /// Sum of all samples.
        sum: u64,
    },
}

impl MetricValue {
    /// Render the value the way [`TelemetrySnapshot::render_text`] does.
    pub fn display(&self) -> String {
        match self {
            MetricValue::Counter(v) => format!("{v}"),
            MetricValue::Gauge(v) => format!("{v:.3}"),
            MetricValue::Ratio { num, den } => {
                if *den == 0.0 {
                    format!("-/- ({num:.1}/{den:.1})")
                } else {
                    format!("{:.4} ({num:.1}/{den:.1})", num / den)
                }
            }
            MetricValue::Histogram { count, sum, .. } => {
                let mean = if *count == 0 {
                    0.0
                } else {
                    *sum as f64 / *count as f64
                };
                format!("count={count} sum={sum} mean={mean:.1}")
            }
        }
    }

    /// The ratio's quotient, or `None` for other variants / zero
    /// denominators.
    pub fn as_ratio(&self) -> Option<f64> {
        match self {
            MetricValue::Ratio { num, den } if *den != 0.0 => Some(num / den),
            _ => None,
        }
    }
}

/// One named, labelled measurement inside a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Dotted metric name, e.g. `"cache.hits"` (see OBSERVABILITY.md for
    /// the namespace).
    pub name: String,
    /// Label pairs qualifying the series, e.g. `("cache", "C[…]")`.
    /// Order-insensitive for identity: labels are sorted on insertion.
    pub labels: Vec<(String, String)>,
    /// The measured value.
    pub value: MetricValue,
}

impl Metric {
    fn key(&self) -> (&str, &[(String, String)]) {
        (&self.name, &self.labels)
    }
}

/// A point-in-time view of a component's telemetry: a flat list of
/// [`Metric`]s plus a bounded [`Event`] trace.
///
/// Snapshots from different shards (or different components of one engine)
/// combine with [`TelemetrySnapshot::merge`], which is associative, so an
/// N-shard merged snapshot is canonical regardless of merge order or shard
/// count for counter totals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    metrics: Vec<Metric>,
    events: Vec<Event>,
    /// Events evicted from bounded logs before the snapshot was taken.
    events_dropped: u64,
}

impl TelemetrySnapshot {
    /// An empty snapshot.
    pub fn new() -> TelemetrySnapshot {
        TelemetrySnapshot::default()
    }

    fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        out.sort();
        out
    }

    /// Add or overwrite a metric with an explicit [`MetricValue`].
    pub fn set(&mut self, name: &str, labels: &[(&str, &str)], value: MetricValue) {
        let labels = TelemetrySnapshot::sorted_labels(labels);
        if let Some(m) = self
            .metrics
            .iter_mut()
            .find(|m| m.name == name && m.labels == labels)
        {
            m.value = value;
        } else {
            self.metrics.push(Metric {
                name: name.to_string(),
                labels,
                value,
            });
        }
    }

    /// Add a counter metric.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        self.set(name, labels, MetricValue::Counter(v));
    }

    /// Add a gauge metric.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.set(name, labels, MetricValue::Gauge(v));
    }

    /// Add a ratio metric (`num / den` with component-wise merge).
    pub fn ratio(&mut self, name: &str, labels: &[(&str, &str)], num: f64, den: f64) {
        self.set(name, labels, MetricValue::Ratio { num, den });
    }

    /// Add a histogram metric from a live [`Histogram`].
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], h: &Histogram) {
        self.set(
            name,
            labels,
            MetricValue::Histogram {
                buckets: h.buckets().to_vec(),
                count: h.count(),
                sum: h.sum(),
            },
        );
    }

    /// Append one event to the trace (kept in push order; callers push in
    /// virtual-time order).
    pub fn push_event(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Append a batch of events plus the count evicted before snapshot.
    pub fn extend_events(&mut self, events: impl IntoIterator<Item = Event>, dropped: u64) {
        self.events.extend(events);
        self.events_dropped += dropped;
    }

    /// Stamp every event in this snapshot with an extra field (e.g. tag a
    /// per-shard snapshot with `shard=N` before the cross-shard merge).
    /// Events that already carry `key` are left untouched.
    pub fn tag_events(&mut self, key: &'static str, value: FieldValue) {
        for e in &mut self.events {
            if e.get(key).is_none() {
                e.fields.push((key, value.clone()));
            }
        }
    }

    /// All metrics, in insertion order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// The event trace, in virtual-time order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events evicted from bounded logs before this snapshot was taken.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Look up a metric by name and exact label set.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        let labels = TelemetrySnapshot::sorted_labels(labels);
        self.metrics
            .iter()
            .find(|m| m.name == name && m.labels == labels)
            .map(|m| &m.value)
    }

    /// Sum of all `Counter` metrics with this name, across label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|m| m.name == name)
            .map(|m| match m.value {
                MetricValue::Counter(v) => v,
                _ => 0,
            })
            .sum()
    }

    /// Events of a given kind, in order.
    pub fn events_of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a Event> + 'a {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Merge another snapshot into this one.
    ///
    /// Metrics with the same `(name, labels)` key combine by variant:
    /// counters, gauges, and histograms sum; ratios sum numerator and
    /// denominator separately. Metrics present on one side only are kept
    /// as-is, so the operation is associative and commutative up to metric
    /// ordering — counter totals are invariant to how work is split across
    /// shards.
    ///
    /// Event traces are stable-merged by `at_ns` (ties keep `self` first),
    /// which is associative because each input is already sorted.
    ///
    /// # Panics
    /// If the same key carries different metric variants on the two sides
    /// (a wiring bug, not a runtime condition).
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for om in &other.metrics {
            if let Some(m) = self.metrics.iter_mut().find(|m| m.key() == om.key()) {
                match (&mut m.value, &om.value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
                    (
                        MetricValue::Ratio { num: an, den: ad },
                        MetricValue::Ratio { num: bn, den: bd },
                    ) => {
                        *an += bn;
                        *ad += bd;
                    }
                    (
                        MetricValue::Histogram {
                            buckets: ab,
                            count: ac,
                            sum: asum,
                        },
                        MetricValue::Histogram {
                            buckets: bb,
                            count: bc,
                            sum: bsum,
                        },
                    ) => {
                        if ab.len() < bb.len() {
                            ab.resize(bb.len(), 0);
                        }
                        for (x, y) in ab.iter_mut().zip(bb.iter()) {
                            *x += y;
                        }
                        *ac += bc;
                        *asum += bsum;
                    }
                    (a, b) => panic!(
                        "telemetry merge: metric {:?}{:?} has mismatched kinds ({a:?} vs {b:?})",
                        om.name, om.labels
                    ),
                }
            } else {
                self.metrics.push(om.clone());
            }
        }
        // Stable merge of two at_ns-sorted traces.
        let mine = std::mem::take(&mut self.events);
        let mut a = mine.into_iter().peekable();
        let mut b = other.events.iter().cloned().peekable();
        let mut merged = Vec::with_capacity(a.len() + b.len());
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    if x.at_ns <= y.at_ns {
                        merged.push(a.next().unwrap());
                    } else {
                        merged.push(b.next().unwrap());
                    }
                }
                (Some(_), None) => merged.push(a.next().unwrap()),
                (None, Some(_)) => merged.push(b.next().unwrap()),
                (None, None) => break,
            }
        }
        self.events = merged;
        self.events_dropped += other.events_dropped;
    }

    /// Merged copy of a list of snapshots (left fold of
    /// [`TelemetrySnapshot::merge`]).
    pub fn merged(parts: &[TelemetrySnapshot]) -> TelemetrySnapshot {
        let mut out = TelemetrySnapshot::new();
        for p in parts {
            out.merge(p);
        }
        out
    }

    /// Serialize to a self-contained JSON document (no external deps;
    /// non-finite floats become `null`).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"name\":");
            json_string(&mut s, &m.name);
            s.push_str(",\"labels\":{");
            for (j, (k, v)) in m.labels.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                json_string(&mut s, k);
                s.push(':');
                json_string(&mut s, v);
            }
            s.push_str("},");
            match &m.value {
                MetricValue::Counter(v) => {
                    s.push_str(&format!("\"kind\":\"counter\",\"value\":{v}"));
                }
                MetricValue::Gauge(v) => {
                    s.push_str("\"kind\":\"gauge\",\"value\":");
                    json_f64(&mut s, *v);
                }
                MetricValue::Ratio { num, den } => {
                    s.push_str("\"kind\":\"ratio\",\"num\":");
                    json_f64(&mut s, *num);
                    s.push_str(",\"den\":");
                    json_f64(&mut s, *den);
                    s.push_str(",\"value\":");
                    if *den == 0.0 {
                        s.push_str("null");
                    } else {
                        json_f64(&mut s, num / den);
                    }
                }
                MetricValue::Histogram {
                    buckets,
                    count,
                    sum,
                } => {
                    s.push_str(&format!(
                        "\"kind\":\"histogram\",\"count\":{count},\"sum\":{sum},\"buckets\":["
                    ));
                    // Trailing zero buckets add nothing; keep the document small.
                    let last = buckets.iter().rposition(|&c| c != 0).map_or(0, |p| p + 1);
                    for (j, c) in buckets[..last].iter().enumerate() {
                        if j > 0 {
                            s.push(',');
                        }
                        s.push_str(&c.to_string());
                    }
                    s.push(']');
                }
            }
            s.push('}');
        }
        s.push_str("],\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{{\"at_ns\":{},\"kind\":", e.at_ns));
            json_string(&mut s, e.kind);
            s.push_str(",\"subject\":");
            json_string(&mut s, &e.subject);
            s.push_str(",\"fields\":{");
            for (j, (k, v)) in e.fields.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                json_string(&mut s, k);
                s.push(':');
                match v {
                    FieldValue::U64(x) => s.push_str(&x.to_string()),
                    FieldValue::F64(x) => json_f64(&mut s, *x),
                    FieldValue::Str(x) => json_string(&mut s, x),
                    FieldValue::Bool(x) => s.push_str(if *x { "true" } else { "false" }),
                }
            }
            s.push_str("}}");
        }
        s.push_str(&format!(
            "],\"events_dropped\":{}}}",
            self.events_dropped
        ));
        s
    }

    /// Render as aligned plain text: one `name{labels}  value` line per
    /// metric (sorted by name then labels), then the event trace.
    pub fn render_text(&self) -> String {
        let mut rows: Vec<(String, String)> = self
            .metrics
            .iter()
            .map(|m| {
                let mut id = m.name.clone();
                if !m.labels.is_empty() {
                    id.push('{');
                    for (i, (k, v)) in m.labels.iter().enumerate() {
                        if i > 0 {
                            id.push(',');
                        }
                        id.push_str(k);
                        id.push('=');
                        id.push_str(v);
                    }
                    id.push('}');
                }
                (id, m.value.display())
            })
            .collect();
        rows.sort();
        let width = rows.iter().map(|(id, _)| id.chars().count()).max().unwrap_or(0);
        let mut out = String::new();
        for (id, val) in &rows {
            let pad = width - id.chars().count();
            out.push_str(id);
            for _ in 0..pad + 2 {
                out.push(' ');
            }
            out.push_str(val);
            out.push('\n');
        }
        if !self.events.is_empty() || self.events_dropped > 0 {
            out.push_str(&format!(
                "\nevents ({} shown, {} dropped):\n",
                self.events.len(),
                self.events_dropped
            ));
            for e in &self.events {
                out.push_str(&format!("  [{:>14}ns] {:<18} {}", e.at_ns, e.kind, e.subject));
                for (k, v) in &e.fields {
                    let rendered = match v {
                        FieldValue::U64(x) => x.to_string(),
                        FieldValue::F64(x) => format!("{x:.3}"),
                        FieldValue::Str(x) => x.clone(),
                        FieldValue::Bool(x) => x.to_string(),
                    };
                    out.push_str(&format!(" {k}={rendered}"));
                }
                out.push('\n');
            }
        }
        out
    }
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// Sanity bound: histogram bucket vectors in snapshots never exceed this.
pub const MAX_HISTOGRAM_BUCKETS: usize = HISTOGRAM_BUCKETS;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::metric::Histogram;

    fn snap(counter: u64, at: u64) -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::new();
        s.counter("engine.tuples", &[], counter);
        s.ratio("cache.miss_prob", &[("cache", "C")], counter as f64, 10.0);
        s.push_event(Event::new(at, "tick", "x"));
        s
    }

    #[test]
    fn merge_sums_counters_and_ratio_components() {
        let mut a = snap(3, 5);
        a.merge(&snap(4, 2));
        assert_eq!(a.get("engine.tuples", &[]), Some(&MetricValue::Counter(7)));
        assert_eq!(
            a.get("cache.miss_prob", &[("cache", "C")]),
            Some(&MetricValue::Ratio { num: 7.0, den: 20.0 })
        );
        let times: Vec<u64> = a.events().iter().map(|e| e.at_ns).collect();
        assert_eq!(times, vec![2, 5], "events merged into virtual-time order");
    }

    #[test]
    fn merge_is_associative_on_metrics() {
        let (a, b, c) = (snap(1, 1), snap(2, 2), snap(3, 3));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    fn merge_keeps_disjoint_metrics() {
        let mut a = TelemetrySnapshot::new();
        a.counter("only.a", &[], 1);
        let mut b = TelemetrySnapshot::new();
        b.gauge("only.b", &[], 2.0);
        a.merge(&b);
        assert_eq!(a.get("only.a", &[]), Some(&MetricValue::Counter(1)));
        assert_eq!(a.get("only.b", &[]), Some(&MetricValue::Gauge(2.0)));
    }

    #[test]
    fn label_order_is_canonicalized() {
        let mut a = TelemetrySnapshot::new();
        a.counter("m", &[("x", "1"), ("a", "2")], 5);
        assert_eq!(
            a.get("m", &[("a", "2"), ("x", "1")]),
            Some(&MetricValue::Counter(5))
        );
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut s = TelemetrySnapshot::new();
        s.counter("c", &[("k", "va\"lue")], 1);
        s.gauge("g", &[], f64::NAN);
        let mut h = Histogram::new();
        h.record(3);
        s.histogram("h", &[], &h);
        s.push_event(Event::new(7, "e", "line\nbreak").field("f", 0.5));
        let j = s.to_json();
        assert!(j.contains("\"va\\\"lue\""));
        assert!(j.contains("\"value\":null"), "NaN rendered as null");
        assert!(j.contains("\"buckets\":[0,0,1]"), "trailing zeros trimmed");
        assert!(j.contains("line\\nbreak"));
        assert!(j.starts_with('{') && j.ends_with('}'));
        // Balanced braces/brackets outside strings — a cheap well-formedness check.
        let (mut depth, mut in_str, mut esc) = (0i32, false, false);
        for ch in j.chars() {
            if esc {
                esc = false;
                continue;
            }
            match ch {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn text_render_is_aligned_and_sorted() {
        let mut s = TelemetrySnapshot::new();
        s.counter("zz.long.metric.name", &[], 1);
        s.counter("aa", &[], 2);
        s.push_event(Event::new(1, "k", "subj").field("n", 3u64));
        let txt = s.render_text();
        let lines: Vec<&str> = txt.lines().collect();
        assert!(lines[0].starts_with("aa"), "sorted by name");
        assert!(lines[1].starts_with("zz.long.metric.name"));
        let val_col_0 = lines[0].rfind("2").unwrap();
        let val_col_1 = lines[1].rfind("1").unwrap();
        assert_eq!(val_col_0, val_col_1, "values aligned");
        assert!(txt.contains("events (1 shown, 0 dropped)"));
        assert!(txt.contains("n=3"));
    }

    #[test]
    fn counter_total_sums_across_labels() {
        let mut s = TelemetrySnapshot::new();
        s.counter("cache.hits", &[("cache", "A")], 3);
        s.counter("cache.hits", &[("cache", "B")], 4);
        assert_eq!(s.counter_total("cache.hits"), 7);
    }
}
