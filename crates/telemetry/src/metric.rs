//! Live metric primitives: monotonic counters, gauges, log-scale
//! histograms, and windowed rates.
//!
//! These are the *hot-path* types: plain structs of integers/floats with
//! branch-free (or nearly so) update methods and no allocation after
//! construction. Components embed them as fields and bump them inline; a
//! [`crate::TelemetrySnapshot`] is assembled from them on demand, off the
//! hot path.

/// A monotonic event counter.
///
/// Wraps a `u64`; merging across shards sums values. Use for anything that
/// only grows: tuples processed, cache hits, bytes written.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter(0)
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A last-value gauge.
///
/// Wraps an `f64`. The cross-shard merge **sums** gauges, so gauges should
/// hold *extensive* quantities (memory bytes, live entries, rates that add
/// across shards). For intensive quantities (probabilities, fractions,
/// per-tuple costs) emit a [`crate::MetricValue::Ratio`] instead — its
/// numerator and denominator merge component-wise.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Gauge(f64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge(0.0)
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&mut self, v: f64) {
        self.0 = v;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        self.0
    }
}

/// Number of histogram buckets: one for zero plus one per power of two up
/// to `2^63`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A base-2 log-scale histogram of `u64` samples.
///
/// Bucket `0` counts exact zeros; bucket `b ≥ 1` counts samples in
/// `[2^(b−1), 2^b)`. Recording is two adds and a `leading_zeros` — cheap
/// enough for per-update paths. Merging across shards sums buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Bucket index for a sample value.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of bucket `b` (the largest sample it accepts).
    pub fn bucket_upper(b: usize) -> u64 {
        if b == 0 {
            0
        } else if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Histogram::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Per-bucket counts (index = [`Histogram::bucket_of`]).
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Approximate quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// containing the `q`-th sample. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Histogram::bucket_upper(b));
            }
        }
        Some(u64::MAX)
    }

    /// Fold another histogram into this one (bucket-wise sum).
    pub fn absorb(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// A sliding-window rate estimator over **virtual time**.
///
/// Time is divided into fixed slots of `slot_ns`; the window covers the
/// most recent `slots` of them. Recording advances the ring to the slot
/// containing `now_ns` (zeroing any skipped slots) and adds the amount;
/// [`RateWindow::rate`] reports events per virtual second over the covered
/// span. Cost per record is O(1) amortized, no allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RateWindow {
    slot_ns: u64,
    slots: Vec<f64>,
    /// Absolute index (`now_ns / slot_ns`) of the slot currently written.
    cur: u64,
    /// Absolute slot index of the first slot ever written (bounds the
    /// covered span while the window is still filling).
    first: u64,
    started: bool,
}

impl RateWindow {
    /// A window of `slots` slots of `slot_ns` virtual nanoseconds each.
    /// Both are clamped to at least 1.
    pub fn new(slot_ns: u64, slots: usize) -> RateWindow {
        RateWindow {
            slot_ns: slot_ns.max(1),
            slots: vec![0.0; slots.max(1)],
            cur: 0,
            first: 0,
            started: false,
        }
    }

    /// Record `amount` events at virtual time `now_ns`.
    pub fn record(&mut self, now_ns: u64, amount: f64) {
        self.advance(now_ns);
        let len = self.slots.len() as u64;
        self.slots[(self.cur % len) as usize] += amount;
    }

    fn advance(&mut self, now_ns: u64) {
        let slot = now_ns / self.slot_ns;
        if !self.started {
            self.started = true;
            self.cur = slot;
            self.first = slot;
            return;
        }
        if slot <= self.cur {
            return; // same slot, or virtual time briefly observed out of order
        }
        let len = self.slots.len() as u64;
        let skipped = (slot - self.cur).min(len);
        for k in 1..=skipped {
            let idx = ((self.cur + k) % len) as usize;
            self.slots[idx] = 0.0;
        }
        self.cur = slot;
    }

    /// Total events currently inside the window.
    pub fn total(&self) -> f64 {
        self.slots.iter().sum()
    }

    /// Virtual seconds the window currently covers (grows from one slot up
    /// to the full window while filling).
    pub fn covered_secs(&self) -> f64 {
        if !self.started {
            return 0.0;
        }
        let len = self.slots.len() as u64;
        let filled = (self.cur - self.first + 1).min(len);
        (filled * self.slot_ns) as f64 / 1e9
    }

    /// Events per virtual second over the covered span (0 before any
    /// record).
    pub fn rate(&self) -> f64 {
        let secs = self.covered_secs();
        if secs <= 0.0 {
            0.0
        } else {
            self.total() / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut g = Gauge::new();
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Zero gets its own bucket; powers of two start new buckets.
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(7), 3);
        assert_eq!(Histogram::bucket_of(8), 4);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        // Upper bounds are the last value each bucket accepts.
        assert_eq!(Histogram::bucket_upper(0), 0);
        assert_eq!(Histogram::bucket_upper(1), 1);
        assert_eq!(Histogram::bucket_upper(3), 7);
        assert_eq!(Histogram::bucket_upper(64), u64::MAX);
        for v in [0u64, 1, 2, 3, 5, 100, 1 << 40] {
            let b = Histogram::bucket_of(v);
            assert!(v <= Histogram::bucket_upper(b), "{v} fits its bucket");
            if b > 0 {
                assert!(v > Histogram::bucket_upper(b - 1), "{v} above prior");
            }
        }
    }

    #[test]
    fn histogram_count_sum_mean_quantile() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        for v in [0u64, 1, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 106);
        assert!((h.mean() - 21.2).abs() < 1e-9);
        // Median sample is 2 → bucket [2,4) → upper bound 3.
        assert_eq!(h.quantile(0.5), Some(3));
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(127), "100 lives in [64,128)");
    }

    #[test]
    fn histogram_absorb_is_bucketwise_sum() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1);
        a.record(5);
        b.record(5);
        b.record(1000);
        let mut merged = a.clone();
        merged.absorb(&b);
        assert_eq!(merged.count(), 4);
        assert_eq!(merged.sum(), 1011);
        assert_eq!(merged.buckets()[Histogram::bucket_of(5)], 2);
    }

    #[test]
    fn rate_window_fills_and_slides() {
        // 4 slots × 1s.
        let mut w = RateWindow::new(1_000_000_000, 4);
        assert_eq!(w.rate(), 0.0);
        w.record(0, 10.0);
        assert!((w.covered_secs() - 1.0).abs() < 1e-12);
        assert!((w.rate() - 10.0).abs() < 1e-9);
        w.record(1_500_000_000, 10.0); // second slot
        assert!((w.rate() - 10.0).abs() < 1e-9, "20 events over 2s");
        // Jump to slot 5: slots 0..1 fall out of the 4-slot window.
        w.record(5_200_000_000, 40.0);
        assert!((w.covered_secs() - 4.0).abs() < 1e-12);
        assert!((w.rate() - 10.0).abs() < 1e-9, "only the new 40 remain");
    }

    #[test]
    fn rate_window_long_gap_zeroes_everything() {
        let mut w = RateWindow::new(1_000, 8);
        w.record(0, 100.0);
        w.record(1_000_000, 1.0); // 1000 slots later
        assert!((w.total() - 1.0).abs() < 1e-12, "old slots all cleared");
    }

    #[test]
    fn rate_window_same_slot_accumulates() {
        let mut w = RateWindow::new(1_000, 2);
        w.record(10, 1.0);
        w.record(900, 2.0);
        assert!((w.total() - 3.0).abs() < 1e-12);
        // Out-of-order observation within history is folded into "now".
        w.record(5, 1.0);
        assert!((w.total() - 4.0).abs() < 1e-12);
    }
}
