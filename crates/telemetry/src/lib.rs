//! # acq-telemetry — zero-dependency telemetry substrate
//!
//! Observability primitives for the A-Caching workspace: live metric
//! types that components bump on the hot path, a structured event log
//! stamped with **virtual time** (the engines' deterministic cost clock,
//! see `acq-mjoin::clock`), and a mergeable [`TelemetrySnapshot`] with
//! JSON and aligned-text renderers.
//!
//! Design constraints, in order:
//!
//! 1. **Zero dependencies.** The workspace builds offline; this crate
//!    uses only `std`.
//! 2. **Allocation-light hot path.** [`Counter`], [`Gauge`],
//!    [`Histogram`], and [`RateWindow`] never allocate after
//!    construction; building a snapshot (which does allocate) happens
//!    only when one is requested.
//! 3. **Canonical cross-shard merge.** [`TelemetrySnapshot::merge`] is
//!    associative: counters/gauges/histograms sum, [`MetricValue::Ratio`]
//!    merges component-wise, and event traces stable-merge by timestamp.
//!    Splitting a workload across N shards and merging their snapshots
//!    yields the same counter totals as a single-shard run — mirroring
//!    the engine's deterministic delta-run merge.
//!
//! The metric namespace (names, labels, units, paper-symbol
//! cross-references) is documented in the repository's `OBSERVABILITY.md`.

#![warn(missing_docs)]

mod conservation;
mod event;
mod metric;
mod snapshot;

pub use conservation::{check_laws, ConservationLaw, ENGINE_LAWS};
pub use event::{Event, EventLog, FieldValue};
pub use metric::{Counter, Gauge, Histogram, RateWindow, HISTOGRAM_BUCKETS};
pub use snapshot::{Metric, MetricValue, TelemetrySnapshot, MAX_HISTOGRAM_BUCKETS};
