//! Counter conservation laws.
//!
//! A snapshot's counters are redundant by construction: the engine bumps
//! aggregate counters (`engine.cache_hits`) on the same code paths that bump
//! per-cache counters (`cache.hits` per candidate label), and sharded runs
//! merge per-shard snapshots whose totals must sum to the single-shard run's.
//! A [`ConservationLaw`] names one such redundancy so differential harnesses
//! can assert it mechanically: if the two sides of a law disagree, some code
//! path updated one counter and skipped its twin — exactly the class of bug
//! (a maintenance path silently dropped) adaptive caching is prone to.

use crate::snapshot::TelemetrySnapshot;

/// One conservation law: the sum of all `Counter` metrics named
/// `aggregate` must equal the sum of all `Counter` metrics named
/// `per_component` (across label sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConservationLaw {
    /// Name of the aggregate counter (e.g. `engine.cache_hits`).
    pub aggregate: &'static str,
    /// Name of the per-component counter it must equal in total
    /// (e.g. `cache.hits`, summed over every cache label).
    pub per_component: &'static str,
}

impl ConservationLaw {
    /// Check this law against a snapshot; `None` means it holds, `Some`
    /// carries a human-readable violation description.
    pub fn check(&self, snap: &TelemetrySnapshot) -> Option<String> {
        let lhs = snap.counter_total(self.aggregate);
        let rhs = snap.counter_total(self.per_component);
        if lhs == rhs {
            None
        } else {
            Some(format!(
                "conservation violated: Σ {} = {} but Σ {} = {}",
                self.aggregate, lhs, self.per_component, rhs
            ))
        }
    }
}

/// The engine's built-in conservation laws: aggregate cache hit/miss
/// counters equal the per-cache totals. Checked by the conformance harness
/// after every run and after every shard merge.
pub const ENGINE_LAWS: &[ConservationLaw] = &[
    ConservationLaw {
        aggregate: "engine.cache_hits",
        per_component: "cache.hits",
    },
    ConservationLaw {
        aggregate: "engine.cache_misses",
        per_component: "cache.misses",
    },
];

/// Check a set of laws, returning every violation (empty = all hold).
pub fn check_laws(snap: &TelemetrySnapshot, laws: &[ConservationLaw]) -> Vec<String> {
    laws.iter().filter_map(|l| l.check(snap)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn law_holds_on_balanced_snapshot() {
        let mut s = TelemetrySnapshot::new();
        s.counter("engine.cache_hits", &[], 7);
        s.counter("cache.hits", &[("cache", "a")], 4);
        s.counter("cache.hits", &[("cache", "b")], 3);
        assert!(check_laws(&s, ENGINE_LAWS).is_empty());
    }

    #[test]
    fn law_flags_imbalance() {
        let mut s = TelemetrySnapshot::new();
        s.counter("engine.cache_hits", &[], 7);
        s.counter("cache.hits", &[("cache", "a")], 4);
        let v = check_laws(&s, ENGINE_LAWS);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("engine.cache_hits"), "{}", v[0]);
    }

    #[test]
    fn laws_survive_merge() {
        // Conservation is preserved by snapshot merge: if it holds per
        // shard, it holds for the merged snapshot (counters sum).
        let mut a = TelemetrySnapshot::new();
        a.counter("engine.cache_misses", &[], 2);
        a.counter("cache.misses", &[("cache", "x")], 2);
        let mut b = TelemetrySnapshot::new();
        b.counter("engine.cache_misses", &[], 5);
        b.counter("cache.misses", &[("cache", "x")], 1);
        b.counter("cache.misses", &[("cache", "y")], 4);
        a.merge(&b);
        assert!(check_laws(&a, ENGINE_LAWS).is_empty());
    }
}
