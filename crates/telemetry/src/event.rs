//! Structured event log with virtual-time timestamps.
//!
//! Events capture *decisions* (a cache scored, added, dropped; a plan
//! reordered) rather than continuous measurements. Each carries the
//! engine's virtual-time stamp, a static `kind`, a `subject` (usually a
//! candidate/cache name), and a small list of typed fields. The log is
//! bounded: once full, the oldest events are discarded and counted in
//! [`EventLog::dropped`].

/// A typed value attached to an [`Event`] field.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer (counts, byte sizes, virtual durations).
    U64(u64),
    /// A floating-point quantity (benefits, costs, probabilities).
    F64(f64),
    /// A short free-form string (reasons, solver names).
    Str(String),
    /// A boolean flag.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

/// One structured event at a point in virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Virtual-time timestamp in nanoseconds (the engine's cost clock).
    pub at_ns: u64,
    /// Static event kind, e.g. `"cache.added"` or `"selection.run"`.
    pub kind: &'static str,
    /// What the event is about — typically a candidate name such as
    /// `C[∆R2: R0⋈R1 @0..1]`, or empty for engine-wide events.
    pub subject: String,
    /// Typed key/value payload.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Build an event with no fields.
    pub fn new(at_ns: u64, kind: &'static str, subject: impl Into<String>) -> Event {
        Event {
            at_ns,
            kind,
            subject: subject.into(),
            fields: Vec::new(),
        }
    }

    /// Attach a field (builder style).
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Event {
        self.fields.push((key, value.into()));
        self
    }

    /// Look up a field value by key.
    pub fn get(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// A bounded in-memory event log.
///
/// Appends are O(1); when the capacity is exceeded the oldest entry is
/// evicted and counted. Within one engine (one virtual clock), appends
/// arrive in non-decreasing `at_ns` order, so the log is always sorted.
#[derive(Debug, Clone)]
pub struct EventLog {
    events: std::collections::VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl EventLog {
    /// A log holding at most `capacity` events (clamped to at least 1).
    pub fn new(capacity: usize) -> EventLog {
        EventLog {
            events: std::collections::VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest if the log is full.
    pub fn push(&mut self, event: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Events currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted so far because the log was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Remove and return all retained events, oldest first.
    pub fn drain(&mut self) -> Vec<Event> {
        self.events.drain(..).collect()
    }
}

impl Default for EventLog {
    /// A log with a 4096-event capacity.
    fn default() -> EventLog {
        EventLog::new(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_builder_and_lookup() {
        let e = Event::new(42, "cache.added", "C[x]")
            .field("benefit", 1.5)
            .field("bytes", 4096u64)
            .field("reason", "selected")
            .field("warm", true);
        assert_eq!(e.at_ns, 42);
        assert_eq!(e.get("bytes"), Some(&FieldValue::U64(4096)));
        assert_eq!(e.get("warm"), Some(&FieldValue::Bool(true)));
        assert_eq!(e.get("nope"), None);
    }

    #[test]
    fn log_bounds_and_counts_drops() {
        let mut log = EventLog::new(2);
        for i in 0..5u64 {
            log.push(Event::new(i, "tick", ""));
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        let kept: Vec<u64> = log.iter().map(|e| e.at_ns).collect();
        assert_eq!(kept, vec![3, 4], "oldest evicted first");
    }

    #[test]
    fn drain_empties_but_keeps_drop_count() {
        let mut log = EventLog::new(8);
        log.push(Event::new(1, "a", ""));
        log.push(Event::new(2, "b", ""));
        let drained = log.drain();
        assert_eq!(drained.len(), 2);
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0);
    }
}
