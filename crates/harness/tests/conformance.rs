//! Tier-2 conformance tests: a bounded sweep must run green, a deliberately
//! planted cache-maintenance bug must be flagged, and every committed corpus
//! case must still reproduce green.

use acq::engine::{AdaptiveJoinEngine, InjectedFault};
use acq_harness::casefile::{ArrivalSpec, CaseSpec, ConfigId, SchemaSpec};
use acq_harness::{gencase, sweep};
use std::path::PathBuf;

#[test]
fn bounded_sweep_is_green() {
    for i in 0..4 {
        let spec = gencase::generate(7, i);
        let outcome = sweep::run_case(&spec)
            .unwrap_or_else(|f| panic!("{}: [{}] {}", spec.name, f.run, f.detail));
        assert!(outcome.updates > 0);
        // Per shard count the sweep runs the persistent executor and the
        // scoped-thread reference executor, hence two runs per entry.
        assert_eq!(
            outcome.runs,
            ConfigId::ALL.len() + 2 * spec.shards.len(),
            "every sweep point must actually run"
        );
    }
}

/// A hand-built chain3 case whose forced {S,T} cache sees probe hits *and*
/// segment maintenance: S and T fill first, ∆R probes populate the cache,
/// then re-inserting T values through the full window forces evictions whose
/// deltas must be maintained into the cache.
fn maintenance_heavy_case() -> CaseSpec {
    let mut arrivals = Vec::new();
    let mut ts = 0u64;
    for i in 0..6i64 {
        arrivals.push(ArrivalSpec { rel: 1, ts, vals: vec![i, i] });
        ts += 1;
        arrivals.push(ArrivalSpec { rel: 2, ts, vals: vec![i] });
        ts += 1;
    }
    for i in 0..6i64 {
        arrivals.push(ArrivalSpec { rel: 0, ts, vals: vec![i] });
        ts += 1;
    }
    // T's window (6) is full: each re-insert evicts the oldest tuple,
    // generating delete maintenance for the cached segment.
    for i in 0..6i64 {
        arrivals.push(ArrivalSpec { rel: 2, ts, vals: vec![i] });
        ts += 1;
    }
    CaseSpec {
        name: "maintenance-heavy".to_string(),
        schema: SchemaSpec::Chain3,
        windows: vec![6, 12, 6],
        churns: Vec::new(),
        arrivals,
        configs: vec![ConfigId::Forced],
        shards: vec![1],
    }
}

#[test]
fn sanity_maintenance_case_is_green() {
    let spec = maintenance_heavy_case();
    sweep::run_case(&spec).unwrap_or_else(|f| panic!("[{}] {}", f.run, f.detail));
}

#[test]
fn injected_fault_is_flagged_by_the_harness() {
    let spec = maintenance_heavy_case();
    let updates = sweep::derive_updates(&spec);
    let deltas = sweep::oracle_deltas(&spec, &updates);
    let query = spec.schema.query();

    for fault in [InjectedFault::SkipTapDeletes, InjectedFault::SkipTapInserts] {
        let config = sweep::engine_config(ConfigId::Forced, spec.schema);
        let orders = sweep::plan_orders(ConfigId::Forced, spec.schema);
        let mut engine = AdaptiveJoinEngine::with_config(query.clone(), orders, config);
        engine.inject_fault(Some(fault));
        let err = sweep::run_engine_updates(&mut engine, &updates, &deltas);
        assert!(
            err.is_err(),
            "planted {fault:?} must be caught by the differential/invariant checks"
        );
    }
}

#[test]
fn corpus_cases_reproduce_green() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus");
    let mut checked = 0usize;
    let Ok(rd) = std::fs::read_dir(&dir) else {
        return; // corpus not present in this checkout
    };
    let mut paths: Vec<PathBuf> = rd
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let spec = CaseSpec::from_json(&text)
            .unwrap_or_else(|e| panic!("{path:?} does not parse: {e}"));
        sweep::run_case(&spec)
            .unwrap_or_else(|f| panic!("corpus case {path:?}: [{}] {}", f.run, f.detail));
        checked += 1;
    }
    assert!(checked > 0, "corpus directory exists but holds no cases");
}

#[test]
fn shrinker_minimizes_a_planted_fault_reproducer() {
    // End-to-end shrink against the real engine: the failure predicate runs
    // the forced-cache configuration with a planted stale-delete fault. The
    // shrunk case must still trip the checkers and must be smaller than the
    // original (it needs a probe to populate the cache plus an eviction to
    // skip, but not the full workload).
    let spec = maintenance_heavy_case();
    let query = spec.schema.query();
    let fails = |c: &CaseSpec| {
        let updates = sweep::derive_updates(c);
        let deltas = sweep::oracle_deltas(c, &updates);
        let config = sweep::engine_config(ConfigId::Forced, c.schema);
        let orders = sweep::plan_orders(ConfigId::Forced, c.schema);
        let mut engine = AdaptiveJoinEngine::with_config(query.clone(), orders, config);
        engine.inject_fault(Some(InjectedFault::SkipTapDeletes));
        sweep::run_engine_updates(&mut engine, &updates, &deltas).is_err()
    };
    assert!(fails(&spec), "planted fault must fail before shrinking");
    let min = acq_harness::shrink::shrink_with(&spec, fails);
    assert!(fails(&min), "shrunk case must still reproduce");
    assert!(
        min.arrivals.len() < spec.arrivals.len(),
        "expected a reduction below {} arrivals, got {}",
        spec.arrivals.len(),
        min.arrivals.len()
    );
    // The reproducer must replay from its serialized form.
    let replayed = CaseSpec::from_json(&min.to_json()).expect("reproducer parses");
    assert!(fails(&replayed), "serialized reproducer must still fail");
}

