//! Seeded random case generation on top of `acq-gen`.
//!
//! Each `(seed, index)` pair deterministically yields one [`CaseSpec`]:
//! a query template, per-stream rates/windows/columns, optional adversarial
//! schedule features (a rate burst, a window churn), and the full
//! configuration × shard sweep matrix. The arrival list is materialized by
//! [`acq_gen::Workload::generate_arrivals`], so cases are self-contained —
//! a corpus file replays without the generator.

use crate::casefile::{ArrivalSpec, CaseSpec, ConfigId, SchemaSpec};
use acq_gen::spec::{Burst, StreamSpec, Workload};
use acq_gen::ColumnGen;
use acq_stream::RelId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Derive one case from the sweep seed and the case index.
pub fn generate(seed: u64, index: u64) -> CaseSpec {
    // Split the seed so neighbouring indices get decorrelated streams.
    let mixed = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xD1B5_4A32_D192_ED03));
    let mut rng = SmallRng::seed_from_u64(mixed);

    let schema = match rng.gen_range(0..5u32) {
        0..=2 => SchemaSpec::Chain3,
        3 => SchemaSpec::Star(3),
        _ => SchemaSpec::Star(4),
    };
    let n = schema.num_relations();
    let windows: Vec<usize> = (0..n).map(|_| rng.gen_range(2..=12usize)).collect();
    let domain = rng.gen_range(3..=8u64);
    let streams: Vec<StreamSpec> = (0..n)
        .map(|r| {
            let rate = [0.5, 1.0, 1.0, 2.0, 4.0][rng.gen_range(0..5usize)];
            let columns = columns_for(schema, r, domain, &mut rng);
            StreamSpec::new(r as u16, rate, windows[r], columns)
        })
        .collect();
    let total = rng.gen_range(60..=140usize);

    let mut workload = Workload::new(streams, mixed ^ 0x5EED);
    if rng.gen_bool(0.3) {
        let start = rng.gen_range(0..total as u64 / 2);
        workload = workload.with_burst(Burst {
            rel: RelId(rng.gen_range(0..n as u16)),
            start_after_elements: start,
            end_after_elements: if rng.gen_bool(0.5) {
                u64::MAX
            } else {
                start + rng.gen_range(10..40u64)
            },
            factor: rng.gen_range(4..=20u32) as f64,
        });
    }
    let churns = if rng.gen_bool(0.3) {
        vec![(
            rng.gen_range(0..n),
            rng.gen_range(total as u64 / 4..3 * total as u64 / 4),
            rng.gen_range(1..=12usize),
        )]
    } else {
        Vec::new()
    };

    let arrivals: Vec<ArrivalSpec> = workload
        .generate_arrivals(total)
        .into_iter()
        .map(|e| ArrivalSpec {
            rel: e.rel.0,
            ts: e.ts,
            vals: (0..e.data.arity() as u16)
                .map(|c| e.data.get(c).as_int().expect("int"))
                .collect(),
        })
        .collect();

    CaseSpec {
        name: format!("seed{seed}-case{index}"),
        schema,
        windows,
        churns,
        arrivals,
        configs: ConfigId::ALL.to_vec(),
        shards: vec![1, 2, 4],
    }
}

/// Column generators for one stream: join columns draw from a small shared
/// domain (so the sweep sees real hits *and* misses), payload columns walk
/// sequentially (so tuple identities stay distinguishable).
fn columns_for(schema: SchemaSpec, rel: usize, domain: u64, rng: &mut SmallRng) -> Vec<ColumnGen> {
    let join_col = |rng: &mut SmallRng| {
        if rng.gen_bool(0.5) {
            ColumnGen::Uniform { domain, offset: 0 }
        } else {
            ColumnGen::Seq {
                multiplicity: rng.gen_range(1..=3u64),
                stride: 1,
                offset: 0,
                domain,
            }
        }
    };
    match schema {
        SchemaSpec::Chain3 => match rel {
            0 => vec![join_col(rng)],
            1 => vec![join_col(rng), join_col(rng)],
            _ => vec![join_col(rng)],
        },
        SchemaSpec::Star(_) => vec![join_col(rng), ColumnGen::seq()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42, 3);
        let b = generate(42, 3);
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.windows, b.windows);
        assert_eq!(a.churns, b.churns);
    }

    #[test]
    fn cases_round_trip_through_json() {
        for i in 0..6 {
            let spec = generate(7, i);
            let back = CaseSpec::from_json(&spec.to_json()).expect("own output parses");
            assert_eq!(back.arrivals, spec.arrivals, "case {i}");
        }
    }

    #[test]
    fn indices_decorrelate() {
        assert_ne!(generate(42, 0).arrivals, generate(42, 1).arrivals);
        assert_ne!(generate(42, 0).arrivals, generate(43, 0).arrivals);
    }
}
