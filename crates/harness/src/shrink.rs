//! Failure shrinking: reduce a failing case to a minimal reproducer.
//!
//! A ddmin-style loop over the *arrival list* (chunk removal at halving
//! granularity), preceded by sweep-matrix narrowing (single failing config,
//! minimal shard set). Because cases store pre-window arrivals and the
//! update stream is re-derived on every attempt, any subset of arrivals is a
//! well-formed case — shrinking can never produce a dangling delete.

use crate::casefile::CaseSpec;
use crate::sweep::run_case;

/// Upper bound on sweep evaluations per shrink (keeps worst-case shrink
/// time bounded; the minimum found so far is returned on exhaustion).
const MAX_EVALS: usize = 400;

/// Shrink a failing case. Returns the smallest still-failing case found
/// (the input itself if no reduction reproduces). The result's `name`
/// gains a `-min` suffix.
pub fn shrink(spec: &CaseSpec) -> CaseSpec {
    shrink_with(spec, |c| run_case(c).is_err())
}

/// [`shrink`] parameterized over the failure predicate (`true` = still
/// fails). Lets tests drive the ddmin machinery with synthetic oracles.
pub fn shrink_with(spec: &CaseSpec, still_fails: impl Fn(&CaseSpec) -> bool) -> CaseSpec {
    debug_assert!(still_fails(spec), "shrink wants a failing case");
    let mut best = spec.clone();
    let mut evals = 0usize;
    let fails = |c: &CaseSpec, evals: &mut usize| -> bool {
        if *evals >= MAX_EVALS {
            return false;
        }
        *evals += 1;
        still_fails(c)
    };

    // 1. Narrow to a single failing config (keeps the sweep cheap for the
    // arrival ddmin below). If the failure only manifests via shard runs or
    // the windowing cross-check, an empty config list still reproduces.
    for subset in [Vec::new()]
        .into_iter()
        .chain(best.configs.iter().map(|&c| vec![c]))
    {
        let mut cand = best.clone();
        cand.configs = subset;
        if fails(&cand, &mut evals) {
            best = cand;
            break;
        }
    }

    // 2. Minimal shard set: none, then each count alone.
    for subset in [Vec::new()]
        .into_iter()
        .chain(best.shards.iter().map(|&s| vec![s]))
    {
        let mut cand = best.clone();
        cand.shards = subset;
        if fails(&cand, &mut evals) {
            best = cand;
            break;
        }
    }

    // 3. Drop churns if the failure reproduces without them.
    if !best.churns.is_empty() {
        let mut cand = best.clone();
        cand.churns.clear();
        if fails(&cand, &mut evals) {
            best = cand;
        }
    }

    // 4. ddmin over arrivals: try removing chunks, halving the chunk size
    // until single arrivals. Churn thresholds are arrival *counts*, so they
    // shift meaning as arrivals vanish; that is fine — any still-failing
    // case is a valid reproducer.
    let mut chunk = (best.arrivals.len() / 2).max(1);
    loop {
        let mut reduced = false;
        let mut start = 0usize;
        while start < best.arrivals.len() {
            let end = (start + chunk).min(best.arrivals.len());
            let mut cand = best.clone();
            cand.arrivals.drain(start..end);
            if !cand.arrivals.is_empty() && fails(&cand, &mut evals) {
                best = cand;
                reduced = true;
                // Retry the same offset: the next chunk slid into place.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !reduced {
            break;
        }
        if !reduced {
            chunk = (chunk / 2).max(1);
        }
        if evals >= MAX_EVALS {
            break;
        }
    }

    best.name = format!("{}-min", spec.name);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::casefile::{ArrivalSpec, ConfigId, SchemaSpec};

    fn big_case() -> CaseSpec {
        let arrivals = (0..40u64)
            .map(|i| ArrivalSpec {
                rel: (i % 3) as u16,
                ts: i,
                vals: if i % 3 == 1 { vec![i as i64, 7] } else { vec![7] },
            })
            .collect();
        CaseSpec {
            name: "synthetic".to_string(),
            schema: SchemaSpec::Chain3,
            windows: vec![4, 4, 4],
            churns: vec![(0, 20, 2)],
            arrivals,
            configs: ConfigId::ALL.to_vec(),
            shards: vec![1, 2, 4],
        }
    }

    #[test]
    fn ddmin_reaches_a_one_minimal_case() {
        // Synthetic bug: the case "fails" iff it still contains at least two
        // arrivals for relation 2.
        let fails =
            |c: &CaseSpec| c.arrivals.iter().filter(|a| a.rel == 2).count() >= 2;
        let spec = big_case();
        assert!(fails(&spec));
        let min = shrink_with(&spec, fails);
        assert!(fails(&min), "shrunk case must still fail");
        assert_eq!(
            min.arrivals.len(),
            2,
            "exactly the two triggering arrivals survive: {:?}",
            min.arrivals
        );
        // Matrix narrowing: the synthetic failure needs no configs/shards.
        assert!(min.configs.is_empty());
        assert!(min.shards.is_empty());
        assert!(min.churns.is_empty());
        assert!(min.name.ends_with("-min"));
    }

    #[test]
    fn shrink_keeps_failures_that_need_everything() {
        // A failure that depends on the whole arrival list cannot shrink.
        let total = big_case().arrivals.len();
        let fails = move |c: &CaseSpec| c.arrivals.len() == total;
        let min = shrink_with(&big_case(), fails);
        assert_eq!(min.arrivals.len(), total);
    }
}
