//! # acq-harness — deterministic differential-testing harness
//!
//! The paper's central claim is plan-space equivalence: every point between
//! a subresult-free MJoin and a fully cached XJoin tree must produce the
//! same answer stream while the adaptive loop moves between them. This crate
//! tests that claim systematically instead of at hand-picked points:
//!
//! * [`gencase`] derives seeded random workloads (query templates, rates,
//!   window sizes, bursty rates, window churn) on top of `acq-gen`;
//! * [`sweep`] runs each case across every selection algorithm, forced
//!   cache sets, memory budgets, and 1/2/4-shard topologies, cross-checking
//!   per-update deltas against the naive recomputation oracle and sweeping
//!   the structural invariant checkers mid-run;
//! * [`shrink`] reduces any failing case to a minimal reproducer;
//! * [`casefile`] serializes cases as dependency-free JSON, committed under
//!   `tests/corpus/` so fixed bugs stay fixed.
//!
//! The `acq-harness` binary wires these together; see `TESTING.md` at the
//! repository root for usage.

#![warn(missing_docs)]

pub mod casefile;
pub mod gencase;
pub mod shrink;
pub mod sweep;

pub use casefile::{ArrivalSpec, CaseSpec, ConfigId, SchemaSpec};
pub use sweep::{run_case, CaseFailure, CaseOutcome};
