//! Self-contained, re-runnable test cases and their JSON serialization.
//!
//! A [`CaseSpec`] carries everything a conformance run needs: the query
//! shape, per-relation window sizes, the *pre-window* arrival list, any
//! mid-run window churns, and the configuration/shard matrix to sweep.
//! Arrivals — not windowed updates — are the primary representation: the
//! shrinker removes arrivals and re-derives the insert/delete stream, so a
//! shrunk case can never contain a dangling delete.
//!
//! The format is a small JSON subset (objects, arrays, strings, integers)
//! written and parsed in-tree so corpus files under `tests/corpus/` stay
//! dependency-free and diff-friendly.

use acq_stream::QuerySchema;

/// The query template a case runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemaSpec {
    /// §7.2's 3-way chain `R(A) ⋈ S(A,B) ⋈ T(B)`.
    Chain3,
    /// §7.1's n-way star equijoin on a shared attribute.
    Star(usize),
}

impl SchemaSpec {
    /// Instantiate the query schema.
    pub fn query(&self) -> QuerySchema {
        match *self {
            SchemaSpec::Chain3 => QuerySchema::chain3(),
            SchemaSpec::Star(n) => QuerySchema::star(n),
        }
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        match *self {
            SchemaSpec::Chain3 => 3,
            SchemaSpec::Star(n) => n,
        }
    }

    /// Stable textual name (used in JSON).
    pub fn as_str(&self) -> String {
        match *self {
            SchemaSpec::Chain3 => "chain3".to_string(),
            SchemaSpec::Star(n) => format!("star{n}"),
        }
    }

    /// Parse the textual name.
    pub fn parse(s: &str) -> Result<SchemaSpec, String> {
        if s == "chain3" {
            return Ok(SchemaSpec::Chain3);
        }
        if let Some(n) = s.strip_prefix("star") {
            let n: usize = n.parse().map_err(|_| format!("bad star arity in {s:?}"))?;
            if (2..=8).contains(&n) {
                return Ok(SchemaSpec::Star(n));
            }
        }
        Err(format!("unknown schema {s:?}"))
    }
}

/// One engine configuration point in the plan-space sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigId {
    /// Caching disabled entirely (pure MJoin baseline).
    NoCaches,
    /// Exhaustive offline selection (§4.4).
    Exhaustive,
    /// Appendix B greedy selection.
    Greedy,
    /// Incremental (warm-start) selection.
    Incremental,
    /// LP relaxation + randomized rounding.
    LpRounding,
    /// Auto selection under a severely constrained memory budget (§5).
    TinyMemory,
    /// A forced always-on cache (Figure 3's {S,T} cache; chain3 only).
    Forced,
    /// Auto selection with globally-consistent candidates enabled (§6).
    GlobalEnum,
}

impl ConfigId {
    /// Every configuration, in sweep order.
    pub const ALL: &'static [ConfigId] = &[
        ConfigId::NoCaches,
        ConfigId::Exhaustive,
        ConfigId::Greedy,
        ConfigId::Incremental,
        ConfigId::LpRounding,
        ConfigId::TinyMemory,
        ConfigId::Forced,
        ConfigId::GlobalEnum,
    ];

    /// Stable textual name (used in JSON).
    pub fn as_str(&self) -> &'static str {
        match self {
            ConfigId::NoCaches => "no-caches",
            ConfigId::Exhaustive => "exhaustive",
            ConfigId::Greedy => "greedy",
            ConfigId::Incremental => "incremental",
            ConfigId::LpRounding => "lp-rounding",
            ConfigId::TinyMemory => "tiny-memory",
            ConfigId::Forced => "forced",
            ConfigId::GlobalEnum => "global-enum",
        }
    }

    /// Parse the textual name.
    pub fn parse(s: &str) -> Result<ConfigId, String> {
        ConfigId::ALL
            .iter()
            .copied()
            .find(|c| c.as_str() == s)
            .ok_or_else(|| format!("unknown config {s:?}"))
    }
}

/// One append-only arrival, before windowing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalSpec {
    /// Target relation index.
    pub rel: u16,
    /// Arrival timestamp (virtual ns; nondecreasing across the list).
    pub ts: u64,
    /// Column values, in schema order.
    pub vals: Vec<i64>,
}

/// A mid-run window resize: `(relation, after_arrivals, new_window)`.
pub type ChurnSpec = (usize, u64, usize);

/// A fully materialized, re-runnable differential-test case.
#[derive(Debug, Clone)]
pub struct CaseSpec {
    /// Human-readable identifier (`seedN-caseI` or a corpus file stem).
    pub name: String,
    /// Query template.
    pub schema: SchemaSpec,
    /// Per-relation count-window sizes, in relation-id order.
    pub windows: Vec<usize>,
    /// Window churns, applied in arrival order.
    pub churns: Vec<ChurnSpec>,
    /// The pre-window arrival list.
    pub arrivals: Vec<ArrivalSpec>,
    /// Engine configurations to sweep.
    pub configs: Vec<ConfigId>,
    /// Shard counts to sweep (outputs must be identical across them).
    pub shards: Vec<usize>,
}

impl CaseSpec {
    /// Serialize to the corpus JSON format (stable field order, one arrival
    /// per line — diff-friendly).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.arrivals.len() * 24);
        s.push_str("{\n");
        s.push_str(&format!("  \"name\": \"{}\",\n", self.name));
        s.push_str(&format!("  \"schema\": \"{}\",\n", self.schema.as_str()));
        let windows: Vec<String> = self.windows.iter().map(|w| w.to_string()).collect();
        s.push_str(&format!("  \"windows\": [{}],\n", windows.join(", ")));
        let churns: Vec<String> = self
            .churns
            .iter()
            .map(|(r, a, w)| format!("[{r}, {a}, {w}]"))
            .collect();
        s.push_str(&format!("  \"churns\": [{}],\n", churns.join(", ")));
        let configs: Vec<String> = self
            .configs
            .iter()
            .map(|c| format!("\"{}\"", c.as_str()))
            .collect();
        s.push_str(&format!("  \"configs\": [{}],\n", configs.join(", ")));
        let shards: Vec<String> = self.shards.iter().map(|n| n.to_string()).collect();
        s.push_str(&format!("  \"shards\": [{}],\n", shards.join(", ")));
        s.push_str("  \"arrivals\": [\n");
        for (i, a) in self.arrivals.iter().enumerate() {
            let vals: Vec<String> = a.vals.iter().map(|v| v.to_string()).collect();
            let sep = if i + 1 == self.arrivals.len() { "" } else { "," };
            s.push_str(&format!("    [{}, {}, {}]{sep}\n", a.rel, a.ts, vals.join(", ")));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parse the corpus JSON format.
    pub fn from_json(text: &str) -> Result<CaseSpec, String> {
        let v = parse_json(text)?;
        let obj = v.as_obj().ok_or("top level must be an object")?;
        let field = |k: &str| -> Result<&Json, String> {
            obj.iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field {k:?}"))
        };
        let name = field("name")?.as_str().ok_or("name must be a string")?.to_string();
        let schema = SchemaSpec::parse(field("schema")?.as_str().ok_or("schema must be a string")?)?;
        let windows = field("windows")?
            .as_arr()
            .ok_or("windows must be an array")?
            .iter()
            .map(|w| {
                w.as_int()
                    .filter(|&w| w > 0)
                    .map(|w| w as usize)
                    .ok_or_else(|| "windows must be positive integers".to_string())
            })
            .collect::<Result<Vec<usize>, String>>()?;
        if windows.len() != schema.num_relations() {
            return Err(format!(
                "expected {} windows, got {}",
                schema.num_relations(),
                windows.len()
            ));
        }
        let mut churns = Vec::new();
        for c in field("churns")?.as_arr().ok_or("churns must be an array")? {
            let c = c.as_arr().ok_or("each churn must be [rel, after, window]")?;
            let ints: Vec<i64> = c.iter().filter_map(Json::as_int).collect();
            match ints[..] {
                [r, a, w] if r >= 0 && (r as usize) < schema.num_relations() && a >= 0 && w > 0 => {
                    churns.push((r as usize, a as u64, w as usize))
                }
                _ => return Err(format!("bad churn {ints:?}")),
            }
        }
        let configs = field("configs")?
            .as_arr()
            .ok_or("configs must be an array")?
            .iter()
            .map(|c| ConfigId::parse(c.as_str().ok_or("configs must be strings")?))
            .collect::<Result<Vec<ConfigId>, String>>()?;
        let shards = field("shards")?
            .as_arr()
            .ok_or("shards must be an array")?
            .iter()
            .map(|s| {
                s.as_int()
                    .filter(|&n| (1..=16).contains(&n))
                    .map(|n| n as usize)
                    .ok_or_else(|| "shard counts must be in 1..=16".to_string())
            })
            .collect::<Result<Vec<usize>, String>>()?;
        let mut arrivals = Vec::new();
        let mut last_ts = 0u64;
        for a in field("arrivals")?.as_arr().ok_or("arrivals must be an array")? {
            let a = a.as_arr().ok_or("each arrival must be [rel, ts, vals...]")?;
            let ints: Vec<i64> = a.iter().filter_map(Json::as_int).collect();
            if ints.len() != a.len() || ints.len() < 2 {
                return Err("each arrival must be [rel, ts, vals...] integers".to_string());
            }
            let rel = ints[0];
            let ts = ints[1];
            if rel < 0 || rel as usize >= schema.num_relations() {
                return Err(format!("arrival relation {rel} out of range"));
            }
            if ts < 0 || (ts as u64) < last_ts {
                return Err(format!("arrival timestamps must be nondecreasing (got {ts})"));
            }
            last_ts = ts as u64;
            let arity = schema.query().relation(acq_stream::RelId(rel as u16)).arity();
            if ints.len() - 2 != arity {
                return Err(format!(
                    "arrival for relation {rel} carries {} values, arity is {arity}",
                    ints.len() - 2
                ));
            }
            arrivals.push(ArrivalSpec {
                rel: rel as u16,
                ts: ts as u64,
                vals: ints[2..].to_vec(),
            });
        }
        Ok(CaseSpec {
            name,
            schema,
            windows,
            churns,
            arrivals,
            configs,
            shards,
        })
    }
}

// ----------------------------------------------------------------------
// Minimal JSON subset parser (objects / arrays / strings / integers).

/// A parsed JSON value (integers only — the corpus format needs nothing
/// more, and rejecting floats keeps cases bit-exact).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// An integer.
    Int(i64),
    /// A string (no escape sequences beyond `\"` and `\\`).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
    fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a JSON document (the subset above). Errors carry a byte offset.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let b = text.as_bytes();
    let mut i = 0usize;
    let v = parse_value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing garbage at byte {i}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<Json, String> {
    skip_ws(b, i);
    match b.get(*i) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *i += 1;
            let mut fields = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, i);
                let key = match parse_value(b, i)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key must be a string at byte {i}")),
                };
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' at byte {i}"));
                }
                *i += 1;
                fields.push((key, parse_value(b, i)?));
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {i}")),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            let mut items = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, i)?);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {i}")),
                }
            }
        }
        Some(b'"') => {
            *i += 1;
            let mut s = String::new();
            loop {
                match b.get(*i) {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        *i += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *i += 1;
                        match b.get(*i) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            _ => return Err(format!("unsupported escape at byte {i}")),
                        }
                        *i += 1;
                    }
                    Some(&c) => {
                        s.push(c as char);
                        *i += 1;
                    }
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *i;
            *i += 1;
            while b.get(*i).is_some_and(u8::is_ascii_digit) {
                *i += 1;
            }
            if matches!(b.get(*i), Some(b'.' | b'e' | b'E')) {
                return Err(format!("floats are not part of the corpus format (byte {i})"));
            }
            std::str::from_utf8(&b[start..*i])
                .ok()
                .and_then(|s| s.parse::<i64>().ok())
                .map(Json::Int)
                .ok_or_else(|| format!("bad integer at byte {start}"))
        }
        Some(c) => Err(format!("unexpected byte {:?} at {i}", *c as char)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CaseSpec {
        CaseSpec {
            name: "t".to_string(),
            schema: SchemaSpec::Chain3,
            windows: vec![4, 3, 5],
            churns: vec![(0, 7, 2)],
            arrivals: vec![
                ArrivalSpec { rel: 0, ts: 0, vals: vec![1] },
                ArrivalSpec { rel: 1, ts: 5, vals: vec![1, -2] },
                ArrivalSpec { rel: 2, ts: 9, vals: vec![-2] },
            ],
            configs: vec![ConfigId::Greedy, ConfigId::LpRounding],
            shards: vec![1, 2],
        }
    }

    #[test]
    fn json_round_trip() {
        let spec = sample();
        let back = CaseSpec::from_json(&spec.to_json()).expect("parse");
        assert_eq!(back.name, spec.name);
        assert_eq!(back.schema, spec.schema);
        assert_eq!(back.windows, spec.windows);
        assert_eq!(back.churns, spec.churns);
        assert_eq!(back.arrivals, spec.arrivals);
        assert_eq!(back.configs, spec.configs);
        assert_eq!(back.shards, spec.shards);
    }

    #[test]
    fn parser_rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"a\": }",
            "{\"name\": \"x\"} extra",
            "1.5",
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn spec_validation_catches_bad_cases() {
        let spec = sample();
        // Wrong arity.
        let j = spec.to_json().replace("[0, 0, 1]", "[0, 0, 1, 2]");
        assert!(CaseSpec::from_json(&j).is_err());
        // Decreasing timestamps.
        let j = spec.to_json().replace("[2, 9, -2]", "[2, 1, -2]");
        assert!(CaseSpec::from_json(&j).is_err());
        // Unknown config.
        let j = spec.to_json().replace("\"greedy\"", "\"mystery\"");
        assert!(CaseSpec::from_json(&j).is_err());
    }
}
