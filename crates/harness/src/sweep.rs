//! The conformance sweep: run one case across the configuration × shard
//! matrix, cross-checking every run against the naive oracle and the
//! structural invariant checkers.
//!
//! Checks per case:
//!
//! 1. **Windowing cross-check** — for churn-free cases, a
//!    [`WindowedOracle`] fed the raw arrivals must agree with the plain
//!    [`Oracle`] fed the derived update stream (same window operators, two
//!    independent code paths).
//! 2. **Plan-space differential** — every engine configuration processes the
//!    derived updates; each update's result delta must equal the oracle's as
//!    a signed multiset, and [`check_structural_invariants`] must stay clean
//!    at periodic sweep points and at the end.
//! 3. **Shard determinism** — the sharded executor at every requested shard
//!    count must emit *bit-identical* canonicalized per-update deltas, match
//!    the oracle, and pass [`ShardedEngine::check_invariants`] both at
//!    periodic mid-run sweep points and at the end. At every shard count
//!    the persistent worker runtime is also swept against the pre-runtime
//!    scoped-thread executor ([`acq::shard::reference::ScopedShardedEngine`],
//!    kept behind the `reference-exec` feature), whose canonical deltas
//!    must be bit-identical too.
//! 4. **Telemetry conservation** — every run's final snapshot satisfies the
//!    [`acq_telemetry::ENGINE_LAWS`] counter conservation laws, and the
//!    engine's `tuples_processed` equals the number of updates fed.
//!
//! [`check_structural_invariants`]: AdaptiveJoinEngine::check_structural_invariants

use crate::casefile::{CaseSpec, ConfigId, SchemaSpec};
use acq::engine::{
    AdaptiveJoinEngine, CacheMode, EngineConfig, ReoptInterval, SelectionStrategy,
};
use acq::shard::reference::ScopedShardedEngine;
use acq::shard::{canonicalize_group, ShardConfig, ShardedEngine};
use acq::{EnumerationConfig, MemoryConfig, ProfilerConfig};
use acq_mjoin::oracle::{
    canonical_rows, multiset_diff, CanonicalRow, Oracle, OracleWindow, WindowedOracle,
};
use acq_mjoin::plan::{PipelineOrder, PlanOrders};
use acq_stream::{CountWindow, Op, RelId, StreamElement, TupleData, Update, WindowOp};
use acq_telemetry::{check_laws, ENGINE_LAWS};

/// Run invariant sweeps every this many updates (and always at the end).
const INVARIANT_EVERY: usize = 48;

/// Batch size for the sharded executor (exercises batching + merge).
const SHARD_BATCH: usize = 16;

/// Canonicalized per-update deltas for one full run.
type RunDeltas = Vec<Vec<(Op, CanonicalRow)>>;

/// A detected conformance violation, with enough context to reproduce.
#[derive(Debug, Clone)]
pub struct CaseFailure {
    /// Which run failed (`config:greedy`, `shards:4`, `windowing`, …).
    pub run: String,
    /// Human-readable description of the divergence.
    pub detail: String,
}

/// Summary of a green case.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseOutcome {
    /// Windowed updates derived from the arrival list.
    pub updates: usize,
    /// Engine/shard runs executed.
    pub runs: usize,
}

/// Derive the windowed update stream from a case's arrivals: each arrival
/// passes through its relation's count window, with churns applied at their
/// arrival-count thresholds. This is the exact stream every engine run and
/// the oracle consume, so windowing is shared — discrepancies then isolate
/// to the executors.
pub fn derive_updates(spec: &CaseSpec) -> Vec<Update> {
    let mut windows: Vec<CountWindow> = spec
        .windows
        .iter()
        .enumerate()
        .map(|(r, &w)| CountWindow::new(RelId(r as u16), w))
        .collect();
    let mut out = Vec::new();
    let mut last_ts = 0u64;
    for (i, a) in spec.arrivals.iter().enumerate() {
        for &(rel, after, neww) in &spec.churns {
            if after == i as u64 {
                out.extend(windows[rel].set_capacity(neww, last_ts));
            }
        }
        last_ts = a.ts;
        let elem = StreamElement::new(RelId(a.rel), TupleData::ints(&a.vals), a.ts);
        out.extend(windows[a.rel as usize].push(elem));
    }
    out
}

/// Materialize the [`EngineConfig`] for one sweep point. Fast-adaptivity
/// settings (small profiler windows, tuple-count re-optimization) so the
/// adaptive loop exercises cache placement/demotion within small cases.
pub fn engine_config(id: ConfigId, schema: SchemaSpec) -> EngineConfig {
    let mut c = EngineConfig {
        profiler: ProfilerConfig {
            w: 3,
            profile_every: 3,
            bloom_window: 16,
            bloom_alpha: 8,
        },
        reopt_interval: ReoptInterval::Tuples(40),
        stats_epoch_ns: 1_000_000,
        ..EngineConfig::default()
    };
    match id {
        ConfigId::NoCaches => c.mode = CacheMode::None,
        ConfigId::Exhaustive => c.selection = SelectionStrategy::Exhaustive,
        ConfigId::Greedy => c.selection = SelectionStrategy::Greedy,
        ConfigId::Incremental => c.selection = SelectionStrategy::Incremental,
        ConfigId::LpRounding => c.selection = SelectionStrategy::Randomized(0xACE1),
        ConfigId::TinyMemory => {
            c.memory = MemoryConfig {
                budget_bytes: Some(2048),
                ..MemoryConfig::default()
            };
        }
        ConfigId::Forced => {
            // Figure 3's {S,T} cache in ∆R's pipeline; identity orders make
            // that segment a valid prefix set for chain3. Star cases swap in
            // a 2-way associative exhaustive run instead (a distinct sweep
            // point, not a duplicate of `Exhaustive`).
            if schema == SchemaSpec::Chain3 {
                c.mode = CacheMode::Forced(vec![(RelId(0), vec![RelId(1), RelId(2)])]);
            } else {
                c.selection = SelectionStrategy::Exhaustive;
                c.cache_ways = 2;
            }
        }
        ConfigId::GlobalEnum => {
            c.enumeration = EnumerationConfig {
                enable_global: true,
                ..EnumerationConfig::default()
            };
        }
    }
    c
}

/// Pipeline orders for one sweep point. Identity orders everywhere except
/// the chain3 `Forced` run: its `{S,T}` cache only satisfies the prefix
/// invariant (Definition 3.2) under Figure 3's orders — with identity orders
/// `∆S`'s pipeline starts at `R`, the candidate is never enumerated, and
/// forced mode would silently cache nothing.
pub fn plan_orders(id: ConfigId, schema: SchemaSpec) -> PlanOrders {
    let query = schema.query();
    if id == ConfigId::Forced && schema == SchemaSpec::Chain3 {
        return PlanOrders::new(vec![
            PipelineOrder {
                stream: RelId(0),
                order: vec![RelId(1), RelId(2)],
            },
            PipelineOrder {
                stream: RelId(1),
                order: vec![RelId(2), RelId(0)],
            },
            PipelineOrder {
                stream: RelId(2),
                order: vec![RelId(1), RelId(0)],
            },
        ]);
    }
    PlanOrders::identity(&query)
}

/// Drive one engine through `updates`, comparing every per-update delta to
/// the precomputed oracle deltas and sweeping the structural invariants
/// periodically. Shared by the sweep and by the conformance tests' planted
/// fault checks.
pub fn run_engine_updates(
    engine: &mut AdaptiveJoinEngine,
    updates: &[Update],
    oracle_deltas: &[Vec<(Op, CanonicalRow)>],
) -> Result<(), String> {
    let n = engine.core().query().num_relations();
    for (step, u) in updates.iter().enumerate() {
        let got: Vec<(Op, CanonicalRow)> = engine
            .process(u)
            .into_iter()
            .map(|(op, c)| (op, canonical_rows(&c, n)))
            .collect();
        let diff = multiset_diff(&got, &oracle_deltas[step]);
        if !diff.is_empty() {
            return Err(format!(
                "delta mismatch at update {step} ({:?} {:?}): {} row(s) differ, e.g. {:?}",
                u.op,
                u.rel,
                diff.len(),
                diff.iter().next()
            ));
        }
        if (step + 1) % INVARIANT_EVERY == 0 {
            let v = engine.check_structural_invariants();
            if !v.is_empty() {
                return Err(format!("invariant violation at update {step}: {}", v.join("; ")));
            }
        }
    }
    let v = engine.check_structural_invariants();
    if !v.is_empty() {
        return Err(format!("post-run invariant violation: {}", v.join("; ")));
    }
    let snap = engine.telemetry_snapshot();
    let laws = check_laws(&snap, ENGINE_LAWS);
    if !laws.is_empty() {
        return Err(format!("telemetry conservation: {}", laws.join("; ")));
    }
    if engine.counters().tuples_processed != updates.len() as u64 {
        return Err(format!(
            "tuples_processed = {} but {} updates were fed",
            engine.counters().tuples_processed,
            updates.len()
        ));
    }
    Ok(())
}

/// Precompute the oracle's per-update deltas for the derived stream.
pub fn oracle_deltas(spec: &CaseSpec, updates: &[Update]) -> RunDeltas {
    let mut oracle = Oracle::new(spec.schema.query());
    updates.iter().map(|u| oracle.apply_and_delta(u)).collect()
}

/// Run the full conformance sweep for one case.
pub fn run_case(spec: &CaseSpec) -> Result<CaseOutcome, CaseFailure> {
    let updates = derive_updates(spec);
    let deltas = oracle_deltas(spec, &updates);
    let mut outcome = CaseOutcome {
        updates: updates.len(),
        runs: 0,
    };

    // 1. Windowing cross-check (churn-free cases): the WindowedOracle fed
    // raw arrivals must land on the same final state as the plain oracle
    // fed derived updates.
    if spec.churns.is_empty() {
        let windows: Vec<OracleWindow> =
            spec.windows.iter().map(|&w| OracleWindow::Count(w)).collect();
        let mut wo = WindowedOracle::new(spec.schema.query(), &windows);
        for a in &spec.arrivals {
            wo.push(RelId(a.rel), TupleData::ints(&a.vals), a.ts);
        }
        let mut final_oracle = Oracle::new(spec.schema.query());
        for u in &updates {
            final_oracle.apply_and_delta(u);
        }
        let mut a = wo.oracle().full_join();
        let mut b = final_oracle.full_join();
        a.sort();
        b.sort();
        if a != b {
            return Err(CaseFailure {
                run: "windowing".to_string(),
                detail: format!(
                    "WindowedOracle final join has {} rows, derived-update oracle has {}",
                    a.len(),
                    b.len()
                ),
            });
        }
    }

    // 2. Plan-space differential runs.
    let query = spec.schema.query();
    for &cfg in &spec.configs {
        let config = engine_config(cfg, spec.schema);
        let orders = plan_orders(cfg, spec.schema);
        let mut engine = AdaptiveJoinEngine::with_config(query.clone(), orders, config);
        outcome.runs += 1;
        run_engine_updates(&mut engine, &updates, &deltas).map_err(|detail| CaseFailure {
            run: format!("config:{}", cfg.as_str()),
            detail,
        })?;
    }

    // 3. Shard determinism: identical canonicalized per-update deltas at
    // every shard count, each matching the oracle.
    let n = query.num_relations();
    let mut reference: Option<(usize, RunDeltas)> = None;
    for &num_shards in &spec.shards {
        let config = engine_config(ConfigId::Exhaustive, spec.schema);
        let orders = PlanOrders::identity(&query);
        let mut sharded = ShardedEngine::with_config(
            query.clone(),
            orders,
            config,
            ShardConfig {
                num_shards,
                partition_class: None,
            },
        );
        outcome.runs += 1;
        let mut grouped: RunDeltas = Vec::with_capacity(updates.len());
        let mut since_sweep = 0usize;
        for batch in updates.chunks(SHARD_BATCH) {
            for mut group in sharded.process_batch_grouped(batch) {
                canonicalize_group(&mut group, n);
                grouped.push(
                    group
                        .into_iter()
                        .map(|(op, c)| (op, canonical_rows(&c, n)))
                        .collect(),
                );
            }
            // Mid-run invariant sweeps: the persistent workers hold live
            // engine state between batches, so sweep it while in flight,
            // not only after the stream ends.
            since_sweep += batch.len();
            if since_sweep >= INVARIANT_EVERY {
                since_sweep = 0;
                let v = sharded.check_invariants();
                if !v.is_empty() {
                    return Err(CaseFailure {
                        run: format!("shards:{num_shards}"),
                        detail: format!(
                            "mid-run shard invariants at update {}: {}",
                            grouped.len(),
                            v.join("; ")
                        ),
                    });
                }
            }
        }
        for (step, (got, want)) in grouped.iter().zip(&deltas).enumerate() {
            let diff = multiset_diff(got, want);
            if !diff.is_empty() {
                return Err(CaseFailure {
                    run: format!("shards:{num_shards}"),
                    detail: format!("delta mismatch vs oracle at update {step}"),
                });
            }
        }
        let v = sharded.check_invariants();
        if !v.is_empty() {
            return Err(CaseFailure {
                run: format!("shards:{num_shards}"),
                detail: format!("shard invariants: {}", v.join("; ")),
            });
        }
        let laws = check_laws(&sharded.telemetry_snapshot(), ENGINE_LAWS);
        if !laws.is_empty() {
            return Err(CaseFailure {
                run: format!("shards:{num_shards}"),
                detail: format!("merged-snapshot conservation: {}", laws.join("; ")),
            });
        }
        // Pre-runtime scoped-thread executor: the retired per-batch
        // spawn+join path, kept behind `reference-exec` purely as a
        // differential baseline. Its canonical deltas must match the
        // persistent runtime's bit-for-bit at the same shard count.
        outcome.runs += 1;
        let mut scoped = ScopedShardedEngine::with_config(
            query.clone(),
            PlanOrders::identity(&query),
            engine_config(ConfigId::Exhaustive, spec.schema),
            ShardConfig {
                num_shards,
                partition_class: None,
            },
        );
        let mut scoped_grouped: RunDeltas = Vec::with_capacity(updates.len());
        for batch in updates.chunks(SHARD_BATCH) {
            for mut group in scoped.process_batch_grouped(batch) {
                canonicalize_group(&mut group, n);
                scoped_grouped.push(
                    group
                        .into_iter()
                        .map(|(op, c)| (op, canonical_rows(&c, n)))
                        .collect(),
                );
            }
        }
        if scoped_grouped != grouped {
            let at = scoped_grouped
                .iter()
                .zip(&grouped)
                .position(|(a, b)| a != b)
                .unwrap_or(0);
            return Err(CaseFailure {
                run: format!("shards:{num_shards}:scoped-reference"),
                detail: format!(
                    "scoped-thread reference diverges from the persistent \
                     runtime at update {at}"
                ),
            });
        }
        match &reference {
            None => reference = Some((num_shards, grouped)),
            Some((ref_shards, ref_grouped)) => {
                if *ref_grouped != grouped {
                    let at = ref_grouped
                        .iter()
                        .zip(&grouped)
                        .position(|(a, b)| a != b)
                        .unwrap_or(0);
                    return Err(CaseFailure {
                        run: format!("shards:{num_shards}"),
                        detail: format!(
                            "output diverges from {ref_shards}-shard run at update {at} \
                             (shard merge must be bit-identical)"
                        ),
                    });
                }
            }
        }
    }

    Ok(outcome)
}
