//! The conformance sweep binary.
//!
//! ```text
//! cargo run --release -p acq-harness -- --seed 42 --cases 50
//! ```
//!
//! Generates `--cases` seeded random workloads and runs the full
//! configuration × shard sweep on each. On failure, the case is shrunk to a
//! minimal reproducer and written to the corpus directory for triage; the
//! process exits nonzero. `--check-corpus` additionally replays every
//! committed corpus case first and fails if one no longer runs green.

use acq_harness::casefile::CaseSpec;
use acq_harness::{gencase, shrink, sweep};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    seed: u64,
    cases: u64,
    check_corpus: bool,
    corpus_dir: PathBuf,
    write_reproducers: bool,
    export: Option<u64>,
}

fn default_corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 42,
        cases: 20,
        check_corpus: false,
        corpus_dir: default_corpus_dir(),
        write_reproducers: true,
        export: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs an integer")?
            }
            "--cases" => {
                args.cases = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--cases needs an integer")?
            }
            "--check-corpus" => args.check_corpus = true,
            "--corpus-dir" => {
                args.corpus_dir = it.next().map(PathBuf::from).ok_or("--corpus-dir needs a path")?
            }
            "--no-write" => args.write_reproducers = false,
            "--export" => {
                args.export = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--export needs a case index")?,
                )
            }
            "--help" | "-h" => {
                println!(
                    "acq-harness: plan-space conformance sweep\n\n\
                     USAGE: acq-harness [--seed N] [--cases N] [--check-corpus]\n\
                            [--corpus-dir PATH] [--no-write]\n\n\
                     --seed N        sweep seed (default 42)\n\
                     --cases N       number of generated cases (default 20)\n\
                     --check-corpus  replay tests/corpus/*.json first; fail if not green\n\
                     --corpus-dir P  corpus directory (default: tests/corpus)\n\
                     --no-write      do not write shrunk reproducers on failure\n\
                     --export I      write generated case I of --seed to the corpus dir and exit"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn check_corpus(dir: &PathBuf) -> Result<usize, String> {
    let mut entries: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .collect(),
        Err(_) => return Ok(0), // no corpus yet
    };
    entries.sort();
    for path in &entries {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path:?}: {e}"))?;
        let spec = CaseSpec::from_json(&text).map_err(|e| format!("{path:?}: {e}"))?;
        sweep::run_case(&spec)
            .map_err(|f| format!("corpus case {path:?} no longer green: [{}] {}", f.run, f.detail))?;
    }
    Ok(entries.len())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(i) = args.export {
        let spec = gencase::generate(args.seed, i);
        if let Err(e) = std::fs::create_dir_all(&args.corpus_dir) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        let path = args.corpus_dir.join(format!("{}.json", spec.name));
        return match std::fs::write(&path, spec.to_json()) {
            Ok(()) => {
                println!("wrote {path:?}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if args.check_corpus {
        match check_corpus(&args.corpus_dir) {
            Ok(n) => println!("corpus: {n} case(s) green"),
            Err(e) => {
                eprintln!("FAIL {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut total_updates = 0usize;
    let mut total_runs = 0usize;
    for i in 0..args.cases {
        let spec = gencase::generate(args.seed, i);
        match sweep::run_case(&spec) {
            Ok(outcome) => {
                total_updates += outcome.updates;
                total_runs += outcome.runs;
            }
            Err(f) => {
                eprintln!("FAIL {}: [{}] {}", spec.name, f.run, f.detail);
                eprintln!("shrinking…");
                let min = shrink::shrink(&spec);
                eprintln!(
                    "minimal reproducer: {} arrivals, configs {:?}, shards {:?}",
                    min.arrivals.len(),
                    min.configs.iter().map(|c| c.as_str()).collect::<Vec<_>>(),
                    min.shards
                );
                if args.write_reproducers {
                    let _ = std::fs::create_dir_all(&args.corpus_dir);
                    let path = args.corpus_dir.join(format!("{}.json", min.name));
                    match std::fs::write(&path, min.to_json()) {
                        Ok(()) => eprintln!("reproducer written to {path:?}"),
                        Err(e) => eprintln!("could not write reproducer: {e}"),
                    }
                }
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "conformance: {} case(s) green · {} runs · {} updates · seed {}",
        args.cases, total_runs, total_updates, args.seed
    );
    ExitCode::SUCCESS
}
