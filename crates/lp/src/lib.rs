//! # acq-lp — dense two-phase simplex LP solver
//!
//! The randomized cache-selection algorithm of the paper (Theorem 4.3,
//! Appendix B) solves the *linear relaxation* of the cache-selection integer
//! program and rounds the fractional solution. This crate provides the LP
//! solver that step needs: a classic dense two-phase primal simplex with
//! Bland's anti-cycling rule. Problem sizes are tiny (the number of candidate
//! caches is `O(n²)` for `n ≤ ~10` relations), so a dense tableau is the
//! simplest correct tool.
//!
//! Supported form: minimize (or maximize) `c·x` subject to linear constraints
//! `a·x {≤,=,≥} b` and `x ≥ 0`. Upper bounds like `x ≤ 1` are expressed as
//! ordinary constraints.
//!
//! ```
//! use acq_lp::{LinearProgram, LpResult};
//! // max x + y  s.t.  x + 2y ≤ 4,  3x + y ≤ 6
//! let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
//! lp.add_le(vec![1.0, 2.0], 4.0);
//! lp.add_le(vec![3.0, 1.0], 6.0);
//! match lp.solve() {
//!     LpResult::Optimal { x, objective } => {
//!         assert!((objective - 2.8).abs() < 1e-9);
//!         assert!((x[0] - 1.6).abs() < 1e-9 && (x[1] - 1.2).abs() < 1e-9);
//!     }
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```

mod simplex;

pub use simplex::{Constraint, LinearProgram, LpResult, Relop};
