//! Two-phase dense primal simplex.

use std::fmt;

/// Numerical tolerance for pivoting and feasibility decisions.
const EPS: f64 = 1e-9;

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relop {
    /// `a·x ≤ b`
    Le,
    /// `a·x = b`
    Eq,
    /// `a·x ≥ b`
    Ge,
}

/// One linear constraint `coeffs·x op rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Coefficients, one per structural variable (shorter vectors are
    /// implicitly zero-padded).
    pub coeffs: Vec<f64>,
    /// Comparison operator.
    pub op: Relop,
    /// Right-hand side.
    pub rhs: f64,
}

/// Result of solving a linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum LpResult {
    /// An optimal solution was found.
    Optimal {
        /// Values of the structural variables.
        x: Vec<f64>,
        /// Objective value in the *caller's* sense (max problems report the
        /// maximum, min problems the minimum).
        objective: f64,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

impl fmt::Display for LpResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpResult::Optimal { objective, .. } => write!(f, "optimal({objective})"),
            LpResult::Infeasible => write!(f, "infeasible"),
            LpResult::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// A linear program over nonnegative variables.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    objective: Vec<f64>,
    maximize: bool,
    constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// `min c·x` over `x ≥ 0`.
    pub fn minimize(objective: Vec<f64>) -> LinearProgram {
        LinearProgram {
            objective,
            maximize: false,
            constraints: Vec::new(),
        }
    }

    /// `max c·x` over `x ≥ 0`.
    pub fn maximize(objective: Vec<f64>) -> LinearProgram {
        LinearProgram {
            objective,
            maximize: true,
            constraints: Vec::new(),
        }
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Add `coeffs·x ≤ rhs`.
    pub fn add_le(&mut self, coeffs: Vec<f64>, rhs: f64) -> &mut Self {
        self.add(Constraint {
            coeffs,
            op: Relop::Le,
            rhs,
        })
    }

    /// Add `coeffs·x = rhs`.
    pub fn add_eq(&mut self, coeffs: Vec<f64>, rhs: f64) -> &mut Self {
        self.add(Constraint {
            coeffs,
            op: Relop::Eq,
            rhs,
        })
    }

    /// Add `coeffs·x ≥ rhs`.
    pub fn add_ge(&mut self, coeffs: Vec<f64>, rhs: f64) -> &mut Self {
        self.add(Constraint {
            coeffs,
            op: Relop::Ge,
            rhs,
        })
    }

    /// Add a prebuilt constraint.
    pub fn add(&mut self, c: Constraint) -> &mut Self {
        assert!(
            c.coeffs.len() <= self.objective.len(),
            "constraint has more coefficients than variables"
        );
        self.constraints.push(c);
        self
    }

    /// Solve with two-phase simplex.
    pub fn solve(&self) -> LpResult {
        Tableau::build(self).solve(self.maximize)
    }
}

/// Dense simplex tableau.
///
/// Layout: `rows × (n_total + 1)` where the last column is the RHS. Row `m`
/// (one past the constraints) is the phase-2 objective; row `m+1` is the
/// phase-1 objective while it exists.
struct Tableau {
    /// Constraint rows followed by objective row(s).
    a: Vec<Vec<f64>>,
    m: usize,
    /// Structural variable count.
    n_struct: usize,
    /// Total variable count (struct + slack/surplus + artificial).
    n_total: usize,
    /// First artificial variable column (== n_total when none).
    art_start: usize,
    /// Basis variable of each constraint row.
    basis: Vec<usize>,
}

impl Tableau {
    fn build(lp: &LinearProgram) -> Tableau {
        let m = lp.constraints.len();
        let n = lp.num_vars();

        // Count auxiliary columns. Normalize rows to rhs ≥ 0 first, which can
        // flip Le <-> Ge.
        let mut rows: Vec<(Vec<f64>, Relop, f64)> = lp
            .constraints
            .iter()
            .map(|c| {
                let mut coeffs = c.coeffs.clone();
                coeffs.resize(n, 0.0);
                if c.rhs < 0.0 {
                    let flipped = match c.op {
                        Relop::Le => Relop::Ge,
                        Relop::Ge => Relop::Le,
                        Relop::Eq => Relop::Eq,
                    };
                    (coeffs.iter().map(|x| -x).collect(), flipped, -c.rhs)
                } else {
                    (coeffs, c.op, c.rhs)
                }
            })
            .collect();

        let n_slack = rows
            .iter()
            .filter(|(_, op, _)| matches!(op, Relop::Le | Relop::Ge))
            .count();
        let n_art = rows
            .iter()
            .filter(|(_, op, _)| matches!(op, Relop::Ge | Relop::Eq))
            .count();
        let n_total = n + n_slack + n_art;
        let art_start = n + n_slack;

        let mut a = vec![vec![0.0; n_total + 1]; m + 2];
        let mut basis = vec![usize::MAX; m];
        let mut slack_col = n;
        let mut art_col = art_start;

        for (i, (coeffs, op, rhs)) in rows.drain(..).enumerate() {
            a[i][..n].copy_from_slice(&coeffs);
            a[i][n_total] = rhs;
            match op {
                Relop::Le => {
                    a[i][slack_col] = 1.0;
                    basis[i] = slack_col;
                    slack_col += 1;
                }
                Relop::Ge => {
                    a[i][slack_col] = -1.0;
                    slack_col += 1;
                    a[i][art_col] = 1.0;
                    basis[i] = art_col;
                    art_col += 1;
                }
                Relop::Eq => {
                    a[i][art_col] = 1.0;
                    basis[i] = art_col;
                    art_col += 1;
                }
            }
        }

        // Phase-2 objective row (always stored as a *minimization*).
        for (cell, &c) in a[m].iter_mut().zip(lp.objective.iter()) {
            *cell = if lp.maximize { -c } else { c };
        }

        // Phase-1 objective: sum of artificials; express in terms of
        // non-basic variables by subtracting each artificial's row.
        if n_art > 0 {
            for cell in &mut a[m + 1][art_start..n_total] {
                *cell = 1.0;
            }
            for i in 0..m {
                if basis[i] >= art_start {
                    let row = a[i].clone();
                    for (j, rj) in row.iter().enumerate() {
                        a[m + 1][j] -= rj;
                    }
                }
            }
        }

        Tableau {
            a,
            m,
            n_struct: n,
            n_total,
            art_start,
            basis,
        }
    }

    fn pivot(&mut self, row: usize, col: usize, obj_rows: usize) {
        let pv = self.a[row][col];
        debug_assert!(pv.abs() > EPS);
        let inv = 1.0 / pv;
        for x in &mut self.a[row] {
            *x *= inv;
        }
        for i in 0..self.m + obj_rows {
            if i == row {
                continue;
            }
            let factor = self.a[i][col];
            if factor.abs() <= EPS {
                self.a[i][col] = 0.0;
                continue;
            }
            let (pivot_row, other) = if i < row {
                let (lo, hi) = self.a.split_at_mut(row);
                (&hi[0], &mut lo[i])
            } else {
                let (lo, hi) = self.a.split_at_mut(i);
                (&lo[row], &mut hi[0])
            };
            for (o, p) in other.iter_mut().zip(pivot_row.iter()) {
                *o -= factor * p;
            }
            other[col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// Run simplex iterations on objective row `obj_row` considering columns
    /// `0..max_col`. Returns `false` if unbounded.
    fn iterate(&mut self, obj_row: usize, max_col: usize, obj_rows: usize) -> bool {
        loop {
            // Bland's rule: entering variable = lowest index with negative
            // reduced cost.
            let mut enter = None;
            for j in 0..max_col {
                if self.a[obj_row][j] < -EPS {
                    enter = Some(j);
                    break;
                }
            }
            let Some(col) = enter else {
                return true; // optimal
            };
            // Ratio test; Bland tie-break on basis index.
            let mut leave: Option<(usize, f64)> = None;
            for i in 0..self.m {
                let aij = self.a[i][col];
                if aij > EPS {
                    let ratio = self.a[i][self.n_total] / aij;
                    match leave {
                        None => leave = Some((i, ratio)),
                        Some((bi, br)) => {
                            if ratio < br - EPS
                                || (ratio < br + EPS && self.basis[i] < self.basis[bi])
                            {
                                leave = Some((i, ratio));
                            }
                        }
                    }
                }
            }
            let Some((row, _)) = leave else {
                return false; // unbounded
            };
            self.pivot(row, col, obj_rows);
        }
    }

    fn solve(mut self, maximize: bool) -> LpResult {
        let m = self.m;
        // Phase 1 (only if artificials exist).
        if self.art_start < self.n_total {
            // Phase-1 may pivot on any column except we never *re-enter* an
            // artificial (allowed by theory to enter, but excluding them is
            // safe since they start basic).
            if !self.iterate(m + 1, self.art_start, 2) {
                // Phase-1 objective is bounded below by 0; "unbounded" cannot
                // happen with a correct tableau, treat as infeasible.
                return LpResult::Infeasible;
            }
            if self.a[m + 1][self.n_total] < -EPS {
                // Minimization of nonneg sum went negative: numerical noise.
                return LpResult::Infeasible;
            }
            if self.a[m + 1][self.n_total] > EPS {
                return LpResult::Infeasible;
            }
            // Drive any artificial still in the basis out (degenerate rows).
            for i in 0..m {
                if self.basis[i] >= self.art_start {
                    let col = (0..self.art_start).find(|&j| self.a[i][j].abs() > EPS);
                    match col {
                        Some(j) => self.pivot(i, j, 2),
                        None => {
                            // Redundant row: everything zero; harmless.
                        }
                    }
                }
            }
        }
        // Phase 2 over structural + slack columns only.
        if !self.iterate(m, self.art_start, 1) {
            return LpResult::Unbounded;
        }
        let mut x = vec![0.0; self.n_struct];
        for i in 0..m {
            let b = self.basis[i];
            if b < self.n_struct {
                x[b] = self.a[i][self.n_total];
            }
        }
        // Objective row stores minimization value negated at RHS.
        let min_value = -self.a[m][self.n_total];
        let objective = if maximize { -min_value } else { min_value };
        LpResult::Optimal { x, objective }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimal(r: LpResult) -> (Vec<f64>, f64) {
        match r {
            LpResult::Optimal { x, objective } => (x, objective),
            other => panic!("expected optimal, got {other}"),
        }
    }

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-7
    }

    #[test]
    fn max_two_var() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), obj 36.
        let mut lp = LinearProgram::maximize(vec![3.0, 5.0]);
        lp.add_le(vec![1.0, 0.0], 4.0);
        lp.add_le(vec![0.0, 2.0], 12.0);
        lp.add_le(vec![3.0, 2.0], 18.0);
        let (x, obj) = optimal(lp.solve());
        assert!(approx(obj, 36.0), "obj {obj}");
        assert!(approx(x[0], 2.0) && approx(x[1], 6.0), "x {x:?}");
    }

    #[test]
    fn min_with_ge_constraints() {
        // min 2x + 3y s.t. x + y ≥ 4, x + 3y ≥ 6 → (3, 1), obj 9.
        let mut lp = LinearProgram::minimize(vec![2.0, 3.0]);
        lp.add_ge(vec![1.0, 1.0], 4.0);
        lp.add_ge(vec![1.0, 3.0], 6.0);
        let (x, obj) = optimal(lp.solve());
        assert!(approx(obj, 9.0), "obj {obj}");
        assert!(approx(x[0], 3.0) && approx(x[1], 1.0), "x {x:?}");
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 3, x ≤ 1 → x=0, y=1.5, obj 1.5.
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
        lp.add_eq(vec![1.0, 2.0], 3.0);
        lp.add_le(vec![1.0, 0.0], 1.0);
        let (x, obj) = optimal(lp.solve());
        assert!(approx(obj, 1.5), "obj {obj}");
        assert!(approx(x[0], 0.0) && approx(x[1], 1.5), "x {x:?}");
        // And with a maximization over the same region: x=1, y=1 is *not*
        // optimal either — max x + y grows by lowering y? No: y=(3−x)/2, so
        // obj = 1.5 + x/2 is maximized at x=1 → (1, 1), obj 2.
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_eq(vec![1.0, 2.0], 3.0);
        lp.add_le(vec![1.0, 0.0], 1.0);
        let (x, obj) = optimal(lp.solve());
        assert!(approx(obj, 2.0), "obj {obj}");
        assert!(approx(x[0], 1.0) && approx(x[1], 1.0), "x {x:?}");
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::maximize(vec![1.0]);
        lp.add_le(vec![1.0], 1.0);
        lp.add_ge(vec![1.0], 2.0);
        assert_eq!(lp.solve(), LpResult::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::maximize(vec![1.0, 0.0]);
        lp.add_ge(vec![1.0, -1.0], 0.0);
        assert_eq!(lp.solve(), LpResult::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // x ≤ 5 written as -x ≥ -5.
        let mut lp = LinearProgram::maximize(vec![1.0]);
        lp.add_ge(vec![-1.0], -5.0);
        let (x, obj) = optimal(lp.solve());
        assert!(approx(obj, 5.0) && approx(x[0], 5.0));
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // Klee-Minty-ish degenerate instance; Bland's rule must terminate.
        let mut lp = LinearProgram::maximize(vec![0.75, -150.0, 0.02, -6.0]);
        lp.add_le(vec![0.25, -60.0, -0.04, 9.0], 0.0);
        lp.add_le(vec![0.5, -90.0, -0.02, 3.0], 0.0);
        lp.add_le(vec![0.0, 0.0, 1.0, 0.0], 1.0);
        let (_, obj) = optimal(lp.solve());
        assert!(approx(obj, 0.05), "beale cycling instance obj {obj}");
    }

    #[test]
    fn zero_constraint_lp() {
        // min x with no constraints → x = 0.
        let lp = LinearProgram::minimize(vec![1.0, 2.0]);
        let (x, obj) = optimal(lp.solve());
        assert!(approx(obj, 0.0));
        assert!(approx(x[0], 0.0) && approx(x[1], 0.0));
    }

    #[test]
    fn set_cover_style_relaxation() {
        // The cache-selection LP shape: coverage equalities + group linking.
        // Operators p1, p2; caches: c1 covers {p1}, c2 covers {p2},
        // c12 covers both. Costs: B1=5, B2=5, B12=4 (+ group cost via z: L=2).
        // min 5 x1 + 5 x2 + 4 x12 + 2 z
        //  s.t. x1 + x12 = 1; x2 + x12 = 1; z ≥ x12 → x12 - z ≤ 0.
        let mut lp = LinearProgram::minimize(vec![5.0, 5.0, 4.0, 2.0]);
        lp.add_eq(vec![1.0, 0.0, 1.0, 0.0], 1.0);
        lp.add_eq(vec![0.0, 1.0, 1.0, 0.0], 1.0);
        lp.add_le(vec![0.0, 0.0, 1.0, -1.0], 0.0);
        let (x, obj) = optimal(lp.solve());
        // Choosing c12 (+z) costs 6 < 10; LP optimum is integral here.
        assert!(approx(obj, 6.0), "obj {obj}");
        assert!(approx(x[2], 1.0) && approx(x[3], 1.0), "x {x:?}");
    }

    #[test]
    fn fractional_optimum_possible() {
        // Odd-cycle vertex cover relaxation has the classic 1/2 optimum.
        // min x1+x2+x3 s.t. x1+x2 ≥ 1, x2+x3 ≥ 1, x1+x3 ≥ 1.
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0, 1.0]);
        lp.add_ge(vec![1.0, 1.0, 0.0], 1.0);
        lp.add_ge(vec![0.0, 1.0, 1.0], 1.0);
        lp.add_ge(vec![1.0, 0.0, 1.0], 1.0);
        let (x, obj) = optimal(lp.solve());
        assert!(approx(obj, 1.5), "obj {obj}");
        for v in x {
            assert!(v > -1e-9 && v < 1.0 + 1e-9);
        }
    }

    #[test]
    fn redundant_equalities_ok() {
        // x + y = 2 stated twice.
        let mut lp = LinearProgram::minimize(vec![1.0, 0.0]);
        lp.add_eq(vec![1.0, 1.0], 2.0);
        lp.add_eq(vec![1.0, 1.0], 2.0);
        let (x, obj) = optimal(lp.solve());
        assert!(approx(obj, 0.0));
        assert!(approx(x[1], 2.0));
    }

    #[test]
    fn short_coefficient_vectors_zero_padded() {
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_le(vec![1.0], 3.0); // x ≤ 3 only
        lp.add_le(vec![0.0, 1.0], 2.0);
        let (x, obj) = optimal(lp.solve());
        assert!(approx(obj, 5.0));
        assert!(approx(x[0], 3.0) && approx(x[1], 2.0));
    }

    #[test]
    fn feasibility_of_solution_random_instances() {
        // Deterministic pseudo-random feasible instances: verify returned
        // point satisfies every constraint and beats a reference point.
        let mut seed = 0x12345678u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 1000) as f64 / 100.0
        };
        for _ in 0..25 {
            let n = 4;
            let c: Vec<f64> = (0..n).map(|_| rng() + 0.1).collect();
            let mut lp = LinearProgram::maximize(c.clone());
            let mut cons = Vec::new();
            for _ in 0..5 {
                let a: Vec<f64> = (0..n).map(|_| rng() + 0.1).collect();
                let b = rng() + 1.0;
                lp.add_le(a.clone(), b);
                cons.push((a, b));
            }
            let (x, obj) = optimal(lp.solve());
            for (a, b) in &cons {
                let lhs: f64 = a.iter().zip(&x).map(|(ai, xi)| ai * xi).sum();
                assert!(lhs <= b + 1e-6, "constraint violated: {lhs} > {b}");
            }
            // Origin is feasible with objective 0; optimum must be ≥ 0.
            assert!(obj >= -1e-9);
            let recomputed: f64 = c.iter().zip(&x).map(|(ci, xi)| ci * xi).sum();
            assert!(approx(recomputed, obj), "objective mismatch");
        }
    }
}
