//! Simplex edge cases: degenerate vertices (including the classic cycling
//! instance Bland's rule exists for), unbounded objectives, and infeasible
//! systems. The solver must classify each correctly and terminate.

use acq_lp::{LinearProgram, LpResult};

fn optimal(r: LpResult) -> (Vec<f64>, f64) {
    match r {
        LpResult::Optimal { x, objective } => (x, objective),
        other => panic!("expected optimal, got {other}"),
    }
}

#[test]
fn degenerate_duplicate_constraints() {
    // The same face three times over: every pivot at the optimum is
    // degenerate, but the answer is plain.
    let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
    lp.add_le(vec![1.0, 1.0], 2.0);
    lp.add_le(vec![1.0, 1.0], 2.0);
    lp.add_le(vec![2.0, 2.0], 4.0);
    let (x, obj) = optimal(lp.solve());
    assert!((obj - 2.0).abs() < 1e-9);
    assert!((x[0] + x[1] - 2.0).abs() < 1e-9);
}

#[test]
fn degenerate_zero_rhs_vertex() {
    // The origin is an over-determined vertex (three active constraints in
    // two variables, all with zero slack).
    let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
    lp.add_le(vec![1.0, -1.0], 0.0);
    lp.add_le(vec![-1.0, 1.0], 0.0);
    lp.add_le(vec![1.0, 1.0], 2.0);
    let (x, obj) = optimal(lp.solve());
    assert!((obj - 2.0).abs() < 1e-9);
    assert!((x[0] - 1.0).abs() < 1e-9 && (x[1] - 1.0).abs() < 1e-9);
}

#[test]
fn beale_cycling_instance_terminates() {
    // Beale (1955): the textbook example on which Dantzig's largest-
    // coefficient rule cycles forever. Bland's rule must terminate at the
    // optimum −1/20.
    let mut lp = LinearProgram::minimize(vec![-0.75, 150.0, -0.02, 6.0]);
    lp.add_le(vec![0.25, -60.0, -1.0 / 25.0, 9.0], 0.0);
    lp.add_le(vec![0.5, -90.0, -1.0 / 50.0, 3.0], 0.0);
    lp.add_le(vec![0.0, 0.0, 1.0, 0.0], 1.0);
    let (x, obj) = optimal(lp.solve());
    assert!((obj - (-0.05)).abs() < 1e-9, "objective {obj}");
    assert!((x[2] - 1.0).abs() < 1e-9, "x3 hits its bound at the optimum");
}

#[test]
fn unbounded_maximization() {
    // Only a lower-ish bound on the recession direction: max x + y with
    // x − y ≤ 1 lets both grow without limit.
    let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
    lp.add_le(vec![1.0, -1.0], 1.0);
    assert_eq!(lp.solve(), LpResult::Unbounded);
}

#[test]
fn unbounded_minimization_via_ge() {
    // min −x s.t. x ≥ 1: feasible (phase one succeeds) but the objective
    // falls forever.
    let mut lp = LinearProgram::minimize(vec![-1.0]);
    lp.add_ge(vec![1.0], 1.0);
    assert_eq!(lp.solve(), LpResult::Unbounded);
}

#[test]
fn infeasible_band() {
    // x ≤ 1 and x ≥ 2 cannot hold together.
    let mut lp = LinearProgram::maximize(vec![1.0]);
    lp.add_le(vec![1.0], 1.0);
    lp.add_ge(vec![1.0], 2.0);
    assert_eq!(lp.solve(), LpResult::Infeasible);
}

#[test]
fn infeasible_conflicting_equalities() {
    let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
    lp.add_eq(vec![1.0, 1.0], 1.0);
    lp.add_eq(vec![1.0, 1.0], 2.0);
    assert_eq!(lp.solve(), LpResult::Infeasible);
}

#[test]
fn infeasible_negative_rhs_equality() {
    // Nonnegative variables cannot sum to a negative number.
    let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
    lp.add_eq(vec![1.0, 1.0], -1.0);
    assert_eq!(lp.solve(), LpResult::Infeasible);
}

#[test]
fn equality_pinned_optimum() {
    // Mixed Eq/Le with a degenerate tie: max 2x + y on the segment
    // x + y = 1, x ≤ 1 — optimum sits at the x = 1 endpoint.
    let mut lp = LinearProgram::maximize(vec![2.0, 1.0]);
    lp.add_eq(vec![1.0, 1.0], 1.0);
    lp.add_le(vec![1.0, 0.0], 1.0);
    let (x, obj) = optimal(lp.solve());
    assert!((obj - 2.0).abs() < 1e-9);
    assert!((x[0] - 1.0).abs() < 1e-9 && x[1].abs() < 1e-9);
}
