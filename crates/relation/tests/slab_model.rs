//! Model test: [`SlabStore`] against a plain `FxHashMap<TupleId, TupleRef>`
//! reference under interleaved inserts (with id gaps), out-of-order deletes,
//! window-style expiry, and point probes.
//!
//! The slab is the hot-path replacement for the map (O(1) arithmetic lookup
//! instead of a hash probe), so any behavioural divergence — presence, the
//! stored tuple itself, length, or iteration order — is a bug.

use acq_relation::SlabStore;
use acq_sketch::FxHashMap;
use acq_stream::tuple::make_ref;
use acq_stream::{RelId, TupleData, TupleId, TupleRef};
use proptest::prelude::*;

/// One scripted operation against both stores.
#[derive(Debug, Clone)]
enum Step {
    /// Insert the next id, advancing it by `gap` first (gaps model ids
    /// consumed by other shards or rejected updates).
    Insert { gap: u8 },
    /// Remove the k-th oldest live id (out-of-order delete).
    RemoveNth(u8),
    /// Remove every live id below the current frontier minus `keep`
    /// (sliding-window expiry in id order).
    Expire { keep: u8 },
    /// Probe the k-th live id and a guaranteed-absent id.
    Probe(u8),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (0u8..4).prop_map(|gap| Step::Insert { gap }),
        2 => (0u8..=255).prop_map(Step::RemoveNth),
        1 => (0u8..16).prop_map(|keep| Step::Expire { keep }),
        2 => (0u8..=255).prop_map(Step::Probe),
    ]
}

fn tuple(id: TupleId) -> TupleRef {
    make_ref(RelId(0), id, TupleData::ints(&[id as i64, (id as i64) * 3]))
}

/// Live ids of the reference model, ascending.
fn live_ids(model: &FxHashMap<TupleId, TupleRef>) -> Vec<TupleId> {
    let mut ids: Vec<TupleId> = model.keys().copied().collect();
    ids.sort_unstable();
    ids
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn slab_matches_hashmap_reference(steps in proptest::collection::vec(step_strategy(), 1..120)) {
        let mut slab = SlabStore::new();
        let mut model: FxHashMap<TupleId, TupleRef> = FxHashMap::default();
        let mut next_id: TupleId = 0;

        for step in steps {
            match step {
                Step::Insert { gap } => {
                    next_id += gap as TupleId; // leave a hole of `gap` ids
                    let t = tuple(next_id);
                    slab.insert(next_id, t.clone());
                    model.insert(next_id, t);
                    next_id += 1;
                }
                Step::RemoveNth(k) => {
                    let ids = live_ids(&model);
                    if ids.is_empty() {
                        continue;
                    }
                    let id = ids[k as usize % ids.len()];
                    let a = slab.remove(id);
                    let b = model.remove(&id);
                    prop_assert_eq!(a.is_some(), b.is_some());
                    if let (Some(a), Some(b)) = (a, b) {
                        prop_assert_eq!(a.id, b.id);
                        prop_assert_eq!(&a.data, &b.data);
                    }
                }
                Step::Expire { keep } => {
                    let cutoff = next_id.saturating_sub(keep as TupleId);
                    for id in live_ids(&model) {
                        if id >= cutoff {
                            break;
                        }
                        prop_assert!(slab.remove(id).is_some());
                        model.remove(&id);
                    }
                }
                Step::Probe(k) => {
                    let ids = live_ids(&model);
                    if let Some(&id) = ids.get(k as usize % ids.len().max(1)) {
                        let got = slab.get(id).expect("live id must resolve");
                        prop_assert_eq!(got.id, id);
                        prop_assert_eq!(&got.data, &model[&id].data);
                    }
                    // An id beyond the frontier is never present.
                    prop_assert!(slab.get(next_id + 1).is_none());
                }
            }

            // Global invariants after every step.
            prop_assert_eq!(slab.len(), model.len());
            let slab_ids: Vec<TupleId> = slab.iter().map(|t| t.id).collect();
            prop_assert_eq!(slab_ids, live_ids(&model));
        }
    }
}
