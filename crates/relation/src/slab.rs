//! Paged ring store: `TupleId → TupleRef` resolution by arithmetic, not
//! hashing.
//!
//! Relation stores mint tuple ids monotonically and window semantics expire
//! tuples roughly in insertion order, so the live id range at any moment is
//! a narrow band `[oldest .. next)`. [`SlabStore`] exploits that: ids map to
//! slots of fixed 64-slot pages held in a ring (`VecDeque`), so
//! [`SlabStore::get`] is two array indexings — no second hash lookup after
//! an index probe has already produced the ids.
//!
//! Out-of-order deletes (multiset deletes pop the *most recent* matching
//! instance, and window churn can evict mid-band) simply leave `None` gaps;
//! a page is reclaimed when it empties *and* reaches the front of the ring.
//! Worst-case overhead for a pinned oldest tuple is 8 bytes per id of span —
//! negligible against the tuples themselves. Reclaimed pages are pooled and
//! reissued, so a steady-state window cycles through pages without touching
//! the allocator.

use acq_stream::{TupleId, TupleRef};
use std::collections::VecDeque;

/// Slots per page. 64 ids per 512-byte page: big enough to amortize ring
/// bookkeeping, small enough to recycle promptly as the window slides.
const PAGE: usize = 64;

/// Reclaimed pages kept for reuse. A sliding window frees pages at the rate
/// it fills them, so a handful covers steady state; beyond that the
/// allocator gets them back.
const FREE_POOL_CAP: usize = 16;

#[derive(Debug)]
struct Page {
    slots: [Option<TupleRef>; PAGE],
    occupied: u32,
}

impl Page {
    fn empty() -> Box<Page> {
        Box::new(Page {
            slots: [const { None }; PAGE],
            occupied: 0,
        })
    }
}

/// Ring of pages mapping a monotone band of [`TupleId`]s to [`TupleRef`]s.
#[derive(Debug, Default)]
pub struct SlabStore {
    /// `pages[p]` covers ids `[head_base + p·PAGE, head_base + (p+1)·PAGE)`.
    pages: VecDeque<Box<Page>>,
    /// Id of slot 0 of `pages[0]`.
    head_base: TupleId,
    len: usize,
    /// Retired empty pages kept for reuse. Boxed on purpose: pages move
    /// between here and `pages` as a pointer swap, not a 64-slot memcpy.
    #[allow(clippy::vec_box)]
    free: Vec<Box<Page>>,
}

impl SlabStore {
    /// An empty store.
    pub fn new() -> SlabStore {
        SlabStore {
            pages: VecDeque::new(),
            head_base: 0,
            len: 0,
            free: Vec::new(),
        }
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no tuple is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Page index and slot for `id`, if it falls inside the current band.
    #[inline]
    fn locate(&self, id: TupleId) -> Option<(usize, usize)> {
        let off = id.checked_sub(self.head_base)? as usize;
        let page = off / PAGE;
        if page >= self.pages.len() {
            return None;
        }
        Some((page, off % PAGE))
    }

    /// Store `t` under `id`. Ids must be assigned monotonically (each
    /// insert's id is ≥ every id ever inserted) — the relation store's
    /// `next_id` counter guarantees this.
    ///
    /// # Panics
    /// Panics if `id` is below the current band (monotonicity violated) or
    /// the slot is already occupied.
    pub fn insert(&mut self, id: TupleId, t: TupleRef) {
        if self.pages.is_empty() {
            // Fresh band: align the base down to a page boundary so page
            // arithmetic stays id-stable across clears.
            self.head_base = id - (id % PAGE as u64);
        }
        assert!(id >= self.head_base, "tuple ids must be monotone");
        let off = (id - self.head_base) as usize;
        while off / PAGE >= self.pages.len() {
            let page = self.free.pop().unwrap_or_else(Page::empty);
            self.pages.push_back(page);
        }
        let page = &mut self.pages[off / PAGE];
        let slot = &mut page.slots[off % PAGE];
        assert!(slot.is_none(), "slot {id} already occupied");
        *slot = Some(t);
        page.occupied += 1;
        self.len += 1;
    }

    /// Remove and return the tuple stored under `id`, if any. Empty front
    /// pages are recycled into the free pool.
    pub fn remove(&mut self, id: TupleId) -> Option<TupleRef> {
        let (p, s) = self.locate(id)?;
        let page = &mut self.pages[p];
        let t = page.slots[s].take()?;
        page.occupied -= 1;
        self.len -= 1;
        while let Some(front) = self.pages.front() {
            if front.occupied != 0 {
                break;
            }
            let page = self.pages.pop_front().expect("front exists");
            self.head_base += PAGE as u64;
            if self.free.len() < FREE_POOL_CAP {
                self.free.push(page);
            }
        }
        Some(t)
    }

    /// The tuple stored under `id`, if any — O(1), two array indexings.
    #[inline]
    pub fn get(&self, id: TupleId) -> Option<&TupleRef> {
        let (p, s) = self.locate(id)?;
        self.pages[p].slots[s].as_ref()
    }

    /// All live tuples, in id order.
    pub fn iter(&self) -> impl Iterator<Item = &TupleRef> {
        self.pages
            .iter()
            .flat_map(|p| p.slots.iter().filter_map(Option::as_ref))
    }

    /// Drop everything, recycling pages into the free pool.
    pub fn clear(&mut self) {
        while let Some(mut page) = self.pages.pop_front() {
            if page.occupied != 0 {
                page.slots = [const { None }; PAGE];
                page.occupied = 0;
            }
            if self.free.len() < FREE_POOL_CAP {
                self.free.push(page);
            }
        }
        self.len = 0;
    }

    /// Ids currently spanned by resident pages (diagnostics: live band
    /// width including gap overhead).
    pub fn band_slots(&self) -> usize {
        self.pages.len() * PAGE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acq_stream::tuple::make_ref;
    use acq_stream::{RelId, TupleData};

    fn t(id: u64) -> TupleRef {
        make_ref(RelId(0), id, TupleData::ints(&[id as i64]))
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = SlabStore::new();
        for id in 0..200 {
            s.insert(id, t(id));
        }
        assert_eq!(s.len(), 200);
        assert_eq!(s.get(123).unwrap().id, 123);
        assert!(s.get(200).is_none());
        assert_eq!(s.remove(123).unwrap().id, 123);
        assert!(s.get(123).is_none());
        assert!(s.remove(123).is_none());
        assert_eq!(s.len(), 199);
    }

    #[test]
    fn sliding_window_reclaims_pages() {
        let mut s = SlabStore::new();
        for id in 0..PAGE as u64 * 100 {
            s.insert(id, t(id));
            if id >= 50 {
                s.remove(id - 50);
            }
        }
        assert_eq!(s.len(), 50);
        // The live band is 50 ids wide → a handful of resident pages, not 100.
        assert!(s.band_slots() <= 3 * PAGE, "band {} slots", s.band_slots());
    }

    #[test]
    fn out_of_order_deletes_leave_gaps_then_reclaim() {
        let mut s = SlabStore::new();
        for id in 0..130 {
            s.insert(id, t(id));
        }
        // Delete newest-first: front page stays fully occupied until last.
        for id in (0..130).rev() {
            assert_eq!(s.remove(id).unwrap().id, id);
        }
        assert!(s.is_empty());
        assert_eq!(s.band_slots(), 0);
        // Band restarts wherever ids resume.
        s.insert(500, t(500));
        assert_eq!(s.get(500).unwrap().id, 500);
        assert!(s.get(499).is_none());
    }

    #[test]
    fn iter_is_id_ordered() {
        let mut s = SlabStore::new();
        for id in [3u64, 7, 90, 91, 200] {
            s.insert(id, t(id));
        }
        s.remove(90);
        let ids: Vec<u64> = s.iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![3, 7, 91, 200]);
    }

    #[test]
    fn clear_resets_band() {
        let mut s = SlabStore::new();
        for id in 0..10 {
            s.insert(id, t(id));
        }
        s.clear();
        assert!(s.is_empty());
        assert!(s.get(5).is_none());
        s.insert(10, t(10));
        assert_eq!(s.get(10).unwrap().id, 10);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn below_band_insert_panics() {
        let mut s = SlabStore::new();
        s.insert(PAGE as u64 * 2, t(PAGE as u64 * 2));
        // The band starts at the aligned base of the first id; inserting
        // below it must panic, not alias.
        s.insert(0, t(0));
    }
}
