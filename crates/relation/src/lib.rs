//! # acq-relation — windowed relation store
//!
//! The per-relation state an MJoin keeps: the current window contents of each
//! `R_i`, with hash indexes on join attributes (§7.1: *"All joins use hash
//! indexes by default"*) and multiset delete support (windows emit deletes by
//! value; the store removes exactly one matching instance).
//!
//! Tuples are stored once and handed out as reference-counted [`TupleRef`](acq_stream::TupleRef)s;
//! composite pipeline tuples, cache entries, and XJoin materializations all
//! share them (§3.3: tuples are never copied into caches).

pub mod slab;
pub mod store;

pub use slab::SlabStore;
pub use store::{HashIndex, IdList, Relation};
