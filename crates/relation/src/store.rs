//! Relation store with hash indexes.

use crate::slab::SlabStore;
use acq_sketch::{FxHashMap, FxHasher};
use acq_stream::{ColId, RelId, StoredTuple, TupleData, TupleId, TupleRef, Value};
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Dead [`TupleRef`]s kept for recycling (see [`Relation::insert`]). The pool
/// is a FIFO: deletes enqueue at the back, inserts pop the *oldest* entry —
/// the one whose outstanding references (delta batches held by a downstream
/// consumer, in-flight composites, cache values) have had the longest time to
/// be dropped. The cap bounds retained allocations while still riding out a
/// consumer that drains its output every few thousand updates.
const REF_POOL_CAP: usize = 8192;

/// Recycling attempts per insert. A popped ref that is still shared is put
/// back at the *back* of the queue (it will be free eventually — dropping it
/// now would defeat the pool exactly when a batching consumer makes refs
/// long-lived); bounding the tries keeps degenerate pools from turning an
/// insert into an O(n) scan.
const REF_POOL_TRIES: usize = 4;

/// A posting list of tuple ids that stays inline (no heap) up to 6 entries.
///
/// Postings are per *key value* within one window, so they are almost always
/// tiny (join-attribute multiplicity); the spill path exists for skewed
/// workloads, not the steady state. Once spilled, a list stays on the heap —
/// it keeps its capacity, so a hot key allocates once, ever.
#[derive(Debug, Clone)]
pub enum IdList {
    /// Up to 6 ids stored inline.
    Inline {
        /// Occupied prefix length of `ids`.
        len: u8,
        /// Inline storage.
        ids: [TupleId; 6],
    },
    /// Heap storage for longer lists.
    Spilled(Vec<TupleId>),
}

impl Default for IdList {
    fn default() -> IdList {
        IdList::Inline {
            len: 0,
            ids: [0; 6],
        }
    }
}

impl IdList {
    /// The ids as a slice (unordered after removals).
    #[inline]
    pub fn as_slice(&self) -> &[TupleId] {
        match self {
            IdList::Inline { len, ids } => &ids[..*len as usize],
            IdList::Spilled(v) => v,
        }
    }

    fn push(&mut self, id: TupleId) {
        match self {
            IdList::Inline { len, ids } => {
                if (*len as usize) < ids.len() {
                    ids[*len as usize] = id;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(ids.len() * 2);
                    v.extend_from_slice(ids);
                    v.push(id);
                    *self = IdList::Spilled(v);
                }
            }
            IdList::Spilled(v) => v.push(id),
        }
    }

    /// Remove one occurrence of `id` (order not preserved). Returns whether
    /// it was present.
    fn swap_remove_id(&mut self, id: TupleId) -> bool {
        match self {
            IdList::Inline { len, ids } => {
                let Some(pos) = ids[..*len as usize].iter().position(|&x| x == id) else {
                    return false;
                };
                *len -= 1;
                ids[pos] = ids[*len as usize];
                true
            }
            IdList::Spilled(v) => {
                let Some(pos) = v.iter().position(|&x| x == id) else {
                    return false;
                };
                v.swap_remove(pos);
                true
            }
        }
    }

    fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

/// A hash index on one column: `value → tuple ids`.
///
/// Deletions swap-remove within the posting, so postings are unordered —
/// fine, because equijoin semantics are set/multiset based.
#[derive(Debug, Default)]
pub struct HashIndex {
    map: FxHashMap<Value, IdList>,
    entries: usize,
}

impl HashIndex {
    fn insert(&mut self, v: &Value, id: TupleId) {
        // get_mut-then-insert: the key is cloned only when genuinely new
        // (and `Value` clones are allocation-free for ints anyway).
        match self.map.get_mut(v) {
            Some(list) => list.push(id),
            None => {
                let mut list = IdList::default();
                list.push(id);
                self.map.insert(v.clone(), list);
            }
        }
        self.entries += 1;
    }

    fn remove(&mut self, v: &Value, id: TupleId) {
        if let Some(list) = self.map.get_mut(v) {
            if list.swap_remove_id(id) {
                self.entries -= 1;
                if list.is_empty() {
                    self.map.remove(v);
                }
            }
        }
    }

    /// Tuple ids whose indexed column equals `v` (empty slice if none).
    pub fn probe(&self, v: &Value) -> &[TupleId] {
        self.map.get(v).map(IdList::as_slice).unwrap_or(&[])
    }

    /// Number of distinct key values currently indexed.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Total posting entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True if the index holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }
}

/// The window contents of one relation, with optional hash indexes.
///
/// Tuples live in a [`SlabStore`]: ids are minted monotonically and windows
/// expire in near-insertion order, so `TupleId → TupleRef` is arithmetic
/// indexing, not a hash lookup. Deleted tuples' `Arc` allocations are pooled
/// and recycled on the next insert, making the steady-state insert/delete
/// cycle allocation-free (see DESIGN.md, "Hot-path memory layout").
#[derive(Debug)]
pub struct Relation {
    rel: RelId,
    arity: usize,
    tuples: SlabStore,
    /// Data hash → ids with that data (multiset delete support). Keying on
    /// the 64-bit hash instead of an owned [`TupleData`] keeps inserts from
    /// cloning the data a second time; the (vanishingly rare) collisions are
    /// disambiguated by comparing the stored tuples on delete.
    by_data: FxHashMap<u64, IdList>,
    /// `indexes[col]` is `Some` when a hash index exists on that column.
    indexes: Vec<Option<HashIndex>>,
    next_id: TupleId,
    /// Dead tuple allocations awaiting reuse (FIFO, oldest at the front).
    ref_pool: VecDeque<TupleRef>,
    /// Running byte count of stored tuple data (for §5-style accounting and
    /// experiment reporting).
    data_bytes: usize,
}

fn data_hash(data: &TupleData) -> u64 {
    let mut h = FxHasher::default();
    data.hash(&mut h);
    h.finish()
}

impl Relation {
    /// An empty relation with `arity` columns and *no* indexes.
    pub fn new(rel: RelId, arity: usize) -> Relation {
        Relation {
            rel,
            arity,
            tuples: SlabStore::new(),
            by_data: FxHashMap::default(),
            indexes: (0..arity).map(|_| None).collect(),
            next_id: 0,
            ref_pool: VecDeque::new(),
            data_bytes: 0,
        }
    }

    /// Relation id.
    pub fn rel(&self) -> RelId {
        self.rel
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples currently stored (window size).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Build (or rebuild) a hash index on `col`, indexing existing tuples.
    pub fn add_index(&mut self, col: ColId) {
        let mut idx = HashIndex::default();
        for t in self.tuples.iter() {
            idx.insert(t.data.get(col.0), t.id);
        }
        self.indexes[col.0 as usize] = Some(idx);
    }

    /// Drop the index on `col` (Figure 10 drops the S.B index to force
    /// nested-loop joins).
    pub fn drop_index(&mut self, col: ColId) {
        self.indexes[col.0 as usize] = None;
    }

    /// True if a hash index exists on `col`.
    pub fn has_index(&self, col: ColId) -> bool {
        self.indexes[col.0 as usize].is_some()
    }

    /// The index on `col`, if any.
    pub fn index(&self, col: ColId) -> Option<&HashIndex> {
        self.indexes[col.0 as usize].as_ref()
    }

    /// Insert a tuple; returns the minted reference.
    ///
    /// The data is borrowed: a fresh `Arc<StoredTuple>` clones it exactly
    /// once, and when the reference pool holds a dead tuple no longer shared
    /// with anyone (`Arc::get_mut` succeeds) even that clone is elided — the
    /// values are copied into the recycled allocation in place.
    ///
    /// # Panics
    /// Panics if the tuple arity doesn't match the relation's.
    pub fn insert(&mut self, data: &TupleData) -> TupleRef {
        assert_eq!(data.arity(), self.arity, "arity mismatch on insert");
        let id = self.next_id;
        self.next_id += 1;
        self.data_bytes += data.memory_bytes();
        let mut recycled = None;
        for _ in 0..REF_POOL_TRIES {
            let Some(mut t) = self.ref_pool.pop_front() else {
                break;
            };
            if let Some(st) = Arc::get_mut(&mut t) {
                st.id = id;
                // Same relation, hence same arity: `clone_from` reuses the
                // existing `Box<[Value]>` allocation.
                st.data.0.clone_from(&data.0);
                recycled = Some(t);
                break;
            }
            // Still shared elsewhere (a cache or in-flight composite keeps it
            // alive past its delete) — requeue at the back and let it age.
            self.ref_pool.push_back(t);
        }
        let t = recycled.unwrap_or_else(|| {
            Arc::new(StoredTuple {
                rel: self.rel,
                id,
                data: data.clone(),
            })
        });
        for (c, slot) in self.indexes.iter_mut().enumerate() {
            if let Some(idx) = slot {
                idx.insert(t.data.get(c as u16), id);
            }
        }
        match self.by_data.get_mut(&data_hash(data)) {
            Some(ids) => ids.push(id),
            None => {
                let mut ids = IdList::default();
                ids.push(id);
                self.by_data.insert(data_hash(data), ids);
            }
        }
        self.tuples.insert(id, t.clone());
        t
    }

    /// Delete one tuple whose data equals `data` (multiset semantics: exactly
    /// one instance is removed — the most recently inserted one). Returns the
    /// removed reference, or `None` if no instance matches.
    pub fn delete(&mut self, data: &TupleData) -> Option<TupleRef> {
        let hash = data_hash(data);
        let ids = self.by_data.get_mut(&hash)?;
        // The posting is keyed by hash: skip (rare) colliding entries by
        // checking the stored data, picking the most recently inserted match.
        let id = *ids
            .as_slice()
            .iter()
            .filter(|&&id| {
                self.tuples.get(id).expect("by_data/tuples in sync").data == *data
            })
            .max()?;
        ids.swap_remove_id(id);
        if ids.is_empty() {
            self.by_data.remove(&hash);
        }
        let t = self.tuples.remove(id).expect("by_data/tuples in sync");
        self.data_bytes -= t.data.memory_bytes();
        for (c, slot) in self.indexes.iter_mut().enumerate() {
            if let Some(idx) = slot {
                idx.remove(t.data.get(c as u16), id);
            }
        }
        if self.ref_pool.len() < REF_POOL_CAP {
            self.ref_pool.push_back(t.clone());
        }
        Some(t)
    }

    /// Look up a stored tuple by id — O(1) slab indexing.
    pub fn get(&self, id: TupleId) -> Option<&TupleRef> {
        self.tuples.get(id)
    }

    /// Tuples whose column `col` equals `v`, via the hash index.
    ///
    /// # Panics
    /// Panics if no index exists on `col` — callers must check
    /// [`Relation::has_index`] and fall back to [`Relation::scan`] (that
    /// distinction is exactly the indexed-vs-nested-loop cost difference the
    /// paper's Figure 10 explores).
    pub fn probe<'s>(&'s self, col: ColId, v: &Value) -> impl Iterator<Item = &'s TupleRef> + 's {
        let idx = self.indexes[col.0 as usize]
            .as_ref()
            .expect("probe on unindexed column");
        idx.probe(v)
            .iter()
            .map(move |&id| self.tuples.get(id).expect("index/tuples in sync"))
    }

    /// Number of matches a probe would return, without materializing them.
    pub fn probe_count(&self, col: ColId, v: &Value) -> usize {
        self.indexes[col.0 as usize]
            .as_ref()
            .map(|idx| idx.probe(v).len())
            .unwrap_or(0)
    }

    /// Full scan over the window contents (nested-loop joins, consistency
    /// oracles), in insertion (id) order.
    pub fn scan(&self) -> impl Iterator<Item = &TupleRef> {
        self.tuples.iter()
    }

    /// Bytes of stored tuple data (excludes index overhead).
    pub fn data_bytes(&self) -> usize {
        self.data_bytes
    }

    /// Remove everything (window reset).
    pub fn clear(&mut self) {
        self.tuples.clear();
        self.by_data.clear();
        self.data_bytes = 0;
        for idx in self.indexes.iter_mut().flatten() {
            *idx = HashIndex::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_with_index() -> Relation {
        let mut r = Relation::new(RelId(0), 2);
        r.add_index(ColId(0));
        r
    }

    #[test]
    fn insert_and_probe() {
        let mut r = rel_with_index();
        r.insert(&TupleData::ints(&[1, 10]));
        r.insert(&TupleData::ints(&[1, 20]));
        r.insert(&TupleData::ints(&[2, 30]));
        assert_eq!(r.len(), 3);
        let hits: Vec<i64> = r
            .probe(ColId(0), &Value::Int(1))
            .map(|t| t.data.get(1).as_int().unwrap())
            .collect();
        assert_eq!(hits.len(), 2);
        assert!(hits.contains(&10) && hits.contains(&20));
        assert_eq!(r.probe_count(ColId(0), &Value::Int(2)), 1);
        assert_eq!(r.probe_count(ColId(0), &Value::Int(99)), 0);
    }

    #[test]
    fn multiset_delete_removes_one_instance() {
        let mut r = rel_with_index();
        r.insert(&TupleData::ints(&[5, 1]));
        r.insert(&TupleData::ints(&[5, 1]));
        assert_eq!(r.len(), 2);
        let removed = r.delete(&TupleData::ints(&[5, 1])).unwrap();
        assert_eq!(removed.data, TupleData::ints(&[5, 1]));
        assert_eq!(r.len(), 1);
        assert_eq!(r.probe_count(ColId(0), &Value::Int(5)), 1);
        assert!(r.delete(&TupleData::ints(&[5, 1])).is_some());
        assert!(r.delete(&TupleData::ints(&[5, 1])).is_none(), "exhausted");
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn delete_keeps_indexes_consistent() {
        let mut r = rel_with_index();
        r.insert(&TupleData::ints(&[7, 1]));
        let t2 = r.insert(&TupleData::ints(&[7, 2]));
        r.delete(&TupleData::ints(&[7, 1]));
        let hits: Vec<TupleId> = r.probe(ColId(0), &Value::Int(7)).map(|t| t.id).collect();
        assert_eq!(hits, vec![t2.id]);
    }

    #[test]
    fn late_index_build_covers_existing_tuples() {
        let mut r = Relation::new(RelId(0), 2);
        r.insert(&TupleData::ints(&[3, 1]));
        r.insert(&TupleData::ints(&[3, 2]));
        assert!(!r.has_index(ColId(1)));
        r.add_index(ColId(1));
        assert!(r.has_index(ColId(1)));
        assert_eq!(r.probe_count(ColId(1), &Value::Int(2)), 1);
        r.drop_index(ColId(1));
        assert!(!r.has_index(ColId(1)));
    }

    #[test]
    #[should_panic(expected = "probe on unindexed column")]
    fn probe_without_index_panics() {
        let r = Relation::new(RelId(0), 1);
        let _ = r.probe(ColId(0), &Value::Int(1)).count();
    }

    #[test]
    fn tuple_ids_never_reused() {
        let mut r = rel_with_index();
        let a = r.insert(&TupleData::ints(&[1, 1]));
        r.delete(&TupleData::ints(&[1, 1]));
        let b = r.insert(&TupleData::ints(&[1, 1]));
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn scan_sees_everything() {
        let mut r = Relation::new(RelId(2), 1);
        for i in 0..10 {
            r.insert(&TupleData::ints(&[i]));
        }
        let mut vals: Vec<i64> = r.scan().map(|t| t.data.get(0).as_int().unwrap()).collect();
        vals.sort_unstable();
        assert_eq!(vals, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn memory_accounting_tracks_inserts_and_deletes() {
        let mut r = Relation::new(RelId(0), 1);
        assert_eq!(r.data_bytes(), 0);
        r.insert(&TupleData::ints(&[1]));
        let one = r.data_bytes();
        assert!(one > 0);
        r.insert(&TupleData::ints(&[2]));
        assert_eq!(r.data_bytes(), 2 * one);
        r.delete(&TupleData::ints(&[1]));
        assert_eq!(r.data_bytes(), one);
    }

    #[test]
    fn clear_resets_but_keeps_index_definitions() {
        let mut r = rel_with_index();
        r.insert(&TupleData::ints(&[1, 1]));
        r.clear();
        assert!(r.is_empty());
        assert!(r.has_index(ColId(0)));
        assert_eq!(r.probe_count(ColId(0), &Value::Int(1)), 0);
        r.insert(&TupleData::ints(&[1, 1]));
        assert_eq!(r.probe_count(ColId(0), &Value::Int(1)), 1);
    }

    #[test]
    fn index_distinct_keys() {
        let mut r = rel_with_index();
        for i in 0..10 {
            r.insert(&TupleData::ints(&[i % 3, i]));
        }
        assert_eq!(r.index(ColId(0)).unwrap().distinct_keys(), 3);
        assert_eq!(r.index(ColId(0)).unwrap().len(), 10);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(RelId(0), 2);
        r.insert(&TupleData::ints(&[1]));
    }
}
