//! Relation store with hash indexes.

use acq_sketch::FxHashMap;
use acq_stream::{ColId, RelId, StoredTuple, TupleData, TupleId, TupleRef, Value};
use std::sync::Arc;

/// A hash index on one column: `value → tuple ids`.
///
/// Index postings are `Vec<TupleId>`; deletions swap-remove, so postings are
/// unordered — fine, because equijoin semantics are set/multiset based.
#[derive(Debug, Default)]
pub struct HashIndex {
    map: FxHashMap<Value, Vec<TupleId>>,
    entries: usize,
}

impl HashIndex {
    fn insert(&mut self, v: Value, id: TupleId) {
        self.map.entry(v).or_default().push(id);
        self.entries += 1;
    }

    fn remove(&mut self, v: &Value, id: TupleId) {
        if let Some(list) = self.map.get_mut(v) {
            if let Some(pos) = list.iter().position(|&x| x == id) {
                list.swap_remove(pos);
                self.entries -= 1;
                if list.is_empty() {
                    self.map.remove(v);
                }
            }
        }
    }

    /// Tuple ids whose indexed column equals `v` (empty slice if none).
    pub fn probe(&self, v: &Value) -> &[TupleId] {
        self.map.get(v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct key values currently indexed.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Total posting entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True if the index holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }
}

/// The window contents of one relation, with optional hash indexes.
#[derive(Debug)]
pub struct Relation {
    rel: RelId,
    arity: usize,
    tuples: FxHashMap<TupleId, TupleRef>,
    /// Value → ids with exactly that data (multiset delete support).
    by_data: FxHashMap<TupleData, Vec<TupleId>>,
    /// `indexes[col]` is `Some` when a hash index exists on that column.
    indexes: Vec<Option<HashIndex>>,
    next_id: TupleId,
    /// Running byte count of stored tuple data (for §5-style accounting and
    /// experiment reporting).
    data_bytes: usize,
}

impl Relation {
    /// An empty relation with `arity` columns and *no* indexes.
    pub fn new(rel: RelId, arity: usize) -> Relation {
        Relation {
            rel,
            arity,
            tuples: FxHashMap::default(),
            by_data: FxHashMap::default(),
            indexes: (0..arity).map(|_| None).collect(),
            next_id: 0,
            data_bytes: 0,
        }
    }

    /// Relation id.
    pub fn rel(&self) -> RelId {
        self.rel
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples currently stored (window size).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Build (or rebuild) a hash index on `col`, indexing existing tuples.
    pub fn add_index(&mut self, col: ColId) {
        let mut idx = HashIndex::default();
        for (id, t) in &self.tuples {
            idx.insert(t.data.get(col.0).clone(), *id);
        }
        self.indexes[col.0 as usize] = Some(idx);
    }

    /// Drop the index on `col` (Figure 10 drops the S.B index to force
    /// nested-loop joins).
    pub fn drop_index(&mut self, col: ColId) {
        self.indexes[col.0 as usize] = None;
    }

    /// True if a hash index exists on `col`.
    pub fn has_index(&self, col: ColId) -> bool {
        self.indexes[col.0 as usize].is_some()
    }

    /// The index on `col`, if any.
    pub fn index(&self, col: ColId) -> Option<&HashIndex> {
        self.indexes[col.0 as usize].as_ref()
    }

    /// Insert a tuple; returns the minted reference.
    ///
    /// # Panics
    /// Panics if the tuple arity doesn't match the relation's.
    pub fn insert(&mut self, data: TupleData) -> TupleRef {
        assert_eq!(data.arity(), self.arity, "arity mismatch on insert");
        let id = self.next_id;
        self.next_id += 1;
        self.data_bytes += data.memory_bytes();
        let t: TupleRef = Arc::new(StoredTuple {
            rel: self.rel,
            id,
            data: data.clone(),
        });
        for (c, slot) in self.indexes.iter_mut().enumerate() {
            if let Some(idx) = slot {
                idx.insert(t.data.get(c as u16).clone(), id);
            }
        }
        self.by_data.entry(data).or_default().push(id);
        self.tuples.insert(id, t.clone());
        t
    }

    /// Delete one tuple whose data equals `data` (multiset semantics: exactly
    /// one instance is removed — the most recently inserted one). Returns the
    /// removed reference, or `None` if no instance matches.
    pub fn delete(&mut self, data: &TupleData) -> Option<TupleRef> {
        let ids = self.by_data.get_mut(data)?;
        let id = ids.pop().expect("by_data lists are never empty");
        if ids.is_empty() {
            self.by_data.remove(data);
        }
        let t = self.tuples.remove(&id).expect("by_data/tuples in sync");
        self.data_bytes -= t.data.memory_bytes();
        for (c, slot) in self.indexes.iter_mut().enumerate() {
            if let Some(idx) = slot {
                idx.remove(t.data.get(c as u16), id);
            }
        }
        Some(t)
    }

    /// Look up a stored tuple by id.
    pub fn get(&self, id: TupleId) -> Option<&TupleRef> {
        self.tuples.get(&id)
    }

    /// Tuples whose column `col` equals `v`, via the hash index.
    ///
    /// # Panics
    /// Panics if no index exists on `col` — callers must check
    /// [`Relation::has_index`] and fall back to [`Relation::scan`] (that
    /// distinction is exactly the indexed-vs-nested-loop cost difference the
    /// paper's Figure 10 explores).
    pub fn probe<'s>(&'s self, col: ColId, v: &Value) -> impl Iterator<Item = &'s TupleRef> + 's {
        let idx = self.indexes[col.0 as usize]
            .as_ref()
            .expect("probe on unindexed column");
        idx.probe(v)
            .iter()
            .map(move |id| self.tuples.get(id).expect("index/tuples in sync"))
    }

    /// Number of matches a probe would return, without materializing them.
    pub fn probe_count(&self, col: ColId, v: &Value) -> usize {
        self.indexes[col.0 as usize]
            .as_ref()
            .map(|idx| idx.probe(v).len())
            .unwrap_or(0)
    }

    /// Full scan over the window contents (nested-loop joins, consistency
    /// oracles).
    pub fn scan(&self) -> impl Iterator<Item = &TupleRef> {
        self.tuples.values()
    }

    /// Bytes of stored tuple data (excludes index overhead).
    pub fn data_bytes(&self) -> usize {
        self.data_bytes
    }

    /// Remove everything (window reset).
    pub fn clear(&mut self) {
        self.tuples.clear();
        self.by_data.clear();
        self.data_bytes = 0;
        for idx in self.indexes.iter_mut().flatten() {
            *idx = HashIndex::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_with_index() -> Relation {
        let mut r = Relation::new(RelId(0), 2);
        r.add_index(ColId(0));
        r
    }

    #[test]
    fn insert_and_probe() {
        let mut r = rel_with_index();
        r.insert(TupleData::ints(&[1, 10]));
        r.insert(TupleData::ints(&[1, 20]));
        r.insert(TupleData::ints(&[2, 30]));
        assert_eq!(r.len(), 3);
        let hits: Vec<i64> = r
            .probe(ColId(0), &Value::Int(1))
            .map(|t| t.data.get(1).as_int().unwrap())
            .collect();
        assert_eq!(hits.len(), 2);
        assert!(hits.contains(&10) && hits.contains(&20));
        assert_eq!(r.probe_count(ColId(0), &Value::Int(2)), 1);
        assert_eq!(r.probe_count(ColId(0), &Value::Int(99)), 0);
    }

    #[test]
    fn multiset_delete_removes_one_instance() {
        let mut r = rel_with_index();
        r.insert(TupleData::ints(&[5, 1]));
        r.insert(TupleData::ints(&[5, 1]));
        assert_eq!(r.len(), 2);
        let removed = r.delete(&TupleData::ints(&[5, 1])).unwrap();
        assert_eq!(removed.data, TupleData::ints(&[5, 1]));
        assert_eq!(r.len(), 1);
        assert_eq!(r.probe_count(ColId(0), &Value::Int(5)), 1);
        assert!(r.delete(&TupleData::ints(&[5, 1])).is_some());
        assert!(r.delete(&TupleData::ints(&[5, 1])).is_none(), "exhausted");
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn delete_keeps_indexes_consistent() {
        let mut r = rel_with_index();
        r.insert(TupleData::ints(&[7, 1]));
        let t2 = r.insert(TupleData::ints(&[7, 2]));
        r.delete(&TupleData::ints(&[7, 1]));
        let hits: Vec<TupleId> = r.probe(ColId(0), &Value::Int(7)).map(|t| t.id).collect();
        assert_eq!(hits, vec![t2.id]);
    }

    #[test]
    fn late_index_build_covers_existing_tuples() {
        let mut r = Relation::new(RelId(0), 2);
        r.insert(TupleData::ints(&[3, 1]));
        r.insert(TupleData::ints(&[3, 2]));
        assert!(!r.has_index(ColId(1)));
        r.add_index(ColId(1));
        assert!(r.has_index(ColId(1)));
        assert_eq!(r.probe_count(ColId(1), &Value::Int(2)), 1);
        r.drop_index(ColId(1));
        assert!(!r.has_index(ColId(1)));
    }

    #[test]
    #[should_panic(expected = "probe on unindexed column")]
    fn probe_without_index_panics() {
        let r = Relation::new(RelId(0), 1);
        let _ = r.probe(ColId(0), &Value::Int(1)).count();
    }

    #[test]
    fn tuple_ids_never_reused() {
        let mut r = rel_with_index();
        let a = r.insert(TupleData::ints(&[1, 1]));
        r.delete(&TupleData::ints(&[1, 1]));
        let b = r.insert(TupleData::ints(&[1, 1]));
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn scan_sees_everything() {
        let mut r = Relation::new(RelId(2), 1);
        for i in 0..10 {
            r.insert(TupleData::ints(&[i]));
        }
        let mut vals: Vec<i64> = r.scan().map(|t| t.data.get(0).as_int().unwrap()).collect();
        vals.sort_unstable();
        assert_eq!(vals, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn memory_accounting_tracks_inserts_and_deletes() {
        let mut r = Relation::new(RelId(0), 1);
        assert_eq!(r.data_bytes(), 0);
        r.insert(TupleData::ints(&[1]));
        let one = r.data_bytes();
        assert!(one > 0);
        r.insert(TupleData::ints(&[2]));
        assert_eq!(r.data_bytes(), 2 * one);
        r.delete(&TupleData::ints(&[1]));
        assert_eq!(r.data_bytes(), one);
    }

    #[test]
    fn clear_resets_but_keeps_index_definitions() {
        let mut r = rel_with_index();
        r.insert(TupleData::ints(&[1, 1]));
        r.clear();
        assert!(r.is_empty());
        assert!(r.has_index(ColId(0)));
        assert_eq!(r.probe_count(ColId(0), &Value::Int(1)), 0);
        r.insert(TupleData::ints(&[1, 1]));
        assert_eq!(r.probe_count(ColId(0), &Value::Int(1)), 1);
    }

    #[test]
    fn index_distinct_keys() {
        let mut r = rel_with_index();
        for i in 0..10 {
            r.insert(TupleData::ints(&[i % 3, i]));
        }
        assert_eq!(r.index(ColId(0)).unwrap().distinct_keys(), 3);
        assert_eq!(r.index(ColId(0)).unwrap().len(), 10);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(RelId(0), 2);
        r.insert(TupleData::ints(&[1]));
    }
}
