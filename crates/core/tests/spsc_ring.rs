//! Model tests for the runtime's SPSC ring (`acq::runtime::spsc`).
//!
//! * **Schedule fuzz** — a seeded xorshift RNG interleaves push/pop/len
//!   operations against a `VecDeque` model across every small capacity, so
//!   wraparound and the full/empty boundaries are crossed thousands of
//!   times in every pattern a single-threaded schedule can produce. (The
//!   cross-thread orderings are covered by the inline `cross_thread_handoff`
//!   test and the runtime integration tests.)
//! * **Drop-while-nonempty leak check** — the ring's `Drop` must drain and
//!   drop unconsumed items. Proven two ways: a drop-counting payload, and a
//!   global alloc/dealloc-counting allocator balancing heap traffic across
//!   the ring's whole lifetime.

use acq::runtime::spsc::ring;
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts allocations and deallocations so tests can assert that a scope
/// returned every byte it took (no leaks, including ring-internal buffers).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static DEALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        DEALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn heap_balance() -> (i64, i64) {
    (
        ALLOCS.load(Ordering::SeqCst) as i64 - DEALLOCS.load(Ordering::SeqCst) as i64,
        ALLOC_BYTES.load(Ordering::SeqCst) as i64 - DEALLOC_BYTES.load(Ordering::SeqCst) as i64,
    )
}

/// Deterministic xorshift64* — the schedule is reproducible from the seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[test]
fn schedule_fuzz_matches_vecdeque_model() {
    for capacity in [1usize, 2, 3, 4, 7, 8] {
        // `ring` rounds the capacity up to a power of two (min 2); the
        // model must use the effective capacity, which the handles report.
        let (mut p, mut c) = ring::<u64>(capacity);
        let effective = p.capacity();
        assert!(effective >= capacity.max(2));
        assert!(effective.is_power_of_two());

        let mut model: VecDeque<u64> = VecDeque::new();
        let mut rng = Rng(0x5EED_0000 + capacity as u64);
        let mut pushed = 0u64;
        for step in 0..20_000u64 {
            match rng.below(5) {
                // Push-biased (0..=2) so the full boundary is reached often.
                0..=2 => {
                    let v = pushed;
                    match p.push(v) {
                        Ok(()) => {
                            pushed += 1;
                            model.push_back(v);
                            assert!(
                                model.len() <= effective,
                                "push succeeded past capacity at step {step}"
                            );
                        }
                        Err(back) => {
                            assert_eq!(back, v, "push must return the rejected value");
                            assert_eq!(
                                model.len(),
                                effective,
                                "push failed while the model says non-full at step {step}"
                            );
                        }
                    }
                }
                3 => assert_eq!(c.pop(), model.pop_front(), "pop diverged at step {step}"),
                _ => {
                    // Single-threaded, so the "racy snapshot" is exact.
                    assert_eq!(p.len(), model.len());
                    assert_eq!(c.len(), model.len());
                    assert_eq!(p.is_empty(), model.is_empty());
                    assert_eq!(c.is_empty(), model.is_empty());
                }
            }
        }
        // Drain and compare the tail.
        while let Some(v) = c.pop() {
            assert_eq!(Some(v), model.pop_front());
        }
        assert!(model.is_empty(), "ring dropped items the model kept");
    }
}

/// Payload whose drops are observable.
struct Tracked(#[allow(dead_code)] Box<u64>);

static DROPS: AtomicU64 = AtomicU64::new(0);

impl Drop for Tracked {
    fn drop(&mut self) {
        DROPS.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn drop_while_nonempty_leaks_nothing() {
    let (before_allocs, before_bytes) = heap_balance();
    let before_drops = DROPS.load(Ordering::SeqCst);
    {
        let (mut p, mut c) = ring::<Tracked>(8);
        for i in 0..8 {
            p.push(Tracked(Box::new(i))).map_err(|_| "full").unwrap();
        }
        // Consume a few so head is mid-array, then refill to force wrap:
        // the occupied span [head, tail) straddles the slot-array boundary
        // when the handles drop.
        for _ in 0..3 {
            drop(c.pop().unwrap());
        }
        for i in 8..11 {
            p.push(Tracked(Box::new(i))).map_err(|_| "full").unwrap();
        }
        // 8 slots still occupied here.
        drop(p);
        drop(c);
    }
    assert_eq!(
        DROPS.load(Ordering::SeqCst) - before_drops,
        11,
        "every pushed payload must be dropped exactly once"
    );
    let (after_allocs, after_bytes) = heap_balance();
    assert_eq!(
        (after_allocs - before_allocs, after_bytes - before_bytes),
        (0, 0),
        "ring lifetime must return every heap byte it allocated"
    );
}
