//! Behavioral tests of the A-Caching engine: output correctness against a
//! naive oracle in every cache configuration, cache-consistency invariants
//! (Definitions 3.1 and 6.1), the paper's worked examples, and the adaptive
//! state machine.

use acq::engine::{AdaptiveJoinEngine, CacheMode, EngineConfig, ReoptInterval, SelectionStrategy};
use acq::{EnumerationConfig, MemoryConfig, ProfilerConfig};
use acq_mjoin::oracle::{canonical_rows, multiset_diff, CanonicalRow, Oracle};
use acq_mjoin::plan::{PipelineOrder, PlanOrders};
use acq_stream::{Op, QuerySchema, RelId, TupleData, Update};

fn upd(rel: u16, op: Op, vals: &[i64], ts: u64) -> Update {
    Update {
        op,
        rel: RelId(rel),
        data: TupleData::ints(vals),
        ts,
    }
}

/// Fast-warmup configuration for tests.
fn test_config() -> EngineConfig {
    EngineConfig {
        profiler: ProfilerConfig {
            w: 3,
            profile_every: 2,
            bloom_window: 8,
            bloom_alpha: 8,
        },
        reopt_interval: ReoptInterval::Tuples(50),
        stats_epoch_ns: 10_000,
        ..Default::default()
    }
}

/// Drive engine + oracle through updates, asserting the delta multisets
/// match after every single update, and the consistency invariant holds.
fn assert_tracks_oracle(engine: &mut AdaptiveJoinEngine, updates: &[Update], check_every: usize) {
    let n = engine.core().query().num_relations();
    let mut oracle = Oracle::new(engine.core().query().clone());
    for (step, u) in updates.iter().enumerate() {
        let got: Vec<(Op, CanonicalRow)> = engine
            .process(u)
            .into_iter()
            .map(|(op, c)| (op, canonical_rows(&c, n)))
            .collect();
        let want = oracle.apply_and_delta(u);
        let diff = multiset_diff(&got, &want);
        assert!(
            diff.is_empty(),
            "step {step} ({u}): engine delta diverged from oracle: {diff:?}\nused caches: {:?}",
            engine.used_caches()
        );
        if step % check_every == 0 {
            let violations = engine.check_consistency_invariant();
            assert!(violations.is_empty(), "step {step}: {violations:?}");
        }
    }
    let violations = engine.check_consistency_invariant();
    assert!(violations.is_empty(), "final: {violations:?}");
}

/// Mixed insert/delete workload on chain3 with controlled multiplicity:
/// values repeat so caches actually get hits, and a live-tuple cap keeps
/// relations window-sized so join fanout stays bounded.
fn chain3_workload(len: usize, seed: u64) -> Vec<Update> {
    const LIVE_CAP: usize = 45;
    let mut state = seed.max(1);
    let mut rng = move |m: u64| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state % m
    };
    let mut out = Vec::new();
    let mut live: Vec<(u16, Vec<i64>)> = Vec::new();
    for ts in 0..len as u64 {
        let delete = !live.is_empty() && (live.len() >= LIVE_CAP || rng(4) == 0);
        if delete {
            let idx = rng(live.len() as u64) as usize;
            let (rel, vals) = live.swap_remove(idx);
            out.push(upd(rel, Op::Delete, &vals, ts));
        } else {
            let rel = rng(3) as u16;
            let a = rng(5) as i64; // small domains → multiplicity ≈ window/5
            let b = rng(5) as i64;
            let vals = match rel {
                0 => vec![a],
                1 => vec![a, b],
                _ => vec![b],
            };
            live.push((rel, vals.clone()));
            out.push(upd(rel, Op::Insert, &vals, ts));
        }
    }
    out
}

// ---------------------------------------------------------------------
// Forced-cache correctness (the §7.2 setup: one cache, always on)

#[test]
fn forced_figure3_cache_matches_oracle() {
    // Figure 3: cache for the R2,R3 segment (= {S,T}) in ∆R1's pipeline.
    let q = QuerySchema::chain3();
    let orders = PlanOrders::new(vec![
        PipelineOrder {
            stream: RelId(0),
            order: vec![RelId(1), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(1),
            order: vec![RelId(2), RelId(0)],
        },
        PipelineOrder {
            stream: RelId(2),
            order: vec![RelId(1), RelId(0)],
        },
    ]);
    let mut config = test_config();
    config.mode = CacheMode::Forced(vec![(RelId(0), vec![RelId(1), RelId(2)])]);
    let mut engine = AdaptiveJoinEngine::with_config(q, orders, config);
    assert_eq!(engine.used_caches().len(), 1, "{:?}", engine.used_caches());
    let w = chain3_workload(600, 42);
    assert_tracks_oracle(&mut engine, &w, 25);
    assert!(
        engine.counters().cache_hits > 0,
        "repetitive workload must produce hits"
    );
}

#[test]
fn paper_example_3_2_hit_on_second_probe() {
    // Example 3.2: after a miss populates the cache, an identical ∆R1 tuple
    // hits and produces the join result immediately.
    let q = QuerySchema::chain3();
    let orders = PlanOrders::new(vec![
        PipelineOrder {
            stream: RelId(0),
            order: vec![RelId(1), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(1),
            order: vec![RelId(2), RelId(0)],
        },
        PipelineOrder {
            stream: RelId(2),
            order: vec![RelId(1), RelId(0)],
        },
    ]);
    let mut config = test_config();
    config.profiler.profile_every = u64::MAX; // no profiled tuples: every probe uses the cache
    config.mode = CacheMode::Forced(vec![(RelId(0), vec![RelId(1), RelId(2)])]);
    let mut engine = AdaptiveJoinEngine::with_config(q, orders, config);
    // Figure 2(b) contents.
    for (rel, vals) in [
        (0u16, vec![0i64]),
        (0, vec![2]),
        (1, vec![1, 2]),
        (1, vec![1, 3]),
        (1, vec![3, 4]),
        (2, vec![2]),
        (2, vec![6]),
    ] {
        engine.process(&upd(rel, Op::Insert, &vals, 0));
    }
    let before = engine.counters();
    let out = engine.process(&upd(0, Op::Insert, &[1], 1));
    assert_eq!(out.len(), 1, "⟨1,1,2,2⟩");
    let mid = engine.counters();
    assert_eq!(
        mid.cache_misses - before.cache_misses,
        1,
        "first probe misses"
    );
    // Second identical tuple: hit.
    let out = engine.process(&upd(0, Op::Insert, &[1], 2));
    assert_eq!(out.len(), 1);
    let after = engine.counters();
    assert_eq!(after.cache_hits - mid.cache_hits, 1, "second probe hits");
    assert_eq!(after.cache_misses, mid.cache_misses);
}

#[test]
fn paper_examples_3_3_and_3_5_maintenance() {
    // Continue Example 3.2: insert ⟨3⟩ into R3; the CacheUpdate operator must
    // add ⟨1,3,3⟩ to the cached value for key ⟨1⟩ (and ignore ⟨2,3,3⟩ whose
    // key is absent), so a third ⟨1⟩ ∈ ∆R1 produces two results from a hit.
    let q = QuerySchema::chain3();
    let orders = PlanOrders::new(vec![
        PipelineOrder {
            stream: RelId(0),
            order: vec![RelId(1), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(1),
            order: vec![RelId(2), RelId(0)],
        },
        PipelineOrder {
            stream: RelId(2),
            order: vec![RelId(1), RelId(0)],
        },
    ]);
    let mut config = test_config();
    config.profiler.profile_every = u64::MAX;
    config.mode = CacheMode::Forced(vec![(RelId(0), vec![RelId(1), RelId(2)])]);
    let mut engine = AdaptiveJoinEngine::with_config(q, orders, config);
    for (rel, vals) in [
        (0u16, vec![0i64]),
        (0, vec![2]),
        (1, vec![1, 2]),
        (1, vec![1, 3]),
        (1, vec![3, 4]),
        (2, vec![2]),
        (2, vec![6]),
    ] {
        engine.process(&upd(rel, Op::Insert, &vals, 0));
    }
    engine.process(&upd(0, Op::Insert, &[1], 1)); // miss, populates key ⟨1⟩
    let out = engine.process(&upd(2, Op::Insert, &[3], 2));
    assert_eq!(out.len(), 1, "⟨1,1,3,3⟩ emitted by ∆R3's pipeline");
    let before = engine.counters();
    let out = engine.process(&upd(0, Op::Insert, &[1], 3));
    assert_eq!(out.len(), 2, "hit returns both ⟨1,1,2,2⟩ and ⟨1,1,3,3⟩");
    assert_eq!(engine.counters().cache_hits - before.cache_hits, 1);
    assert!(engine.check_consistency_invariant().is_empty());
}

#[test]
fn delete_maintenance_keeps_cache_consistent() {
    let q = QuerySchema::chain3();
    let orders = PlanOrders::new(vec![
        PipelineOrder {
            stream: RelId(0),
            order: vec![RelId(1), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(1),
            order: vec![RelId(2), RelId(0)],
        },
        PipelineOrder {
            stream: RelId(2),
            order: vec![RelId(1), RelId(0)],
        },
    ]);
    let mut config = test_config();
    config.profiler.profile_every = u64::MAX;
    config.mode = CacheMode::Forced(vec![(RelId(0), vec![RelId(1), RelId(2)])]);
    let mut engine = AdaptiveJoinEngine::with_config(q, orders, config);
    engine.process(&upd(1, Op::Insert, &[1, 2], 0));
    engine.process(&upd(2, Op::Insert, &[2], 0));
    engine.process(&upd(0, Op::Insert, &[1], 1)); // populate key ⟨1⟩
                                                  // Delete the S tuple: the cached value must shrink.
    engine.process(&upd(1, Op::Delete, &[1, 2], 2));
    assert!(engine.check_consistency_invariant().is_empty());
    let out = engine.process(&upd(0, Op::Insert, &[1], 3));
    assert!(out.is_empty(), "hit on now-empty value produces nothing");
}

// ---------------------------------------------------------------------
// Adaptive mode

#[test]
fn adaptive_engine_tracks_oracle_through_reoptimizations() {
    let q = QuerySchema::chain3();
    let mut config = test_config();
    config.selection = SelectionStrategy::Auto;
    let mut engine = AdaptiveJoinEngine::with_config(q.clone(), PlanOrders::identity(&q), config);
    let w = chain3_workload(1500, 7);
    assert_tracks_oracle(&mut engine, &w, 50);
    assert!(
        engine.counters().reoptimizations > 0,
        "re-optimizer should have run: {:?}",
        engine.counters()
    );
}

#[test]
fn adaptive_engine_eventually_uses_caches_on_favorable_workload() {
    // High-multiplicity T.B (the Figure 6 r=10 regime) with ∆T dominating:
    // the R⋈S cache in ∆T's pipeline should be selected.
    let q = QuerySchema::chain3();
    let orders = PlanOrders::new(vec![
        PipelineOrder {
            stream: RelId(0),
            order: vec![RelId(1), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(1),
            order: vec![RelId(0), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(2),
            order: vec![RelId(1), RelId(0)],
        },
    ]);
    let mut config = test_config();
    config.reopt_interval = ReoptInterval::Tuples(200);
    let mut engine = AdaptiveJoinEngine::with_config(q, orders, config);
    let mut ts = 0u64;
    // Seed R and S with joining tuples (distinct A values, B always in 0..3).
    for i in 0..30i64 {
        engine.process(&upd(0, Op::Insert, &[i], ts));
        ts += 1;
        engine.process(&upd(1, Op::Insert, &[i, i % 3], ts));
        ts += 1;
    }
    // Flood ∆T with highly repetitive B values.
    for i in 0..1500i64 {
        engine.process(&upd(2, Op::Insert, &[i % 3], ts));
        ts += 1;
    }
    assert!(
        !engine.used_caches().is_empty(),
        "favorable workload must select a cache; counters {:?}, states {:?}",
        engine.counters(),
        engine
            .candidate_states()
            .iter()
            .map(|(c, s)| format!("{} {:?}", c.name(), s))
            .collect::<Vec<_>>()
    );
    assert!(engine.counters().cache_hits > 0);
    assert!(engine.check_consistency_invariant().is_empty());
}

#[test]
fn no_cache_mode_matches_oracle_and_uses_no_caches() {
    let q = QuerySchema::chain3();
    let mut config = test_config();
    config.mode = CacheMode::None;
    let mut engine = AdaptiveJoinEngine::with_config(q.clone(), PlanOrders::identity(&q), config);
    let w = chain3_workload(400, 99);
    assert_tracks_oracle(&mut engine, &w, 100);
    assert_eq!(engine.counters().cache_hits, 0);
    assert_eq!(engine.counters().cache_misses, 0);
    assert!(engine.used_caches().is_empty());
}

#[test]
fn star4_adaptive_with_sharing_matches_oracle() {
    // Star(4): shared candidates across pipelines; exercise selection with
    // sharing + correctness.
    let q = QuerySchema::star(4);
    let mut config = test_config();
    config.reopt_interval = ReoptInterval::Tuples(150);
    let mut engine = AdaptiveJoinEngine::with_config(q.clone(), PlanOrders::identity(&q), config);
    let mut oracle = Oracle::new(q);
    let mut state = 5u64;
    let mut rng = move |m: u64| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state % m
    };
    let mut live: Vec<(u16, Vec<i64>)> = Vec::new();
    for ts in 0..700u64 {
        let u = if !live.is_empty() && (live.len() >= 48 || rng(5) == 0) {
            let idx = rng(live.len() as u64) as usize;
            let (rel, vals) = live.swap_remove(idx);
            upd(rel, Op::Delete, &vals, ts)
        } else {
            let rel = rng(4) as u16;
            let vals = vec![rng(6) as i64, rng(10) as i64];
            live.push((rel, vals.clone()));
            upd(rel, Op::Insert, &vals, ts)
        };
        let got: Vec<(Op, CanonicalRow)> = engine
            .process(&u)
            .into_iter()
            .map(|(op, c)| (op, canonical_rows(&c, 4)))
            .collect();
        let want = oracle.apply_and_delta(&u);
        assert!(
            multiset_diff(&got, &want).is_empty(),
            "ts {ts}: diverged; used {:?}",
            engine.used_caches()
        );
    }
    assert!(engine.check_consistency_invariant().is_empty());
}

// ---------------------------------------------------------------------
// Globally-consistent caches (§6)

fn gc_orders() -> (QuerySchema, PlanOrders) {
    // Orders with no plain candidates (see candidates.rs tests): any cache
    // must be globally consistent.
    let q = QuerySchema::chain3();
    let orders = PlanOrders::new(vec![
        PipelineOrder {
            stream: RelId(0),
            order: vec![RelId(2), RelId(1)],
        },
        PipelineOrder {
            stream: RelId(1),
            order: vec![RelId(0), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(2),
            order: vec![RelId(1), RelId(0)],
        },
    ]);
    (q, orders)
}

#[test]
fn global_cache_forced_matches_oracle() {
    let (q, orders) = gc_orders();
    let mut config = test_config();
    config.enumeration = EnumerationConfig {
        enable_global: true,
        max_candidates: 6,
        ..Default::default()
    };
    // Force the GC cache over {S, T} in ∆R1's pipeline (witness {R}).
    config.mode = CacheMode::Forced(vec![(RelId(0), vec![RelId(1), RelId(2)])]);
    config.profiler.profile_every = u64::MAX;
    let mut engine = AdaptiveJoinEngine::with_config(q, orders, config);
    assert_eq!(engine.used_caches().len(), 1);
    assert!(
        engine.used_caches()[0].contains('⋉'),
        "{:?}",
        engine.used_caches()
    );
    let w = chain3_workload(600, 1234);
    assert_tracks_oracle(&mut engine, &w, 20);
}

#[test]
fn global_cache_adaptive_selection_available() {
    let (q, orders) = gc_orders();
    let mut config = test_config();
    config.enumeration = EnumerationConfig {
        enable_global: true,
        max_candidates: 6,
        ..Default::default()
    };
    config.reopt_interval = ReoptInterval::Tuples(200);
    let mut engine = AdaptiveJoinEngine::with_config(q, orders, config);
    let states = engine.candidate_states();
    assert!(!states.is_empty());
    assert!(states.iter().all(|(c, _)| c.is_global()));
    // Drive a repetitive workload; correctness must hold whatever gets used.
    let w = chain3_workload(1200, 77);
    assert_tracks_oracle(&mut engine, &w, 60);
}

// ---------------------------------------------------------------------
// Memory limits (§5)

#[test]
fn memory_budget_zero_disables_caches_but_stays_correct() {
    let q = QuerySchema::chain3();
    let mut config = test_config();
    config.memory = MemoryConfig {
        page_bytes: 4096,
        budget_bytes: Some(0),
    };
    let mut engine = AdaptiveJoinEngine::with_config(q.clone(), PlanOrders::identity(&q), config);
    let w = chain3_workload(800, 3);
    assert_tracks_oracle(&mut engine, &w, 100);
    assert!(engine.used_caches().is_empty(), "no memory → no caches");
    assert_eq!(engine.cache_memory_bytes(), 0);
}

#[test]
fn small_memory_budget_caps_store_size() {
    let q = QuerySchema::chain3();
    let orders = PlanOrders::new(vec![
        PipelineOrder {
            stream: RelId(0),
            order: vec![RelId(1), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(1),
            order: vec![RelId(0), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(2),
            order: vec![RelId(1), RelId(0)],
        },
    ]);
    let mut config = test_config();
    config.memory = MemoryConfig {
        page_bytes: 1024,
        budget_bytes: Some(2048),
    };
    config.mode = CacheMode::Adaptive;
    config.reopt_interval = ReoptInterval::Tuples(150);
    let mut engine = AdaptiveJoinEngine::with_config(q.clone(), orders, config);
    let w = chain3_workload(1000, 11);
    assert_tracks_oracle(&mut engine, &w, 100);
    // Whatever was allocated, stores respect the overall budget scale
    // (bucket arrays are sized from the grant).
    for (c, s) in engine.candidate_states() {
        let _ = (c, s);
    }
}

// ---------------------------------------------------------------------
// Reordering

#[test]
fn set_orders_flushes_caches_and_stays_correct() {
    let q = QuerySchema::chain3();
    let orders = PlanOrders::new(vec![
        PipelineOrder {
            stream: RelId(0),
            order: vec![RelId(1), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(1),
            order: vec![RelId(2), RelId(0)],
        },
        PipelineOrder {
            stream: RelId(2),
            order: vec![RelId(1), RelId(0)],
        },
    ]);
    let mut config = test_config();
    config.mode = CacheMode::Forced(vec![(RelId(0), vec![RelId(1), RelId(2)])]);
    config.profiler.profile_every = u64::MAX;
    let mut engine = AdaptiveJoinEngine::with_config(q.clone(), orders, config);
    let mut oracle = Oracle::new(q.clone());
    let w1 = chain3_workload(300, 21);
    for u in &w1 {
        let got: Vec<(Op, CanonicalRow)> = engine
            .process(u)
            .into_iter()
            .map(|(op, c)| (op, canonical_rows(&c, 3)))
            .collect();
        let want = oracle.apply_and_delta(u);
        assert!(multiset_diff(&got, &want).is_empty());
    }
    // Reorder mid-stream (§4.5 step 5): caches flushed, candidates rebuilt.
    engine.set_orders(PlanOrders::identity(&q));
    for (i, u) in chain3_workload(300, 22).iter().enumerate() {
        let shifted = Update {
            ts: 1_000_000 + i as u64,
            ..u.clone()
        };
        let got: Vec<(Op, CanonicalRow)> = engine
            .process(&shifted)
            .into_iter()
            .map(|(op, c)| (op, canonical_rows(&c, 3)))
            .collect();
        let want = oracle.apply_and_delta(&shifted);
        assert!(
            multiset_diff(&got, &want).is_empty(),
            "after reorder step {i}"
        );
    }
}

// ---------------------------------------------------------------------
// Extensions: incremental re-optimization, set-associative stores, damping

#[test]
fn incremental_selection_tracks_oracle() {
    let q = QuerySchema::chain3();
    let mut config = test_config();
    config.selection = SelectionStrategy::Incremental;
    let mut engine = AdaptiveJoinEngine::with_config(q.clone(), PlanOrders::identity(&q), config);
    let w = chain3_workload(1200, 31);
    assert_tracks_oracle(&mut engine, &w, 80);
    assert!(engine.counters().reoptimizations > 0);
}

#[test]
fn set_associative_store_stays_correct() {
    let q = QuerySchema::chain3();
    let orders = PlanOrders::new(vec![
        PipelineOrder {
            stream: RelId(0),
            order: vec![RelId(1), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(1),
            order: vec![RelId(0), RelId(2)],
        },
        PipelineOrder {
            stream: RelId(2),
            order: vec![RelId(1), RelId(0)],
        },
    ]);
    for ways in [2usize, 4] {
        let mut config = test_config();
        config.cache_ways = ways;
        config.mode = CacheMode::Forced(vec![(RelId(2), vec![RelId(0), RelId(1)])]);
        let mut engine = AdaptiveJoinEngine::with_config(q.clone(), orders.clone(), config);
        let w = chain3_workload(500, 1000 + ways as u64);
        assert_tracks_oracle(&mut engine, &w, 50);
        assert!(engine.counters().cache_hits > 0, "ways={ways}");
    }
}

#[test]
fn fruitless_reopt_damping_reduces_offline_runs() {
    // Perfectly stable workload: after convergence, re-optimizations should
    // become rare thanks to the §8(ii)-style damping of the trigger.
    let q = QuerySchema::chain3();
    let run = |damped: bool| {
        let mut config = test_config();
        config.reopt_interval = ReoptInterval::Tuples(100);
        // Simulate "no damping" by an enormous p so drift always re-triggers?
        // No — compare damped default against p = 0 (always re-run).
        if !damped {
            config.p_threshold = 0.0;
        }
        let mut e = AdaptiveJoinEngine::with_config(q.clone(), PlanOrders::identity(&q), config);
        // Steady repetitive workload.
        let mut ts = 0u64;
        for round in 0..2000i64 {
            for (rel, vals) in [
                (0u16, vec![round % 7]),
                (1, vec![round % 7, round % 5]),
                (2, vec![round % 5]),
            ] {
                e.process(&Update {
                    op: Op::Insert,
                    rel: RelId(rel),
                    data: TupleData::ints(&vals),
                    ts,
                });
                ts += 1;
                if round >= 15 {
                    e.process(&Update {
                        op: Op::Delete,
                        rel: RelId(rel),
                        data: TupleData::ints(&vals),
                        ts,
                    });
                    ts += 1;
                }
            }
        }
        e.counters().reoptimizations
    };
    let damped = run(true);
    let undamped = run(false);
    assert!(
        damped < undamped,
        "damped {damped} should re-optimize less than undamped {undamped}"
    );
}

#[test]
fn adaptivity_event_log_records_selections_and_demotions() {
    use acq::AdaptivityEvent;
    let q = QuerySchema::chain3();
    let mut config = test_config();
    config.reopt_interval = ReoptInterval::Tuples(100);
    let mut engine = AdaptiveJoinEngine::with_config(q.clone(), PlanOrders::identity(&q), config);
    for u in &chain3_workload(1500, 202) {
        engine.process(u);
    }
    let events: Vec<AdaptivityEvent> = engine.drain_events();
    assert!(!events.is_empty(), "re-optimizations should be logged");
    assert!(events
        .iter()
        .any(|e| matches!(e, AdaptivityEvent::Selected { .. })));
    // Timestamps are nondecreasing.
    let stamps: Vec<u64> = events
        .iter()
        .map(|e| match e {
            AdaptivityEvent::Selected { at_ns, .. } => *at_ns,
            AdaptivityEvent::Demoted { at_ns, .. } => *at_ns,
            AdaptivityEvent::Reordered { at_ns } => *at_ns,
        })
        .collect();
    assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
    // Drained: the log is now empty.
    assert_eq!(engine.events().count(), 0);
}
