//! The Profiler (§4.3, Appendix A): online estimation of `d_ij`, `c_ij`,
//! stream rates, and cache miss probabilities.
//!
//! *"We maintain online estimates of `d_ij` and `c_ij` by tracking the
//! complete processing of a sample of tuples entering the i-th pipeline. For
//! each profiled tuple, we measure the number of tuples processed by each
//! join operator `./_ij` in the pipeline and the total time spent in
//! `./_ij`. We keep track of the last W measurements."* Profiled tuples
//! bypass caches in their pipeline so the full per-operator profile is
//! observable.
//!
//! `d_ij = rate(R_i) × sum(δ_j) / W` and `c_ij = sum(τ_j) / sum(δ_j)`.
//! Position `n−1` (one past the last operator) records pipeline *output*
//! counts, giving `d_{i,k+1}` for segments ending at the pipeline tail.

use acq_sketch::bloom::MissProbEstimator;
use acq_sketch::WindowStat;
use acq_stream::RelId;

/// Profiler configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProfilerConfig {
    /// Statistics window `W` (paper default 10).
    pub w: usize,
    /// Profile every k-th tuple entering a pipeline (deterministic sampling;
    /// the paper samples with probability `p_i` — a fixed stride keeps runs
    /// reproducible at the same expected overhead).
    pub profile_every: u64,
    /// Bloom observation window `W_d` (tuples per miss-prob observation).
    pub bloom_window: usize,
    /// Bloom bits-per-tuple multiplier `α ≥ 1`.
    pub bloom_alpha: usize,
}

impl Default for ProfilerConfig {
    fn default() -> ProfilerConfig {
        ProfilerConfig {
            w: 10,
            profile_every: 8,
            bloom_window: 600,
            bloom_alpha: 8,
        }
    }
}

/// Per-pipeline profile: a `WindowStat` pair per operator position, plus an
/// extra position for pipeline outputs.
#[derive(Debug)]
struct PipelineProfile {
    /// `δ_j`: tuples processed by position `j` per profiled input tuple.
    delta: Vec<WindowStat>,
    /// `τ_j`: virtual ns spent at position `j` per profiled input tuple.
    tau: Vec<WindowStat>,
    counter: u64,
}

impl PipelineProfile {
    fn new(num_ops: usize, w: usize) -> PipelineProfile {
        PipelineProfile {
            delta: (0..=num_ops).map(|_| WindowStat::new(w)).collect(),
            tau: (0..=num_ops).map(|_| WindowStat::new(w)).collect(),
            counter: 0,
        }
    }
}

/// The Profiler.
#[derive(Debug)]
pub struct Profiler {
    config: ProfilerConfig,
    pipelines: Vec<PipelineProfile>,
    update_counts: Vec<u64>,
    rates: Vec<f64>,
    epoch_start_ns: u64,
}

impl Profiler {
    /// `num_ops[i]` = operators in pipeline `i` (normally `n − 1` each).
    pub fn new(config: ProfilerConfig, num_ops: &[usize]) -> Profiler {
        Profiler {
            pipelines: num_ops
                .iter()
                .map(|&k| PipelineProfile::new(k, config.w))
                .collect(),
            update_counts: vec![0; num_ops.len()],
            rates: vec![0.0; num_ops.len()],
            epoch_start_ns: 0,
            config,
        }
    }

    /// Configuration in effect.
    pub fn config(&self) -> &ProfilerConfig {
        &self.config
    }

    /// Decide (and count) whether the next tuple entering pipeline `i` is
    /// profiled.
    pub fn should_profile(&mut self, i: RelId) -> bool {
        let p = &mut self.pipelines[i.0 as usize];
        let profiled = p.counter.is_multiple_of(self.config.profile_every);
        p.counter += 1;
        profiled
    }

    /// Record a profiled tuple's measurements: one `(tuples, ns)` pair per
    /// operator position, plus a final `(outputs, 0)` entry.
    pub fn record_profiled(&mut self, i: RelId, per_op: &[(f64, u64)]) {
        let p = &mut self.pipelines[i.0 as usize];
        assert_eq!(
            per_op.len(),
            p.delta.len(),
            "one entry per position + outputs"
        );
        for (j, &(tuples, ns)) in per_op.iter().enumerate() {
            p.delta[j].push(tuples);
            p.tau[j].push(ns as f64);
        }
    }

    /// Record one update arriving on `∆R_i` (rate estimation).
    pub fn record_update(&mut self, i: RelId) {
        self.update_counts[i.0 as usize] += 1;
    }

    /// Close the rate epoch at virtual time `now_ns`, refreshing
    /// `rate(R_i)` estimates.
    pub fn roll_rates(&mut self, now_ns: u64) {
        let span = ((now_ns.saturating_sub(self.epoch_start_ns)) as f64 / 1e9).max(1e-9);
        for (r, c) in self.rates.iter_mut().zip(self.update_counts.iter_mut()) {
            *r = *c as f64 / span;
            *c = 0;
        }
        self.epoch_start_ns = now_ns;
    }

    /// Current `rate(R_i)` (updates per virtual second).
    pub fn rate(&self, i: RelId) -> f64 {
        self.rates[i.0 as usize]
    }

    /// `d_ij`: tuples per unit time processed by operator `j` of pipeline
    /// `i`. Position `num_ops` gives the pipeline output rate (`d_{i,n}`).
    pub fn d(&self, i: RelId, j: usize) -> f64 {
        let p = &self.pipelines[i.0 as usize];
        self.rates[i.0 as usize] * p.delta[j].average_or(if j == 0 { 1.0 } else { 0.0 })
    }

    /// `c_ij`: ns per tuple at operator `j` of pipeline `i`
    /// (`sum(τ_j)/sum(δ_j)`, Appendix A).
    pub fn c(&self, i: RelId, j: usize) -> f64 {
        let p = &self.pipelines[i.0 as usize];
        let d = p.delta[j].sum();
        if d <= 0.0 {
            0.0
        } else {
            p.tau[j].sum() / d
        }
    }

    /// `d_ij · c_ij`, the unit-time processing cost of one operator.
    pub fn op_proc(&self, i: RelId, j: usize) -> f64 {
        self.d(i, j) * self.c(i, j)
    }

    /// Are all per-operator windows of pipeline `i` warm (≥ W observations,
    /// §4.5 step 2)?
    pub fn pipeline_warm(&self, i: RelId) -> bool {
        let p = &self.pipelines[i.0 as usize];
        p.delta.iter().all(WindowStat::is_warm)
    }

    /// Fraction of pipelines whose windows are warm.
    pub fn warm_fraction(&self) -> f64 {
        if self.pipelines.is_empty() {
            return 1.0;
        }
        let warm = (0..self.pipelines.len() as u16)
            .filter(|&i| self.pipeline_warm(RelId(i)))
            .count();
        warm as f64 / self.pipelines.len() as f64
    }

    /// Reset pipeline `i`'s statistics (after reordering, §4.5 step 5).
    pub fn reset_pipeline(&mut self, i: RelId, num_ops: usize) {
        self.pipelines[i.0 as usize] = PipelineProfile::new(num_ops, self.config.w);
    }

    /// A fresh miss-probability estimator for one candidate.
    pub fn new_miss_estimator(&self) -> MissProbEstimator {
        MissProbEstimator::new(self.config.bloom_window, self.config.bloom_alpha)
    }

    /// Emit the profiler's current estimates into a snapshot.
    ///
    /// Per pipeline `i`: `profiler.rate` (gauge, updates per virtual second
    /// — extensive, sums across shards) and `profiler.warm` (ratio of warm
    /// pipelines). Per position `j`: `profiler.d` (the paper's `d_ij`, as a
    /// ratio over the shard count so a cross-shard merge averages it) and
    /// `profiler.c` (the paper's `c_ij = Σd_j / Σδ_j`, merged component-wise
    /// so the quotient stays a properly weighted per-tuple cost).
    pub fn snapshot_into(&self, s: &mut acq_telemetry::TelemetrySnapshot) {
        let mut warm = 0u64;
        for (i, p) in self.pipelines.iter().enumerate() {
            let rel = RelId(i as u16);
            let pl = i.to_string();
            s.gauge("profiler.rate", &[("pipeline", &pl)], self.rates[i]);
            if self.pipeline_warm(rel) {
                warm += 1;
            }
            for j in 0..p.delta.len() {
                let pos = j.to_string();
                let labels: [(&str, &str); 2] = [("pipeline", &pl), ("pos", &pos)];
                s.ratio("profiler.d", &labels, self.d(rel, j), 1.0);
                s.ratio("profiler.c", &labels, p.tau[j].sum(), p.delta[j].sum());
            }
        }
        s.ratio("profiler.warm", &[], warm as f64, self.pipelines.len() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiler() -> Profiler {
        Profiler::new(ProfilerConfig::default(), &[2, 2, 2])
    }

    #[test]
    fn stride_sampling() {
        let mut p = Profiler::new(
            ProfilerConfig {
                profile_every: 4,
                ..Default::default()
            },
            &[2],
        );
        let profiled: Vec<bool> = (0..8).map(|_| p.should_profile(RelId(0))).collect();
        assert_eq!(
            profiled,
            vec![true, false, false, false, true, false, false, false]
        );
    }

    #[test]
    fn d_and_c_from_profiles() {
        let mut p = profiler();
        // 100 updates in 1 virtual second → rate 100/s.
        for _ in 0..100 {
            p.record_update(RelId(0));
        }
        p.roll_rates(1_000_000_000);
        assert!((p.rate(RelId(0)) - 100.0).abs() < 1e-9);
        // Profiled tuples: op0 sees 1 tuple costing 500ns, fanning out to 3;
        // op1 sees 3 tuples costing 300ns total; 6 outputs.
        for _ in 0..10 {
            p.record_profiled(RelId(0), &[(1.0, 500), (3.0, 300), (6.0, 0)]);
        }
        assert!((p.d(RelId(0), 0) - 100.0).abs() < 1e-9);
        assert!((p.d(RelId(0), 1) - 300.0).abs() < 1e-9);
        assert!((p.d(RelId(0), 2) - 600.0).abs() < 1e-9, "output rate");
        assert!((p.c(RelId(0), 0) - 500.0).abs() < 1e-9);
        assert!((p.c(RelId(0), 1) - 100.0).abs() < 1e-9);
        assert!((p.op_proc(RelId(0), 1) - 300.0 * 100.0).abs() < 1e-6);
    }

    #[test]
    fn warmness_requires_w_observations() {
        let mut p = profiler();
        assert!(!p.pipeline_warm(RelId(0)));
        for _ in 0..9 {
            p.record_profiled(RelId(0), &[(1.0, 10), (1.0, 10), (1.0, 0)]);
        }
        assert!(!p.pipeline_warm(RelId(0)), "9 < W = 10");
        p.record_profiled(RelId(0), &[(1.0, 10), (1.0, 10), (1.0, 0)]);
        assert!(p.pipeline_warm(RelId(0)));
        assert!((p.warm_fraction() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn rates_roll_per_epoch() {
        let mut p = profiler();
        for _ in 0..50 {
            p.record_update(RelId(1));
        }
        p.roll_rates(500_000_000); // 0.5s → 100/s
        assert!((p.rate(RelId(1)) - 100.0).abs() < 1e-9);
        p.roll_rates(1_000_000_000); // no new updates → 0
        assert_eq!(p.rate(RelId(1)), 0.0);
    }

    #[test]
    fn reset_pipeline_clears_windows() {
        let mut p = profiler();
        for _ in 0..10 {
            p.record_profiled(RelId(2), &[(1.0, 10), (2.0, 10), (2.0, 0)]);
        }
        assert!(p.pipeline_warm(RelId(2)));
        p.reset_pipeline(RelId(2), 2);
        assert!(!p.pipeline_warm(RelId(2)));
        assert_eq!(p.d(RelId(2), 1), 0.0);
    }

    #[test]
    fn windowed_estimates_track_recent_behaviour() {
        let mut p = profiler();
        for _ in 0..100 {
            p.record_update(RelId(0));
        }
        p.roll_rates(1_000_000_000);
        // Old regime: fanout 10. New regime: fanout 1. After W new
        // observations the estimate must reflect only the new regime.
        for _ in 0..10 {
            p.record_profiled(RelId(0), &[(1.0, 100), (10.0, 1000), (10.0, 0)]);
        }
        assert!((p.d(RelId(0), 1) - 1000.0).abs() < 1e-6);
        for _ in 0..10 {
            p.record_profiled(RelId(0), &[(1.0, 100), (1.0, 100), (1.0, 0)]);
        }
        assert!((p.d(RelId(0), 1) - 100.0).abs() < 1e-6);
    }
}
