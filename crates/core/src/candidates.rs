//! Candidate-cache enumeration.
//!
//! A cache `C_ijk` corresponds to a contiguous segment `./_ij … ./_ik` of
//! `∆R_i`'s pipeline (§3.2). *Candidate* caches are those whose segment
//! satisfies the **prefix invariant** (Definition 3.2): every segment
//! relation's own pipeline joins the other segment relations first, so all
//! updates to the cached subresult are computed as a by-product of regular
//! join processing.
//!
//! §6 relaxes this with **globally-consistent caches** `X ⋉ Y`: the cached
//! segment `X` need not satisfy the prefix invariant as long as `X ∪ Y`
//! does; we generate the always-valid family `X ∪ Y = {R_1, …, R_n}`
//! (maintained from full pipeline outputs), quota-bounded per the paper's
//! `m`-candidate budget.
//!
//! Two candidates are **shared** (Definition 4.1) when they cache the same
//! relation set with the same cache key (same crossing equivalence classes) —
//! they can then be backed by one physical store whose maintenance cost is
//! paid once.

use acq_mjoin::plan::PlanOrders;
use acq_sketch::FxHashMap;
use acq_stream::schema::EquivClassId;
use acq_stream::{AttrRef, QuerySchema, RelId};

/// One candidate cache.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Pipeline hosting the CacheLookup (`∆R_i`).
    pub pipeline: RelId,
    /// First covered operator position in the pipeline order (the paper's
    /// `j`, 0-based).
    pub start: usize,
    /// Last covered operator position (the paper's `k`, inclusive).
    pub end: usize,
    /// Relations cached (`X = {R_ij, …, R_ik}`), sorted.
    pub segment: Vec<RelId>,
    /// Relations joined before the segment (`R_i, R_i1, …`), in pipeline
    /// order.
    pub prefix: Vec<RelId>,
    /// The cache key `K_ijk` as canonical crossing equivalence classes.
    pub key_classes: Vec<EquivClassId>,
    /// Key representatives on the prefix side (probing).
    pub probe_attrs: Vec<AttrRef>,
    /// Key representatives on the segment side (maintenance).
    pub maint_attrs: Vec<AttrRef>,
    /// Witness set `Y` for globally-consistent caches; empty for plain
    /// prefix-invariant caches.
    pub witness: Vec<RelId>,
    /// Shared-cache group (Definition 4.1); group ids are dense.
    pub group: usize,
}

impl Candidate {
    /// Number of join operators the cache bypasses.
    pub fn span_len(&self) -> usize {
        self.end - self.start + 1
    }

    /// Does this candidate cover pipeline operator position `pos`?
    pub fn covers(&self, pos: usize) -> bool {
        pos >= self.start && pos <= self.end
    }

    /// Do two candidates in the *same pipeline* overlap (share an operator)?
    pub fn overlaps(&self, other: &Candidate) -> bool {
        self.pipeline == other.pipeline && self.start <= other.end && other.start <= self.end
    }

    /// Is this a globally-consistent (semijoin) cache?
    pub fn is_global(&self) -> bool {
        !self.witness.is_empty()
    }

    /// Human-readable name, e.g. `C[∆R6: R1⋈R2 @0..1]`.
    pub fn name(&self) -> String {
        let seg: Vec<String> = self.segment.iter().map(|r| format!("R{}", r.0)).collect();
        let tag = if self.is_global() { "⋉" } else { "" };
        format!(
            "C[∆R{}: {}{} @{}..{}]",
            self.pipeline.0,
            seg.join("⋈"),
            tag,
            self.start,
            self.end
        )
    }
}

/// Enumeration options.
#[derive(Debug, Clone)]
pub struct EnumerationConfig {
    /// Minimum segment length in operators (the paper's candidates span at
    /// least one join; segments of a single operator merely memoize an index
    /// probe, so the default is 2).
    pub min_segment_ops: usize,
    /// Generate globally-consistent candidates when fewer than
    /// `max_candidates` plain candidates exist (§6: the paper's `m`).
    pub enable_global: bool,
    /// The §6 quota `m`: total candidates considered when global caches are
    /// in play.
    pub max_candidates: usize,
}

impl Default for EnumerationConfig {
    fn default() -> EnumerationConfig {
        EnumerationConfig {
            min_segment_ops: 2,
            enable_global: false,
            max_candidates: 6,
        }
    }
}

/// Does `set` satisfy the prefix invariant under `orders` (Definition 3.2)?
/// For every `R_l ∈ set`, the first `|set| − 1` operators of `∆R_l`'s
/// pipeline must join exactly the other members of `set`.
pub fn is_prefix_set(orders: &PlanOrders, set: &[RelId]) -> bool {
    let s = set.len();
    if s < 1 {
        return false;
    }
    set.iter().all(|&l| {
        let order = &orders.pipeline(l).order;
        if order.len() < s - 1 {
            return false;
        }
        let mut head: Vec<RelId> = order[..s - 1].to_vec();
        head.sort_unstable();
        let mut others: Vec<RelId> = set.iter().copied().filter(|&r| r != l).collect();
        others.sort_unstable();
        head == others
    })
}

/// Enumerate all candidate caches for the current pipeline orders.
///
/// Plain candidates come first; globally-consistent candidates (if enabled
/// and the plain count is below the quota) follow, ordered by decreasing
/// segment size (the paper starts with `X` = all but one relation). Group ids
/// are assigned per Definition 4.1.
pub fn enumerate_candidates(
    query: &QuerySchema,
    orders: &PlanOrders,
    config: &EnumerationConfig,
) -> Vec<Candidate> {
    let n = query.num_relations();
    let mut out: Vec<Candidate> = Vec::new();

    for p in &orders.pipelines {
        let order = &p.order;
        for start in 0..order.len() {
            for end in start..order.len() {
                if end - start + 1 < config.min_segment_ops {
                    continue;
                }
                let mut segment: Vec<RelId> = order[start..=end].to_vec();
                segment.sort_unstable();
                if !is_prefix_set(orders, &segment) {
                    continue;
                }
                if let Some(c) = build_candidate(query, p.stream, order, start, end, Vec::new()) {
                    out.push(c);
                }
            }
        }
    }

    if config.enable_global && out.len() < config.max_candidates {
        let mut quota = config.max_candidates - out.len();
        // X = all-but-one first, then all-but-two, … (paper §6): iterate by
        // decreasing segment length.
        'outer: for seg_len in (config.min_segment_ops..n).rev() {
            for p in &orders.pipelines {
                let order = &p.order;
                for start in 0..order.len() {
                    let end = start + seg_len - 1;
                    if end >= order.len() {
                        continue;
                    }
                    let mut segment: Vec<RelId> = order[start..=end].to_vec();
                    segment.sort_unstable();
                    if is_prefix_set(orders, &segment) {
                        continue; // already a plain candidate
                    }
                    let witness: Vec<RelId> =
                        query.rel_ids().filter(|r| !segment.contains(r)).collect();
                    if let Some(c) = build_candidate(query, p.stream, order, start, end, witness) {
                        out.push(c);
                        quota -= 1;
                        if quota == 0 {
                            break 'outer;
                        }
                    }
                }
            }
        }
    }

    assign_groups(&mut out);
    out
}

/// Construct one candidate, computing key classes and representatives.
/// Returns `None` when the key has no prefix-side representative (cannot
/// happen for crossing classes, kept defensive).
fn build_candidate(
    query: &QuerySchema,
    stream: RelId,
    order: &[RelId],
    start: usize,
    end: usize,
    witness: Vec<RelId>,
) -> Option<Candidate> {
    let mut prefix = Vec::with_capacity(start + 1);
    prefix.push(stream);
    prefix.extend_from_slice(&order[..start]);
    let mut segment: Vec<RelId> = order[start..=end].to_vec();
    segment.sort_unstable();
    let key_classes = query.crossing_classes(&prefix, &segment);
    let probe_attrs = query.class_representatives(&key_classes, &prefix)?;
    let maint_attrs = query.class_representatives(&key_classes, &segment)?;
    Some(Candidate {
        pipeline: stream,
        start,
        end,
        segment,
        prefix,
        key_classes,
        probe_attrs,
        maint_attrs,
        witness,
        group: usize::MAX,
    })
}

/// Assign shared-cache group ids (Definition 4.1): same segment relation
/// set + same key classes (+ same witness set for global caches).
fn assign_groups(candidates: &mut [Candidate]) {
    /// Sharing signature: (segment, key classes, witness set).
    type GroupSig = (Vec<RelId>, Vec<EquivClassId>, Vec<RelId>);
    let mut groups: FxHashMap<GroupSig, usize> = FxHashMap::default();
    for c in candidates.iter_mut() {
        let mut witness = c.witness.clone();
        witness.sort_unstable();
        let sig = (c.segment.clone(), c.key_classes.clone(), witness);
        let next = groups.len();
        c.group = *groups.entry(sig).or_insert(next);
    }
}

/// Number of distinct shared groups among candidates.
pub fn num_groups(candidates: &[Candidate]) -> usize {
    candidates.iter().map(|c| c.group + 1).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acq_mjoin::plan::PipelineOrder;

    /// The Figure 5(a) plan for the 6-way star equijoin.
    fn fig5a() -> (QuerySchema, PlanOrders) {
        let q = QuerySchema::star(6);
        let o = |s: u16, v: [u16; 5]| PipelineOrder {
            stream: RelId(s),
            order: v.into_iter().map(RelId).collect(),
        };
        let orders = PlanOrders::new(vec![
            o(0, [1, 2, 3, 4, 5]), // ∆R1: R2,R3,R4,R5,R6
            o(1, [0, 2, 4, 3, 5]), // ∆R2: R1,R3,R5,R4,R6
            o(2, [1, 0, 3, 4, 5]), // ∆R3: R2,R1,R4,R5,R6
            o(3, [4, 0, 1, 2, 5]), // ∆R4: R5,R1,R2,R3,R6
            o(4, [3, 1, 2, 0, 5]), // ∆R5: R4,R2,R3,R1,R6
            o(5, [1, 0, 3, 4, 2]), // ∆R6: R2,R1,R4,R5,R3
        ]);
        orders.validate(&q).unwrap();
        (q, orders)
    }

    fn rels(v: &[u16]) -> Vec<RelId> {
        v.iter().map(|&r| RelId(r)).collect()
    }

    #[test]
    fn paper_example_4_1_prefix_sets() {
        let (_, orders) = fig5a();
        assert!(is_prefix_set(&orders, &rels(&[0, 1]))); // {R1,R2}
        assert!(is_prefix_set(&orders, &rels(&[3, 4]))); // {R4,R5}
        assert!(is_prefix_set(&orders, &rels(&[0, 1, 2]))); // {R1,R2,R3}
        assert!(is_prefix_set(&orders, &rels(&[0, 1, 2, 3, 4]))); // {R1..R5}
                                                                  // Non-prefix sets.
        assert!(!is_prefix_set(&orders, &rels(&[1, 2]))); // {R2,R3}
        assert!(!is_prefix_set(&orders, &rels(&[0, 2])));
        assert!(!is_prefix_set(&orders, &rels(&[0, 1, 2, 3])));
    }

    #[test]
    fn paper_example_4_1_candidates_per_pipeline() {
        let (q, orders) = fig5a();
        let cands = enumerate_candidates(&q, &orders, &EnumerationConfig::default());
        let per_pipeline = |p: u16| -> Vec<&Candidate> {
            cands.iter().filter(|c| c.pipeline == RelId(p)).collect()
        };
        // "there are two candidate caches in ∆R4's pipeline — one for the
        // R1,R2 segment and one for the overlapping R1,R2,R3 segment"
        let r4 = per_pipeline(3);
        assert_eq!(r4.len(), 2);
        assert!(r4.iter().any(|c| c.segment == rels(&[0, 1])));
        assert!(r4.iter().any(|c| c.segment == rels(&[0, 1, 2])));
        // "there are three candidate caches in ∆R6's pipeline"
        let r6 = per_pipeline(5);
        assert_eq!(r6.len(), 3);
        assert!(r6.iter().any(|c| c.segment == rels(&[0, 1])));
        assert!(r6.iter().any(|c| c.segment == rels(&[3, 4])));
        assert!(r6.iter().any(|c| c.segment == rels(&[0, 1, 2, 3, 4])));
    }

    #[test]
    fn paper_example_4_2_shared_groups() {
        let (q, orders) = fig5a();
        let cands = enumerate_candidates(&q, &orders, &EnumerationConfig::default());
        // {R1,R2} cached in ∆R3, ∆R4, ∆R6 (plus nowhere else) share a group.
        let g_r1r2: Vec<&Candidate> = cands
            .iter()
            .filter(|c| c.segment == rels(&[0, 1]))
            .collect();
        let pipelines: Vec<u16> = g_r1r2.iter().map(|c| c.pipeline.0).collect();
        assert_eq!(pipelines.len(), 3);
        assert!(pipelines.contains(&2) && pipelines.contains(&3) && pipelines.contains(&5));
        let group = g_r1r2[0].group;
        assert!(g_r1r2.iter().all(|c| c.group == group), "one shared group");
        // {R1,R2,R3} shared in ∆R4 and ∆R5.
        let g3: Vec<&Candidate> = cands
            .iter()
            .filter(|c| c.segment == rels(&[0, 1, 2]))
            .collect();
        assert_eq!(g3.len(), 2);
        let ps: Vec<u16> = g3.iter().map(|c| c.pipeline.0).collect();
        assert!(ps.contains(&3) && ps.contains(&4));
        assert_eq!(g3[0].group, g3[1].group);
        // Distinct segments → distinct groups.
        assert_ne!(group, g3[0].group);
    }

    #[test]
    fn group_count_fig5a() {
        let (q, orders) = fig5a();
        let cands = enumerate_candidates(&q, &orders, &EnumerationConfig::default());
        // Segments: {R1,R2} ×3, {R4,R5} ×4 (∆R1,∆R2,∆R3,∆R6), {R1,R2,R3} ×2,
        // {R1..R5} ×1 → 10 candidates in 4 groups.
        assert_eq!(cands.len(), 10);
        assert_eq!(num_groups(&cands), 4);
    }

    #[test]
    fn prefix_and_key_computed() {
        let (q, orders) = fig5a();
        let cands = enumerate_candidates(&q, &orders, &EnumerationConfig::default());
        let c = cands
            .iter()
            .find(|c| c.pipeline == RelId(3) && c.segment == rels(&[0, 1]))
            .unwrap();
        // ∆R4 order is [R5, R1, R2, R3, R6] → segment at positions 1..2,
        // prefix = [R4, R5].
        assert_eq!(c.start, 1);
        assert_eq!(c.end, 2);
        assert_eq!(c.prefix, rels(&[3, 4]));
        assert_eq!(c.key_classes.len(), 1, "single equivalence class A");
        assert_eq!(c.probe_attrs.len(), 1);
        assert_eq!(c.maint_attrs.len(), 1);
        assert!(c.probe_attrs[0].rel == RelId(3) || c.probe_attrs[0].rel == RelId(4));
        assert!(c.segment.contains(&c.maint_attrs[0].rel));
        assert!(!c.is_global());
        assert_eq!(c.span_len(), 2);
        assert!(c.covers(1) && c.covers(2) && !c.covers(0) && !c.covers(3));
    }

    #[test]
    fn chain3_candidate_is_figure3() {
        // R ⋈ S ⋈ T with orders matching Figure 3: ∆R1: [S, T]; ∆S: [T, R]?
        // Figure 3's pipelines: ∆R1 joins R2 then R3; ∆R2 joins R3 then R1;
        // ∆R3 joins R2 then R1. The R2⋈R3 segment in ∆R1's pipeline is a
        // candidate (Example 3.4); the R2,R1 segment in ∆R3's is not.
        let q = QuerySchema::chain3();
        let orders = PlanOrders::new(vec![
            PipelineOrder {
                stream: RelId(0),
                order: rels(&[1, 2]),
            },
            PipelineOrder {
                stream: RelId(1),
                order: rels(&[2, 0]),
            },
            PipelineOrder {
                stream: RelId(2),
                order: rels(&[1, 0]),
            },
        ]);
        let cands = enumerate_candidates(&q, &orders, &EnumerationConfig::default());
        assert_eq!(cands.len(), 1);
        let c = &cands[0];
        assert_eq!(c.pipeline, RelId(0));
        assert_eq!(c.segment, rels(&[1, 2]));
        // Key = the A class (R1.A = R2.A crossing the boundary).
        assert_eq!(c.key_classes.len(), 1);
        assert_eq!(c.probe_attrs[0], AttrRef::new(0, 0));
    }

    #[test]
    fn global_candidates_fill_quota() {
        let q = QuerySchema::chain3();
        // Orders under which NO plain candidate exists:
        // ∆R1: [T, S] (T⋈S? {T,S} needs ∆S first op = T: we set ∆S: [R, T]).
        let orders = PlanOrders::new(vec![
            PipelineOrder {
                stream: RelId(0),
                order: rels(&[2, 1]),
            },
            PipelineOrder {
                stream: RelId(1),
                order: rels(&[0, 2]),
            },
            PipelineOrder {
                stream: RelId(2),
                order: rels(&[1, 0]),
            },
        ]);
        let plain = enumerate_candidates(&q, &orders, &EnumerationConfig::default());
        assert!(
            plain.is_empty(),
            "no prefix sets by construction: {plain:?}"
        );
        let cfg = EnumerationConfig {
            enable_global: true,
            max_candidates: 6,
            ..Default::default()
        };
        let with_gc = enumerate_candidates(&q, &orders, &cfg);
        assert!(!with_gc.is_empty());
        assert!(with_gc.len() <= 6);
        for c in &with_gc {
            assert!(c.is_global());
            // Witness = complement of segment.
            let mut all: Vec<RelId> = c
                .segment
                .iter()
                .copied()
                .chain(c.witness.iter().copied())
                .collect();
            all.sort_unstable();
            assert_eq!(all, rels(&[0, 1, 2]));
            assert!(c.name().contains('⋉'));
        }
    }

    #[test]
    fn global_quota_respected() {
        // §6: with p plain candidates and quota m, globally-consistent
        // candidates are added only when p < m, and only m − p of them.
        let q = QuerySchema::star(5);
        let orders = PlanOrders::identity(&q);
        let plain = enumerate_candidates(&q, &orders, &EnumerationConfig::default());
        let p = plain.len();
        let m = 4usize;
        let cfg = EnumerationConfig {
            enable_global: true,
            max_candidates: m,
            ..Default::default()
        };
        let cands = enumerate_candidates(&q, &orders, &cfg);
        let gc = cands.iter().filter(|c| c.is_global()).count();
        assert_eq!(cands.len() - gc, p, "plain candidates unchanged");
        if p >= m {
            assert_eq!(gc, 0, "p ≥ m: ignore globally-consistent caches");
        } else {
            assert!(gc <= m - p, "gc quota exceeded: {gc} > {m} - {p}");
        }
        // And with a generous quota, GC candidates do appear.
        let cfg_big = EnumerationConfig {
            enable_global: true,
            max_candidates: p + 3,
            ..Default::default()
        };
        let with_gc = enumerate_candidates(&q, &orders, &cfg_big);
        assert_eq!(with_gc.iter().filter(|c| c.is_global()).count(), 3);
    }

    #[test]
    fn identity_star_has_prefix_pairs() {
        // Identity orders on star(4): ∆R1: [R2,R3,R4], ∆R2: [R1,R3,R4], ….
        // {R1,R2} is a prefix set (each starts with the other).
        let q = QuerySchema::star(4);
        let orders = PlanOrders::identity(&q);
        assert!(is_prefix_set(&orders, &rels(&[0, 1])));
        assert!(
            !is_prefix_set(&orders, &rels(&[2, 3])),
            "∆R3 starts with R1"
        );
        let cands = enumerate_candidates(&q, &orders, &EnumerationConfig::default());
        assert!(cands.iter().any(|c| c.segment == rels(&[0, 1])));
    }

    #[test]
    fn overlap_detection() {
        let (q, orders) = fig5a();
        let cands = enumerate_candidates(&q, &orders, &EnumerationConfig::default());
        let r4: Vec<&Candidate> = cands.iter().filter(|c| c.pipeline == RelId(3)).collect();
        assert!(r4[0].overlaps(r4[1]), "R1R2 and R1R2R3 overlap in ∆R4");
        let r6_pair: Vec<&Candidate> = cands
            .iter()
            .filter(|c| {
                c.pipeline == RelId(5) && (c.segment == rels(&[0, 1]) || c.segment == rels(&[3, 4]))
            })
            .collect();
        assert!(!r6_pair[0].overlaps(r6_pair[1]), "disjoint segments in ∆R6");
        // Same segment, different pipelines: never "overlapping".
        let shared: Vec<&Candidate> = cands
            .iter()
            .filter(|c| c.segment == rels(&[0, 1]))
            .collect();
        assert!(!shared[0].overlaps(shared[1]));
    }
}
