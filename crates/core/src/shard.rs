//! Sharded parallel execution of the A-Caching engine.
//!
//! The paper's engine (§3.1) is a strictly single-threaded event loop:
//! every update, across all streams, is processed to completion in global
//! arrival order. [`ShardedEngine`] scales that loop across cores by
//! **partitioning the update stream on one join-attribute equivalence
//! class** over `N` independent [`AdaptiveJoinEngine`] shards, executed by
//! the persistent worker runtime ([`crate::runtime`]):
//!
//! * A **partition class** is chosen (automatically: the equivalence class
//!   whose member attributes span the most relations). Every relation with
//!   an attribute in that class is *routed*: each of its updates goes to
//!   the single shard owning that attribute's value. Relations without
//!   such an attribute are *broadcast* to every shard.
//! * Shard ownership of a partition-class value is assigned by a
//!   **balancing directory**: the first insert of a value sends it to the
//!   least-loaded shard (load = the shard's virtual cost clock, refreshed
//!   every batch, plus an estimate for updates routed since), and the
//!   assignment is pinned in a directory until the value's live tuple
//!   count returns to zero. Deletes follow the directory, so windows
//!   shrink in the shard they grew in. Compared to PR 1's stateless
//!   `hash(v) % N`, this evens out key-popularity skew instead of freezing
//!   it into the shard assignment.
//! * Each shard runs the full adaptive machinery (profiler, re-optimizer,
//!   cache stores) over its substream on a **long-lived worker thread**
//!   that owns the shard's engine; batches stream through lock-free SPSC
//!   rings and results merge incrementally while routing is still in
//!   progress (see [`crate::runtime`] for the pipeline and its safety
//!   protocol). Batches under `INLINE_BATCH` updates run inline on the
//!   caller — thread hand-off costs more than it buys for a handful of
//!   updates.
//! * Output deltas are merged back into **global arrival order** by batch
//!   index; within one update's delta group the results are put in
//!   canonical row order ([`canonicalize_group`]), making the merged
//!   output a pure function of the input batch — bit-identical across
//!   runs, shard counts, and thread schedules.
//!
//! **Correctness.** All attributes of the partition class are transitively
//! equated by equijoin predicates, so every n-way result binds them to one
//! common value `v` (NULL joins nothing). The tuples of routed relations
//! participating in that result live only in the shard the directory
//! assigned to `v`, hence each result delta materializes in *exactly one*
//! shard: no result is lost (the probing update reaches that shard —
//! directly if routed, by broadcast otherwise) and none is duplicated (any
//! other shard lacks the routed tuples). A directory entry is only evicted
//! once its live count hits zero — at which point no routed tuple bound to
//! `v` remains in any shard — so a value reassigned after eviction starts
//! from empty state everywhere.
//!
//! **Failure containment.** A panic inside a shard worker no longer aborts
//! the process: the worker catches it, poisons only its own shard, and the
//! engine surfaces a typed [`ShardPanic`] (shard id + last telemetry
//! snapshot) from the `try_*` methods while the remaining shards drain
//! cleanly and stay inspectable.

use crate::engine::{AdaptiveJoinEngine, EngineConfig, EngineCounters};
use crate::runtime::{Dispatch, ShardRuntime};
pub use crate::runtime::ShardPanic;
use acq_mjoin::clock::ClockAggregate;
use acq_mjoin::plan::PlanOrders;
use acq_stream::{AttrRef, ColId, Composite, EquivClassId, Op, QuerySchema, RelId, Update};
use acq_telemetry::{FieldValue, TelemetrySnapshot};
use std::collections::HashMap;
use std::hash::BuildHasherDefault;

/// Below this batch size the shards run inline on the calling thread —
/// thread hand-off costs more than it buys for a handful of updates.
const INLINE_BATCH: usize = 32;

/// Sharding configuration.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of engine shards (≥ 1).
    pub num_shards: usize,
    /// Partition class; `None` selects the class spanning the most
    /// relations (ties toward the lower class id).
    pub partition_class: Option<EquivClassId>,
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig {
            num_shards: 4,
            partition_class: None,
        }
    }
}

/// Routing counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoutingStats {
    /// Updates routed to a single shard.
    pub routed: u64,
    /// Updates broadcast to every shard (relations outside the partition
    /// class).
    pub broadcast: u64,
}

/// Pick the partition class covering the most relations (ties toward the
/// lower class id). `None` when the query has no join predicates at all.
pub fn auto_partition_class(query: &QuerySchema) -> Option<EquivClassId> {
    let mut best: Option<(EquivClassId, usize)> = None;
    for c in 0..query.num_equiv_classes() {
        let cls = EquivClassId(c);
        let cover = query
            .rel_ids()
            .filter(|&r| partition_col(query, r, cls).is_some())
            .count();
        if best.is_none_or(|(_, bc)| cover > bc) {
            best = Some((cls, cover));
        }
    }
    best.map(|(cls, _)| cls)
}

/// First column of relation `r` belonging to equivalence class `cls`.
fn partition_col(query: &QuerySchema, r: RelId, cls: EquivClassId) -> Option<ColId> {
    (0..query.relation(r).arity() as u16)
        .map(ColId)
        .find(|&c| query.equiv_class(AttrRef { rel: r, col: c }) == Some(cls))
}

/// Mixed 64-bit identity of one partition-class value. FxHash's low bits
/// are weak; the finalization mix spreads them before the directory (and,
/// in the reference executor, `% num_shards`) looks at them.
fn partition_key(u: &Update, col: ColId) -> u64 {
    use std::hash::Hasher;
    let mut h = acq_sketch::FxHasher::default();
    // NULL partition values key like any other value: the tuple joins
    // nothing (join_eq is false for NULL), so *which* shard stores it is
    // irrelevant — only that its insert and delete agree.
    u.data.get(col.0).hash_into(&mut h);
    let mut x = h.finish();
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x
}

/// Pass-through hasher for the directory: [`partition_key`] already
/// murmur-finalizes its output, so rehashing it would only add latency to
/// the per-update routing path.
#[derive(Debug, Default)]
struct KeyHasher(u64);

impl std::hash::Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("directory keys hash as u64");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

/// Directory record for one live partition-class value.
#[derive(Debug, Clone, Copy)]
struct DirEntry {
    /// Owning shard.
    shard: u32,
    /// Net live tuple count (inserts − deletes) under this value.
    live: u32,
}

enum Route {
    Shard(usize),
    Broadcast,
}

/// Load-balancing router: per-relation broadcast table plus the
/// value→shard directory.
#[derive(Debug)]
struct Router {
    /// `part_col[rel]` = column keyed on, or `None` to broadcast.
    part_col: Vec<Option<ColId>>,
    num_shards: usize,
    /// Live partition-value assignments (64-bit mixed key → entry; a hash
    /// collision merely colocates two values, which is always correct).
    directory: HashMap<u64, DirEntry, BuildHasherDefault<KeyHasher>>,
    /// Estimated virtual-ns load per shard: the shard clock at the last
    /// refresh plus `est_unit` per update routed since.
    load: Vec<u64>,
    /// Running estimate of virtual ns per routed update.
    est_unit: u64,
    /// Routed updates seen (denominator for `est_unit`).
    routed_seen: u64,
    /// Routed updates since the last [`Router::refresh_load`]; the caller
    /// re-anchors once this reaches [`REFRESH_EVERY`] (reading every shard
    /// clock per tiny batch would dominate the inline path).
    routed_since_refresh: u64,
}

/// Re-anchor router load estimates on the true shard clocks at the first
/// batch boundary after this many routed updates. Large batches refresh at
/// every boundary; small inline batches amortize the clock reads.
const REFRESH_EVERY: u64 = 64;

impl Router {
    fn new(query: &QuerySchema, cls: EquivClassId, num_shards: usize) -> Router {
        Router {
            part_col: query
                .rel_ids()
                .map(|r| partition_col(query, r, cls))
                .collect(),
            num_shards,
            directory: HashMap::default(),
            load: vec![0; num_shards],
            est_unit: 1,
            routed_seen: 0,
            routed_since_refresh: REFRESH_EVERY,
        }
    }

    /// Time to re-anchor on the shard clocks? (Deterministic: depends only
    /// on the routed-update count, and the clocks themselves are virtual.)
    fn needs_refresh(&self) -> bool {
        self.routed_since_refresh >= REFRESH_EVERY
    }

    /// Re-anchor per-shard load on the true virtual cost clocks (called at
    /// every batch boundary; clocks are deterministic, so routing is too).
    fn refresh_load(&mut self, clocks: impl Iterator<Item = u64>) {
        let mut sum = 0u64;
        for (slot, clock) in self.load.iter_mut().zip(clocks) {
            *slot = clock;
            sum += clock;
        }
        if let Some(unit) = sum.checked_div(self.routed_seen) {
            self.est_unit = unit.max(1);
        }
        self.routed_since_refresh = 0;
    }

    fn least_loaded(&self) -> usize {
        // Ties toward the lower shard id (min_by_key keeps the first min).
        self.load
            .iter()
            .enumerate()
            .min_by_key(|&(_, l)| *l)
            .map(|(i, _)| i)
            .expect("at least one shard")
    }

    fn route(&mut self, u: &Update) -> Route {
        let Some(col) = self.part_col[u.rel.0 as usize] else {
            return Route::Broadcast;
        };
        if self.num_shards == 1 {
            self.routed_seen += 1;
            return Route::Shard(0);
        }
        let key = partition_key(u, col);
        let shard = match u.op {
            Op::Insert => match self.directory.get_mut(&key) {
                Some(e) => {
                    e.live += 1;
                    e.shard as usize
                }
                None => {
                    let s = self.least_loaded();
                    self.directory.insert(
                        key,
                        DirEntry {
                            shard: s as u32,
                            live: 1,
                        },
                    );
                    s
                }
            },
            Op::Delete => match self.directory.get_mut(&key) {
                Some(e) => {
                    let s = e.shard as usize;
                    e.live = e.live.saturating_sub(1);
                    if e.live == 0 {
                        self.directory.remove(&key);
                    }
                    s
                }
                // A delete with no directory entry reverts nothing in any
                // shard; route it anywhere consistent.
                None => self.least_loaded(),
            },
        };
        self.load[shard] += self.est_unit;
        self.routed_seen += 1;
        self.routed_since_refresh += 1;
        Route::Shard(shard)
    }
}

/// Put one update's delta group into canonical row order (sorted by the
/// per-relation tuple data of each result). Both the sharded merge and any
/// single-engine output being compared against it must use this — engines
/// emit equal delta *multisets* per update, but their internal enumeration
/// order depends on store layout and adaptive plan state.
pub fn canonicalize_group(group: &mut [(Op, Composite)], num_relations: usize) {
    if group.len() > 1 {
        // Unstable sort: elements comparing equal have identical canonical
        // rows, so any relative order is the same canonical output.
        group.sort_unstable_by(|(_, a), (_, b)| cmp_canonical(a, b, num_relations));
    }
}

/// Lexicographic comparison of two composites' [`canonical_rows`] keys,
/// computed part-by-part so no key vectors (or `TupleData` clones) are
/// materialized — this runs on the hot batch path for every multi-row
/// delta group.
fn cmp_canonical(a: &Composite, b: &Composite, num_relations: usize) -> std::cmp::Ordering {
    for r in 0..num_relations as u16 {
        let pa = a.part(RelId(r)).map(|t| &t.data);
        let pb = b.part(RelId(r)).map(|t| &t.data);
        match pa.cmp(&pb) {
            std::cmp::Ordering::Equal => {}
            o => return o,
        }
    }
    std::cmp::Ordering::Equal
}

/// A partitioned parallel A-Caching executor: `N` independent
/// [`AdaptiveJoinEngine`]s on persistent worker threads behind a
/// deterministic balancing router and streaming merge.
#[derive(Debug)]
pub struct ShardedEngine {
    query: QuerySchema,
    runtime: ShardRuntime,
    router: Router,
    partition_class: EquivClassId,
    routing: RoutingStats,
}

impl ShardedEngine {
    /// Build with default engine settings and identity pipeline orders.
    pub fn new(query: QuerySchema, num_shards: usize) -> ShardedEngine {
        let orders = PlanOrders::identity(&query);
        ShardedEngine::with_config(
            query,
            orders,
            EngineConfig::default(),
            ShardConfig {
                num_shards,
                partition_class: None,
            },
        )
    }

    /// Build with explicit orders, per-shard engine configuration, and
    /// sharding configuration. Every shard gets an identical engine; they
    /// diverge only through the substreams they see. With more than one
    /// shard this spawns the persistent worker threads (reaped on drop).
    pub fn with_config(
        query: QuerySchema,
        orders: PlanOrders,
        config: EngineConfig,
        shard_cfg: ShardConfig,
    ) -> ShardedEngine {
        assert!(shard_cfg.num_shards >= 1, "need at least one shard");
        let partition_class = shard_cfg
            .partition_class
            .or_else(|| auto_partition_class(&query))
            .expect("query has no join predicates — nothing to partition on");
        let router = Router::new(&query, partition_class, shard_cfg.num_shards);
        assert!(
            router.part_col.iter().any(Option::is_some),
            "partition class covers no relation"
        );
        let engines = (0..shard_cfg.num_shards)
            .map(|_| AdaptiveJoinEngine::with_config(query.clone(), orders.clone(), config.clone()))
            .collect();
        ShardedEngine {
            query,
            runtime: ShardRuntime::new(engines),
            router,
            partition_class,
            routing: RoutingStats::default(),
        }
    }

    // ------------------------------------------------------------------
    // Accessors

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.runtime.num_shards()
    }

    /// The equivalence class the stream is partitioned on.
    pub fn partition_class(&self) -> EquivClassId {
        self.partition_class
    }

    /// Relations routed by broadcast (no attribute in the partition class).
    pub fn broadcast_relations(&self) -> Vec<RelId> {
        self.router
            .part_col
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(|(r, _)| RelId(r as u16))
            .collect()
    }

    /// Routing counters.
    pub fn routing_stats(&self) -> RoutingStats {
        self.routing
    }

    /// Run `f` against shard `i`'s engine. Engines live behind the worker
    /// runtime's per-shard locks (each is normally owned by its worker
    /// thread), so access is scoped to a closure instead of a borrow.
    pub fn with_shard<R>(&self, i: usize, f: impl FnOnce(&AdaptiveJoinEngine) -> R) -> R {
        f(&self.runtime.engine(i))
    }

    /// Indices of shards poisoned by a worker panic (normally empty).
    pub fn poisoned_shards(&self) -> Vec<usize> {
        self.runtime.poisoned_shards()
    }

    /// Test-only: make shard `i`'s worker panic on its next message,
    /// poisoning that shard (requires `num_shards > 1`). Exercises the
    /// graceful-degradation path surfaced by the `try_*` methods.
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn inject_worker_panic(&mut self, i: usize) {
        assert!(
            self.runtime.is_threaded(),
            "worker panic injection needs a threaded runtime"
        );
        self.runtime.inject_panic(i);
    }

    /// Aggregated virtual clocks: total work across shards, critical path,
    /// balance.
    pub fn clock_aggregate(&self) -> ClockAggregate {
        ClockAggregate::from_ns(
            (0..self.num_shards()).map(|i| self.runtime.engine(i).core().now_ns()),
        )
    }

    /// Engine counters summed over shards. A broadcast update counts once
    /// per shard in `tuples_processed`.
    pub fn counters_aggregate(&self) -> EngineCounters {
        let mut agg = EngineCounters::default();
        for i in 0..self.num_shards() {
            let c = self.runtime.engine(i).counters();
            agg.tuples_processed += c.tuples_processed;
            agg.outputs_emitted += c.outputs_emitted;
            agg.cache_hits += c.cache_hits;
            agg.cache_misses += c.cache_misses;
            agg.reoptimizations += c.reoptimizations;
            agg.demotions += c.demotions;
            agg.reorderings += c.reorderings;
        }
        agg
    }

    /// The canonical cross-shard telemetry merge, mirroring the delta-run
    /// merge: each shard's [`AdaptiveJoinEngine::telemetry_snapshot`] is
    /// taken, its events are stamped with a `shard` field, and the parts
    /// are folded with [`TelemetrySnapshot::merge`] — counters and
    /// histograms sum, ratios merge component-wise (so intensive
    /// quantities stay weighted averages), and events interleave in
    /// virtual-time order. Counter totals are therefore invariant to the
    /// shard count for routed-only workloads. Routing counters and the
    /// shard count ride along as `routing.*` / `shard.count`, and the
    /// worker runtime contributes `shard.queue_depth` (per shard),
    /// `shard.parked_ratio`, and `merge.lag` (see OBSERVABILITY.md).
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let mut merged = TelemetrySnapshot::new();
        let (mut parks, mut runs) = (0u64, 0u64);
        for i in 0..self.num_shards() {
            let mut part = self.runtime.engine(i).telemetry_snapshot();
            part.tag_events("shard", FieldValue::U64(i as u64));
            merged.merge(&part);
            merged.gauge(
                "shard.queue_depth",
                &[("shard", &i.to_string())],
                self.runtime.queue_depth(i) as f64,
            );
            let (p, r) = self.runtime.park_stats(i);
            parks += p;
            runs += r;
        }
        merged.gauge("shard.count", &[], self.num_shards() as f64);
        let wakeups = parks + runs;
        merged.gauge(
            "shard.parked_ratio",
            &[],
            if wakeups == 0 {
                0.0
            } else {
                parks as f64 / wakeups as f64
            },
        );
        merged.gauge("merge.lag", &[], self.runtime.merge_lag());
        merged.counter("routing.routed", &[], self.routing.routed);
        merged.counter("routing.broadcast", &[], self.routing.broadcast);
        merged
    }

    /// Run [`AdaptiveJoinEngine::check_structural_invariants`] on every
    /// shard plus cross-shard sanity checks (routing counters consistent
    /// with the configured topology, no poisoned workers). Violations are
    /// prefixed with the offending shard index; empty = healthy.
    /// Diagnostic use only.
    pub fn check_invariants(&self) -> Vec<String> {
        let mut violations = Vec::new();
        for i in 0..self.num_shards() {
            for v in self.runtime.engine(i).check_structural_invariants() {
                violations.push(format!("shard {i}: {v}"));
            }
        }
        for i in self.runtime.poisoned_shards() {
            violations.push(format!("shard {i}: worker poisoned by panic"));
        }
        if self.broadcast_relations().is_empty() && self.routing.broadcast > 0 {
            violations.push(format!(
                "routing: {} broadcasts but every relation has a partition column",
                self.routing.broadcast
            ));
        }
        violations
    }

    // ------------------------------------------------------------------
    // Processing

    /// Process one update. Equivalent to a one-element
    /// [`ShardedEngine::process_batch`]. Panics if a shard is poisoned —
    /// use [`ShardedEngine::try_process`] for typed failure handling.
    pub fn process(&mut self, u: &Update) -> Vec<(Op, Composite)> {
        self.try_process(u).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Process a batch of updates (in the given order), returning the
    /// concatenated result deltas in global update order. Each update's
    /// delta group is in canonical row order. Panics if a shard is
    /// poisoned — use [`ShardedEngine::try_process_batch`] for typed
    /// failure handling.
    pub fn process_batch(&mut self, updates: &[Update]) -> Vec<(Op, Composite)> {
        self.try_process_batch(updates)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`ShardedEngine::process_batch`] but keeps per-update grouping:
    /// `result[i]` is the canonical delta list of `updates[i]`. Panics if a
    /// shard is poisoned — use [`ShardedEngine::try_process_batch_grouped`]
    /// for typed failure handling.
    pub fn process_batch_grouped(&mut self, updates: &[Update]) -> Vec<Vec<(Op, Composite)>> {
        self.try_process_batch_grouped(updates)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`ShardedEngine::process`]: a poisoned shard yields a
    /// [`ShardPanic`] instead of a panic.
    pub fn try_process(&mut self, u: &Update) -> Result<Vec<(Op, Composite)>, ShardPanic> {
        Ok(self
            .try_process_batch_grouped(std::slice::from_ref(u))?
            .pop()
            .unwrap_or_default())
    }

    /// Fallible [`ShardedEngine::process_batch`]: a poisoned shard yields a
    /// [`ShardPanic`] instead of a panic.
    pub fn try_process_batch(
        &mut self,
        updates: &[Update],
    ) -> Result<Vec<(Op, Composite)>, ShardPanic> {
        if self.runtime.is_threaded() && updates.len() >= INLINE_BATCH {
            let mut out = Vec::new();
            for group in self.try_process_batch_grouped(updates)? {
                out.extend(group);
            }
            return Ok(out);
        }
        // Flat inline path: same routing and per-update canonical order as
        // the grouped driver, but every delta lands in one output vector
        // and each update's span is canonicalized in place — no per-update
        // group vectors.
        if updates.is_empty() {
            return Ok(Vec::new());
        }
        if let Some(failure) = self.runtime.first_failure() {
            return Err(failure);
        }
        let n_shards = self.num_shards();
        if n_shards > 1 && self.router.needs_refresh() {
            let router = &mut self.router;
            let runtime = &self.runtime;
            router.refresh_load((0..n_shards).map(|i| runtime.engine(i).core().now_ns()));
        }
        let n_rels = self.query.num_relations();
        let mut out: Vec<(Op, Composite)> = Vec::new();
        let mut start = 0;
        // Lock every shard engine once for the whole batch — the workers
        // only touch engines through jobs, and the inline path sends none.
        let mut engines: Vec<_> = (0..n_shards).map(|i| self.runtime.engine(i)).collect();
        for u in updates {
            match self.router.route(u) {
                Route::Shard(s) => {
                    self.routing.routed += 1;
                    engines[s].process_into(u, &mut out);
                }
                Route::Broadcast => {
                    self.routing.broadcast += 1;
                    for e in engines.iter_mut() {
                        e.process_into(u, &mut out);
                    }
                }
            }
            canonicalize_group(&mut out[start..], n_rels);
            start = out.len();
        }
        Ok(out)
    }

    /// Fallible [`ShardedEngine::process_batch_grouped`]: the core batch
    /// driver. Routes the batch (updating the balancing directory), then
    /// either runs it inline (small batches / single shard) or streams it
    /// through the persistent worker runtime. On `Err` the failing shard
    /// is poisoned permanently; healthy shards remain drained and
    /// inspectable, but further processing is refused because the poisoned
    /// shard's substream state is lost.
    pub fn try_process_batch_grouped(
        &mut self,
        updates: &[Update],
    ) -> Result<Vec<Vec<(Op, Composite)>>, ShardPanic> {
        if updates.is_empty() {
            return Ok(Vec::new());
        }
        if let Some(failure) = self.runtime.first_failure() {
            return Err(failure);
        }
        let n_shards = self.num_shards();
        if n_shards > 1 && self.router.needs_refresh() {
            let router = &mut self.router;
            let runtime = &self.runtime;
            router.refresh_load((0..n_shards).map(|i| runtime.engine(i).core().now_ns()));
        }
        let mut out: Vec<Vec<(Op, Composite)>> = vec![Vec::new(); updates.len()];
        if !self.runtime.is_threaded() || updates.len() < INLINE_BATCH {
            // Inline path: route and process in arrival order on the
            // caller thread, holding every shard lock for the batch (the
            // workers only touch engines through jobs; none are sent).
            let mut engines: Vec<_> = (0..n_shards).map(|i| self.runtime.engine(i)).collect();
            for (gi, u) in updates.iter().enumerate() {
                match self.router.route(u) {
                    Route::Shard(s) => {
                        self.routing.routed += 1;
                        engines[s].process_into(u, &mut out[gi]);
                    }
                    Route::Broadcast => {
                        self.routing.broadcast += 1;
                        for e in engines.iter_mut() {
                            e.process_into(u, &mut out[gi]);
                        }
                    }
                }
            }
        } else {
            let router = &mut self.router;
            let routing = &mut self.routing;
            self.runtime.run_batch(
                updates,
                |u| match router.route(u) {
                    Route::Shard(s) => {
                        routing.routed += 1;
                        Dispatch::Shard(s)
                    }
                    Route::Broadcast => {
                        routing.broadcast += 1;
                        Dispatch::All
                    }
                },
                &mut out,
            )?;
        }
        let n_rels = self.query.num_relations();
        for group in &mut out {
            canonicalize_group(group, n_rels);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// Scoped-thread reference executor

#[cfg(any(test, feature = "reference-exec"))]
pub mod reference {
    //! The pre-runtime sharded executor, kept as a differential reference.
    //!
    //! [`ScopedShardedEngine`] reproduces the PR 1 execution model exactly:
    //! stateless `mix(hash(v)) % N` routing, a fresh `std::thread::scope`
    //! spawn + join per batch, and a barrier k-way merge of per-shard runs.
    //! The harness sweeps it against the persistent runtime to assert the
    //! canonical delta streams stayed bit-identical across the rework.
    //! Compiled only for tests and the `reference-exec` feature.

    use super::*;
    use acq_stream::merge_ordered_runs;

    /// One update's delta group tagged with its global batch index.
    type IndexedGroup = (usize, Vec<(Op, Composite)>);

    /// Stateless hash router: the PR 1 policy (`mix(hash(v)) % N`).
    #[derive(Debug, Clone)]
    struct StatelessRouter {
        part_col: Vec<Option<ColId>>,
        num_shards: usize,
    }

    impl StatelessRouter {
        fn route(&self, u: &Update) -> Route {
            let Some(col) = self.part_col[u.rel.0 as usize] else {
                return Route::Broadcast;
            };
            Route::Shard((partition_key(u, col) % self.num_shards as u64) as usize)
        }
    }

    /// Scoped-thread sharded executor with stateless hash routing — the
    /// exact pre-persistent-runtime behavior, for differential testing.
    #[derive(Debug)]
    pub struct ScopedShardedEngine {
        query: QuerySchema,
        shards: Vec<AdaptiveJoinEngine>,
        router: StatelessRouter,
    }

    impl ScopedShardedEngine {
        /// Build with default engine settings and identity pipeline orders.
        pub fn new(query: QuerySchema, num_shards: usize) -> ScopedShardedEngine {
            let orders = PlanOrders::identity(&query);
            ScopedShardedEngine::with_config(
                query,
                orders,
                EngineConfig::default(),
                ShardConfig {
                    num_shards,
                    partition_class: None,
                },
            )
        }

        /// Build with explicit orders and configuration (mirrors
        /// [`ShardedEngine::with_config`]).
        pub fn with_config(
            query: QuerySchema,
            orders: PlanOrders,
            config: EngineConfig,
            shard_cfg: ShardConfig,
        ) -> ScopedShardedEngine {
            assert!(shard_cfg.num_shards >= 1, "need at least one shard");
            let cls = shard_cfg
                .partition_class
                .or_else(|| auto_partition_class(&query))
                .expect("query has no join predicates — nothing to partition on");
            let router = StatelessRouter {
                part_col: query
                    .rel_ids()
                    .map(|r| partition_col(&query, r, cls))
                    .collect(),
                num_shards: shard_cfg.num_shards,
            };
            let shards = (0..shard_cfg.num_shards)
                .map(|_| {
                    AdaptiveJoinEngine::with_config(query.clone(), orders.clone(), config.clone())
                })
                .collect();
            ScopedShardedEngine {
                query,
                shards,
                router,
            }
        }

        /// Number of shards.
        pub fn num_shards(&self) -> usize {
            self.shards.len()
        }

        /// Process a batch, returning concatenated canonical deltas in
        /// global update order.
        pub fn process_batch(&mut self, updates: &[Update]) -> Vec<(Op, Composite)> {
            let mut out = Vec::new();
            for group in self.process_batch_grouped(updates) {
                out.extend(group);
            }
            out
        }

        /// Per-update grouped batch processing: the verbatim PR 1 path
        /// (route → scoped spawn → join barrier → k-way merge → canon).
        pub fn process_batch_grouped(&mut self, updates: &[Update]) -> Vec<Vec<(Op, Composite)>> {
            if updates.is_empty() {
                return Vec::new();
            }
            let n_shards = self.shards.len();
            let mut work: Vec<Vec<(usize, &Update)>> = vec![Vec::new(); n_shards];
            for (gi, u) in updates.iter().enumerate() {
                match self.router.route(u) {
                    Route::Shard(s) => work[s].push((gi, u)),
                    Route::Broadcast => {
                        for w in &mut work {
                            w.push((gi, u));
                        }
                    }
                }
            }
            let per_shard: Vec<Vec<IndexedGroup>> =
                if n_shards == 1 || updates.len() < INLINE_BATCH {
                    self.shards
                        .iter_mut()
                        .zip(&work)
                        .map(|(eng, items)| run_shard(eng, items))
                        .collect()
                } else {
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = self
                            .shards
                            .iter_mut()
                            .zip(&work)
                            .map(|(eng, items)| scope.spawn(move || run_shard(eng, items)))
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("shard worker panicked"))
                            .collect()
                    })
                };
            let merged = merge_ordered_runs(per_shard, |&(gi, _)| gi);
            let mut out: Vec<Vec<(Op, Composite)>> =
                (0..updates.len()).map(|_| Vec::new()).collect();
            for (gi, group) in merged {
                out[gi].extend(group);
            }
            let n_rels = self.query.num_relations();
            for group in &mut out {
                canonicalize_group(group, n_rels);
            }
            out
        }
    }

    fn run_shard(engine: &mut AdaptiveJoinEngine, items: &[(usize, &Update)]) -> Vec<IndexedGroup> {
        items
            .iter()
            .map(|&(gi, u)| (gi, engine.process(u)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::reference::ScopedShardedEngine;
    use super::*;
    use acq_mjoin::oracle::{canonical_rows, multiset_diff};
    use acq_stream::TupleData;

    fn ins(rel: u16, vals: &[i64], ts: u64) -> Update {
        Update::insert(RelId(rel), TupleData::ints(vals), ts)
    }

    fn del(rel: u16, vals: &[i64], ts: u64) -> Update {
        Update::delete(RelId(rel), TupleData::ints(vals), ts)
    }

    /// Simple deterministic workload over a query: inserts with occasional
    /// deletes of live tuples, values in a small domain to force joins.
    fn workload(query: &QuerySchema, seed: u64, len: usize) -> Vec<Update> {
        let mut state = seed.max(1);
        let mut rng = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        let n = query.num_relations() as u64;
        let mut live: Vec<Vec<TupleData>> = vec![Vec::new(); n as usize];
        let mut out = Vec::new();
        for ts in 0..len as u64 {
            let rel = rng(n) as usize;
            let arity = query.relation(RelId(rel as u16)).arity();
            if !live[rel].is_empty() && rng(4) == 0 {
                let data = live[rel].remove(0);
                out.push(Update::delete(RelId(rel as u16), data, ts));
            } else {
                let vals: Vec<i64> = (0..arity).map(|_| rng(5) as i64).collect();
                let data = TupleData::ints(&vals);
                live[rel].push(data.clone());
                out.push(Update::insert(RelId(rel as u16), data, ts));
            }
        }
        out
    }

    fn canon(group: &[(Op, Composite)], n: usize) -> Vec<(Op, Vec<TupleData>)> {
        group
            .iter()
            .map(|(op, c)| (*op, canonical_rows(c, n)))
            .collect()
    }

    #[test]
    fn auto_class_prefers_widest_coverage() {
        // Star: the single A class covers everything.
        let q = QuerySchema::star(4);
        assert_eq!(auto_partition_class(&q), Some(EquivClassId(0)));
        // Chain3: A covers {R,S}, B covers {S,T} — tie, lower id wins.
        let q = QuerySchema::chain3();
        assert_eq!(auto_partition_class(&q), Some(EquivClassId(0)));
    }

    #[test]
    fn star_has_no_broadcast_relations() {
        let e = ShardedEngine::new(QuerySchema::star(4), 4);
        assert!(e.broadcast_relations().is_empty());
    }

    #[test]
    fn chain3_broadcasts_t() {
        let e = ShardedEngine::new(QuerySchema::chain3(), 2);
        assert_eq!(e.broadcast_relations(), vec![RelId(2)]);
    }

    #[test]
    fn matches_single_engine_on_star() {
        let q = QuerySchema::star(4);
        let updates = workload(&q, 7, 400);
        let mut single = AdaptiveJoinEngine::new(q.clone());
        let mut sharded = ShardedEngine::new(q.clone(), 3);
        let groups = sharded.process_batch_grouped(&updates);
        for (u, got) in updates.iter().zip(&groups) {
            let want = canon(&single.process(u), 4);
            let got = canon(got, 4);
            assert!(
                multiset_diff(&got, &want).is_empty(),
                "diverged on {u}: got {got:?} want {want:?}"
            );
        }
    }

    #[test]
    fn matches_single_engine_with_broadcast() {
        let q = QuerySchema::chain3();
        let updates = workload(&q, 3, 400);
        let mut single = AdaptiveJoinEngine::new(q.clone());
        let mut sharded = ShardedEngine::new(q.clone(), 4);
        let groups = sharded.process_batch_grouped(&updates);
        assert!(sharded.routing_stats().broadcast > 0, "T must broadcast");
        for (u, got) in updates.iter().zip(&groups) {
            let want = canon(&single.process(u), 3);
            let got = canon(got, 3);
            assert!(
                multiset_diff(&got, &want).is_empty(),
                "diverged on {u}: got {got:?} want {want:?}"
            );
        }
    }

    #[test]
    fn batch_output_is_bit_deterministic() {
        let q = QuerySchema::star(4);
        let updates = workload(&q, 11, 300);
        let run = |shards: usize| {
            let mut e = ShardedEngine::new(q.clone(), shards);
            e.process_batch_grouped(&updates)
                .iter()
                .map(|g| canon(g, 4))
                .collect::<Vec<_>>()
        };
        // Identical across repeated runs *and* shard counts — the per-group
        // canonical order makes the merged output a pure function of input.
        let base = run(2);
        assert_eq!(base, run(2));
        assert_eq!(base, run(4));
    }

    #[test]
    fn matches_scoped_thread_reference() {
        // The persistent runtime (balanced routing, streaming merge) must
        // emit the same canonical delta stream as the PR 1 scoped-thread
        // executor it replaced, at every shard count.
        let q = QuerySchema::star(4);
        let updates = workload(&q, 23, 500);
        let mut reference = ScopedShardedEngine::new(q.clone(), 4);
        let want: Vec<_> = reference
            .process_batch_grouped(&updates)
            .iter()
            .map(|g| canon(g, 4))
            .collect();
        for shards in [1, 2, 4] {
            let mut e = ShardedEngine::new(q.clone(), shards);
            let got: Vec<_> = e
                .process_batch_grouped(&updates)
                .iter()
                .map(|g| canon(g, 4))
                .collect();
            assert_eq!(got, want, "diverged from reference at {shards} shards");
        }
    }

    #[test]
    fn single_shard_defers_to_inner_engine() {
        let q = QuerySchema::chain3();
        let mut sharded = ShardedEngine::new(q.clone(), 1);
        let mut single = AdaptiveJoinEngine::new(q);
        let ups = vec![
            ins(0, &[1], 0),
            ins(1, &[1, 2], 1),
            ins(2, &[2], 2),
            del(1, &[1, 2], 3),
        ];
        for u in &ups {
            let mut want = single.process(u);
            canonicalize_group(&mut want, 3);
            let got = sharded.process(u);
            assert_eq!(canon(&got, 3), canon(&want, 3));
        }
    }

    #[test]
    fn deletes_route_to_inserting_shard() {
        // Insert then delete the same tuples; all shard windows must end
        // empty (a mis-routed delete would leave a phantom tuple behind).
        let q = QuerySchema::star(3);
        let mut e = ShardedEngine::new(q.clone(), 4);
        let mut ups = Vec::new();
        for k in 0..50i64 {
            ups.push(ins(0, &[k, 0], k as u64));
        }
        for k in 0..50i64 {
            ups.push(del(0, &[k, 0], 50 + k as u64));
        }
        e.process_batch(&ups);
        for i in 0..e.num_shards() {
            let len = e.with_shard(i, |s| s.core().relation(RelId(0)).len());
            assert_eq!(len, 0);
        }
    }

    #[test]
    fn directory_balances_and_evicts() {
        let q = QuerySchema::star(3);
        let mut e = ShardedEngine::new(q.clone(), 4);
        // 64 distinct keys, equal weight: argmin assignment must spread
        // them evenly (16 per shard at equal cost).
        let mut ups = Vec::new();
        for k in 0..64i64 {
            ups.push(ins(0, &[k, 0], k as u64));
        }
        e.process_batch(&ups);
        assert_eq!(e.router.directory.len(), 64);
        let max = *e.router.load.iter().max().unwrap();
        let min = *e.router.load.iter().min().unwrap();
        assert!(
            max - min <= e.router.est_unit,
            "unbalanced assignment: load {:?}",
            e.router.load
        );
        // Deleting every tuple must drain the directory completely.
        let dels: Vec<_> = (0..64i64).map(|k| del(0, &[k, 0], 100 + k as u64)).collect();
        e.process_batch(&dels);
        assert_eq!(e.router.directory.len(), 0, "live=0 entries must evict");
    }

    #[test]
    fn worker_panic_poisons_only_its_shard() {
        let q = QuerySchema::star(4);
        let updates = workload(&q, 13, 200);
        let mut e = ShardedEngine::new(q.clone(), 4);
        e.process_batch(&updates[..100]);
        e.inject_worker_panic(1);
        // The batch (or the pre-flight check) must surface the typed error.
        let err = e
            .try_process_batch_grouped(&updates[100..])
            .expect_err("poisoned shard must fail the batch");
        assert_eq!(err.shard, 1);
        assert!(err.message.contains("injected worker panic"), "{err}");
        assert_eq!(e.poisoned_shards(), vec![1]);
        // Healthy shards stay inspectable and drained; further processing
        // keeps failing with the same typed error.
        for i in [0usize, 2, 3] {
            let _ = e.with_shard(i, |s| s.counters());
        }
        assert!(e
            .check_invariants()
            .iter()
            .any(|v| v.contains("worker poisoned")));
        let err2 = e.try_process(&updates[0]).expect_err("still poisoned");
        assert_eq!(err2.shard, 1);
    }

    #[test]
    fn clock_and_counter_aggregation() {
        let q = QuerySchema::star(3);
        let updates = workload(&q, 5, 200);
        let mut e = ShardedEngine::new(q, 2);
        e.process_batch(&updates);
        let agg = e.clock_aggregate();
        assert_eq!(agg.shards, 2);
        assert!(agg.total_ns > 0);
        assert!(agg.max_ns >= agg.min_ns);
        let c = e.counters_aggregate();
        // Star has no broadcast relations → every update processed once.
        assert_eq!(c.tuples_processed, updates.len() as u64);
        let rs = e.routing_stats();
        assert_eq!(rs.routed, updates.len() as u64);
        assert_eq!(rs.broadcast, 0);
    }

    #[test]
    fn runtime_telemetry_gauges_present() {
        let q = QuerySchema::star(3);
        let updates = workload(&q, 9, 300);
        let mut e = ShardedEngine::new(q, 2);
        e.process_batch(&updates);
        let snap = e.telemetry_snapshot();
        let text = snap.to_json();
        for metric in ["shard.queue_depth", "shard.parked_ratio", "merge.lag"] {
            assert!(text.contains(metric), "missing {metric} in snapshot");
        }
    }
}
