//! Sharded parallel execution of the A-Caching engine.
//!
//! The paper's engine (§3.1) is a strictly single-threaded event loop:
//! every update, across all streams, is processed to completion in global
//! arrival order. [`ShardedEngine`] scales that loop across cores by
//! **hash-partitioning the update stream on one join-attribute equivalence
//! class** over `N` independent [`AdaptiveJoinEngine`] shards:
//!
//! * A **partition class** is chosen (automatically: the equivalence class
//!   whose member attributes span the most relations). Every relation with
//!   an attribute in that class is *routed*: each of its updates goes to the
//!   single shard owning the hash of that attribute's value. Relations
//!   without such an attribute are *broadcast* to every shard.
//! * Each shard runs the full adaptive machinery (profiler, re-optimizer,
//!   cache stores) over its substream. Hash partitioning keeps the
//!   substream an unbiased sample of the key distribution, so per-shard
//!   adaptive decisions remain sound — they may even diverge across shards
//!   when per-key skew rewards different cache sets.
//! * Output deltas are merged back into **global arrival order** with the
//!   same k-way merge the input substrate uses
//!   ([`acq_stream::merge_ordered_runs`]), keyed by each update's position
//!   in the batch. Within one update's delta group the results are put in
//!   canonical row order ([`canonicalize_group`]), making the merged output
//!   a pure function of the input batch — bit-identical across runs, shard
//!   counts, and thread schedules.
//!
//! **Correctness.** All attributes of the partition class are transitively
//! equated by equijoin predicates, so every n-way result binds them to one
//! common value `v` (NULL joins nothing). The tuples of routed relations
//! participating in that result live only in shard `hash(v)`, hence each
//! result delta materializes in *exactly one* shard: no result is lost (the
//! probing update reaches that shard — directly if routed, by broadcast
//! otherwise) and none is duplicated (any other shard lacks the routed
//! tuples). Deletes hash identically to the inserts they revert, so windows
//! shrink in the same shard they grew in.

use crate::engine::{AdaptiveJoinEngine, EngineConfig, EngineCounters};
use acq_mjoin::clock::ClockAggregate;
use acq_telemetry::{FieldValue, TelemetrySnapshot};
use acq_mjoin::oracle::canonical_rows;
use acq_mjoin::plan::PlanOrders;
use acq_stream::{
    merge_ordered_runs, AttrRef, ColId, Composite, EquivClassId, Op, QuerySchema, RelId, Update,
};

/// Below this batch size the shards run inline on the calling thread —
/// thread hand-off costs more than it buys for a handful of updates.
const INLINE_BATCH: usize = 32;

/// One update's delta group tagged with its global batch index.
type IndexedGroup = (usize, Vec<(Op, Composite)>);

/// Sharding configuration.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of engine shards (≥ 1).
    pub num_shards: usize,
    /// Partition class; `None` selects the class spanning the most
    /// relations (ties toward the lower class id).
    pub partition_class: Option<EquivClassId>,
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig {
            num_shards: 4,
            partition_class: None,
        }
    }
}

/// Routing counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoutingStats {
    /// Updates hashed to a single shard.
    pub routed: u64,
    /// Updates broadcast to every shard (relations outside the partition
    /// class).
    pub broadcast: u64,
}

/// Pick the partition class covering the most relations (ties toward the
/// lower class id). `None` when the query has no join predicates at all.
pub fn auto_partition_class(query: &QuerySchema) -> Option<EquivClassId> {
    let mut best: Option<(EquivClassId, usize)> = None;
    for c in 0..query.num_equiv_classes() {
        let cls = EquivClassId(c);
        let cover = query
            .rel_ids()
            .filter(|&r| partition_col(query, r, cls).is_some())
            .count();
        if best.is_none_or(|(_, bc)| cover > bc) {
            best = Some((cls, cover));
        }
    }
    best.map(|(cls, _)| cls)
}

/// First column of relation `r` belonging to equivalence class `cls`.
fn partition_col(query: &QuerySchema, r: RelId, cls: EquivClassId) -> Option<ColId> {
    (0..query.relation(r).arity() as u16)
        .map(ColId)
        .find(|&c| query.equiv_class(AttrRef { rel: r, col: c }) == Some(cls))
}

/// Per-relation routing table.
#[derive(Debug, Clone)]
struct Router {
    /// `part_col[rel]` = column to hash, or `None` to broadcast.
    part_col: Vec<Option<ColId>>,
    num_shards: usize,
}

enum Route {
    Shard(usize),
    Broadcast,
}

impl Router {
    fn new(query: &QuerySchema, cls: EquivClassId, num_shards: usize) -> Router {
        Router {
            part_col: query
                .rel_ids()
                .map(|r| partition_col(query, r, cls))
                .collect(),
            num_shards,
        }
    }

    fn route(&self, u: &Update) -> Route {
        let Some(col) = self.part_col[u.rel.0 as usize] else {
            return Route::Broadcast;
        };
        use std::hash::Hasher;
        let mut h = acq_sketch::FxHasher::default();
        // NULL partition values hash like any other value: the tuple joins
        // nothing (join_eq is false for NULL), so *which* shard stores it is
        // irrelevant — only that its insert and delete agree.
        u.data.get(col.0).hash_into(&mut h);
        // Finalization mix: FxHash's low bits are weak and `% num_shards`
        // looks straight at them.
        let mut x = h.finish();
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        Route::Shard((x % self.num_shards as u64) as usize)
    }
}

/// Put one update's delta group into canonical row order (sorted by the
/// per-relation tuple data of each result). Both the sharded merge and any
/// single-engine output being compared against it must use this — engines
/// emit equal delta *multisets* per update, but their internal enumeration
/// order depends on store layout and adaptive plan state.
pub fn canonicalize_group(group: &mut [(Op, Composite)], num_relations: usize) {
    if group.len() > 1 {
        group.sort_by_cached_key(|(_, c)| canonical_rows(c, num_relations));
    }
}

/// A hash-partitioned parallel A-Caching executor: `N` independent
/// [`AdaptiveJoinEngine`]s behind a deterministic router and merge.
#[derive(Debug)]
pub struct ShardedEngine {
    query: QuerySchema,
    shards: Vec<AdaptiveJoinEngine>,
    router: Router,
    partition_class: EquivClassId,
    routing: RoutingStats,
}

impl ShardedEngine {
    /// Build with default engine settings and identity pipeline orders.
    pub fn new(query: QuerySchema, num_shards: usize) -> ShardedEngine {
        let orders = PlanOrders::identity(&query);
        ShardedEngine::with_config(
            query,
            orders,
            EngineConfig::default(),
            ShardConfig {
                num_shards,
                partition_class: None,
            },
        )
    }

    /// Build with explicit orders, per-shard engine configuration, and
    /// sharding configuration. Every shard gets an identical engine; they
    /// diverge only through the substreams they see.
    pub fn with_config(
        query: QuerySchema,
        orders: PlanOrders,
        config: EngineConfig,
        shard_cfg: ShardConfig,
    ) -> ShardedEngine {
        assert!(shard_cfg.num_shards >= 1, "need at least one shard");
        let partition_class = shard_cfg
            .partition_class
            .or_else(|| auto_partition_class(&query))
            .expect("query has no join predicates — nothing to partition on");
        let router = Router::new(&query, partition_class, shard_cfg.num_shards);
        assert!(
            router.part_col.iter().any(Option::is_some),
            "partition class covers no relation"
        );
        let shards = (0..shard_cfg.num_shards)
            .map(|_| AdaptiveJoinEngine::with_config(query.clone(), orders.clone(), config.clone()))
            .collect();
        ShardedEngine {
            query,
            shards,
            router,
            partition_class,
            routing: RoutingStats::default(),
        }
    }

    // ------------------------------------------------------------------
    // Accessors

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The equivalence class the stream is partitioned on.
    pub fn partition_class(&self) -> EquivClassId {
        self.partition_class
    }

    /// Relations routed by broadcast (no attribute in the partition class).
    pub fn broadcast_relations(&self) -> Vec<RelId> {
        self.router
            .part_col
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(|(r, _)| RelId(r as u16))
            .collect()
    }

    /// Routing counters.
    pub fn routing_stats(&self) -> RoutingStats {
        self.routing
    }

    /// Read access to the shard engines.
    pub fn shards(&self) -> &[AdaptiveJoinEngine] {
        &self.shards
    }

    /// Aggregated virtual clocks: total work across shards, critical path,
    /// balance.
    pub fn clock_aggregate(&self) -> ClockAggregate {
        ClockAggregate::from_ns(self.shards.iter().map(|s| s.core().now_ns()))
    }

    /// Engine counters summed over shards. A broadcast update counts once
    /// per shard in `tuples_processed`.
    pub fn counters_aggregate(&self) -> EngineCounters {
        let mut agg = EngineCounters::default();
        for s in &self.shards {
            let c = s.counters();
            agg.tuples_processed += c.tuples_processed;
            agg.outputs_emitted += c.outputs_emitted;
            agg.cache_hits += c.cache_hits;
            agg.cache_misses += c.cache_misses;
            agg.reoptimizations += c.reoptimizations;
            agg.demotions += c.demotions;
            agg.reorderings += c.reorderings;
        }
        agg
    }

    /// The canonical cross-shard telemetry merge, mirroring the delta-run
    /// merge: each shard's [`AdaptiveJoinEngine::telemetry_snapshot`] is
    /// taken, its events are stamped with a `shard` field, and the parts
    /// are folded with [`TelemetrySnapshot::merge`] — counters and
    /// histograms sum, ratios merge component-wise (so intensive
    /// quantities stay weighted averages), and events interleave in
    /// virtual-time order. Counter totals are therefore invariant to the
    /// shard count for routed-only workloads. Routing counters and the
    /// shard count ride along as `routing.*` / `shard.count`.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let mut merged = TelemetrySnapshot::new();
        for (i, shard) in self.shards.iter().enumerate() {
            let mut part = shard.telemetry_snapshot();
            part.tag_events("shard", FieldValue::U64(i as u64));
            merged.merge(&part);
        }
        merged.gauge("shard.count", &[], self.shards.len() as f64);
        merged.counter("routing.routed", &[], self.routing.routed);
        merged.counter("routing.broadcast", &[], self.routing.broadcast);
        merged
    }

    /// Run [`AdaptiveJoinEngine::check_structural_invariants`] on every
    /// shard plus cross-shard sanity checks (routing counters consistent
    /// with the configured topology). Violations are prefixed with the
    /// offending shard index; empty = healthy. Diagnostic use only.
    pub fn check_invariants(&self) -> Vec<String> {
        let mut violations = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            for v in shard.check_structural_invariants() {
                violations.push(format!("shard {i}: {v}"));
            }
        }
        if self.broadcast_relations().is_empty() && self.routing.broadcast > 0 {
            violations.push(format!(
                "routing: {} broadcasts but every relation has a partition column",
                self.routing.broadcast
            ));
        }
        violations
    }

    // ------------------------------------------------------------------
    // Processing

    /// Process one update. Equivalent to a one-element
    /// [`ShardedEngine::process_batch`].
    pub fn process(&mut self, u: &Update) -> Vec<(Op, Composite)> {
        self.process_batch_grouped(std::slice::from_ref(u))
            .pop()
            .unwrap_or_default()
    }

    /// Process a batch of updates (in the given order), returning the
    /// concatenated result deltas in global update order. Each update's
    /// delta group is in canonical row order.
    pub fn process_batch(&mut self, updates: &[Update]) -> Vec<(Op, Composite)> {
        let mut out = Vec::new();
        for group in self.process_batch_grouped(updates) {
            out.extend(group);
        }
        out
    }

    /// Like [`ShardedEngine::process_batch`] but keeps per-update grouping:
    /// `result[i]` is the canonical delta list of `updates[i]`.
    pub fn process_batch_grouped(&mut self, updates: &[Update]) -> Vec<Vec<(Op, Composite)>> {
        if updates.is_empty() {
            return Vec::new();
        }
        let n_shards = self.shards.len();
        // Route: per-shard work lists of (global batch index, update).
        let mut work: Vec<Vec<(usize, &Update)>> = vec![Vec::new(); n_shards];
        for (gi, u) in updates.iter().enumerate() {
            match self.router.route(u) {
                Route::Shard(s) => {
                    self.routing.routed += 1;
                    work[s].push((gi, u));
                }
                Route::Broadcast => {
                    self.routing.broadcast += 1;
                    for w in &mut work {
                        w.push((gi, u));
                    }
                }
            }
        }
        // Execute every shard over its substream — scoped worker threads
        // for real batches, inline for trivial ones. Both paths yield the
        // same output (determinism does not depend on the schedule).
        let per_shard: Vec<Vec<IndexedGroup>> =
            if n_shards == 1 || updates.len() < INLINE_BATCH {
                self.shards
                    .iter_mut()
                    .zip(&work)
                    .map(|(eng, items)| run_shard(eng, items))
                    .collect()
            } else {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = self
                        .shards
                        .iter_mut()
                        .zip(&work)
                        .map(|(eng, items)| scope.spawn(move || run_shard(eng, items)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("shard worker panicked"))
                        .collect()
                })
            };
        // Deterministic merge back to global arrival order: k-way merge of
        // the per-shard runs keyed by batch index (each run is sorted by
        // construction), then canonical order within each update's group.
        let merged = merge_ordered_runs(per_shard, |&(gi, _)| gi);
        let mut out: Vec<Vec<(Op, Composite)>> = (0..updates.len()).map(|_| Vec::new()).collect();
        for (gi, group) in merged {
            out[gi].extend(group);
        }
        let n_rels = self.query.num_relations();
        for group in &mut out {
            canonicalize_group(group, n_rels);
        }
        out
    }
}

fn run_shard(engine: &mut AdaptiveJoinEngine, items: &[(usize, &Update)]) -> Vec<IndexedGroup> {
    items
        .iter()
        .map(|&(gi, u)| (gi, engine.process(u)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acq_mjoin::oracle::multiset_diff;
    use acq_stream::TupleData;

    fn ins(rel: u16, vals: &[i64], ts: u64) -> Update {
        Update::insert(RelId(rel), TupleData::ints(vals), ts)
    }

    fn del(rel: u16, vals: &[i64], ts: u64) -> Update {
        Update::delete(RelId(rel), TupleData::ints(vals), ts)
    }

    /// Simple deterministic workload over a query: inserts with occasional
    /// deletes of live tuples, values in a small domain to force joins.
    fn workload(query: &QuerySchema, seed: u64, len: usize) -> Vec<Update> {
        let mut state = seed.max(1);
        let mut rng = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        let n = query.num_relations() as u64;
        let mut live: Vec<Vec<TupleData>> = vec![Vec::new(); n as usize];
        let mut out = Vec::new();
        for ts in 0..len as u64 {
            let rel = rng(n) as usize;
            let arity = query.relation(RelId(rel as u16)).arity();
            if !live[rel].is_empty() && rng(4) == 0 {
                let data = live[rel].remove(0);
                out.push(Update::delete(RelId(rel as u16), data, ts));
            } else {
                let vals: Vec<i64> = (0..arity).map(|_| rng(5) as i64).collect();
                let data = TupleData::ints(&vals);
                live[rel].push(data.clone());
                out.push(Update::insert(RelId(rel as u16), data, ts));
            }
        }
        out
    }

    fn canon(group: &[(Op, Composite)], n: usize) -> Vec<(Op, Vec<TupleData>)> {
        group
            .iter()
            .map(|(op, c)| (*op, canonical_rows(c, n)))
            .collect()
    }

    #[test]
    fn auto_class_prefers_widest_coverage() {
        // Star: the single A class covers everything.
        let q = QuerySchema::star(4);
        assert_eq!(auto_partition_class(&q), Some(EquivClassId(0)));
        // Chain3: A covers {R,S}, B covers {S,T} — tie, lower id wins.
        let q = QuerySchema::chain3();
        assert_eq!(auto_partition_class(&q), Some(EquivClassId(0)));
    }

    #[test]
    fn star_has_no_broadcast_relations() {
        let e = ShardedEngine::new(QuerySchema::star(4), 4);
        assert!(e.broadcast_relations().is_empty());
    }

    #[test]
    fn chain3_broadcasts_t() {
        let e = ShardedEngine::new(QuerySchema::chain3(), 2);
        assert_eq!(e.broadcast_relations(), vec![RelId(2)]);
    }

    #[test]
    fn matches_single_engine_on_star() {
        let q = QuerySchema::star(4);
        let updates = workload(&q, 7, 400);
        let mut single = AdaptiveJoinEngine::new(q.clone());
        let mut sharded = ShardedEngine::new(q.clone(), 3);
        let groups = sharded.process_batch_grouped(&updates);
        for (u, got) in updates.iter().zip(&groups) {
            let want = canon(&single.process(u), 4);
            let got = canon(got, 4);
            assert!(
                multiset_diff(&got, &want).is_empty(),
                "diverged on {u}: got {got:?} want {want:?}"
            );
        }
    }

    #[test]
    fn matches_single_engine_with_broadcast() {
        let q = QuerySchema::chain3();
        let updates = workload(&q, 3, 400);
        let mut single = AdaptiveJoinEngine::new(q.clone());
        let mut sharded = ShardedEngine::new(q.clone(), 4);
        let groups = sharded.process_batch_grouped(&updates);
        assert!(sharded.routing_stats().broadcast > 0, "T must broadcast");
        for (u, got) in updates.iter().zip(&groups) {
            let want = canon(&single.process(u), 3);
            let got = canon(got, 3);
            assert!(
                multiset_diff(&got, &want).is_empty(),
                "diverged on {u}: got {got:?} want {want:?}"
            );
        }
    }

    #[test]
    fn batch_output_is_bit_deterministic() {
        let q = QuerySchema::star(4);
        let updates = workload(&q, 11, 300);
        let run = |shards: usize| {
            let mut e = ShardedEngine::new(q.clone(), shards);
            e.process_batch_grouped(&updates)
                .iter()
                .map(|g| canon(g, 4))
                .collect::<Vec<_>>()
        };
        // Identical across repeated runs *and* shard counts — the per-group
        // canonical order makes the merged output a pure function of input.
        let base = run(2);
        assert_eq!(base, run(2));
        assert_eq!(base, run(4));
    }

    #[test]
    fn single_shard_defers_to_inner_engine() {
        let q = QuerySchema::chain3();
        let mut sharded = ShardedEngine::new(q.clone(), 1);
        let mut single = AdaptiveJoinEngine::new(q);
        let ups = vec![
            ins(0, &[1], 0),
            ins(1, &[1, 2], 1),
            ins(2, &[2], 2),
            del(1, &[1, 2], 3),
        ];
        for u in &ups {
            let mut want = single.process(u);
            canonicalize_group(&mut want, 3);
            let got = sharded.process(u);
            assert_eq!(canon(&got, 3), canon(&want, 3));
        }
    }

    #[test]
    fn deletes_route_to_inserting_shard() {
        // Insert then delete the same tuples; all shard windows must end
        // empty (a mis-routed delete would leave a phantom tuple behind).
        let q = QuerySchema::star(3);
        let mut e = ShardedEngine::new(q.clone(), 4);
        let mut ups = Vec::new();
        for k in 0..50i64 {
            ups.push(ins(0, &[k, 0], k as u64));
        }
        for k in 0..50i64 {
            ups.push(del(0, &[k, 0], 50 + k as u64));
        }
        e.process_batch(&ups);
        for s in e.shards() {
            assert_eq!(s.core().relation(RelId(0)).len(), 0);
        }
    }

    #[test]
    fn clock_and_counter_aggregation() {
        let q = QuerySchema::star(3);
        let updates = workload(&q, 5, 200);
        let mut e = ShardedEngine::new(q, 2);
        e.process_batch(&updates);
        let agg = e.clock_aggregate();
        assert_eq!(agg.shards, 2);
        assert!(agg.total_ns > 0);
        assert!(agg.max_ns >= agg.min_ns);
        let c = e.counters_aggregate();
        // Star has no broadcast relations → every update processed once.
        assert_eq!(c.tuples_processed, updates.len() as u64);
        let rs = e.routing_stats();
        assert_eq!(rs.routed, updates.len() as u64);
        assert_eq!(rs.broadcast, 0);
    }
}
