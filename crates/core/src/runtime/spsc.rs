//! Bounded lock-free single-producer/single-consumer ring, plus the
//! park/unpark primitive the worker runtime builds its backoff on.
//!
//! The ring is the data plane of the persistent shard runtime
//! ([`crate::runtime`]): the caller thread pushes routed update runs into a
//! worker's inbox ring and pops delta runs from its result ring. Exactly one
//! thread holds the [`Producer`] and exactly one the [`Consumer`] — the type
//! system enforces it (the handles are `Send` but not `Clone`), which is
//! what lets every operation be two atomic accesses with no CAS loop:
//!
//! * `push` writes the slot, then `Release`-publishes the new tail;
//! * `pop` `Acquire`-loads the tail, reads the slot, then
//!   `Release`-publishes the new head (licensing the producer to reuse the
//!   slot).
//!
//! Positions are monotonically increasing counters masked into a
//! power-of-two slot array, so full/empty are distinguished without a spare
//! slot: `tail - head == capacity` is full, `tail == head` is empty.
//! Dropping the ring drains and drops any unconsumed items (no leaks — see
//! `crates/core/tests/spsc_ring.rs` for the allocator-counted proof).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Pads a hot atomic to its own cache line so the producer's tail and the
/// consumer's head never false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Shared<T> {
    /// Slot array; length is a power of two.
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Index mask (`slots.len() - 1`).
    mask: usize,
    /// Consumer position (monotone, wrapped on use).
    head: CachePadded<AtomicUsize>,
    /// Producer position (monotone, wrapped on use).
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the slot array is a transfer cell between exactly one producer
// and one consumer; the head/tail Release/Acquire pairs order every slot
// write before the matching read (push→pop) and every read before the slot
// is reused (pop→push). `T: Send` is required because values move across
// the pair's threads.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Both handles are gone (`&mut self`), so plain loads suffice.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        let mut pos = head;
        while pos != tail {
            // SAFETY: slots in [head, tail) were written by push and never
            // consumed; this is the only remaining reader.
            unsafe { (*self.slots[pos & self.mask].get()).assume_init_drop() };
            pos = pos.wrapping_add(1);
        }
    }
}

/// Producing half of a bounded SPSC ring (see [`ring`]).
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Producer-local cache of the consumer's head; refreshed only when the
    /// ring looks full, so the common-case push does one shared atomic load.
    cached_head: usize,
}

/// Consuming half of a bounded SPSC ring (see [`ring`]).
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Consumer-local cache of the producer's tail; refreshed only when the
    /// ring looks empty.
    cached_tail: usize,
}

/// Create a bounded SPSC ring with at least `capacity` slots (rounded up to
/// a power of two, minimum 2).
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let shared = Arc::new(Shared {
        slots,
        mask: cap - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            cached_head: 0,
        },
        Consumer {
            shared,
            cached_tail: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Items currently buffered (racy snapshot: the consumer may pop
    /// concurrently, so the true value is at most this).
    pub fn len(&self) -> usize {
        let tail = self.shared.tail.0.load(Ordering::Relaxed);
        let head = self.shared.head.0.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// Whether the ring currently looks empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Push one value; returns it back if the ring is full.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let tail = self.shared.tail.0.load(Ordering::Relaxed);
        if tail.wrapping_sub(self.cached_head) == self.capacity() {
            self.cached_head = self.shared.head.0.load(Ordering::Acquire);
            if tail.wrapping_sub(self.cached_head) == self.capacity() {
                return Err(value);
            }
        }
        // SAFETY: the slot at `tail` is unoccupied (tail - head < capacity)
        // and this thread is the only writer.
        unsafe { (*self.shared.slots[tail & self.shared.mask].get()).write(value) };
        self.shared.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }
}

impl<T> Consumer<T> {
    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Items currently buffered (racy snapshot: the producer may push
    /// concurrently, so the true value is at least this).
    pub fn len(&self) -> usize {
        let head = self.shared.head.0.load(Ordering::Relaxed);
        let tail = self.shared.tail.0.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// Whether the ring currently looks empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pop one value, or `None` when the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        let head = self.shared.head.0.load(Ordering::Relaxed);
        if head == self.cached_tail {
            self.cached_tail = self.shared.tail.0.load(Ordering::Acquire);
            if head == self.cached_tail {
                return None;
            }
        }
        // SAFETY: the slot at `head` was published by the producer's
        // Release store of `tail > head`, and this thread is the only
        // reader; after the head store below the producer may reuse it.
        let value = unsafe { (*self.shared.slots[head & self.shared.mask].get()).assume_init_read() };
        self.shared.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }
}

// ---------------------------------------------------------------------
// Parker

const EMPTY: u32 = 0;
const NOTIFIED: u32 = 1;
const PARKED: u32 = 2;

struct ParkShared {
    state: std::sync::atomic::AtomicU32,
    lock: Mutex<()>,
    cv: Condvar,
}

/// The blocking half of a park/unpark pair (see [`parker`]): the owning
/// thread calls [`Parker::park`] after its spin budget is exhausted.
///
/// Tokens are sticky: an [`Unparker::unpark`] delivered before `park` makes
/// the next `park` return immediately, so the standard
/// *publish-then-recheck* idle protocol has no lost-wakeup window.
pub struct Parker {
    shared: Arc<ParkShared>,
}

/// The waking half of a park/unpark pair; clonable and shareable across
/// threads.
#[derive(Clone)]
pub struct Unparker {
    shared: Arc<ParkShared>,
}

/// Create a connected [`Parker`]/[`Unparker`] pair.
pub fn parker() -> (Parker, Unparker) {
    let shared = Arc::new(ParkShared {
        state: std::sync::atomic::AtomicU32::new(EMPTY),
        lock: Mutex::new(()),
        cv: Condvar::new(),
    });
    (
        Parker {
            shared: Arc::clone(&shared),
        },
        Unparker { shared },
    )
}

impl Parker {
    /// Block until unparked (or return immediately on a pending token).
    pub fn park(&self) {
        self.park_inner(None);
    }

    /// Block until unparked or `timeout` elapses, whichever is first.
    pub fn park_timeout(&self, timeout: Duration) {
        self.park_inner(Some(timeout));
    }

    fn park_inner(&self, timeout: Option<Duration>) {
        let s = &self.shared;
        // Fast path: consume a pending token without touching the mutex.
        if s.state.swap(EMPTY, Ordering::Acquire) == NOTIFIED {
            return;
        }
        let mut guard = s.lock.lock().unwrap_or_else(|e| e.into_inner());
        // Re-check under the lock: an unpark may have landed in between.
        match s
            .state
            .compare_exchange(EMPTY, PARKED, Ordering::Acquire, Ordering::Acquire)
        {
            Ok(_) => {}
            Err(_) => {
                // NOTIFIED: consume the token and leave.
                s.state.store(EMPTY, Ordering::Release);
                return;
            }
        }
        loop {
            guard = match timeout {
                None => s.cv.wait(guard).unwrap_or_else(|e| e.into_inner()),
                Some(t) => {
                    let (g, res) = s
                        .cv
                        .wait_timeout(guard, t)
                        .unwrap_or_else(|e| e.into_inner());
                    if res.timed_out() {
                        // Fold back to EMPTY, consuming a token that raced
                        // in (the caller re-checks its condition anyway).
                        s.state.swap(EMPTY, Ordering::Acquire);
                        return;
                    }
                    g
                }
            };
            if s.state.swap(EMPTY, Ordering::Acquire) == NOTIFIED {
                return;
            }
            // Spurious wakeup: re-arm.
            if s
                .state
                .compare_exchange(EMPTY, PARKED, Ordering::Acquire, Ordering::Acquire)
                .is_err()
            {
                s.state.store(EMPTY, Ordering::Release);
                return;
            }
        }
    }
}

impl Unparker {
    /// Wake the paired [`Parker`], or leave a token making its next park a
    /// no-op.
    pub fn unpark(&self) {
        let s = &self.shared;
        if s.state.swap(NOTIFIED, Ordering::Release) == PARKED {
            // The parker is (or is about to be) waiting on the condvar; the
            // empty critical section orders our token store before its wait.
            drop(s.lock.lock().unwrap_or_else(|e| e.into_inner()));
            s.cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_roundtrip() {
        let (mut p, mut c) = ring::<u64>(4);
        assert_eq!(c.pop(), None);
        for i in 0..4 {
            p.push(i).unwrap();
        }
        assert_eq!(p.push(99), Err(99), "ring must report full");
        for i in 0..4 {
            assert_eq!(c.pop(), Some(i));
        }
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn wraparound_many_times() {
        let (mut p, mut c) = ring::<usize>(2);
        for i in 0..1000 {
            p.push(i).unwrap();
            assert_eq!(c.pop(), Some(i));
        }
    }

    #[test]
    fn parker_token_prevents_lost_wakeup() {
        let (p, u) = parker();
        u.unpark();
        // Token pending: park returns immediately instead of blocking.
        p.park();
    }

    #[test]
    fn cross_thread_handoff() {
        let (mut p, mut c) = ring::<u64>(8);
        let n = 50_000u64;
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                let mut v = i;
                loop {
                    match p.push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut next = 0u64;
        while next < n {
            match c.pop() {
                Some(v) => {
                    assert_eq!(v, next);
                    next += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        producer.join().unwrap();
    }
}
