//! Persistent sharded worker runtime: spawn-free batches over SPSC rings.
//!
//! PR 4 made the single-shard update path allocation-free, but the sharded
//! executor still paid a `std::thread::scope` spawn + join for every batch.
//! This module replaces that with **long-lived worker threads**, one per
//! shard, each owning its [`AdaptiveJoinEngine`] behind an uncontended
//! mutex:
//!
//! * The caller routes a batch and feeds each worker through a bounded
//!   lock-free SPSC **inbox ring** ([`spsc`]) of index runs into the
//!   caller's batch slice. Routing is chunked (`ROUTE_CHUNK`), so shard
//!   *i* starts probing while the router is still classifying the tail of
//!   the batch.
//! * Workers stream delta runs back through a **result ring**; the caller
//!   merges them into per-update groups *incrementally* — while routing is
//!   still in progress and while other workers are still running — instead
//!   of joining all workers at a barrier.
//! * Idle workers **spin briefly, then park** ([`spsc::Parker`]); a parked
//!   shard costs nothing between batches. Park tokens are sticky, so the
//!   push → unpark hand-off has no lost-wakeup window.
//! * A panicking worker **poisons only its shard**: the panic is caught,
//!   the shard's last telemetry snapshot is captured into a typed
//!   [`ShardPanic`], and the remaining shards drain cleanly; the batch then
//!   fails with the typed error instead of aborting the process.
//!
//! # Safety protocol (borrowed batches)
//!
//! Jobs reference the caller's `&[Update]` batch by raw pointer
//! (`BatchPtr`) so nothing is cloned onto the data plane. The protocol
//! that keeps this sound: `ShardRuntime::run_batch` does not return —
//! normally or by unwind — until every live worker has acknowledged the
//! batch's `Flush` fence with a `Done` message (FIFO rings: `Done` implies
//! every preceding `Run` job was consumed), and workers that died can never
//! pop again. Engines are only ever touched by their worker thread or, for
//! inline batches and control access, by the caller through the same mutex
//! while the rings are empty.

pub mod spsc;

use crate::engine::AdaptiveJoinEngine;
use acq_stream::{Composite, Op, Update};
use acq_telemetry::TelemetrySnapshot;
use spsc::{parker, ring, Consumer, Parker, Producer, Unparker};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// Staged routed indices per shard before a run job is flushed to the
/// worker: the double-buffering grain of the router→worker pipeline.
const ROUTE_CHUNK: usize = 256;

/// Worker emits a result run after this many buffered delta groups (or
/// earlier, whenever its inbox goes empty).
const EMIT_RUN: usize = 64;

/// Inbox ring capacity (jobs). `ROUTE_CHUNK`-sized runs make this far
/// deeper than any realistic batch backlog.
const INBOX_CAP: usize = 128;

/// Result ring capacity (runs).
const RESULT_CAP: usize = 128;

/// One update's delta group.
type Group = Vec<(Op, Composite)>;

/// A run of delta groups tagged with their global batch indices, ascending.
type RunBuf = Vec<(u32, Group)>;

/// Raw pointer to the caller's batch slice, sent to workers inside jobs.
///
/// Validity is guaranteed by the batch fence protocol (module docs): the
/// pointee outlives every job that can still be popped.
#[derive(Clone, Copy)]
struct BatchPtr(*const Update);

// SAFETY: see the module-level safety protocol — the pointee slice is
// pinned by the caller for the whole fence window, and `Update` is `Sync`.
unsafe impl Send for BatchPtr {}

enum Job {
    /// Process `base[gi]` for each `gi` in `indices` (ascending).
    Run { base: BatchPtr, indices: Vec<u32> },
    /// Batch fence: emit buffered results, then acknowledge with
    /// `ResultMsg::Done(epoch)`.
    Flush(u64),
    /// Test-only: panic inside the worker to exercise shard poisoning.
    #[cfg(any(test, feature = "fault-injection"))]
    Panic,
    /// Exit the worker loop.
    Shutdown,
}

enum ResultMsg {
    /// A run of processed delta groups (ascending batch indices).
    Run(RunBuf),
    /// All jobs up to the batch's `Flush` fence have been processed.
    Done(u64),
}

/// Where one update goes, as decided by the caller's router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Dispatch {
    /// Exactly this shard.
    Shard(usize),
    /// Every shard.
    All,
}

/// A worker panic that poisoned one shard.
///
/// Returned by the `try_*` processing methods of
/// [`ShardedEngine`](crate::shard::ShardedEngine): the panic payload is
/// captured as a message, together with the poisoned shard's last
/// obtainable telemetry snapshot. Other shards remain healthy and
/// drainable (their engines, counters, and telemetry stay accessible), but
/// further batch processing is refused because the poisoned shard's state
/// is lost.
pub struct ShardPanic {
    /// Index of the shard whose worker panicked.
    pub shard: usize,
    /// Rendered panic payload.
    pub message: String,
    /// Telemetry captured from the poisoned shard right after the panic
    /// (empty if the engine was too damaged to snapshot).
    pub telemetry: TelemetrySnapshot,
}

impl fmt::Debug for ShardPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardPanic")
            .field("shard", &self.shard)
            .field("message", &self.message)
            .finish_non_exhaustive()
    }
}

impl fmt::Display for ShardPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard {} worker panicked: {}", self.shard, self.message)
    }
}

impl std::error::Error for ShardPanic {}

/// What a worker records about its own death.
struct WorkerFailure {
    message: String,
    telemetry: TelemetrySnapshot,
}

/// Shared per-shard state: the engine and the flags both sides observe.
struct Slot {
    engine: Mutex<AdaptiveJoinEngine>,
    /// Worker caught a panic; the shard's state is lost.
    poisoned: AtomicBool,
    /// Worker thread is running (false once its loop exits for any reason).
    alive: AtomicBool,
    /// Set before a clean `Shutdown` exit, to distinguish it from death.
    clean_exit: AtomicBool,
    failure: Mutex<Option<WorkerFailure>>,
    /// Wakes the worker after a job push.
    to_worker: Unparker,
    /// Wakes the caller after a result push.
    to_caller: Unparker,
    /// Times the worker actually parked (idle).
    parks: AtomicU64,
    /// Run jobs the worker processed.
    runs: AtomicU64,
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Caller-side handle to one worker's rings and per-batch staging.
struct Lane {
    inbox: Producer<Job>,
    results: Consumer<ResultMsg>,
    /// Routed batch indices not yet flushed to the worker.
    staging: Vec<u32>,
    /// A `Flush` fence for the current batch has been pushed.
    fenced: bool,
    /// The current batch's `Done` has been received (or the lane is dead).
    done: bool,
}

/// The persistent worker pool behind a sharded engine: engines, rings, and
/// threads. With a single shard no threads are spawned and every batch runs
/// inline on the caller.
pub(crate) struct ShardRuntime {
    slots: Vec<Arc<Slot>>,
    /// One per shard when threaded; empty when running inline-only.
    lanes: Vec<Lane>,
    handles: Vec<JoinHandle<()>>,
    caller: Parker,
    epoch: u64,
    /// Running sum/sample-count of result-ring backlog observed by the
    /// streaming merge (the `merge.lag` gauge).
    lag_sum: u64,
    lag_samples: u64,
}

impl fmt::Debug for ShardRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardRuntime")
            .field("shards", &self.slots.len())
            .field("threaded", &!self.lanes.is_empty())
            .field("poisoned", &self.poisoned_shards())
            .finish()
    }
}

impl ShardRuntime {
    /// Build the runtime, moving the engines into per-shard slots. Worker
    /// threads are spawned only for `engines.len() > 1`.
    pub(crate) fn new(engines: Vec<AdaptiveJoinEngine>) -> ShardRuntime {
        let threaded = engines.len() > 1;
        let (caller, to_caller) = parker();
        let mut slots = Vec::with_capacity(engines.len());
        let mut lanes = Vec::new();
        let mut handles = Vec::new();
        for (i, engine) in engines.into_iter().enumerate() {
            let (worker_parker, to_worker) = parker();
            let slot = Arc::new(Slot {
                engine: Mutex::new(engine),
                poisoned: AtomicBool::new(false),
                alive: AtomicBool::new(threaded),
                clean_exit: AtomicBool::new(false),
                failure: Mutex::new(None),
                to_worker,
                to_caller: to_caller.clone(),
                parks: AtomicU64::new(0),
                runs: AtomicU64::new(0),
            });
            if threaded {
                let (job_tx, job_rx) = ring::<Job>(INBOX_CAP);
                let (res_tx, res_rx) = ring::<ResultMsg>(RESULT_CAP);
                let worker_slot = Arc::clone(&slot);
                let handle = std::thread::Builder::new()
                    .name(format!("acq-shard-{i}"))
                    .spawn(move || worker_loop(worker_slot, job_rx, res_tx, worker_parker))
                    .expect("spawn shard worker");
                handles.push(handle);
                lanes.push(Lane {
                    inbox: job_tx,
                    results: res_rx,
                    staging: Vec::with_capacity(ROUTE_CHUNK),
                    fenced: false,
                    done: true,
                });
            }
            slots.push(slot);
        }
        ShardRuntime {
            slots,
            lanes,
            handles,
            caller,
            epoch: 0,
            lag_sum: 0,
            lag_samples: 0,
        }
    }

    pub(crate) fn num_shards(&self) -> usize {
        self.slots.len()
    }

    /// Whether persistent worker threads exist (more than one shard).
    pub(crate) fn is_threaded(&self) -> bool {
        !self.lanes.is_empty()
    }

    /// Lock shard `i`'s engine for caller-side access. Sound whenever no
    /// batch is in flight (rings drained), which `&self`/`&mut self`
    /// exclusivity on the owning engine guarantees between calls.
    pub(crate) fn engine(&self, i: usize) -> MutexGuard<'_, AdaptiveJoinEngine> {
        lock_ignore_poison(&self.slots[i].engine)
    }

    /// Indices of shards whose workers panicked or died.
    pub(crate) fn poisoned_shards(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.poisoned.load(Ordering::Acquire))
            .map(|(i, _)| i)
            .collect()
    }

    /// The typed failure of the first poisoned shard, if any.
    pub(crate) fn first_failure(&self) -> Option<ShardPanic> {
        let i = *self.poisoned_shards().first()?;
        let guard = lock_ignore_poison(&self.slots[i].failure);
        let f = guard.as_ref()?;
        Some(ShardPanic {
            shard: i,
            message: f.message.clone(),
            telemetry: f.telemetry.clone(),
        })
    }

    /// Inbox depth of shard `i` (0 when not threaded).
    pub(crate) fn queue_depth(&self, i: usize) -> usize {
        self.lanes.get(i).map_or(0, |l| l.inbox.len())
    }

    /// `(parks, run jobs processed)` counters of shard `i`'s worker.
    pub(crate) fn park_stats(&self, i: usize) -> (u64, u64) {
        (
            self.slots[i].parks.load(Ordering::Relaxed),
            self.slots[i].runs.load(Ordering::Relaxed),
        )
    }

    /// Mean result-ring backlog observed by the streaming merge, in runs.
    pub(crate) fn merge_lag(&self) -> f64 {
        if self.lag_samples == 0 {
            0.0
        } else {
            self.lag_sum as f64 / self.lag_samples as f64
        }
    }

    /// Test-only: make shard `i`'s worker panic on its next pop, poisoning
    /// the shard. Requires a threaded runtime.
    #[cfg(any(test, feature = "fault-injection"))]
    pub(crate) fn inject_panic(&mut self, i: usize) {
        let lane = &mut self.lanes[i];
        let mut job = Job::Panic;
        while let Err(j) = lane.inbox.push(job) {
            job = j;
            self.slots[i].to_worker.unpark();
            std::thread::yield_now();
        }
        self.slots[i].to_worker.unpark();
    }

    /// Run one batch through the persistent workers: route every update
    /// with `route`, pipeline index runs into the inbox rings, and stream
    /// result runs back into `out[gi]` as they arrive. Returns once every
    /// live worker has fenced the batch; `Err` if any shard is (or
    /// becomes) poisoned.
    ///
    /// `out` must hold one (possibly pre-filled) group per update.
    pub(crate) fn run_batch(
        &mut self,
        updates: &[Update],
        route: impl FnMut(&Update) -> Dispatch,
        out: &mut [Group],
    ) -> Result<(), ShardPanic> {
        debug_assert!(self.is_threaded());
        debug_assert_eq!(updates.len(), out.len());
        self.epoch += 1;
        for lane in &mut self.lanes {
            lane.staging.clear();
            lane.fenced = false;
            lane.done = false;
        }
        // Feed + fence + drain, with a panic firewall: even if something in
        // the feed path unwinds, the fence/drain below still runs before
        // the borrowed batch goes out of scope (see module safety notes).
        let feed = catch_unwind(AssertUnwindSafe(|| self.feed(updates, route, out)));
        let drain = self.finish(BatchPtr(updates.as_ptr()), out);
        match feed {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(()) => drain,
        }
    }

    fn feed(
        &mut self,
        updates: &[Update],
        mut route: impl FnMut(&Update) -> Dispatch,
        out: &mut [Group],
    ) {
        let base = BatchPtr(updates.as_ptr());
        for (gi, u) in updates.iter().enumerate() {
            match route(u) {
                Dispatch::Shard(s) => self.stage(s, gi as u32, base, out),
                Dispatch::All => {
                    for s in 0..self.lanes.len() {
                        self.stage(s, gi as u32, base, out);
                    }
                }
            }
        }
    }

    /// Stage one routed index; flush a run job when the chunk fills.
    fn stage(&mut self, shard: usize, gi: u32, base: BatchPtr, out: &mut [Group]) {
        self.lanes[shard].staging.push(gi);
        if self.lanes[shard].staging.len() >= ROUTE_CHUNK {
            self.flush_shard(shard, base, out);
            // Keep the merge streaming while routing continues.
            self.drain_all(Some(out));
        }
    }

    /// Push shard `shard`'s staged indices as one run job.
    fn flush_shard(&mut self, shard: usize, base: BatchPtr, out: &mut [Group]) {
        if self.lanes[shard].staging.is_empty() {
            return;
        }
        let indices = std::mem::replace(
            &mut self.lanes[shard].staging,
            Vec::with_capacity(ROUTE_CHUNK),
        );
        self.push_job(shard, Job::Run { base, indices }, out);
    }

    /// Push one job, draining results while the inbox is full. Jobs to dead
    /// lanes are dropped (their batch indices produce no output).
    fn push_job(&mut self, shard: usize, job: Job, out: &mut [Group]) {
        let mut job = job;
        loop {
            if !self.slots[shard].alive.load(Ordering::Acquire) {
                return;
            }
            match self.lanes[shard].inbox.push(job) {
                Ok(()) => {
                    self.slots[shard].to_worker.unpark();
                    return;
                }
                Err(j) => {
                    job = j;
                    self.slots[shard].to_worker.unpark();
                    if !self.drain_all(Some(out)) {
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    /// Fence every lane, then stream results until all lanes are done.
    fn finish(&mut self, base: BatchPtr, out: &mut [Group]) -> Result<(), ShardPanic> {
        let epoch = self.epoch;
        for s in 0..self.lanes.len() {
            self.flush_shard(s, base, out);
            self.push_job(s, Job::Flush(epoch), out);
            self.lanes[s].fenced = true;
        }
        loop {
            let progress = self.drain_all(Some(out));
            let all_done = (0..self.lanes.len())
                .all(|s| self.lanes[s].done || !self.slots[s].alive.load(Ordering::Acquire));
            if all_done {
                break;
            }
            if !progress {
                // Workers unpark us on every result push; the timeout is a
                // liveness backstop, not the wakeup path.
                self.caller.park_timeout(Duration::from_micros(500));
            }
        }
        match self.first_failure() {
            Some(f) => Err(f),
            None => Ok(()),
        }
    }

    /// Pop every available result message; place groups into `out` (or drop
    /// them when `out` is `None`). Returns whether anything was popped.
    fn drain_all(&mut self, mut out: Option<&mut [Group]>) -> bool {
        let epoch = self.epoch;
        let mut progress = false;
        for lane in &mut self.lanes {
            // Sample merge lag on fenced (actively merging) lanes.
            if lane.fenced && !lane.done {
                self.lag_sum += lane.results.len() as u64;
                self.lag_samples += 1;
            }
            while let Some(msg) = lane.results.pop() {
                progress = true;
                match msg {
                    ResultMsg::Run(mut groups) => {
                        if let Some(out) = out.as_deref_mut() {
                            for (gi, group) in &mut groups {
                                let dst = &mut out[*gi as usize];
                                if dst.is_empty() {
                                    // Routed updates have a single source
                                    // shard: steal the buffer outright.
                                    std::mem::swap(dst, group);
                                } else {
                                    dst.append(group);
                                }
                            }
                        }
                    }
                    ResultMsg::Done(e) => {
                        if e == epoch {
                            lane.done = true;
                        }
                    }
                }
            }
        }
        progress
    }
}

impl Drop for ShardRuntime {
    fn drop(&mut self) {
        for (s, lane) in self.lanes.iter_mut().enumerate() {
            let slot = &self.slots[s];
            let mut job = Job::Shutdown;
            while slot.alive.load(Ordering::Acquire) {
                match lane.inbox.push(job) {
                    Ok(()) => break,
                    Err(j) => {
                        job = j;
                        slot.to_worker.unpark();
                        std::thread::yield_now();
                    }
                }
            }
            slot.to_worker.unpark();
        }
        for h in self.handles.drain(..) {
            // Worker panics are caught inside the loop; a join error here
            // would mean the loop itself died, which `alive` already
            // records — either way there is nothing useful to propagate.
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------
// Worker side

/// Marks the slot dead when the worker loop exits for *any* reason; an
/// unclean exit (not via `Shutdown`) additionally poisons the shard so the
/// caller's fence protocol never waits on a corpse.
struct AliveGuard(Arc<Slot>);

impl Drop for AliveGuard {
    fn drop(&mut self) {
        let slot = &self.0;
        if !slot.clean_exit.load(Ordering::Acquire) {
            let mut failure = lock_ignore_poison(&slot.failure);
            if failure.is_none() {
                *failure = Some(WorkerFailure {
                    message: "worker thread terminated unexpectedly".to_string(),
                    telemetry: TelemetrySnapshot::new(),
                });
            }
            drop(failure);
            slot.poisoned.store(true, Ordering::Release);
        }
        slot.alive.store(false, Ordering::Release);
        slot.to_caller.unpark();
    }
}

fn worker_loop(
    slot: Arc<Slot>,
    mut inbox: Consumer<Job>,
    mut results: Producer<ResultMsg>,
    idle: Parker,
) {
    let _alive = AliveGuard(Arc::clone(&slot));
    let mut cur: RunBuf = Vec::with_capacity(EMIT_RUN);
    let mut spins = 0u32;
    loop {
        match inbox.pop() {
            Some(Job::Run { base, indices }) => {
                spins = 0;
                slot.runs.fetch_add(1, Ordering::Relaxed);
                if slot.poisoned.load(Ordering::Acquire) {
                    // Sink mode: consume and discard so fences stay live.
                    continue;
                }
                let run = catch_unwind(AssertUnwindSafe(|| {
                    let mut engine = lock_ignore_poison(&slot.engine);
                    for &gi in &indices {
                        // SAFETY: `base` points at the caller's pinned
                        // batch; the fence protocol keeps it alive until
                        // after our `Done` for this batch.
                        let u = unsafe { &*base.0.add(gi as usize) };
                        cur.push((gi, engine.process(u)));
                    }
                }));
                if let Err(payload) = run {
                    cur.clear();
                    poison(&slot, payload);
                    continue;
                }
                if cur.len() >= EMIT_RUN || inbox.is_empty() {
                    emit(&slot, &mut results, &mut cur);
                }
            }
            Some(Job::Flush(epoch)) => {
                spins = 0;
                emit(&slot, &mut results, &mut cur);
                push_result(&slot, &mut results, ResultMsg::Done(epoch));
            }
            #[cfg(any(test, feature = "fault-injection"))]
            Some(Job::Panic) => {
                spins = 0;
                if let Err(payload) =
                    catch_unwind(|| -> () { panic!("injected worker panic") })
                {
                    cur.clear();
                    poison(&slot, payload);
                }
            }
            Some(Job::Shutdown) => {
                slot.clean_exit.store(true, Ordering::Release);
                return;
            }
            None => {
                // Spin briefly (cheap when a batch is streaming), yield a
                // few times (matters on small machines where the router
                // shares our core), then park until the next push.
                if spins < 64 {
                    std::hint::spin_loop();
                    spins += 1;
                } else if spins < 72 {
                    std::thread::yield_now();
                    spins += 1;
                } else {
                    slot.parks.fetch_add(1, Ordering::Relaxed);
                    idle.park();
                    spins = 0;
                }
            }
        }
    }
}

/// Flush the worker's buffered run, if any.
fn emit(slot: &Slot, results: &mut Producer<ResultMsg>, cur: &mut RunBuf) {
    if cur.is_empty() {
        return;
    }
    let run = std::mem::replace(cur, Vec::with_capacity(EMIT_RUN));
    push_result(slot, results, ResultMsg::Run(run));
}

/// Push one result message, yielding to the (single-core-friendly) caller
/// while the ring is full.
fn push_result(slot: &Slot, results: &mut Producer<ResultMsg>, msg: ResultMsg) {
    let mut msg = msg;
    loop {
        match results.push(msg) {
            Ok(()) => {
                slot.to_caller.unpark();
                return;
            }
            Err(m) => {
                msg = m;
                slot.to_caller.unpark();
                std::thread::yield_now();
            }
        }
    }
}

/// Record a caught worker panic and poison the shard.
fn poison(slot: &Slot, payload: Box<dyn std::any::Any + Send>) {
    let message = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    // The engine is memory-safe but logically suspect after a panic;
    // snapshotting is best-effort.
    let telemetry = catch_unwind(AssertUnwindSafe(|| {
        lock_ignore_poison(&slot.engine).telemetry_snapshot()
    }))
    .unwrap_or_else(|_| TelemetrySnapshot::new());
    *lock_ignore_poison(&slot.failure) = Some(WorkerFailure { message, telemetry });
    slot.poisoned.store(true, Ordering::Release);
    slot.to_caller.unpark();
}
