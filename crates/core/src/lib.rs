//! # acq — A-Caching: adaptive caching for continuous multiway join queries
//!
//! A from-scratch reproduction of **“Adaptive Caching for Continuous
//! Queries”** (Babu, Munagala, Widom, Motwani — ICDE 2005, Stanford STREAM
//! project).
//!
//! The paper's setting: a continuous n-way join (a *stream join*) processed
//! by an MJoin — one pipeline per update stream `∆R_i`, no intermediate
//! state. MJoins recompute subresults over and over; XJoins (binary join
//! trees) materialize every intermediate result and pay to maintain it. This
//! crate implements the paper's middle way: start from an MJoin and
//! **adaptively add/remove join-subresult caches**, covering the whole plan
//! spectrum between MJoins and XJoins.
//!
//! ## Quickstart
//!
//! ```
//! use acq::engine::AdaptiveJoinEngine;
//! use acq_stream::{QuerySchema, RelId, TupleData, Update};
//!
//! // R(A) ⋈ S(A,B) ⋈ T(B), the paper's 3-way experiment query.
//! let mut engine = AdaptiveJoinEngine::new(QuerySchema::chain3());
//! engine.process(&Update::insert(RelId(0), TupleData::ints(&[1]), 0));
//! engine.process(&Update::insert(RelId(1), TupleData::ints(&[1, 2]), 1));
//! let out = engine.process(&Update::insert(RelId(2), TupleData::ints(&[2]), 2));
//! assert_eq!(out.len(), 1); // ⟨1⟩·⟨1,2⟩·⟨2⟩ joined
//! ```
//!
//! ## Module map (paper section → module)
//!
//! | Paper | Module |
//! |---|---|
//! | §3.2–3.3 caches, consistency invariant, direct-mapped store | [`cache`] |
//! | §3.2 prefix invariant, §4.2 candidates, Def. 4.1 sharing, §6 globally-consistent candidates | [`candidates`] |
//! | §4.1 benefit/cost/proc model | [`cost`] |
//! | §4.3 + Appendix A online estimation | [`profiler`] |
//! | §4.4 + Appendix B offline selection (DP / exhaustive / greedy / LP rounding) | [`select`] |
//! | §4.5 adaptive algorithm + §5 memory allocation + §6 global caches | [`engine`], [`memory`] |
//!
//! Substrates live in sibling crates: `acq-stream` (tuples, windows, update
//! streams), `acq-relation` (windowed stores + hash indexes), `acq-mjoin`
//! (pipelines, the virtual cost clock, A-Greedy ordering, the XJoin
//! baseline), `acq-sketch` (Bloom filters, W-window statistics), `acq-lp`
//! (the simplex solver behind randomized rounding).
//!
//! Observability: every engine exposes a structured
//! [`acq_telemetry::TelemetrySnapshot`] (metrics + virtual-time event trace);
//! the metric namespace is documented in `OBSERVABILITY.md` at the repo root.

#![warn(missing_docs)]

pub mod cache;
pub mod candidates;
pub mod cost;
pub mod engine;
pub mod memory;
pub mod profiler;
pub mod runtime;
pub mod select;
pub mod shard;
pub mod stream_join;

pub use cache::{CacheStats, CacheStore};
pub use candidates::{enumerate_candidates, is_prefix_set, Candidate, EnumerationConfig};
pub use cost::{benefit_cost, BenefitCost, CandidateEstimates};
pub use engine::{
    AdaptiveJoinEngine, AdaptivityEvent, CacheMode, CacheState, CandidateDiagnostics, EngineConfig,
    EngineCounters, InjectedFault, ReoptInterval, SelectionStrategy,
};
pub use memory::{allocate, Allocation, MemoryConfig, MemoryRequest};
pub use profiler::{Profiler, ProfilerConfig};
pub use select::{SelectionInstance, Solution};
pub use shard::{
    auto_partition_class, canonicalize_group, RoutingStats, ShardConfig, ShardPanic, ShardedEngine,
};
pub use stream_join::{StreamJoin, StreamJoinBuilder, WindowSpec};
pub use acq_telemetry::TelemetrySnapshot;
