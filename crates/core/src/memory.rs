//! Adaptive memory allocation to caches (§5).
//!
//! *"We use a greedy allocation scheme based on the priority of a cache `C`,
//! defined as the ratio of `benefit(C) − cost(C)` to the expected memory
//! requirement of `C`. Intuitively, the priority of a cache is its net
//! benefit per unit memory used."* Memory is handed out in pages; when the
//! budget runs short, lower-priority caches receive fewer pages (smaller
//! direct-mapped stores — always safe, §3.3) or none at all.

/// Allocator configuration.
#[derive(Debug, Clone, Copy)]
pub struct MemoryConfig {
    /// Allocation granule.
    pub page_bytes: usize,
    /// Total budget; `None` = unlimited (the §4 "assume enough memory for
    /// all selected caches" mode).
    pub budget_bytes: Option<usize>,
}

impl Default for MemoryConfig {
    fn default() -> MemoryConfig {
        MemoryConfig {
            page_bytes: 4096,
            budget_bytes: None,
        }
    }
}

/// One cache's memory request.
#[derive(Debug, Clone, Copy)]
pub struct MemoryRequest {
    /// Caller-meaningful id (the engine uses shared-group ids — one store
    /// per group).
    pub id: usize,
    /// `benefit(C) − cost(C)` (for shared groups: summed member benefits −
    /// the once-paid cost).
    pub net_benefit: f64,
    /// Expected bytes needed for the full expected entry count.
    pub expected_bytes: usize,
}

impl MemoryRequest {
    /// §5 priority: net benefit per byte.
    pub fn priority(&self) -> f64 {
        self.net_benefit / self.expected_bytes.max(1) as f64
    }
}

/// Result of an allocation round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// Request id.
    pub id: usize,
    /// Pages granted (0 = cache cannot be used).
    pub pages: usize,
    /// Bytes granted.
    pub bytes: usize,
}

/// Minimum fraction of a request that must be grantable for the cache to be
/// used at all. Direct-mapped stores degrade gracefully with fewer buckets,
/// but below ~20% of the expected working set the collision-driven miss rate
/// erases the benefit the selection was based on.
pub const MIN_GRANT_FRACTION: f64 = 0.2;

/// Greedily allocate pages by priority.
///
/// Requests with non-positive net benefit get nothing. Under an exhausted
/// budget a request may receive a *partial* grant, but never less than
/// [`MIN_GRANT_FRACTION`] of what it asked for.
pub fn allocate(config: &MemoryConfig, requests: &[MemoryRequest]) -> Vec<Allocation> {
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by(|&a, &b| {
        requests[b]
            .priority()
            .partial_cmp(&requests[a].priority())
            .unwrap()
            .then(requests[a].id.cmp(&requests[b].id))
    });
    let mut remaining_pages = config
        .budget_bytes
        .map(|b| b / config.page_bytes)
        .unwrap_or(usize::MAX);
    let mut out: Vec<Allocation> = requests
        .iter()
        .map(|r| Allocation {
            id: r.id,
            pages: 0,
            bytes: 0,
        })
        .collect();
    for idx in order {
        let r = &requests[idx];
        if r.net_benefit <= 0.0 || remaining_pages == 0 {
            continue;
        }
        let want = r.expected_bytes.div_ceil(config.page_bytes).max(1);
        let grant = want.min(remaining_pages);
        if (grant as f64) < want as f64 * MIN_GRANT_FRACTION {
            continue; // too small to behave like the cache we selected
        }
        remaining_pages -= grant;
        out[idx] = Allocation {
            id: r.id,
            pages: grant,
            bytes: grant * config.page_bytes,
        };
    }
    out
}

/// Emit the most recent allocation round into a snapshot:
/// `memory.granted_bytes{group}` gauges plus the `memory.granted_total`
/// gauge (extensive quantities — a cross-shard merge sums them).
pub fn snapshot_allocations(s: &mut acq_telemetry::TelemetrySnapshot, granted_bytes: &[usize]) {
    let mut total = 0usize;
    for (g, &bytes) in granted_bytes.iter().enumerate() {
        let gl = g.to_string();
        s.gauge("memory.granted_bytes", &[("group", &gl)], bytes as f64);
        total += bytes;
    }
    s.gauge("memory.granted_total", &[], total as f64);
}

/// Convert a byte grant into a bucket count for a [`crate::cache::CacheStore`]:
/// bytes divided by an estimated per-entry footprint, at least one bucket.
pub fn buckets_for(bytes: usize, est_entry_bytes: usize) -> usize {
    (bytes / est_entry_bytes.max(1)).max(1)
}

/// Budget-respecting bucket count: each bucket costs its array slot
/// (`slot_bytes`) *plus*, when occupied, the entry footprint — so
/// `buckets × (slot + entry) ≤ bytes`. [`crate::cache::CacheStore`] rounds
/// buckets up to a power of two, so round *down* here to the previous power
/// of two to stay within budget. Returns 0 when even one bucket can't fit.
pub fn buckets_within_budget(bytes: usize, est_entry_bytes: usize, slot_bytes: usize) -> usize {
    let per_bucket = est_entry_bytes.saturating_add(slot_bytes).max(1);
    let raw = bytes / per_bucket;
    if raw == 0 {
        0
    } else {
        // Previous power of two (so CacheStore's round-up is a no-op).
        1usize << (usize::BITS - 1 - raw.leading_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: usize, net: f64, bytes: usize) -> MemoryRequest {
        MemoryRequest {
            id,
            net_benefit: net,
            expected_bytes: bytes,
        }
    }

    #[test]
    fn unlimited_budget_grants_everything() {
        let cfg = MemoryConfig::default();
        let out = allocate(&cfg, &[req(0, 10.0, 10_000), req(1, 1.0, 4096)]);
        assert_eq!(out[0].pages, 3); // ceil(10000/4096)
        assert_eq!(out[1].pages, 1);
    }

    #[test]
    fn priority_orders_grants() {
        let cfg = MemoryConfig {
            page_bytes: 4096,
            budget_bytes: Some(8192), // 2 pages
        };
        // id 0: priority 10/8192; id 1: priority 50/4096 (higher).
        let out = allocate(&cfg, &[req(0, 10.0, 8192), req(1, 50.0, 4096)]);
        assert_eq!(out[1].pages, 1, "high priority served first");
        assert_eq!(out[0].pages, 1, "partial grant from the remainder");
        assert_eq!(out[0].bytes, 4096);
    }

    #[test]
    fn nonpositive_net_gets_nothing() {
        let cfg = MemoryConfig::default();
        let out = allocate(&cfg, &[req(0, 0.0, 4096), req(1, -5.0, 4096)]);
        assert_eq!(out[0].pages, 0);
        assert_eq!(out[1].pages, 0);
    }

    #[test]
    fn zero_budget() {
        let cfg = MemoryConfig {
            page_bytes: 4096,
            budget_bytes: Some(0),
        };
        let out = allocate(&cfg, &[req(0, 100.0, 4096)]);
        assert_eq!(out[0].pages, 0);
    }

    #[test]
    fn budget_never_exceeded() {
        let cfg = MemoryConfig {
            page_bytes: 1024,
            budget_bytes: Some(10 * 1024),
        };
        let reqs: Vec<MemoryRequest> = (0..8).map(|i| req(i, 10.0 + i as f64, 3000)).collect();
        let out = allocate(&cfg, &reqs);
        let total: usize = out.iter().map(|a| a.bytes).sum();
        assert!(total <= 10 * 1024);
        // Highest priority (id 7) fully served: ceil(3000/1024) = 3 pages.
        assert_eq!(out[7].pages, 3);
    }

    #[test]
    fn buckets_from_bytes() {
        assert_eq!(buckets_for(8192, 64), 128);
        assert_eq!(buckets_for(10, 64), 1, "never zero buckets");
        assert_eq!(buckets_for(0, 0), 1);
    }

    #[test]
    fn priority_math() {
        assert!(req(0, 10.0, 100).priority() > req(1, 10.0, 1000).priority());
        assert_eq!(req(0, 5.0, 0).priority(), 5.0, "zero-size guard");
    }
}

#[cfg(test)]
mod budget_tests {
    use super::*;

    #[test]
    fn buckets_within_budget_respects_bytes() {
        // 8192 bytes, 200 B/entry + 120 B/slot → 25 raw → 16 buckets.
        assert_eq!(buckets_within_budget(8192, 200, 120), 16);
        // Tiny budget: zero buckets (cache unusable).
        assert_eq!(buckets_within_budget(100, 200, 120), 0);
        // Power-of-two rounding never exceeds the raw count.
        for bytes in [1000usize, 5000, 50_000, 123_456] {
            let b = buckets_within_budget(bytes, 64, 96);
            assert!(b == 0 || b.is_power_of_two());
            assert!(b * (64 + 96) <= bytes, "{b} buckets exceed {bytes}");
        }
    }
}
