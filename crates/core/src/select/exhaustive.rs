//! Exhaustive (branch-and-bound) cache selection — exact for any instance.
//!
//! §4.4: *"our experiments indicate that the overhead of exhaustively
//! searching over the 2^m possible combinations of the candidate caches is
//! typically negligible for n ≤ 6, even in an adaptive setting."* §6 uses the
//! same exhaustive search (with the quota `m`) for globally-consistent
//! caches, since the independent-set-hard problem admits no good
//! approximation.
//!
//! Implementation: depth-first over candidates ordered by pipeline/span,
//! skipping infeasible (overlapping) picks, with an optimistic bound — the
//! sum of all remaining positive benefits — to prune hopeless branches.

use super::{SelectionInstance, Solution};

/// Solver name reported in selection traces and telemetry events.
pub const NAME: &str = "exhaustive";

/// Exact maximizer of `Σ benefit − Σ group costs` over nonoverlapping
/// subsets.
///
/// Runtime is `O(2^m)` worst case; callers should cap `m` (the engine uses
/// an `exhaustive_limit`, defaulting to ~20).
pub fn solve_exhaustive(instance: &SelectionInstance) -> Solution {
    let m = instance.choices.len();
    // Suffix bound: best-case additional benefit from choices i.. (group
    // costs can't make it better than raw benefits).
    let mut suffix_bound = vec![0.0f64; m + 1];
    for i in (0..m).rev() {
        suffix_bound[i] = suffix_bound[i + 1] + instance.choices[i].benefit.max(0.0);
    }

    struct Dfs<'a> {
        inst: &'a SelectionInstance,
        suffix_bound: &'a [f64],
        current: Vec<usize>,
        group_counts: Vec<u32>,
        current_value: f64,
        best: Vec<usize>,
        best_value: f64,
    }

    impl Dfs<'_> {
        fn run(&mut self, i: usize) {
            if self.current_value > self.best_value {
                self.best_value = self.current_value;
                self.best = self.current.clone();
            }
            if i == self.inst.choices.len() {
                return;
            }
            if self.current_value + self.suffix_bound[i] <= self.best_value {
                return; // prune
            }
            // Branch 1: take i if feasible.
            let ci = &self.inst.choices[i];
            let feasible = self
                .current
                .iter()
                .all(|&j| !ci.overlaps(&self.inst.choices[j]));
            if feasible {
                let g = ci.group;
                let group_new = self.group_counts[g] == 0;
                self.group_counts[g] += 1;
                let delta = ci.benefit
                    - if group_new {
                        self.inst.group_cost[g]
                    } else {
                        0.0
                    };
                self.current.push(i);
                self.current_value += delta;
                self.run(i + 1);
                self.current.pop();
                self.current_value -= delta;
                self.group_counts[g] -= 1;
            }
            // Branch 2: skip i.
            self.run(i + 1);
        }
    }

    let mut dfs = Dfs {
        inst: instance,
        suffix_bound: &suffix_bound,
        current: Vec::new(),
        group_counts: vec![0; instance.group_cost.len()],
        current_value: 0.0,
        best: Vec::new(),
        best_value: 0.0,
    };
    dfs.run(0);
    let mut sol = dfs.best;
    sol.sort_unstable();
    sol
}

#[cfg(test)]
mod tests {
    use super::super::testutil::instance;
    use super::*;

    #[test]
    fn empty_and_all_negative() {
        let inst = instance(&[&[1.0]], &[], &[]);
        assert!(solve_exhaustive(&inst).is_empty());
        let neg = instance(&[&[1.0]], &[(0, 0, 0, 1.0, 0.1, 0)], &[5.0]);
        assert!(
            solve_exhaustive(&neg).is_empty(),
            "net −4 < choose-nothing 0"
        );
    }

    #[test]
    fn sharing_synergy_found() {
        // Each member alone is negative (3 − 5), but together 3+3+3 − 5 = 4.
        let inst = instance(
            &[&[10.0], &[10.0], &[10.0]],
            &[
                (0, 0, 0, 3.0, 1.0, 0),
                (1, 0, 0, 3.0, 1.0, 0),
                (2, 0, 0, 3.0, 1.0, 0),
            ],
            &[5.0],
        );
        let sol = solve_exhaustive(&inst);
        assert_eq!(sol, vec![0, 1, 2]);
        assert!((inst.net_objective(&sol) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_forces_choice() {
        // Two overlapping caches: must pick the better one.
        let inst = instance(
            &[&[5.0, 5.0, 5.0]],
            &[(0, 0, 1, 6.0, 1.0, 0), (0, 1, 2, 9.0, 1.0, 1)],
            &[1.0, 1.0],
        );
        let sol = solve_exhaustive(&inst);
        assert_eq!(sol, vec![1]);
    }

    #[test]
    fn mixed_instance_exact() {
        // Shared pair (group 0) vs a big overlapping solo cache (group 1).
        // Shared: 4+4 − 6 = 2. Solo: 7 − 2 = 5, but overlaps member 0 only.
        // Best: solo + member 1 = 5 + (4 − 6) < 5? member 1 alone with group
        // cost 6 is negative → best = solo + nothing = 5? or shared pair = 2.
        let inst = instance(
            &[&[9.0, 9.0], &[9.0]],
            &[
                (0, 0, 0, 4.0, 1.0, 0),
                (1, 0, 0, 4.0, 1.0, 0),
                (0, 0, 1, 7.0, 2.0, 1),
            ],
            &[6.0, 2.0],
        );
        let sol = solve_exhaustive(&inst);
        assert_eq!(sol, vec![2]);
        assert!((inst.net_objective(&sol) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn prunes_but_stays_exact_on_moderate_m() {
        // 18 independent caches with varied benefits; optimum = all positive
        // nets.
        let mut caches = Vec::new();
        let mut group_cost = Vec::new();
        let mut ops: Vec<Vec<f64>> = Vec::new();
        let mut expected = 0.0;
        for i in 0..18usize {
            ops.push(vec![10.0]);
            let benefit = (i as f64) - 5.0; // −5 .. 12
            caches.push((i, 0usize, 0usize, benefit, 0.5, i));
            group_cost.push(1.0);
            if benefit - 1.0 > 0.0 {
                expected += benefit - 1.0;
            }
        }
        let refs: Vec<&[f64]> = ops.iter().map(|v| v.as_slice()).collect();
        let inst = instance(&refs, &caches, &group_cost);
        let sol = solve_exhaustive(&inst);
        assert!((inst.net_objective(&sol) - expected).abs() < 1e-9);
    }
}
