//! The Appendix B greedy approximation (Theorem 4.3): O(log n)-approximate
//! minimization of `Σ proc + cost` with shared groups.
//!
//! Set-cover flavour: the universe is the set of join operators; every
//! operator must end up either covered by a chosen cache or paying its raw
//! cost (operators are "caches of zero length" in their own zero-cost
//! groups). Each iteration computes, per group `G_r`, the cheapest
//! *cost-rate*
//!
//! ```text
//! D_r = min_{S ⊆ G_r} (L_r + Σ_{c∈S} B_c) / (Σ_{c∈S} n_c)
//! ```
//!
//! where `B_c = proc(c)`, `n_c` = uncovered operators `c` covers, and — per
//! the Appendix B claim — the minimizing `S` is a prefix of the members
//! sorted by `B_c / n_c`. The group with the smallest `D_r` is taken, its
//! covered operators are deleted, and the process repeats. Overlaps among
//! chosen caches are resolved at the end by keeping the widest.

use super::{SelectionInstance, Solution};

/// Solver name reported in selection traces and telemetry events.
pub const NAME: &str = "greedy";

/// Greedy O(log n) approximation.
pub fn solve_greedy(instance: &SelectionInstance) -> Solution {
    let num_groups = instance.group_cost.len();
    let mut covered: Vec<Vec<bool>> = instance
        .op_proc
        .iter()
        .map(|p| vec![false; p.len()])
        .collect();
    let total_ops: usize = instance.op_proc.iter().map(Vec::len).sum();
    let mut covered_count = 0usize;
    let mut chosen: Vec<usize> = Vec::new();
    // Track which ops pseudo-covered (by their own zero-length cache).
    // Pseudo choice simply marks the op covered at its raw cost.

    while covered_count < total_ops {
        // Best real group by cost-rate.
        let mut best: Option<(f64, usize, Vec<usize>)> = None; // (D_r, group, members)
        for g in 0..num_groups {
            let mut members: Vec<(usize, f64, usize)> = instance
                .choices
                .iter()
                .enumerate()
                .filter(|(_, c)| c.group == g)
                .filter_map(|(i, c)| {
                    let n = (c.start..=c.end)
                        .filter(|&p| !covered[c.pipeline][p])
                        .count();
                    if n == 0 {
                        None
                    } else {
                        Some((i, c.proc, n))
                    }
                })
                .collect();
            if members.is_empty() {
                continue;
            }
            members.sort_by(|a, b| (a.1 / a.2 as f64).partial_cmp(&(b.1 / b.2 as f64)).unwrap());
            let mut acc_b = instance.group_cost[g];
            let mut acc_n = 0usize;
            let mut best_prefix_rate = f64::INFINITY;
            let mut best_prefix_len = 0usize;
            for (len, &(_, b, n)) in members.iter().enumerate() {
                acc_b += b;
                acc_n += n;
                let rate = acc_b / acc_n as f64;
                if rate < best_prefix_rate {
                    best_prefix_rate = rate;
                    best_prefix_len = len + 1;
                }
            }
            let prefix: Vec<usize> = members[..best_prefix_len].iter().map(|m| m.0).collect();
            if best
                .as_ref()
                .map(|(d, _, _)| best_prefix_rate < *d)
                .unwrap_or(true)
            {
                best = Some((best_prefix_rate, g, prefix));
            }
        }

        // Cheapest pseudo (single uncovered operator at raw cost, rate =
        // op_proc / 1).
        let mut best_pseudo: Option<(f64, usize, usize)> = None;
        for (i, pipeline) in instance.op_proc.iter().enumerate() {
            for (j, &p) in pipeline.iter().enumerate() {
                if !covered[i][j] && best_pseudo.map(|(d, _, _)| p < d).unwrap_or(true) {
                    best_pseudo = Some((p, i, j));
                }
            }
        }

        let take_real = match (&best, best_pseudo) {
            (Some((d, _, _)), Some((dp, _, _))) => *d <= dp,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };

        if take_real {
            let (_, _, members) = best.expect("checked");
            for i in members {
                let c = &instance.choices[i];
                for slot in &mut covered[c.pipeline][c.start..=c.end] {
                    if !*slot {
                        *slot = true;
                        covered_count += 1;
                    }
                }
                chosen.push(i);
            }
        } else {
            let (_, i, j) = best_pseudo.expect("checked");
            covered[i][j] = true;
            covered_count += 1;
        }
    }

    // Resolve overlaps among chosen real caches; drop anything that ends up
    // with negative marginal value versus just paying the ops (cheap
    // post-filter that only improves the objective).
    let mut sol = instance.resolve_overlaps(chosen);
    loop {
        let base = instance.net_objective(&sol);
        let mut improved = false;
        for drop_idx in 0..sol.len() {
            let mut trial = sol.clone();
            trial.remove(drop_idx);
            if instance.net_objective(&trial) > base {
                sol = trial;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    sol
}

#[cfg(test)]
mod tests {
    use super::super::exhaustive::solve_exhaustive;
    use super::super::testutil::instance;
    use super::*;

    #[test]
    fn trivial_cases() {
        let inst = instance(&[&[1.0, 2.0]], &[], &[]);
        assert!(solve_greedy(&inst).is_empty());
    }

    #[test]
    fn prefers_cheap_shared_group() {
        // Shared group covering three pipelines at tiny proc beats pseudos.
        let inst = instance(
            &[&[10.0], &[10.0], &[10.0]],
            &[
                (0, 0, 0, 9.0, 1.0, 0),
                (1, 0, 0, 9.0, 1.0, 0),
                (2, 0, 0, 9.0, 1.0, 0),
            ],
            &[2.0],
        );
        let sol = solve_greedy(&inst);
        assert_eq!(sol, vec![0, 1, 2]);
    }

    #[test]
    fn skips_expensive_caches() {
        // proc 50 vs op cost 10: pseudo wins; empty solution.
        let inst = instance(&[&[10.0]], &[(0, 0, 0, -40.0, 50.0, 0)], &[0.0]);
        assert!(solve_greedy(&inst).is_empty());
    }

    #[test]
    fn prefix_claim_exercised() {
        // Group with members of increasing B/n; optimal prefix is the first
        // two (adding the third worsens the rate).
        let inst = instance(
            &[&[10.0], &[10.0], &[10.0]],
            &[
                (0, 0, 0, 9.5, 0.5, 0),
                (1, 0, 0, 9.0, 1.0, 0),
                (2, 0, 0, 0.0, 10.0, 0), // terrible member
            ],
            &[1.0],
        );
        let sol = solve_greedy(&inst);
        assert!(sol.contains(&0) && sol.contains(&1));
        assert!(!sol.contains(&2), "bad member excluded from prefix");
    }

    #[test]
    fn feasible_and_near_optimal_on_random_instances() {
        let mut seed = 0xC0FFEEu64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..40 {
            // 3 pipelines × 3 ops; caches with random nested spans; ~4 groups.
            let ops: Vec<Vec<f64>> = (0..3)
                .map(|_| (0..3).map(|_| (rng() % 100) as f64 + 10.0).collect())
                .collect();
            let mut caches = Vec::new();
            #[allow(clippy::needless_range_loop)] // per-pipeline index math
            for pi in 0..3usize {
                for (s, e) in [(0usize, 0usize), (1, 2), (0, 2)] {
                    if rng() % 3 == 0 {
                        continue;
                    }
                    let covered: f64 = ops[pi][s..=e].iter().sum();
                    let proc = (rng() % 100) as f64 / 100.0 * covered;
                    let benefit = covered - proc;
                    let group = (rng() % 4) as usize;
                    caches.push((pi, s, e, benefit, proc, group));
                }
            }
            let group_cost: Vec<f64> = (0..4).map(|_| (rng() % 40) as f64).collect();
            let refs: Vec<&[f64]> = ops.iter().map(|v| v.as_slice()).collect();
            let inst = instance(&refs, &caches, &group_cost);
            let greedy = solve_greedy(&inst);
            assert!(inst.is_feasible(&greedy), "trial {trial} infeasible");
            let opt = solve_exhaustive(&inst);
            let bound = (inst.op_proc.iter().map(Vec::len).sum::<usize>() as f64).ln() + 2.0;
            let g_cost = inst.total_cost(&greedy);
            let o_cost = inst.total_cost(&opt);
            assert!(
                g_cost <= bound * o_cost + 1e-6,
                "trial {trial}: greedy {g_cost} > {bound} × optimal {o_cost}"
            );
        }
    }

    #[test]
    fn group_sharing_synergy_matches_exhaustive_when_clearcut() {
        let inst = instance(
            &[&[20.0], &[20.0]],
            &[(0, 0, 0, 18.0, 2.0, 0), (1, 0, 0, 18.0, 2.0, 0)],
            &[10.0],
        );
        let g = solve_greedy(&inst);
        let e = solve_exhaustive(&inst);
        assert_eq!(g, e);
        assert_eq!(g, vec![0, 1]);
    }
}
