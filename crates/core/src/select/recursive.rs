//! The optimal O(m) recursive algorithm for unshared candidates
//! (Theorem 4.1 / the unshared case of Theorem 4.2).
//!
//! Within one pipeline, overlapping candidates are nested (the prefix
//! invariant forces containment — §4.4), so they form a forest under
//! containment. Bottom-up, the optimal value of the subtree rooted at cache
//! `C` is `max(net(C), Σ optimal(children of C))`; the answer is the sum over
//! roots, clamping negative subtrees to "choose nothing".
//!
//! When candidates *are* shared this remains a valid (feasible) heuristic —
//! it simply charges every chosen member its full group cost, underestimating
//! sharing synergy — but optimality is only guaranteed without sharing.

use super::{SelectionInstance, Solution};

/// Solver name reported in selection traces and telemetry events.
pub const NAME: &str = "recursive";

/// Solve by per-pipeline containment-forest dynamic programming.
///
/// # Panics
/// Panics if two candidates in one pipeline overlap without nesting (the
/// prefix invariant guarantees this never happens for plain candidates;
/// globally-consistent candidates may violate it, so route instances with
/// global caches to exhaustive/greedy search instead).
pub fn solve_recursive(instance: &SelectionInstance) -> Solution {
    let m = instance.choices.len();
    // Net value of choosing a candidate alone: benefit − its group's cost.
    let net = |i: usize| -> f64 {
        let c = &instance.choices[i];
        c.benefit - instance.group_cost[c.group]
    };

    // Candidates with *identical* spans in one pipeline can never be chosen
    // together (they overlap), and the one with the best net value dominates
    // the rest — so the containment forest is built over one representative
    // per distinct span. Without this, duplicates nest both ways, neither
    // becomes the other's parent, and the walk below would emit both.
    let mut rep: std::collections::HashMap<(usize, usize, usize), usize> =
        std::collections::HashMap::new();
    for i in 0..m {
        let c = &instance.choices[i];
        let e = rep.entry((c.pipeline, c.start, c.end)).or_insert(i);
        if net(i) > net(*e) {
            *e = i;
        }
    }
    let active: Vec<bool> = (0..m)
        .map(|i| {
            let c = &instance.choices[i];
            rep[&(c.pipeline, c.start, c.end)] == i
        })
        .collect();

    // parent[i] = smallest strict superset in the same pipeline.
    let mut parent = vec![usize::MAX; m];
    #[allow(clippy::needless_range_loop)] // index math over two candidates
    for i in 0..m {
        if !active[i] {
            continue;
        }
        let ci = &instance.choices[i];
        let mut best: Option<usize> = None;
        for j in 0..m {
            if i == j || !active[j] {
                continue;
            }
            let cj = &instance.choices[j];
            if cj.pipeline != ci.pipeline {
                continue;
            }
            let contains = cj.start <= ci.start && ci.end <= cj.end && cj.ops() > ci.ops();
            if contains {
                match best {
                    None => best = Some(j),
                    Some(b) => {
                        if instance.choices[b].ops() > cj.ops() {
                            best = Some(j);
                        }
                    }
                }
            } else {
                let nested = (cj.start <= ci.start && ci.end <= cj.end)
                    || (ci.start <= cj.start && cj.end <= ci.end);
                assert!(
                    !ci.overlaps(cj) || nested,
                    "partial overlap between candidates {i} and {j}: prefix invariant violated"
                );
            }
        }
        if let Some(b) = best {
            parent[i] = b;
        }
    }

    // Children lists; process by increasing span so children are finished
    // before parents.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); m];
    for i in 0..m {
        if active[i] && parent[i] != usize::MAX {
            children[parent[i]].push(i);
        }
    }
    let mut order: Vec<usize> = (0..m).filter(|&i| active[i]).collect();
    order.sort_by_key(|&i| instance.choices[i].ops());

    // best[i]: optimal net value achievable inside i's span; pick[i]: whether
    // the optimum takes i itself.
    let mut best = vec![0.0f64; m];
    let mut take = vec![false; m];
    for &i in &order {
        let child_sum: f64 = children[i].iter().map(|&c| best[c]).sum();
        let own = net(i);
        if own > child_sum && own > 0.0 {
            best[i] = own;
            take[i] = true;
        } else {
            best[i] = child_sum.max(0.0);
            take[i] = false;
        }
    }

    // Collect: walk down from roots; where take[i], choose i and stop.
    let mut sol = Vec::new();
    let mut stack: Vec<usize> = (0..m)
        .filter(|&i| active[i] && parent[i] == usize::MAX)
        .collect();
    while let Some(i) = stack.pop() {
        if best[i] <= 0.0 {
            continue;
        }
        if take[i] {
            sol.push(i);
        } else {
            stack.extend(children[i].iter().copied());
        }
    }
    sol.sort_unstable();
    sol
}

#[cfg(test)]
mod tests {
    use super::super::testutil::instance;
    use super::*;

    #[test]
    fn empty_instance() {
        let inst = instance(&[&[1.0, 2.0]], &[], &[]);
        assert!(solve_recursive(&inst).is_empty());
    }

    #[test]
    fn single_positive_cache_chosen() {
        let inst = instance(&[&[10.0, 10.0]], &[(0, 0, 1, 15.0, 5.0, 0)], &[4.0]);
        assert_eq!(solve_recursive(&inst), vec![0]);
    }

    #[test]
    fn negative_net_cache_skipped() {
        let inst = instance(&[&[10.0, 10.0]], &[(0, 0, 1, 3.0, 5.0, 0)], &[4.0]);
        assert!(solve_recursive(&inst).is_empty(), "3 − 4 < 0");
    }

    #[test]
    fn parent_vs_children_tradeoff() {
        // Big cache net 10; two nested children nets 7 + 6 = 13 > 10.
        let inst = instance(
            &[&[5.0, 5.0, 5.0, 5.0]],
            &[
                (0, 0, 3, 12.0, 1.0, 0), // net 10
                (0, 0, 1, 8.0, 1.0, 1),  // net 7
                (0, 2, 3, 7.0, 1.0, 2),  // net 6
            ],
            &[2.0, 1.0, 1.0],
        );
        let sol = solve_recursive(&inst);
        assert_eq!(sol, vec![1, 2]);
        // Flip: make the parent dominant.
        let inst2 = instance(
            &[&[5.0, 5.0, 5.0, 5.0]],
            &[
                (0, 0, 3, 20.0, 1.0, 0), // net 18
                (0, 0, 1, 8.0, 1.0, 1),
                (0, 2, 3, 7.0, 1.0, 2),
            ],
            &[2.0, 1.0, 1.0],
        );
        assert_eq!(solve_recursive(&inst2), vec![0]);
    }

    #[test]
    fn three_level_nesting() {
        // Grandparent > parent > child; child alone best.
        let inst = instance(
            &[&[1.0; 6]],
            &[
                (0, 0, 5, 5.0, 0.5, 0), // net 4
                (0, 0, 3, 5.5, 0.5, 1), // net 4.5
                (0, 1, 2, 6.0, 0.5, 2), // net 5
            ],
            &[1.0, 1.0, 1.0],
        );
        assert_eq!(solve_recursive(&inst), vec![2]);
    }

    #[test]
    fn independent_pipelines_solved_independently() {
        let inst = instance(
            &[&[10.0, 10.0], &[10.0, 10.0]],
            &[(0, 0, 1, 9.0, 1.0, 0), (1, 0, 1, 2.0, 1.0, 1)],
            &[1.0, 3.0],
        );
        let sol = solve_recursive(&inst);
        assert_eq!(sol, vec![0], "pipeline 1's cache has negative net");
    }

    #[test]
    fn duplicate_spans_yield_one_choice() {
        // Two candidates over the same span nest both ways; the DP must pick
        // at most one (the better net), never both.
        let inst = instance(
            &[&[10.0, 10.0]],
            &[(0, 0, 1, 12.0, 1.0, 0), (0, 0, 1, 15.0, 1.0, 1)],
            &[1.0, 1.0],
        );
        let sol = solve_recursive(&inst);
        assert!(inst.is_feasible(&sol), "duplicates chosen together: {sol:?}");
        assert_eq!(sol, vec![1], "the higher-net duplicate wins");
    }

    #[test]
    fn matches_exhaustive_on_random_unshared_instances() {
        // Deterministic pseudo-random nested instances; DP must equal
        // exhaustive search exactly.
        let mut seed = 0xDEADBEEFu64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..50 {
            let n_ops = 6;
            let mut caches = Vec::new();
            // Generate a random laminar family: only *leaves* may be split,
            // so no two spans ever partially overlap.
            let mut spans: Vec<(usize, usize)> = vec![(0usize, n_ops - 1)];
            let mut leaves: Vec<(usize, usize)> = vec![(0, n_ops - 1)];
            for _ in 0..4 {
                if leaves.is_empty() {
                    break;
                }
                let pick = (rng() % leaves.len() as u64) as usize;
                let (s, e) = leaves[pick];
                if e - s < 1 {
                    continue;
                }
                leaves.swap_remove(pick);
                let mid = s + (rng() as usize % (e - s));
                for child in [(s, mid), (mid + 1, e)] {
                    spans.push(child);
                    leaves.push(child);
                }
            }
            for (g, &(s, e)) in spans.iter().enumerate() {
                let benefit = (rng() % 100) as f64 / 10.0;
                let proc = (rng() % 20) as f64 / 10.0;
                caches.push((0usize, s, e, benefit, proc, g));
            }
            let group_cost: Vec<f64> = (0..caches.len())
                .map(|_| (rng() % 30) as f64 / 10.0)
                .collect();
            let ops: Vec<f64> = (0..n_ops).map(|_| (rng() % 50) as f64).collect();
            let refs: Vec<&[f64]> = vec![&ops];
            let inst = instance(&refs, &caches, &group_cost);
            let dp = solve_recursive(&inst);
            let ex = super::super::exhaustive::solve_exhaustive(&inst);
            assert!(inst.is_feasible(&dp));
            assert!(
                (inst.net_objective(&dp) - inst.net_objective(&ex)).abs() < 1e-9,
                "trial {trial}: DP {} != exhaustive {}",
                inst.net_objective(&dp),
                inst.net_objective(&ex)
            );
        }
    }
}
