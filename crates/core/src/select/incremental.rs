//! Incremental cache selection (paper §8, future work (i)):
//! *"Develop an incremental algorithm that adds or drops caches based solely
//! on the statistics that have changed"* — instead of re-deriving the
//! selection from scratch at every re-optimization, warm-start from the
//! previous solution and apply local improvement moves until fixpoint.
//!
//! Moves considered each round, best-improvement first:
//! * **drop** a chosen cache whose removal raises the net objective,
//! * **add** a candidate that doesn't overlap the current picks,
//! * **swap** a candidate in for everything it overlaps.
//!
//! The result is a local optimum containing the previous solution's
//! still-good members; on instances where single moves suffice it matches
//! the exact optimum, and it never returns anything worse than the previous
//! solution (or than choosing nothing). Cost per round is `O(m²)` versus
//! the exhaustive solver's `O(2^m)`.

use super::{SelectionInstance, Solution};

/// Solver name reported in selection traces and telemetry events.
pub const NAME: &str = "incremental";

/// Maximum improvement rounds (each strictly improves the objective, so this
/// is a safety bound, not a tuning knob).
const MAX_ROUNDS: usize = 200;

/// Warm-start local search from `previous` (invalid ids are ignored;
/// infeasible subsets are repaired by dropping lower-benefit members).
pub fn solve_incremental(instance: &SelectionInstance, previous: &Solution) -> Solution {
    // Sanitize the warm start: known ids, overlaps resolved.
    let valid: Vec<usize> = previous
        .iter()
        .copied()
        .filter(|&i| i < instance.choices.len())
        .collect();
    let mut current = instance.resolve_overlaps(valid);

    for _ in 0..MAX_ROUNDS {
        let base = instance.net_objective(&current);
        let mut best: Option<(f64, Solution)> = None;
        let consider = |cand: Solution, best: &mut Option<(f64, Solution)>| {
            let net = instance.net_objective(&cand);
            if net > base + 1e-12 && best.as_ref().map(|(b, _)| net > *b).unwrap_or(true) {
                *best = Some((net, cand));
            }
        };

        // Drops.
        for pos in 0..current.len() {
            let mut trial = current.clone();
            trial.remove(pos);
            consider(trial, &mut best);
        }
        // Adds and swaps.
        for i in 0..instance.choices.len() {
            if current.contains(&i) {
                continue;
            }
            let overlapping: Vec<usize> = current
                .iter()
                .copied()
                .filter(|&j| instance.choices[i].overlaps(&instance.choices[j]))
                .collect();
            let mut trial: Solution = current
                .iter()
                .copied()
                .filter(|j| !overlapping.contains(j))
                .collect();
            trial.push(i);
            trial.sort_unstable();
            consider(trial, &mut best);
        }

        match best {
            Some((_, next)) => current = next,
            None => break,
        }
    }
    current.sort_unstable();
    current
}

#[cfg(test)]
mod tests {
    use super::super::exhaustive::solve_exhaustive;
    use super::super::testutil::instance;
    use super::*;

    #[test]
    fn empty_start_finds_positive_caches() {
        let inst = instance(
            &[&[50.0], &[50.0]],
            &[(0, 0, 0, 40.0, 10.0, 0), (1, 0, 0, 40.0, 10.0, 1)],
            &[5.0, 5.0],
        );
        let sol = solve_incremental(&inst, &vec![]);
        assert_eq!(sol, vec![0, 1]);
    }

    #[test]
    fn stale_members_dropped() {
        // Previous solution contains a now-harmful cache (negative net).
        let inst = instance(&[&[50.0]], &[(0, 0, 0, 2.0, 10.0, 0)], &[8.0]);
        let sol = solve_incremental(&inst, &vec![0]);
        assert!(sol.is_empty(), "harmful warm-start member must be dropped");
    }

    #[test]
    fn swap_replaces_overlapping_worse_choice() {
        let inst = instance(
            &[&[30.0, 30.0]],
            &[
                (0, 0, 0, 10.0, 1.0, 0), // small cache, net 9
                (0, 0, 1, 50.0, 2.0, 1), // big cache, net 45, overlaps it
            ],
            &[1.0, 5.0],
        );
        let sol = solve_incremental(&inst, &vec![0]);
        assert_eq!(sol, vec![1], "swap to the dominating cache");
    }

    #[test]
    fn invalid_previous_ids_ignored() {
        let inst = instance(&[&[10.0]], &[(0, 0, 0, 8.0, 1.0, 0)], &[2.0]);
        let sol = solve_incremental(&inst, &vec![99, 0, 1234]);
        assert_eq!(sol, vec![0]);
    }

    #[test]
    fn never_worse_than_warm_start_or_empty() {
        let mut seedv = 0x17C5u64;
        let mut rng = move || {
            seedv ^= seedv << 13;
            seedv ^= seedv >> 7;
            seedv ^= seedv << 17;
            seedv
        };
        for _ in 0..30 {
            let ops: Vec<Vec<f64>> = (0..2)
                .map(|_| (0..3).map(|_| (rng() % 80) as f64 + 20.0).collect())
                .collect();
            let mut caches = Vec::new();
            #[allow(clippy::needless_range_loop)] // per-pipeline index math
            for pi in 0..2usize {
                for (s, e) in [(0usize, 1usize), (2, 2), (0, 2)] {
                    let covered: f64 = ops[pi][s..=e].iter().sum();
                    let proc = (rng() % 100) as f64 / 100.0 * covered;
                    caches.push((pi, s, e, covered - proc, proc, (rng() % 3) as usize));
                }
            }
            let group_cost: Vec<f64> = (0..3).map(|_| (rng() % 40) as f64).collect();
            let refs: Vec<&[f64]> = ops.iter().map(|v| v.as_slice()).collect();
            let inst = instance(&refs, &caches, &group_cost);
            let warm: Vec<usize> = (0..caches.len()).filter(|_| rng() % 2 == 0).collect();
            let warm = inst.resolve_overlaps(warm);
            let sol = solve_incremental(&inst, &warm);
            assert!(inst.is_feasible(&sol));
            assert!(inst.net_objective(&sol) >= inst.net_objective(&warm) - 1e-9);
            assert!(inst.net_objective(&sol) >= -1e-9);
            // And it should usually land close to the exact optimum on these
            // small instances; verify it's within a loose factor to catch
            // gross regressions without demanding global optimality.
            let opt = solve_exhaustive(&inst);
            let opt_net = inst.net_objective(&opt);
            if opt_net > 1.0 {
                assert!(
                    inst.net_objective(&sol) >= 0.5 * opt_net,
                    "local optimum {} too far from exact {}",
                    inst.net_objective(&sol),
                    opt_net
                );
            }
        }
    }
}
