//! Offline cache selection (§4.4, Appendix B).
//!
//! Given benefits/costs for every candidate, pick the nonoverlapping subset
//! `X` maximizing `Σ_{C∈X} benefit(C) − cost(C)`, where shared caches
//! (Definition 4.1) pay their maintenance cost **once** per group.
//! Equivalently (and how the approximation algorithms are stated): minimize
//! `Σ_{C∈X} proc(C) + Σ_{uncovered ops} d·c + Σ_{used groups} cost(group)` —
//! each join operator is either covered by a chosen cache or pays its raw
//! processing cost (operators as "zero-length caches").
//!
//! Four solvers, matching the paper:
//! * [`recursive::solve_recursive`] — the O(m) tree DP, optimal when no
//!   caches are shared (Theorems 4.1/4.2).
//! * [`exhaustive::solve_exhaustive`] — branch-and-bound over all subsets,
//!   optimal always; practical for the paper's `m ≤ ~20` (§4.4 notes 2^m
//!   search is "typically negligible for n ≤ 6").
//! * [`greedy::solve_greedy`] — the Appendix B set-cover-style greedy,
//!   O(log n)-approximate with sharing.
//! * [`randomized::solve_randomized`] — the Appendix B LP relaxation +
//!   randomized rounding, O(log n)-approximate, built on `acq-lp`.

pub mod exhaustive;
pub mod greedy;
pub mod incremental;
pub mod randomized;
pub mod recursive;

pub use exhaustive::solve_exhaustive;
pub use greedy::solve_greedy;
pub use incremental::solve_incremental;
pub use randomized::solve_randomized;
pub use recursive::solve_recursive;

/// One selectable cache, abstracted from pipelines to numbers.
#[derive(Debug, Clone)]
pub struct CacheChoice {
    /// Caller-meaningful candidate id (index into the engine's candidate
    /// list).
    pub id: usize,
    /// Hosting pipeline index.
    pub pipeline: usize,
    /// First covered operator position.
    pub start: usize,
    /// Last covered operator position (inclusive).
    pub end: usize,
    /// `benefit(C)` (§4.1).
    pub benefit: f64,
    /// `proc(C)` (§4.4).
    pub proc: f64,
    /// Shared group; `cost(group)` is paid once if any member is chosen.
    pub group: usize,
}

impl CacheChoice {
    /// Operators covered.
    pub fn ops(&self) -> usize {
        self.end - self.start + 1
    }

    /// Overlap test (same pipeline, intersecting spans).
    pub fn overlaps(&self, other: &CacheChoice) -> bool {
        self.pipeline == other.pipeline && self.start <= other.end && other.start <= self.end
    }
}

/// A cache-selection problem instance.
#[derive(Debug, Clone)]
pub struct SelectionInstance {
    /// `op_proc[i][j]` = `d_ij · c_ij`: unit-time processing cost of operator
    /// `j` of pipeline `i` when not covered by any cache.
    pub op_proc: Vec<Vec<f64>>,
    /// The candidates.
    pub choices: Vec<CacheChoice>,
    /// Per-group maintenance cost (indexed by `CacheChoice::group`).
    pub group_cost: Vec<f64>,
}

/// A solution: indices into `choices`, sorted, mutually nonoverlapping.
pub type Solution = Vec<usize>;

impl SelectionInstance {
    /// Total uncached processing cost `Σ_{i,j} op_proc[i][j]`.
    pub fn total_op_proc(&self) -> f64 {
        self.op_proc.iter().flatten().sum()
    }

    /// Is the solution feasible (valid ids, pairwise nonoverlapping)?
    pub fn is_feasible(&self, sol: &Solution) -> bool {
        for (a, &i) in sol.iter().enumerate() {
            if i >= self.choices.len() {
                return false;
            }
            for &j in &sol[a + 1..] {
                if self.choices[i].overlaps(&self.choices[j]) {
                    return false;
                }
            }
        }
        true
    }

    /// The maximization objective: `Σ benefit − Σ_{groups used} cost`.
    pub fn net_objective(&self, sol: &Solution) -> f64 {
        let mut benefit = 0.0;
        let mut groups_used = vec![false; self.group_cost.len()];
        for &i in sol {
            benefit += self.choices[i].benefit;
            groups_used[self.choices[i].group] = true;
        }
        let cost: f64 = groups_used
            .iter()
            .zip(&self.group_cost)
            .filter(|(used, _)| **used)
            .map(|(_, c)| *c)
            .sum();
        benefit - cost
    }

    /// The minimization objective: chosen `proc` + uncovered op costs +
    /// group costs. Equals `total_op_proc() − net_objective()` (§4.4
    /// duality; asserted in tests).
    pub fn total_cost(&self, sol: &Solution) -> f64 {
        let mut covered: Vec<Vec<bool>> =
            self.op_proc.iter().map(|p| vec![false; p.len()]).collect();
        let mut total = 0.0;
        let mut groups_used = vec![false; self.group_cost.len()];
        for &i in sol {
            let c = &self.choices[i];
            total += c.proc;
            groups_used[c.group] = true;
            for slot in &mut covered[c.pipeline][c.start..=c.end] {
                *slot = true;
            }
        }
        for (i, pipeline) in self.op_proc.iter().enumerate() {
            for (j, &p) in pipeline.iter().enumerate() {
                if !covered[i][j] {
                    total += p;
                }
            }
        }
        total
            + groups_used
                .iter()
                .zip(&self.group_cost)
                .filter(|(used, _)| **used)
                .map(|(_, c)| *c)
                .sum::<f64>()
    }

    /// True when some group has more than one member (sharing present).
    pub fn has_sharing(&self) -> bool {
        let mut seen = vec![0u32; self.group_cost.len()];
        for c in &self.choices {
            seen[c.group] += 1;
            if seen[c.group] > 1 {
                return true;
            }
        }
        false
    }

    /// Drop overlapping picks, keeping (greedily) the choice covering the
    /// most operators (Appendix B's final overlap resolution). Input order is
    /// irrelevant; output is sorted and feasible.
    pub fn resolve_overlaps(&self, mut picks: Vec<usize>) -> Solution {
        picks.sort_unstable();
        picks.dedup();
        // Prefer more ops; tie-break higher benefit, then lower id.
        picks.sort_by(|&a, &b| {
            let (ca, cb) = (&self.choices[a], &self.choices[b]);
            cb.ops()
                .cmp(&ca.ops())
                .then(cb.benefit.partial_cmp(&ca.benefit).unwrap())
                .then(a.cmp(&b))
        });
        let mut kept: Vec<usize> = Vec::new();
        for p in picks {
            if kept
                .iter()
                .all(|&k| !self.choices[p].overlaps(&self.choices[k]))
            {
                kept.push(p);
            }
        }
        kept.sort_unstable();
        kept
    }
}

/// Pick the best solver for an instance, per §4.4: the optimal recursive
/// algorithm when nothing is shared, exhaustive search while `2^m` stays
/// negligible, the greedy approximation beyond that.
pub fn solve_auto(instance: &SelectionInstance, exhaustive_limit: usize) -> Solution {
    if !instance.has_sharing() {
        solve_recursive(instance)
    } else if instance.choices.len() <= exhaustive_limit {
        solve_exhaustive(instance)
    } else {
        solve_greedy(instance)
    }
}

/// The solver [`solve_auto`] would dispatch to for this instance — used by
/// the engine's selection trace so `selection.run` events name the concrete
/// algorithm, not "auto".
pub fn auto_solver_name(instance: &SelectionInstance, exhaustive_limit: usize) -> &'static str {
    if !instance.has_sharing() {
        recursive::NAME
    } else if instance.choices.len() <= exhaustive_limit {
        exhaustive::NAME
    } else {
        greedy::NAME
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Build an instance quickly: `ops[i]` = op costs of pipeline `i`;
    /// `caches` = (pipeline, start, end, benefit, proc, group);
    /// `group_cost` per group.
    pub fn instance(
        ops: &[&[f64]],
        caches: &[(usize, usize, usize, f64, f64, usize)],
        group_cost: &[f64],
    ) -> SelectionInstance {
        SelectionInstance {
            op_proc: ops.iter().map(|p| p.to_vec()).collect(),
            choices: caches
                .iter()
                .enumerate()
                .map(
                    |(id, &(pipeline, start, end, benefit, proc, group))| CacheChoice {
                        id,
                        pipeline,
                        start,
                        end,
                        benefit,
                        proc,
                        group,
                    },
                )
                .collect(),
            group_cost: group_cost.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::instance;
    use super::*;

    #[test]
    fn duality_net_vs_total_cost() {
        // benefit must equal covered op_proc − proc for duality to hold; use
        // consistent numbers: cache covers ops worth 100+50, proc = 30 →
        // benefit = 120.
        let inst = instance(
            &[&[100.0, 50.0], &[70.0]],
            &[(0, 0, 1, 120.0, 30.0, 0)],
            &[10.0],
        );
        for sol in [vec![], vec![0usize]] {
            let net = inst.net_objective(&sol);
            let total = inst.total_cost(&sol);
            assert!(
                (inst.total_op_proc() - net - total).abs() < 1e-9,
                "duality broken for {sol:?}: {net} + {total} != {}",
                inst.total_op_proc()
            );
        }
    }

    #[test]
    fn feasibility_checks_overlap() {
        let inst = instance(
            &[&[1.0, 1.0, 1.0]],
            &[
                (0, 0, 1, 1.0, 0.1, 0),
                (0, 1, 2, 1.0, 0.1, 1),
                (0, 2, 2, 1.0, 0.1, 2),
            ],
            &[0.0, 0.0, 0.0],
        );
        assert!(inst.is_feasible(&vec![0]));
        assert!(inst.is_feasible(&vec![0, 2]));
        assert!(!inst.is_feasible(&vec![0, 1]));
        assert!(!inst.is_feasible(&vec![99]));
    }

    #[test]
    fn shared_group_cost_paid_once() {
        let inst = instance(
            &[&[10.0], &[10.0]],
            &[(0, 0, 0, 8.0, 1.0, 0), (1, 0, 0, 8.0, 1.0, 0)],
            &[5.0],
        );
        assert_eq!(inst.net_objective(&vec![0]), 3.0);
        assert_eq!(inst.net_objective(&vec![0, 1]), 11.0, "8+8−5, cost once");
        assert!(inst.has_sharing());
    }

    #[test]
    fn resolve_overlaps_keeps_biggest() {
        let inst = instance(
            &[&[1.0, 1.0, 1.0]],
            &[
                (0, 0, 2, 5.0, 0.1, 0), // covers 3 ops
                (0, 0, 0, 3.0, 0.1, 1),
                (0, 2, 2, 3.0, 0.1, 2),
            ],
            &[0.0; 3],
        );
        let sol = inst.resolve_overlaps(vec![1, 0, 2]);
        assert_eq!(
            sol,
            vec![0],
            "big cache wins, overlapping small ones dropped"
        );
        let sol2 = inst.resolve_overlaps(vec![1, 2]);
        assert_eq!(sol2, vec![1, 2], "nonoverlapping pair kept");
    }

    #[test]
    fn auto_dispatch() {
        let no_share = instance(&[&[10.0]], &[(0, 0, 0, 8.0, 1.0, 0)], &[1.0]);
        assert!(!no_share.has_sharing());
        let sol = solve_auto(&no_share, 16);
        assert_eq!(sol, vec![0]);
    }
}
