//! The Appendix B randomized-rounding approximation (Theorem B.1): solve the
//! LP relaxation of the cache-selection integer program with `acq-lp`, then
//! round group-by-group with independent uniform thresholds, repeating
//! `O(log m)` times so every operator is covered with high probability.
//!
//! Integer program (Appendix B):
//!
//! ```text
//! minimize    Σ_c B_c·x_c + Σ_r L_r·z_r
//! subject to  Σ_{c : p ∈ c} x_c = 1          for every operator p
//!             x_c ≤ z_{group(c)}             for every cache c
//!             x, z ∈ {0,1}   (relaxed to [0,1])
//! ```
//!
//! where operators themselves participate as zero-length caches with
//! `B = d·c` and `L = 0`.

use super::{SelectionInstance, Solution};

/// Solver name reported in selection traces and telemetry events.
pub const NAME: &str = "randomized";
use acq_lp::{LinearProgram, LpResult};

/// Deterministic xorshift64* generator so rounding is reproducible.
#[derive(Debug, Clone)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed.max(1))
    }

    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Randomized LP-rounding approximation. `seed` makes it deterministic.
///
/// Falls back to an empty solution if the LP solver fails (cannot happen for
/// well-formed instances — the all-pseudo solution is always feasible — but
/// kept defensive).
pub fn solve_randomized(instance: &SelectionInstance, seed: u64) -> Solution {
    let m = instance.choices.len();
    let num_groups = instance.group_cost.len();
    // Operator universe, flattened.
    let ops: Vec<(usize, usize, f64)> = instance
        .op_proc
        .iter()
        .enumerate()
        .flat_map(|(i, pipe)| pipe.iter().enumerate().map(move |(j, &p)| (i, j, p)))
        .collect();
    let num_ops = ops.len();
    if num_ops == 0 {
        return Vec::new();
    }

    // Variable layout: [x_real (m)] [x_pseudo (num_ops)] [z (num_groups)].
    let nv = m + num_ops + num_groups;
    let mut objective = vec![0.0; nv];
    for (c, obj) in instance.choices.iter().zip(objective.iter_mut()) {
        *obj = c.proc;
    }
    for (k, &(_, _, p)) in ops.iter().enumerate() {
        objective[m + k] = p;
    }
    for g in 0..num_groups {
        objective[m + num_ops + g] = instance.group_cost[g];
    }

    let mut lp = LinearProgram::minimize(objective);
    // Coverage equalities.
    for (k, &(pi, pj, _)) in ops.iter().enumerate() {
        let mut row = vec![0.0; nv];
        for (ci, c) in instance.choices.iter().enumerate() {
            if c.pipeline == pi && c.start <= pj && pj <= c.end {
                row[ci] = 1.0;
            }
        }
        row[m + k] = 1.0;
        lp.add_eq(row, 1.0);
    }
    // Group linking x_c ≤ z_g and upper bounds.
    for (ci, c) in instance.choices.iter().enumerate() {
        let mut row = vec![0.0; nv];
        row[ci] = 1.0;
        row[m + num_ops + c.group] = -1.0;
        lp.add_le(row, 0.0);
    }
    for g in 0..num_groups {
        let mut row = vec![0.0; nv];
        row[m + num_ops + g] = 1.0;
        lp.add_le(row, 1.0);
    }

    let LpResult::Optimal { x, .. } = lp.solve() else {
        return Vec::new();
    };

    // Randomized rounding: 3·log2(num_ops)+1 rounds; per round one threshold
    // per group (real groups; pseudos don't matter — uncovered ops just pay).
    let rounds = 3 * (usize::BITS - num_ops.leading_zeros()) as usize + 1;
    let mut rng = XorShift::new(seed);
    let mut picked: Vec<usize> = Vec::new();
    for _ in 0..rounds {
        let thresholds: Vec<f64> = (0..num_groups).map(|_| rng.next_f64()).collect();
        for (ci, c) in instance.choices.iter().enumerate() {
            if x[ci] >= thresholds[c.group] && x[ci] > 1e-9 {
                picked.push(ci);
            }
        }
    }
    let sol = instance.resolve_overlaps(picked);
    // Post-filter: drop members that hurt the objective (LP rounding can pick
    // negative-net caches; removal only improves the integer objective).
    let mut sol = sol;
    loop {
        let base = instance.net_objective(&sol);
        let Some(pos) = (0..sol.len()).find(|&i| {
            let mut trial = sol.clone();
            trial.remove(i);
            instance.net_objective(&trial) > base
        }) else {
            break;
        };
        sol.remove(pos);
    }
    sol
}

#[cfg(test)]
mod tests {
    use super::super::exhaustive::solve_exhaustive;
    use super::super::testutil::instance;
    use super::*;

    #[test]
    fn empty_instance() {
        let inst = instance(&[], &[], &[]);
        assert!(solve_randomized(&inst, 42).is_empty());
    }

    #[test]
    fn integral_lp_recovers_optimum() {
        // Clear-cut instance: LP optimum is integral, rounding must find it.
        let inst = instance(
            &[&[100.0], &[100.0]],
            &[(0, 0, 0, 95.0, 5.0, 0), (1, 0, 0, 95.0, 5.0, 0)],
            &[10.0],
        );
        let sol = solve_randomized(&inst, 7);
        assert_eq!(sol, vec![0, 1]);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let inst = instance(
            &[&[50.0, 60.0]],
            &[(0, 0, 0, 40.0, 10.0, 0), (0, 0, 1, 90.0, 20.0, 1)],
            &[5.0, 8.0],
        );
        let a = solve_randomized(&inst, 123);
        let b = solve_randomized(&inst, 123);
        assert_eq!(a, b);
    }

    #[test]
    fn feasible_and_bounded_on_random_instances() {
        let mut seed = 0xABCDu64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..25 {
            let ops: Vec<Vec<f64>> = (0..2)
                .map(|_| (0..3).map(|_| (rng() % 80) as f64 + 20.0).collect())
                .collect();
            let mut caches = Vec::new();
            #[allow(clippy::needless_range_loop)] // per-pipeline index math
            for pi in 0..2usize {
                for (s, e) in [(0usize, 1usize), (1, 2), (0, 2), (2, 2)] {
                    if rng() % 4 == 0 {
                        continue;
                    }
                    let covered: f64 = ops[pi][s..=e].iter().sum();
                    let proc = (rng() % 90) as f64 / 100.0 * covered;
                    caches.push((pi, s, e, covered - proc, proc, (rng() % 3) as usize));
                }
            }
            let group_cost: Vec<f64> = (0..3).map(|_| (rng() % 30) as f64).collect();
            let refs: Vec<&[f64]> = ops.iter().map(|v| v.as_slice()).collect();
            let inst = instance(&refs, &caches, &group_cost);
            let sol = solve_randomized(&inst, 1000 + trial);
            assert!(inst.is_feasible(&sol), "trial {trial} infeasible: {sol:?}");
            let opt = solve_exhaustive(&inst);
            let bound = (inst.op_proc.iter().map(Vec::len).sum::<usize>() as f64).ln() + 2.5;
            assert!(
                inst.total_cost(&sol) <= bound * inst.total_cost(&opt) + 1e-6,
                "trial {trial}: randomized {} > {bound} × optimal {}",
                inst.total_cost(&sol),
                inst.total_cost(&opt)
            );
        }
    }

    #[test]
    fn never_worse_than_choosing_everything_bad() {
        // All caches have negative net; rounding may pick them but the
        // post-filter must drop them.
        let inst = instance(
            &[&[10.0, 10.0]],
            &[(0, 0, 1, 2.0, 18.0, 0), (0, 0, 0, 1.0, 9.0, 1)],
            &[6.0, 6.0],
        );
        let sol = solve_randomized(&inst, 5);
        assert!(
            inst.net_objective(&sol) >= 0.0,
            "post-filter guarantees nonnegative net, got {sol:?}"
        );
    }
}
