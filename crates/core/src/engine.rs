//! The A-Caching engine: Executor + Profiler + Re-optimizer (§4.2, Figure 4).
//!
//! [`AdaptiveJoinEngine`] processes a globally ordered stream of updates
//! through MJoin pipelines while adaptively placing and removing join
//! subresult caches:
//!
//! * **Executor** — walks each update through its pipeline. At positions
//!   where a *used* cache starts, a CacheLookup probes the store; hits bypass
//!   the cached segment, misses run it and `create` the entry (§3.2).
//!   CacheUpdate taps feed maintenance deltas to every active cache whose
//!   segment the current stream belongs to.
//! * **Profiler** — a deterministic 1-in-`k` sample of tuples is processed
//!   with caches disabled, measuring per-operator `δ_j`/`τ_j`; Bloom filters
//!   over candidate probe streams estimate miss probabilities (§4.3,
//!   Appendix A).
//! * **Re-optimizer** — every interval `I`, if some candidate's
//!   benefit/cost drifted beyond `p` (default 20%), reruns offline selection
//!   (§4.4), reallocates memory (§5), and transitions cache states. Used
//!   caches are monitored continuously and demoted immediately when their
//!   net benefit goes negative (§4.5a).
//!
//! Globally-consistent caches (§6) relax the prefix invariant: the cached
//! segment's deltas are *not* computed by regular join processing, so this
//! engine computes them **separately** — on any update to a segment relation
//! of an active global cache, the delta to the segment join is derived
//! directly (a charged index-join of the updated tuple against the other
//! segment relations) and applied to the store. The cached set is then
//! exactly `σ_K(X-join)`, which satisfies the global-consistency invariant
//! (Definition 6.1) at its upper bound. The paper instead maintains the
//! semijoin-reduced lower bound from full-join deltas; that variant cannot
//! repair entries for segment tuples that are unwitnessed at insert time and
//! is unsound when the probing stream belongs to the witness set (e.g. the
//! Figure 12 plan), so we trade a little maintenance work for correctness —
//! see DESIGN.md.

use crate::cache::{hash_key, CacheStats, CacheStore};
use crate::candidates::{enumerate_candidates, Candidate, EnumerationConfig};
use crate::cost::{benefit_cost, BenefitCost, CandidateEstimates};
use crate::memory::{allocate, buckets_for, Allocation, MemoryConfig, MemoryRequest};
use crate::profiler::{Profiler, ProfilerConfig};
use crate::select::{self, CacheChoice, SelectionInstance};
use acq_mjoin::exec::JoinCore;
use acq_mjoin::metrics::PipelineMetrics;
use acq_mjoin::ordering::GreedyOrderer;
use acq_mjoin::plan::{CompiledOp, PlanOrders};
use acq_mjoin::stats::OnlineStats;
use acq_sketch::bloom::MissProbEstimator;
use acq_sketch::WindowStat;
use acq_stream::{Composite, CompositeId, Op, QuerySchema, RelId, Update, Value};
use acq_telemetry::{Event, EventLog, Histogram, TelemetrySnapshot};

/// Which offline selection algorithm the Re-optimizer runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// §4.4 dispatch: recursive DP when nothing is shared, exhaustive while
    /// `m` is small, greedy beyond.
    Auto,
    /// Always exhaustive (exact; the paper's `P`/`G` plans use this).
    Exhaustive,
    /// Always the Appendix B greedy approximation.
    Greedy,
    /// Always the recursive tree DP (optimal without sharing).
    Recursive,
    /// Always LP randomized rounding with the given seed.
    Randomized(u64),
    /// Warm-started local search from the previous selection (§8 future
    /// work (i): incremental re-optimization).
    Incremental,
}

/// How cache placement is decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheMode {
    /// Full A-Caching adaptivity.
    Adaptive,
    /// Force exactly these caches (pipeline, sorted segment rels) into the
    /// used state forever — the §7.2 single-cache experiments.
    Forced(Vec<(RelId, Vec<RelId>)>),
    /// Never use caches (a plain MJoin driven through the same engine, for
    /// apples-to-apples overhead comparisons).
    None,
}

/// When the Re-optimizer wakes up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReoptInterval {
    /// Every `I` virtual nanoseconds (paper default: 2 s).
    VirtualNs(u64),
    /// Every `I` processed updates (Figure 12 uses 10,000 tuples).
    Tuples(u64),
}

/// Engine configuration. Defaults mirror §7.1.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Profiler settings (`W = 10` by default).
    pub profiler: ProfilerConfig,
    /// Re-optimization interval `I` (default 2 virtual seconds).
    pub reopt_interval: ReoptInterval,
    /// Statistics/monitoring epoch (used-cache demotion checks, rate rolls);
    /// default `I / 4`.
    pub stats_epoch_ns: u64,
    /// Re-optimization trigger threshold `p` (§4.5c; default 0.2).
    pub p_threshold: f64,
    /// Candidate enumeration options (min segment, globally-consistent
    /// quota).
    pub enumeration: EnumerationConfig,
    /// Memory allocator settings (§5).
    pub memory: MemoryConfig,
    /// Selection algorithm.
    pub selection: SelectionStrategy,
    /// Exhaustive search cap for [`SelectionStrategy::Auto`].
    pub exhaustive_limit: usize,
    /// Cache placement mode.
    pub mode: CacheMode,
    /// Re-derive pipeline orders adaptively at re-optimization boundaries
    /// (A-Greedy \[5\]); affected pipelines' caches are flushed (§4.5 step 5).
    pub adaptive_ordering: bool,
    /// Demote used caches immediately when net benefit turns negative
    /// (§4.5a).
    pub monitor_used: bool,
    /// Cache-store associativity (1 = the paper's direct-mapped scheme;
    /// 2/4/8-way round-robin implements §3.3's "other low-overhead cache
    /// replacement schemes" future work).
    pub cache_ways: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            profiler: ProfilerConfig::default(),
            reopt_interval: ReoptInterval::VirtualNs(2_000_000_000),
            stats_epoch_ns: 250_000_000,
            p_threshold: 0.2,
            enumeration: EnumerationConfig::default(),
            memory: MemoryConfig::default(),
            selection: SelectionStrategy::Auto,
            exhaustive_limit: 20,
            mode: CacheMode::Adaptive,
            adaptive_ordering: false,
            monitor_used: true,
            cache_ways: 1,
        }
    }
}

/// Lifecycle state of a candidate cache (§4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheState {
    /// Being used in join processing.
    Used,
    /// Not used; benefit/cost being estimated.
    Profiled,
    /// Neither used nor (actively) considered until the next
    /// re-optimization.
    Unused,
}

/// Per-candidate runtime state.
#[derive(Debug)]
struct CandRuntime {
    cand: Candidate,
    state: CacheState,
    miss_est: MissProbEstimator,
    /// Last `W` miss-probability observations (Bloom windows or direct
    /// observation while used).
    miss_window: WindowStat,
    /// Benefit/cost at the last selection (the §4.5c drift reference).
    bc_at_selection: Option<BenefitCost>,
    /// Most recent benefit/cost estimate.
    bc_now: Option<BenefitCost>,
    /// Virtual time when the candidate last entered the used state. Caches
    /// are populated incrementally (§3.2), so the §4.5a demotion monitor
    /// grants a warmup grace period — early probes of an empty store miss by
    /// construction and say nothing about steady-state benefit.
    used_since_ns: u64,
    /// Lifetime probe hits while used (survives re-optimizations; reset only
    /// when plan orders change and candidates are re-enumerated).
    hits: u64,
    /// Lifetime probe misses while used.
    misses: u64,
    /// Virtual ns spent servicing hits (probe + splice).
    hit_ns: u64,
    /// Virtual ns spent servicing misses (probe + segment run + create).
    miss_ns: u64,
}

/// One maintenance tap: feed segment deltas of `group` at a pipeline
/// position.
#[derive(Debug, Clone)]
struct Tap {
    group: usize,
    segment: Vec<RelId>,
    maint_attrs: Vec<acq_stream::AttrRef>,
}

/// Per-pipeline execution plan derived from candidate states.
#[derive(Debug, Default)]
struct PipelinePlan {
    /// `lookup[j]` = used candidate starting at position `j`.
    lookup: Vec<Option<usize>>,
    /// `taps[j]` = plain-cache maintenance taps before position `j`.
    taps: Vec<Vec<Tap>>,
    /// `bloom[j]` = profiled candidates whose probe stream passes position
    /// `j`.
    bloom: Vec<Vec<usize>>,
    /// Globally-consistent groups whose segment contains this pipeline's
    /// stream: their segment-join delta is computed separately on every
    /// update to this relation.
    gc_direct: Vec<Tap>,
}

/// Aggregate engine counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineCounters {
    /// Updates processed.
    pub tuples_processed: u64,
    /// Result deltas emitted.
    pub outputs_emitted: u64,
    /// Cache probes that hit.
    pub cache_hits: u64,
    /// Cache probes that missed.
    pub cache_misses: u64,
    /// Re-optimizations performed (offline algorithm runs).
    pub reoptimizations: u64,
    /// Immediate demotions of used caches (§4.5a).
    pub demotions: u64,
    /// Pipeline reorderings.
    pub reorderings: u64,
}

/// One entry of the adaptivity event log — what the Re-optimizer did and
/// when (virtual time). Useful for operators debugging plan churn and for
/// the adaptivity experiments' narratives.
#[derive(Debug, Clone, PartialEq)]
pub enum AdaptivityEvent {
    /// The offline selection ran; these caches are now used.
    Selected {
        /// Virtual time (ns).
        at_ns: u64,
        /// Names of the used caches after the selection.
        caches: Vec<String>,
    },
    /// A used cache was demoted by the §4.5a monitor (net benefit < 0).
    Demoted {
        /// Virtual time (ns).
        at_ns: u64,
        /// Name of the demoted cache.
        cache: String,
    },
    /// Pipeline orders changed (A-Greedy violation); caches were flushed.
    Reordered {
        /// Virtual time (ns).
        at_ns: u64,
    },
}

/// Maximum retained adaptivity events (oldest dropped beyond this).
const MAX_EVENTS: usize = 512;

/// Typed per-candidate diagnostics, replacing the old stringly
/// [`AdaptiveJoinEngine::diagnostics`] output. One entry per enumerated
/// candidate cache, in enumeration order.
#[derive(Debug, Clone)]
pub struct CandidateDiagnostics {
    /// Candidate name, e.g. `C[∆R2: R0⋈R1 @0..1]`.
    pub name: String,
    /// Current lifecycle state (§4.5).
    pub state: CacheState,
    /// Is the hosting pipeline's profiler warm enough to estimate?
    pub warm: bool,
    /// Windowed miss-probability estimate, `None` until observed.
    pub miss_prob: Option<f64>,
    /// `d_ij`: tuples per unit time reaching the segment's first operator.
    pub d_in: f64,
    /// `Σ d_il·c_il`: unit-time processing the segment costs uncached.
    pub seg_proc: f64,
    /// Current §4.1 benefit/cost estimate, `None` until statistics warm up.
    pub benefit_cost: Option<BenefitCost>,
    /// Lifetime probe hits while this candidate was used.
    pub hits: u64,
    /// Lifetime probe misses while this candidate was used.
    pub misses: u64,
}

/// A deliberately introduced cache-maintenance bug, used to validate that
/// the differential-testing harness actually detects the discrepancy classes
/// it claims to cover. Faults are inert in production: the field holding one
/// is always `None` unless set through the test-only
/// `AdaptiveJoinEngine::inject_fault` entry point (compiled only under
/// `cfg(test)` or the `fault-injection` feature).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Drop plain-cache `insert` maintenance: cached entries go stale when a
    /// segment relation grows (violates Definition 3.1 consistency).
    SkipTapInserts,
    /// Drop plain-cache `delete` maintenance: cached entries keep tuples the
    /// window already expired (the classic stale-subresult bug).
    SkipTapDeletes,
}

/// The adaptive stream-join engine.
#[derive(Debug)]
pub struct AdaptiveJoinEngine {
    core: JoinCore,
    orders: PlanOrders,
    compiled: Vec<Vec<CompiledOp>>,
    config: EngineConfig,
    profiler: Profiler,
    online: OnlineStats,
    cands: Vec<CandRuntime>,
    /// One store per shared group (Definition 4.1) — `Some` while any member
    /// is used.
    stores: Vec<Option<CacheStore>>,
    group_count: usize,
    plans: Vec<PipelinePlan>,
    counters: EngineCounters,
    last_reopt_ns: u64,
    last_reopt_tuples: u64,
    last_epoch_ns: u64,
    orderer: GreedyOrderer,
    /// Consecutive re-optimizations that left the used-cache set unchanged
    /// (§8 future work (ii): statistics whose significant changes tend not
    /// to produce new selections get progressively damped by widening the
    /// effective trigger threshold).
    fruitless_streak: u32,
    /// Scratch buffers reused across updates.
    scratch_next: Vec<Composite>,
    /// Reusable pipeline frontier buffer.
    scratch_frontier: Vec<Composite>,
    /// Reusable segment-walk frontier for cache misses.
    scratch_seg: Vec<Composite>,
    /// Partner buffer for the segment walk's swap loop.
    scratch_seg_next: Vec<Composite>,
    /// Reusable `create(u, v)` value staging buffer.
    scratch_values: Vec<(Composite, u32)>,
    /// Reusable per-operator profile record for sampled tuples.
    scratch_profile: Vec<(f64, u64)>,
    /// Reusable probe/maintenance key buffer (avoids a `Vec<Value>`
    /// allocation per cache access).
    scratch_key: Vec<Value>,
    /// Bounded adaptivity event log.
    events: std::collections::VecDeque<AdaptivityEvent>,
    /// Per-pipeline operator metrics (telemetry; reset when orders change).
    op_metrics: Vec<PipelineMetrics>,
    /// Store statistics accumulated across stat epochs and store drops, one
    /// per shared group — [`CacheStore::reset_stats`] starts a new epoch, so
    /// totals for the snapshot live here.
    group_stats: Vec<CacheStats>,
    /// Bytes granted per group at the last §5 allocation round.
    granted_bytes: Vec<usize>,
    /// Distribution of result-delta counts per processed update.
    out_hist: Histogram,
    /// Structured telemetry event log (virtual-time stamped).
    tlog: EventLog,
    /// Harness-injected maintenance bug; always `None` in production.
    fault: Option<InjectedFault>,
    /// Probe hits/misses of candidates retired by re-enumeration
    /// (`rebuild_candidates` resets per-candidate counters; the aggregate
    /// engine counters persist, so conservation needs this carry).
    retired_hits: u64,
    /// Miss half of the retired-candidate carry.
    retired_misses: u64,
}

impl AdaptiveJoinEngine {
    /// Build an engine with default §7.1 settings and identity pipeline
    /// orders.
    pub fn new(query: QuerySchema) -> AdaptiveJoinEngine {
        let orders = PlanOrders::identity(&query);
        AdaptiveJoinEngine::with_config(query, orders, EngineConfig::default())
    }

    /// Build with explicit orders and configuration.
    pub fn with_config(
        query: QuerySchema,
        orders: PlanOrders,
        config: EngineConfig,
    ) -> AdaptiveJoinEngine {
        orders.validate(&query).expect("invalid plan orders");
        let core = JoinCore::new(query);
        AdaptiveJoinEngine::from_core(core, orders, config)
    }

    /// Build from a preconfigured [`JoinCore`] (custom indexes/cost model).
    pub fn from_core(
        core: JoinCore,
        orders: PlanOrders,
        config: EngineConfig,
    ) -> AdaptiveJoinEngine {
        let n = core.query().num_relations();
        let num_ops: Vec<usize> = orders.pipelines.iter().map(|p| p.order.len()).collect();
        let profiler = Profiler::new(config.profiler, &num_ops);
        let compiled = orders
            .pipelines
            .iter()
            .map(|p| CompiledOp::compile_pipeline(core.query(), core.relations(), p))
            .collect();
        let mut engine = AdaptiveJoinEngine {
            online: OnlineStats::new(n, config.profiler.w, 0.01),
            core,
            orders,
            compiled,
            profiler,
            cands: Vec::new(),
            stores: Vec::new(),
            group_count: 0,
            plans: Vec::new(),
            counters: EngineCounters::default(),
            last_reopt_ns: 0,
            last_reopt_tuples: 0,
            last_epoch_ns: 0,
            orderer: GreedyOrderer::default(),
            fruitless_streak: 0,
            scratch_next: Vec::new(),
            scratch_frontier: Vec::new(),
            scratch_seg: Vec::new(),
            scratch_seg_next: Vec::new(),
            scratch_values: Vec::new(),
            scratch_profile: Vec::new(),
            scratch_key: Vec::new(),
            events: std::collections::VecDeque::new(),
            op_metrics: num_ops.iter().map(|&k| PipelineMetrics::new(k)).collect(),
            group_stats: Vec::new(),
            granted_bytes: Vec::new(),
            out_hist: Histogram::new(),
            tlog: EventLog::default(),
            fault: None,
            retired_hits: 0,
            retired_misses: 0,
            config,
        };
        engine.rebuild_candidates();
        engine.apply_forced_mode();
        engine
    }

    // ------------------------------------------------------------------
    // Accessors

    /// The execution core.
    pub fn core(&self) -> &JoinCore {
        &self.core
    }

    /// Mutable core access (experiments drop indexes etc.; call
    /// [`AdaptiveJoinEngine::recompile`] afterwards).
    pub fn core_mut(&mut self) -> &mut JoinCore {
        &mut self.core
    }

    /// Current pipeline orders.
    pub fn orders(&self) -> &PlanOrders {
        &self.orders
    }

    /// Engine counters.
    pub fn counters(&self) -> EngineCounters {
        self.counters
    }

    /// The configuration in effect.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// All candidates with their states.
    pub fn candidate_states(&self) -> Vec<(&Candidate, CacheState)> {
        self.cands.iter().map(|c| (&c.cand, c.state)).collect()
    }

    /// Names of currently used caches.
    pub fn used_caches(&self) -> Vec<String> {
        self.cands
            .iter()
            .filter(|c| c.state == CacheState::Used)
            .map(|c| c.cand.name())
            .collect()
    }

    /// Total bytes held by cache stores (Figure 13's memory axis).
    pub fn cache_memory_bytes(&self) -> usize {
        self.stores
            .iter()
            .flatten()
            .map(CacheStore::memory_bytes)
            .sum()
    }

    /// Updates per virtual second (the paper's tuple-processing rate).
    pub fn processing_rate(&self) -> f64 {
        let secs = self.core.now_secs();
        if secs <= 0.0 {
            0.0
        } else {
            self.counters.tuples_processed as f64 / secs
        }
    }

    /// Recompile operators after external index changes.
    pub fn recompile(&mut self) {
        self.compiled = self
            .orders
            .pipelines
            .iter()
            .map(|p| CompiledOp::compile_pipeline(self.core.query(), self.core.relations(), p))
            .collect();
    }

    // ------------------------------------------------------------------
    // Candidate lifecycle

    fn rebuild_candidates(&mut self) {
        // Carry retiring candidates' probe totals so the aggregate engine
        // counters stay reconcilable with per-cache counters (conservation).
        for cr in &self.cands {
            self.retired_hits += cr.hits;
            self.retired_misses += cr.misses;
        }
        let candidates =
            enumerate_candidates(self.core.query(), &self.orders, &self.config.enumeration);
        self.group_count = crate::candidates::num_groups(&candidates);
        self.stores = (0..self.group_count).map(|_| None).collect();
        // Group ids are only meaningful within one candidate enumeration, so
        // accumulated store stats and grants restart with the new groups.
        self.group_stats = vec![CacheStats::default(); self.group_count];
        self.granted_bytes = vec![0; self.group_count];
        self.cands = candidates
            .into_iter()
            .map(|cand| CandRuntime {
                cand,
                state: CacheState::Profiled,
                miss_est: self.profiler.new_miss_estimator(),
                miss_window: WindowStat::new(self.config.profiler.w),
                bc_at_selection: None,
                bc_now: None,
                used_since_ns: 0,
                hits: 0,
                misses: 0,
                hit_ns: 0,
                miss_ns: 0,
            })
            .collect();
        self.rebuild_plans();
    }

    fn apply_forced_mode(&mut self) {
        let forced = match &self.config.mode {
            CacheMode::Forced(list) => list.clone(),
            CacheMode::None => {
                for c in &mut self.cands {
                    c.state = CacheState::Unused;
                }
                self.rebuild_plans();
                return;
            }
            CacheMode::Adaptive => return,
        };
        for c in &mut self.cands {
            let mut seg = c.cand.segment.clone();
            seg.sort_unstable();
            let matched = forced.iter().any(|(p, s)| {
                let mut s = s.clone();
                s.sort_unstable();
                *p == c.cand.pipeline && s == seg
            });
            c.state = if matched {
                CacheState::Used
            } else {
                CacheState::Unused
            };
        }
        // Materialize stores for forced groups.
        for i in 0..self.cands.len() {
            if self.cands[i].state == CacheState::Used {
                let g = self.cands[i].cand.group;
                if self.stores[g].is_none() {
                    self.stores[g] =
                        Some(CacheStore::with_associativity(1024, self.config.cache_ways));
                }
            }
        }
        self.rebuild_plans();
    }

    /// Rebuild per-pipeline execution plans from candidate states.
    fn rebuild_plans(&mut self) {
        let n = self.orders.pipelines.len();
        let mut plans: Vec<PipelinePlan> = (0..n)
            .map(|i| {
                let ops = self.orders.pipelines[i].order.len();
                PipelinePlan {
                    lookup: vec![None; ops],
                    taps: (0..ops).map(|_| Vec::new()).collect(),
                    bloom: (0..ops).map(|_| Vec::new()).collect(),
                    gc_direct: Vec::new(),
                }
            })
            .collect();

        // Active groups: any used member.
        let mut group_used = vec![false; self.group_count];
        for c in &self.cands {
            if c.state == CacheState::Used {
                group_used[c.cand.group] = true;
            }
        }
        // Drop stores of inactive groups; create stores of newly active ones
        // happen in apply_selection (they need sizing); forced mode created
        // them directly. Stats of a dropped store fold into the group
        // accumulator so snapshot totals survive the drop.
        for (g, used) in group_used.iter().enumerate() {
            if !used {
                if let Some(store) = self.stores[g].take() {
                    self.group_stats[g].absorb(&store.stats());
                }
            }
        }

        let mut tap_added: Vec<(usize, RelId)> = Vec::new(); // (group, pipeline) dedupe
        for c in &self.cands {
            match c.state {
                CacheState::Used => {
                    let pi = c.cand.pipeline.0 as usize;
                    plans[pi].lookup[c.cand.start] = Some(self.cand_index(&c.cand));
                }
                CacheState::Profiled => {
                    let pi = c.cand.pipeline.0 as usize;
                    plans[pi].bloom[c.cand.start].push(self.cand_index(&c.cand));
                }
                CacheState::Unused => {}
            }
        }
        // Maintenance taps for active groups (one per group per member
        // pipeline).
        for c in &self.cands {
            let g = c.cand.group;
            if !group_used[g] {
                continue;
            }
            let tap = Tap {
                group: g,
                segment: c.cand.segment.clone(),
                maint_attrs: c.cand.maint_attrs.clone(),
            };
            if c.cand.is_global() {
                // Maintained by separate delta computation on updates to
                // segment relations.
                for &l in &c.cand.segment {
                    if tap_added.contains(&(g, l)) {
                        continue;
                    }
                    tap_added.push((g, l));
                    plans[l.0 as usize].gc_direct.push(tap.clone());
                }
            } else {
                let tap_pos = c.cand.segment.len() - 1;
                for &l in &c.cand.segment {
                    if tap_added.contains(&(g, l)) {
                        continue;
                    }
                    tap_added.push((g, l));
                    plans[l.0 as usize].taps[tap_pos].push(tap.clone());
                }
            }
        }
        // Safety net: no used cache may cover another group's maintenance
        // tap strictly inside its span (taps at the cache's own start
        // position fire before the lookup and are fine). The adaptive
        // re-optimizer resolves these conflicts before applying a selection;
        // a Forced configuration that violates this would silently corrupt
        // cache consistency, so refuse it loudly.
        for (pi, plan) in plans.iter().enumerate() {
            for (j, lookup) in plan.lookup.iter().enumerate() {
                let Some(ci) = lookup else { continue };
                let end = self.cands[*ci].cand.end;
                for t in (j + 1)..=end {
                    assert!(
                        plan.taps[t].is_empty(),
                        "used cache {} covers a maintenance tap at pipeline {pi} position {t}; \
                         this configuration starves that cache's maintenance",
                        self.cands[*ci].cand.name()
                    );
                }
            }
        }
        self.plans = plans;
    }

    fn cand_index(&self, cand: &Candidate) -> usize {
        self.cands
            .iter()
            .position(|c| std::ptr::eq(&c.cand, cand))
            .expect("candidate belongs to engine")
    }

    // ------------------------------------------------------------------
    // Processing

    /// Process one update, returning the n-way join result deltas.
    pub fn process(&mut self, u: &Update) -> Vec<(Op, Composite)> {
        let mut out = Vec::new();
        self.process_into(u, &mut out);
        out
    }

    /// [`AdaptiveJoinEngine::process`] writing deltas into a caller-owned
    /// sink instead of returning a fresh vector. With a reused sink the
    /// steady-state update path performs no heap allocation at all (see
    /// `tests/alloc_regression.rs`).
    pub fn process_into(&mut self, u: &Update, out: &mut Vec<(Op, Composite)>) {
        self.counters.tuples_processed += 1;
        self.profiler.record_update(u.rel);
        self.online.record_update(u.rel);

        // Globally-consistent invalidation must see the delete *before*
        // store application is irrelevant (we invalidate by tuple identity
        // after removal — we need the removed tuple's id, so apply first).
        let Some(tref) = self.core.apply_update(u) else {
            self.maybe_housekeeping();
            return;
        };
        self.online
            .record_size(u.rel, self.core.relation(u.rel).len());

        let pi = u.rel.0 as usize;
        self.op_metrics[pi].record_update();
        // Move this pipeline's plan out of `self` for the duration of the
        // update: the executor borrows taps/bloom/lookup tables directly
        // instead of cloning them per update. Restored before
        // `maybe_housekeeping`, which may rebuild `self.plans` wholesale.
        let plan = std::mem::take(&mut self.plans[pi]);
        // Globally-consistent maintenance: compute the segment-join delta
        // separately (§6; the prefix invariant doesn't hand it to us) and
        // apply it before any pipeline runs.
        if !plan.gc_direct.is_empty() {
            self.maintain_gc_direct(&plan.gc_direct, u.rel, &tref, u.op);
        }

        let profiled = self.profiler.should_profile(u.rel);
        // The pipeline writes `(op, composite)` deltas straight into the
        // caller's sink — no staging vector, no second copy per delta.
        let before = out.len();
        self.run_pipeline(pi, &plan, Composite::unit(tref), u.op, profiled, out);
        self.plans[pi] = plan;

        let produced = out.len() - before;
        self.core.charge_outputs(produced);
        self.counters.outputs_emitted += produced as u64;
        self.out_hist.record(produced as u64);
        self.maybe_housekeeping();
    }

    /// Process a batch of updates in order, returning the concatenated
    /// result deltas. Semantically identical to calling
    /// [`AdaptiveJoinEngine::process`] per update; batching amortizes the
    /// caller's dispatch and lets downstream consumers (e.g. the sharded
    /// executor) hand over work wholesale.
    pub fn process_batch(&mut self, updates: &[Update]) -> Vec<(Op, Composite)> {
        let mut out = Vec::new();
        for u in updates {
            self.process_into(u, &mut out);
        }
        out
    }

    /// Like [`AdaptiveJoinEngine::process_batch`] but keeps per-update
    /// grouping: `result[i]` is the delta list of `updates[i]`. The sharded
    /// executor's deterministic merge needs the per-update boundaries.
    pub fn process_batch_grouped(&mut self, updates: &[Update]) -> Vec<Vec<(Op, Composite)>> {
        updates.iter().map(|u| self.process(u)).collect()
    }

    /// Walk one composite through pipeline `pi`, honouring caches, taps, and
    /// profiling. Results are appended to `out` (a reused caller buffer —
    /// this function performs no per-update allocation once scratch buffers
    /// are warm).
    fn run_pipeline(
        &mut self,
        pi: usize,
        plan: &PipelinePlan,
        seed: Composite,
        op_kind: Op,
        profiled: bool,
        out: &mut Vec<(Op, Composite)>,
    ) {
        let num_ops = self.compiled[pi].len();
        let mut frontier = std::mem::take(&mut self.scratch_frontier);
        frontier.clear();
        frontier.push(seed);
        let mut profile_rec = std::mem::take(&mut self.scratch_profile);
        profile_rec.clear();
        if profiled {
            self.core.charge(self.core.cost_model().profile_overhead);
        }

        let mut j = 0usize;
        while j < num_ops {
            // (a) plain-cache maintenance taps at this position.
            if !plan.taps[j].is_empty() && !frontier.is_empty() {
                self.feed_plain_taps(&plan.taps[j], &frontier, op_kind);
            }
            // (b) Bloom probe-stream feeds for profiled candidates.
            if !plan.bloom[j].is_empty() && !frontier.is_empty() {
                self.feed_bloom(&plan.bloom[j], &frontier);
            }
            if frontier.is_empty() {
                // Record zeroes for remaining positions if profiling.
                if profiled {
                    profile_rec.push((0.0, 0));
                }
                j += 1;
                continue;
            }
            // (c) CacheLookup (skipped for profiled tuples, §4.3/App. A).
            let lookup = if profiled { None } else { plan.lookup[j] };
            if let Some(ci) = lookup {
                let mut next = std::mem::take(&mut self.scratch_next);
                next.clear();
                let end = self.cache_segment(pi, ci, &mut frontier, op_kind, &mut next);
                std::mem::swap(&mut frontier, &mut next);
                self.scratch_next = next;
                j = end + 1;
                continue;
            }
            // (d) plain operator execution.
            let t0 = self.core.now_ns();
            let in_count = frontier.len();
            self.scratch_next.clear();
            let op = &self.compiled[pi][j];
            let mut next = std::mem::take(&mut self.scratch_next);
            for c in frontier.drain(..) {
                let before = next.len();
                self.core.probe_join_owned(c, op, &mut next);
                let total_preds = op.index_access.is_some() as usize + op.residual.len();
                if total_preds == 1 {
                    let source = op
                        .index_access
                        .map(|(_, p)| p.rel)
                        .unwrap_or_else(|| op.residual[0].1.rel);
                    self.online.record_probe(
                        source,
                        op.target,
                        next.len() - before,
                        self.core.relation(op.target).len(),
                    );
                }
            }
            let dt = self.core.now_ns() - t0;
            if profiled {
                profile_rec.push((in_count as f64, dt));
            }
            self.op_metrics[pi].record_op(j, in_count as u64, next.len() as u64, dt);
            std::mem::swap(&mut frontier, &mut next);
            self.scratch_next = next;
            self.scratch_next.clear();
            j += 1;
        }

        if profiled {
            profile_rec.push((frontier.len() as f64, 0));
            // Pad to positions+1 if cache bypass shortened the walk — cannot
            // happen for profiled tuples (caches disabled), assert instead.
            debug_assert_eq!(profile_rec.len(), num_ops + 1);
            self.profiler
                .record_profiled(RelId(pi as u16), &profile_rec);
        }
        self.scratch_profile = profile_rec;
        out.extend(frontier.drain(..).map(|c| (op_kind, c)));
        self.scratch_frontier = frontier;
    }

    /// Probe a used cache for every frontier composite; on miss, run the
    /// covered segment and `create` the entry. Appends the resulting
    /// frontier to `out` and returns the segment end position.
    ///
    /// Hash-once discipline: the probe key is assembled in a reused scratch
    /// buffer and hashed a single time; the same hash serves the probe, the
    /// Bloom pre-filter, and the `create` on a miss. Steady state allocates
    /// nothing (displaced entries donate their buffers to new ones).
    fn cache_segment(
        &mut self,
        pi: usize,
        ci: usize,
        frontier: &mut Vec<Composite>,
        op_kind: Op,
        out: &mut Vec<Composite>,
    ) -> usize {
        let (start, end, group, is_global) = {
            let c = &self.cands[ci].cand;
            (c.start, c.end, c.group, c.is_global())
        };
        // Move the candidate's attribute/segment lists out instead of
        // cloning them per call; nothing below reads `self.cands`, and both
        // are restored before return. The store moves out likewise, so hit
        // entries can be spliced into `out` without an intermediate clone of
        // the whole value list.
        let key_attrs = std::mem::take(&mut self.cands[ci].cand.probe_attrs);
        let segment = std::mem::take(&mut self.cands[ci].cand.segment);
        let mut key = std::mem::take(&mut self.scratch_key);
        let mut seg_frontier = std::mem::take(&mut self.scratch_seg);
        let mut seg_next = std::mem::take(&mut self.scratch_seg_next);
        let mut values = std::mem::take(&mut self.scratch_values);
        let mut store = self.stores[group].take().expect("used cache has a store");
        let key_len = key_attrs.len();
        let model_probe = self.core.cost_model().cache_probe(key_len);
        let model_hit_per_tuple = self.core.cost_model().cache_hit_per_tuple;
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut hit_ns = 0u64;
        let mut miss_ns = 0u64;

        for c in frontier.drain(..) {
            let t0 = self.core.now_ns();
            key.clear();
            key.extend(
                key_attrs
                    .iter()
                    .map(|a| c.get(*a).expect("probe attrs bound in prefix").clone()),
            );
            let hash = hash_key(&key);
            self.core.charge(model_probe);
            match store.probe_hashed(&key, hash) {
                Some(entry) => {
                    hits += 1;
                    self.core.charge(entry.len() as u64 * model_hit_per_tuple);
                    // Splice cached values onto the prefix; the prefix is
                    // *moved* into the last splice instead of cloned.
                    let mut c = Some(c);
                    let mut it = entry.composites().peekable();
                    while let Some(v) = it.next() {
                        if it.peek().is_none() {
                            out.push(c.take().unwrap().concat_owned(v));
                        } else {
                            out.push(c.as_ref().unwrap().concat(v));
                        }
                    }
                    hit_ns += self.core.now_ns() - t0;
                }
                None => {
                    misses += 1;
                    // Run the covered segment for this composite alone
                    // (seeded with the moved prefix — no clone).
                    seg_frontier.clear();
                    seg_frontier.push(c);
                    for op in &self.compiled[pi][start..=end] {
                        seg_next.clear();
                        for f in seg_frontier.drain(..) {
                            self.core.probe_join_owned(f, op, &mut seg_next);
                        }
                        std::mem::swap(&mut seg_frontier, &mut seg_next);
                        if seg_frontier.is_empty() {
                            break;
                        }
                    }
                    // create(u, v): v restricted to segment relations.
                    values.clear();
                    values.extend(
                        seg_frontier
                            .iter()
                            .filter_map(|f| f.restrict(&segment))
                            .map(|v| (v, 1)),
                    );
                    let create_cost = self.core.cost_model().cache_update(values.len());
                    store.create_hashed(&key, hash, values.drain(..));
                    self.core.charge(create_cost);
                    out.append(&mut seg_frontier);
                    miss_ns += self.core.now_ns() - t0;
                }
            }
        }
        // For deletes probing a *global* cache the semantics are identical:
        // cached values reflect the current segment join (upper bound), and
        // the probing prefix tuple was already removed from its store.
        let _ = (op_kind, is_global);
        self.stores[group] = Some(store);
        self.scratch_key = key;
        self.scratch_seg = seg_frontier;
        self.scratch_seg_next = seg_next;
        self.scratch_values = values;
        self.cands[ci].cand.probe_attrs = key_attrs;
        self.cands[ci].cand.segment = segment;
        self.counters.cache_hits += hits;
        self.counters.cache_misses += misses;
        self.cands[ci].hits += hits;
        self.cands[ci].misses += misses;
        self.cands[ci].hit_ns += hit_ns;
        self.cands[ci].miss_ns += miss_ns;
        end
    }

    /// Feed plain-cache maintenance deltas (§3.2): the frontier at the tap
    /// position, restricted to the segment, inserted/deleted per the update's
    /// kind.
    fn feed_plain_taps(&mut self, taps: &[Tap], frontier: &[Composite], op_kind: Op) {
        let mut cost = 0u64;
        let mut key = std::mem::take(&mut self.scratch_key);
        for tap in taps {
            let Some(store) = self.stores[tap.group].as_mut() else {
                continue;
            };
            for c in frontier {
                let Some(seg) = c.restrict(&tap.segment) else {
                    continue;
                };
                key.clear();
                key.extend(
                    tap.maint_attrs
                        .iter()
                        .map(|a| seg.get(*a).expect("maint attrs bound in segment").clone()),
                );
                let hash = hash_key(&key);
                match op_kind {
                    Op::Insert if self.fault != Some(InjectedFault::SkipTapInserts) => {
                        store.insert_hashed(&key, hash, seg, 1)
                    }
                    Op::Delete if self.fault != Some(InjectedFault::SkipTapDeletes) => {
                        store.delete_hashed(&key, hash, &seg, 1)
                    }
                    _ => {}
                }
                cost += 1;
            }
        }
        self.scratch_key = key;
        let per = self.core.cost_model().cache_update(1);
        self.core.charge(cost * per);
    }

    /// Separately-computed maintenance for globally-consistent caches: join
    /// the updated tuple with the other segment relations (charged through
    /// the normal operator costs) and apply the resulting segment-join delta.
    fn maintain_gc_direct(
        &mut self,
        taps: &[Tap],
        rel: RelId,
        tref: &acq_stream::TupleRef,
        op_kind: Op,
    ) {
        for tap in taps {
            if self.stores[tap.group].is_none() {
                continue;
            }
            // Progressive join through the remaining segment relations.
            let mut frontier = vec![Composite::unit(tref.clone())];
            let mut done: Vec<RelId> = vec![rel];
            let mut next = Vec::new();
            for &target in tap.segment.iter().filter(|&&r| r != rel) {
                let op =
                    CompiledOp::compile(self.core.query(), self.core.relations(), &done, target);
                next.clear();
                for c in &frontier {
                    self.core.probe_join(c, &op, &mut next);
                }
                std::mem::swap(&mut frontier, &mut next);
                done.push(target);
                if frontier.is_empty() {
                    break;
                }
            }
            if frontier.is_empty() {
                continue;
            }
            let per = self.core.cost_model().cache_update(1);
            self.core.charge(frontier.len() as u64 * per);
            let mut key = std::mem::take(&mut self.scratch_key);
            let store = self.stores[tap.group].as_mut().expect("checked above");
            for c in &frontier {
                let Some(seg) = c.restrict(&tap.segment) else {
                    continue;
                };
                key.clear();
                key.extend(
                    tap.maint_attrs
                        .iter()
                        .map(|a| seg.get(*a).expect("maint attrs bound").clone()),
                );
                let hash = hash_key(&key);
                match op_kind {
                    Op::Insert => store.insert_hashed(&key, hash, seg, 1),
                    Op::Delete => store.delete_hashed(&key, hash, &seg, 1),
                }
            }
            self.scratch_key = key;
        }
    }

    /// Feed Bloom miss-probability estimators with probe-key hashes.
    fn feed_bloom(&mut self, cand_idxs: &[usize], frontier: &[Composite]) {
        let bloom_cost = self.core.cost_model().bloom_insert;
        let mut charged = 0u64;
        for &ci in cand_idxs {
            // Move the attr list out instead of cloning it per update; the
            // loop below only touches the candidate's estimator state, and
            // the list is restored right after.
            let attrs = std::mem::take(&mut self.cands[ci].cand.probe_attrs);
            for c in frontier {
                let mut h = acq_sketch::FxHasher::default();
                for a in &attrs {
                    c.get(*a).expect("probe attr bound").hash_into(&mut h);
                }
                use std::hash::Hasher;
                let obs = self.cands[ci].miss_est.observe(h.finish());
                if let Some(miss) = obs {
                    self.cands[ci].miss_window.push(miss);
                }
                charged += 1;
            }
            self.cands[ci].cand.probe_attrs = attrs;
        }
        self.core.charge(charged * bloom_cost);
    }

    // ------------------------------------------------------------------
    // Adaptivity

    fn maybe_housekeeping(&mut self) {
        let now = self.core.now_ns();
        if now.saturating_sub(self.last_epoch_ns) >= self.config.stats_epoch_ns {
            self.stats_epoch(now);
        }
        if self.config.mode != CacheMode::Adaptive {
            return;
        }
        let due = match self.config.reopt_interval {
            ReoptInterval::VirtualNs(i) => now.saturating_sub(self.last_reopt_ns) >= i,
            ReoptInterval::Tuples(t) => {
                self.counters
                    .tuples_processed
                    .saturating_sub(self.last_reopt_tuples)
                    >= t
            }
        };
        if due {
            self.reoptimize(now);
        }
    }

    /// Per-epoch statistics maintenance and used-cache monitoring (§4.5a).
    fn stats_epoch(&mut self, now: u64) {
        self.last_epoch_ns = now;
        self.profiler.roll_rates(now);
        // Observed miss probability for used caches.
        for ci in 0..self.cands.len() {
            if self.cands[ci].state != CacheState::Used {
                continue;
            }
            let g = self.cands[ci].cand.group;
            // Gate the direct observation on a minimum probe count: a
            // two-probe epoch against a freshly created store observes
            // "miss" by construction, not by workload.
            let min_probes = (self.config.profiler.bloom_window / 4).max(8) as u64;
            if let Some(store) = self.stores[g].as_mut() {
                let s = store.stats();
                if s.hits + s.misses >= min_probes {
                    if let Some(mp) = s.miss_prob() {
                        self.cands[ci].miss_window.push(mp);
                    }
                    // Fold the epoch into the group accumulator before the
                    // reset so telemetry totals span all epochs.
                    self.group_stats[g].absorb(&s);
                    store.reset_stats();
                }
            }
        }
        if self.config.monitor_used && self.config.mode == CacheMode::Adaptive {
            let grace = self.config.stats_epoch_ns.saturating_mul(2);
            let mut any_demoted = false;
            for ci in 0..self.cands.len() {
                if self.cands[ci].state != CacheState::Used {
                    continue;
                }
                if now.saturating_sub(self.cands[ci].used_since_ns) < grace {
                    continue; // §3.2: populated incrementally — let it warm up
                }
                if let Some(bc) = self.estimate(ci) {
                    self.cands[ci].bc_now = Some(bc);
                    if bc.net() < 0.0 {
                        self.cands[ci].state = CacheState::Unused;
                        self.counters.demotions += 1;
                        let name = self.cands[ci].cand.name();
                        self.tlog.push(
                            Event::new(now, "cache.dropped", &name)
                                .field("reason", "demoted")
                                .field("net", bc.net()),
                        );
                        self.log_event(AdaptivityEvent::Demoted {
                            at_ns: now,
                            cache: name,
                        });
                        any_demoted = true;
                    }
                }
            }
            if any_demoted {
                self.rebuild_plans();
            }
        }
    }

    /// Estimate benefit/cost for one candidate from current profiler state.
    /// `None` when statistics aren't warm enough to trust.
    fn estimate(&self, ci: usize) -> Option<BenefitCost> {
        let cr = &self.cands[ci];
        let c = &cr.cand;
        let i = c.pipeline;
        if !self.profiler.pipeline_warm(i) {
            return None;
        }
        let miss = cr.miss_window.average()?;
        let d_in = self.profiler.d(i, c.start);
        let d_out = self.profiler.d(i, c.end + 1);
        let seg_proc: f64 = (c.start..=c.end).map(|j| self.profiler.op_proc(i, j)).sum();
        let maint_rate = if c.is_global() {
            // Separate maintenance: each segment-relation update joins with
            // the other segment relations; its delta size is approximately
            // the average entry size.
            let avg_entry = if d_in > 0.0 {
                (d_out / d_in).max(1.0)
            } else {
                1.0
            };
            let update_rate: f64 = c.segment.iter().map(|&l| self.profiler.rate(l)).sum();
            update_rate * avg_entry
        } else {
            let tap_pos = c.segment.len() - 1;
            c.segment.iter().map(|&l| self.profiler.d(l, tap_pos)).sum()
        };
        let est = CandidateEstimates {
            d_in,
            d_out,
            seg_proc,
            miss_prob: miss,
            maint_rate,
            expected_entries: self.expected_entries(d_in, miss),
        };
        Some(benefit_cost(
            self.core.cost_model(),
            c.key_classes.len(),
            &est,
        ))
    }

    fn expected_entries(&self, d_in: f64, miss: f64) -> f64 {
        let horizon = match self.config.reopt_interval {
            ReoptInterval::VirtualNs(i) => i as f64 / 1e9,
            ReoptInterval::Tuples(_) => 1.0,
        };
        (miss * d_in * horizon).clamp(16.0, 1_048_576.0)
    }

    /// The §4.5 re-optimization step.
    fn reoptimize(&mut self, now: u64) {
        self.last_reopt_ns = now;
        self.last_reopt_tuples = self.counters.tuples_processed;

        // Optional adaptive reordering first (§4.5 step 5): changed pipelines
        // flush caches and candidates.
        if self.config.adaptive_ordering {
            let stats = self.online.snapshot(now);
            if let Some(fresh) =
                self.orderer
                    .check_violation(self.core.query(), &stats, &self.orders)
            {
                self.set_orders(fresh);
                self.counters.reorderings += 1;
                self.tlog.push(Event::new(now, "plan.reordered", ""));
                self.log_event(AdaptivityEvent::Reordered { at_ns: now });
                return; // fresh candidates need profiling before selection
            }
        }

        // Estimates for all candidates.
        let mut est: Vec<Option<BenefitCost>> = Vec::with_capacity(self.cands.len());
        for ci in 0..self.cands.len() {
            est.push(self.estimate(ci));
        }
        for (cr, e) in self.cands.iter_mut().zip(&est) {
            cr.bc_now = *e;
        }

        // §4.5c trigger: skip the offline algorithm when nothing drifted
        // beyond p since the last selection. Fruitless re-optimizations
        // (selection unchanged) widen the effective threshold up to 4× —
        // the paper's §8(ii) "unimportant statistics" idea in aggregate form.
        let effective_p =
            self.config.p_threshold * (1.0 + 0.5 * self.fruitless_streak as f64).min(4.0);
        let drifted = self
            .cands
            .iter()
            .zip(&est)
            .any(|(cr, e)| match (cr.bc_at_selection, e) {
                (Some(prev), Some(cur)) => prev.max_relative_change(cur) > effective_p,
                (None, Some(_)) => true, // newly estimable candidate
                _ => false,
            });
        if !drifted {
            self.tlog.push(
                Event::new(now, "selection.skipped", "")
                    .field("effective_p", effective_p)
                    .field("fruitless_streak", self.fruitless_streak as u64),
            );
            return;
        }
        self.counters.reoptimizations += 1;
        self.core.charge(self.core.cost_model().reoptimize);

        // Decision trace: every candidate the selector will score.
        for (cr, e) in self.cands.iter().zip(&est) {
            let Some(bc) = e else { continue };
            self.tlog.push(
                Event::new(now, "cache.scored", cr.cand.name())
                    .field("benefit", bc.benefit)
                    .field("cost", bc.cost)
                    .field("net", bc.net())
                    .field("miss_prob", cr.miss_window.average().unwrap_or(1.0)),
            );
        }

        // Build the selection instance over estimable candidates.
        let op_proc: Vec<Vec<f64>> = self
            .orders
            .pipelines
            .iter()
            .map(|p| {
                (0..p.order.len())
                    .map(|j| self.profiler.op_proc(p.stream, j))
                    .collect()
            })
            .collect();
        let mut choices = Vec::new();
        let mut group_cost = vec![0.0; self.group_count];
        for (ci, (cr, e)) in self.cands.iter().zip(&est).enumerate() {
            let Some(bc) = e else { continue };
            choices.push(CacheChoice {
                id: ci,
                pipeline: cr.cand.pipeline.0 as usize,
                start: cr.cand.start,
                end: cr.cand.end,
                benefit: bc.benefit,
                proc: bc.proc,
                group: cr.cand.group,
            });
            group_cost[cr.cand.group] = bc.cost;
        }
        let instance = SelectionInstance {
            op_proc,
            choices,
            group_cost,
        };
        let solver = match self.config.selection {
            SelectionStrategy::Auto => {
                select::auto_solver_name(&instance, self.config.exhaustive_limit)
            }
            SelectionStrategy::Exhaustive => select::exhaustive::NAME,
            SelectionStrategy::Greedy => select::greedy::NAME,
            SelectionStrategy::Recursive => select::recursive::NAME,
            SelectionStrategy::Randomized(_) => select::randomized::NAME,
            SelectionStrategy::Incremental => select::incremental::NAME,
        };
        let sol = match self.config.selection {
            SelectionStrategy::Auto => select::solve_auto(&instance, self.config.exhaustive_limit),
            SelectionStrategy::Exhaustive => select::solve_exhaustive(&instance),
            SelectionStrategy::Greedy => select::solve_greedy(&instance),
            SelectionStrategy::Recursive => select::solve_recursive(&instance),
            SelectionStrategy::Randomized(seed) => select::solve_randomized(&instance, seed),
            SelectionStrategy::Incremental => {
                // Map the currently used candidates to instance choice
                // positions as the warm start.
                let warm: Vec<usize> = instance
                    .choices
                    .iter()
                    .enumerate()
                    .filter(|(_, ch)| self.cands[ch.id].state == CacheState::Used)
                    .map(|(pos, _)| pos)
                    .collect();
                select::solve_incremental(&instance, &warm)
            }
        };
        self.tlog.push(
            Event::new(now, "selection.run", "")
                .field("solver", solver)
                .field("candidates", instance.choices.len() as u64)
                .field("chosen", sol.len() as u64)
                .field("objective", instance.net_objective(&sol)),
        );
        let mut chosen: Vec<usize> = sol.iter().map(|&s| instance.choices[s].id).collect();

        // Tap-conflict fixpoint: a used cache must not cover another active
        // group's maintenance-tap position in the same pipeline (the
        // CacheLookup bypass would starve that CacheUpdate operator).
        loop {
            let mut conflict: Option<usize> = None;
            'outer: for &a in &chosen {
                // `a` is a potential coverer: ANY used cache (plain or
                // globally-consistent) bypasses its covered positions on
                // hits, starving maintenance taps placed there.
                let ca = &self.cands[a].cand;
                for &b in &chosen {
                    // `b` is a potential tap owner; globally-consistent
                    // groups own no pipeline taps (their maintenance is
                    // computed separately), so they are exempt here.
                    let cb = &self.cands[b].cand;
                    if cb.group == ca.group || cb.is_global() {
                        continue;
                    }
                    // Group of b taps pipelines of its segment at
                    // `len(segment)-1`.
                    if cb.segment.contains(&ca.pipeline) {
                        let tap_pos = cb.segment.len() - 1;
                        if ca.covers(tap_pos) {
                            // Drop the lower-benefit one.
                            let na = self.cands[a].bc_now.map(|x| x.net()).unwrap_or(0.0);
                            let nb = self.cands[b].bc_now.map(|x| x.net()).unwrap_or(0.0);
                            conflict = Some(if na <= nb { a } else { b });
                            break 'outer;
                        }
                    }
                }
            }
            match conflict {
                Some(x) => {
                    self.tlog.push(
                        Event::new(now, "cache.dropped", self.cands[x].cand.name())
                            .field("reason", "tap_conflict"),
                    );
                    chosen.retain(|&c| c != x);
                }
                None => break,
            }
        }

        // §8(ii) damping bookkeeping: did the selection actually change?
        let currently_used: std::collections::BTreeSet<usize> = self
            .cands
            .iter()
            .enumerate()
            .filter(|(_, c)| c.state == CacheState::Used)
            .map(|(i, _)| i)
            .collect();
        let newly_chosen: std::collections::BTreeSet<usize> = chosen.iter().copied().collect();
        if newly_chosen == currently_used {
            self.fruitless_streak = self.fruitless_streak.saturating_add(1);
        } else {
            self.fruitless_streak = 0;
        }

        self.apply_selection(&chosen);
        let caches = self.used_caches();
        let at_ns = self.core.now_ns();
        self.log_event(AdaptivityEvent::Selected { at_ns, caches });
    }

    /// Transition states per the selection, allocate memory, create stores.
    fn apply_selection(&mut self, chosen: &[usize]) {
        // Memory requests per active group.
        let mut group_net = vec![0.0f64; self.group_count];
        let mut group_bytes = vec![0usize; self.group_count];
        let mut group_entry_bytes = vec![64usize; self.group_count];
        let mut group_cost_paid = vec![false; self.group_count];
        for &ci in chosen {
            let cr = &self.cands[ci];
            let bc = cr.bc_now.unwrap_or_default();
            let g = cr.cand.group;
            group_net[g] += bc.benefit;
            if !group_cost_paid[g] {
                group_net[g] -= bc.cost;
                group_cost_paid[g] = true;
            }
            // Entry size estimate: key + refs.
            let d_in = self.profiler.d(cr.cand.pipeline, cr.cand.start);
            let d_out = self.profiler.d(cr.cand.pipeline, cr.cand.end + 1);
            let avg_tuples = if d_in > 0.0 { d_out / d_in } else { 1.0 };
            let entry_bytes =
                48 + cr.cand.key_classes.len() * 16 + (avg_tuples.max(1.0) as usize) * 40;
            let miss = cr.miss_window.average_or(0.5);
            let entries = self.expected_entries(d_in, miss);
            group_entry_bytes[g] = group_entry_bytes[g].max(entry_bytes);
            group_bytes[g] = group_bytes[g].max((entries as usize).saturating_mul(entry_bytes));
        }
        let requests: Vec<MemoryRequest> = (0..self.group_count)
            .filter(|&g| group_cost_paid[g])
            .map(|g| MemoryRequest {
                id: g,
                net_benefit: group_net[g],
                expected_bytes: group_bytes[g].max(4096),
            })
            .collect();
        let grants: Vec<Allocation> = allocate(&self.config.memory, &requests);
        let mut granted = vec![0usize; self.group_count];
        for a in grants {
            granted[a.id] = a.bytes;
        }
        self.granted_bytes.clone_from(&granted);
        // Convert byte grants into budget-respecting bucket counts (each
        // bucket costs its array slot plus the expected entry footprint).
        let slot = std::mem::size_of::<Option<crate::cache::CacheEntry>>();
        let group_buckets: Vec<usize> = (0..self.group_count)
            .map(|g| {
                if self.config.memory.budget_bytes.is_some() {
                    crate::memory::buckets_within_budget(granted[g], group_entry_bytes[g], slot)
                } else if granted[g] > 0 {
                    buckets_for(granted[g], group_entry_bytes[g])
                } else {
                    0
                }
            })
            .collect();

        // Transition: chosen (with memory) → Used; everything else →
        // Profiled with fresh estimators. Each transition leaves a
        // lifecycle event in the telemetry log.
        let now = self.core.now_ns();
        let mut used_any = vec![false; self.group_count];
        for ci in 0..self.cands.len() {
            let g = self.cands[ci].cand.group;
            let was_used = self.cands[ci].state == CacheState::Used;
            let is_chosen = chosen.contains(&ci) && group_buckets[g] > 0;
            if is_chosen {
                let bc = self.cands[ci].bc_now.unwrap_or_default();
                if !was_used {
                    self.cands[ci].used_since_ns = now;
                    self.tlog.push(
                        Event::new(now, "cache.added", self.cands[ci].cand.name())
                            .field("benefit", bc.benefit)
                            .field("cost", bc.cost)
                            .field("granted_bytes", granted[g] as u64),
                    );
                } else {
                    self.tlog.push(
                        Event::new(now, "cache.retained", self.cands[ci].cand.name())
                            .field("net", bc.net()),
                    );
                }
                self.cands[ci].state = CacheState::Used;
                self.cands[ci].bc_at_selection = self.cands[ci].bc_now;
                used_any[g] = true;
            } else {
                if was_used {
                    self.tlog.push(
                        Event::new(now, "cache.dropped", self.cands[ci].cand.name()).field(
                            "reason",
                            if chosen.contains(&ci) {
                                "no_memory"
                            } else {
                                "deselected"
                            },
                        ),
                    );
                } else if chosen.contains(&ci) {
                    self.tlog.push(
                        Event::new(now, "cache.dropped", self.cands[ci].cand.name())
                            .field("reason", "no_memory"),
                    );
                }
                self.cands[ci].state = CacheState::Profiled;
                self.cands[ci].bc_at_selection = self.cands[ci].bc_now;
                self.cands[ci].miss_est = self.profiler.new_miss_estimator();
            }
        }
        for g in 0..self.group_count {
            if used_any[g] {
                let buckets = group_buckets[g];
                match self.stores[g].as_mut() {
                    Some(store) => {
                        // Resize only on substantial change (avoid thrash).
                        let cur = store.num_buckets();
                        if buckets > cur * 2 || buckets * 4 < cur {
                            store.resize(buckets);
                        }
                    }
                    None => {
                        self.stores[g] = Some(CacheStore::with_associativity(
                            buckets,
                            self.config.cache_ways,
                        ))
                    }
                }
            } else if let Some(store) = self.stores[g].take() {
                self.group_stats[g].absorb(&store.stats());
            }
        }
        self.rebuild_plans();
    }

    /// Install new pipeline orders: flush all caches, re-enumerate
    /// candidates, reset order-specific statistics (§4.5 step 5).
    pub fn set_orders(&mut self, orders: PlanOrders) {
        orders.validate(self.core.query()).expect("invalid plan");
        self.orders = orders;
        self.recompile();
        self.op_metrics = self
            .orders
            .pipelines
            .iter()
            .map(|p| PipelineMetrics::new(p.order.len()))
            .collect();
        for (i, p) in self.orders.pipelines.iter().enumerate() {
            self.profiler.reset_pipeline(RelId(i as u16), p.order.len());
        }
        self.online.clear();
        self.rebuild_candidates();
        self.apply_forced_mode();
    }

    fn log_event(&mut self, ev: AdaptivityEvent) {
        if self.events.len() == MAX_EVENTS {
            self.events.pop_front();
        }
        self.events.push_back(ev);
    }

    /// The adaptivity event log (most recent last; bounded to 512 entries).
    pub fn events(&self) -> impl Iterator<Item = &AdaptivityEvent> {
        self.events.iter()
    }

    /// Drain and return the event log.
    pub fn drain_events(&mut self) -> Vec<AdaptivityEvent> {
        self.events.drain(..).collect()
    }

    /// Per-candidate diagnostics: state, key statistics, and the current
    /// benefit/cost estimate. Observability API for operators, experiments,
    /// and debugging — not on the hot path.
    pub fn candidate_diagnostics(&self) -> Vec<CandidateDiagnostics> {
        self.cands
            .iter()
            .enumerate()
            .map(|(ci, cr)| {
                let c = &cr.cand;
                let i = c.pipeline;
                CandidateDiagnostics {
                    name: c.name(),
                    state: cr.state,
                    warm: self.profiler.pipeline_warm(i),
                    miss_prob: cr.miss_window.average(),
                    d_in: self.profiler.d(i, c.start),
                    seg_proc: (c.start..=c.end).map(|j| self.profiler.op_proc(i, j)).sum(),
                    benefit_cost: self.estimate(ci),
                    hits: cr.hits,
                    misses: cr.misses,
                }
            })
            .collect()
    }

    /// Stringly-typed diagnostics, kept so existing callers compile.
    #[deprecated(note = "use candidate_diagnostics() for typed data")]
    pub fn diagnostics(&self) -> Vec<String> {
        self.candidate_diagnostics()
            .iter()
            .map(|d| {
                format!(
                    "{} state={:?} warm={} miss={:?} d_in={:.1} seg_proc={:.0} bc={:?}",
                    d.name, d.state, d.warm, d.miss_prob, d.d_in, d.seg_proc, d.benefit_cost
                )
            })
            .collect()
    }

    /// Capture the engine's full telemetry state: counters, per-operator and
    /// per-candidate metrics, store statistics, memory grants, profiler
    /// estimates, and the structured adaptivity event trace. Not on the hot
    /// path — allocates freely.
    ///
    /// Metric names and labels are documented in `OBSERVABILITY.md`. The
    /// snapshot is self-contained: sharded engines merge per-shard snapshots
    /// with [`TelemetrySnapshot::merge`].
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::new();
        s.counter("engine.tuples_processed", &[], self.counters.tuples_processed);
        s.counter("engine.outputs_emitted", &[], self.counters.outputs_emitted);
        s.counter("engine.cache_hits", &[], self.counters.cache_hits);
        s.counter("engine.cache_misses", &[], self.counters.cache_misses);
        s.counter("engine.reoptimizations", &[], self.counters.reoptimizations);
        s.counter("engine.demotions", &[], self.counters.demotions);
        s.counter("engine.reorderings", &[], self.counters.reorderings);
        s.counter("engine.virtual_ns", &[], self.core.now_ns());
        s.counter("probe.resolved_direct", &[], self.core.resolved_direct());
        s.ratio(
            "engine.rate",
            &[],
            self.counters.tuples_processed as f64,
            self.core.now_secs(),
        );
        s.histogram("engine.outputs_per_update", &[], &self.out_hist);
        s.gauge("memory.cache_bytes", &[], self.cache_memory_bytes() as f64);
        crate::memory::snapshot_allocations(&mut s, &self.granted_bytes);
        for (pi, pm) in self.op_metrics.iter().enumerate() {
            pm.snapshot_into(&mut s, pi);
        }
        self.profiler.snapshot_into(&mut s);
        if self.retired_hits > 0 || self.retired_misses > 0 {
            // Totals of candidates dropped by re-enumeration, kept so
            // Σ cache.hits == engine.cache_hits (counter conservation).
            let labels: [(&str, &str); 1] = [("cache", "<retired>")];
            s.counter("cache.hits", &labels, self.retired_hits);
            s.counter("cache.misses", &labels, self.retired_misses);
        }
        for cr in &self.cands {
            let name = cr.cand.name();
            let labels: [(&str, &str); 1] = [("cache", name.as_str())];
            s.counter("cache.hits", &labels, cr.hits);
            s.counter("cache.misses", &labels, cr.misses);
            s.counter("cache.hit_ns", &labels, cr.hit_ns);
            s.counter("cache.miss_ns", &labels, cr.miss_ns);
            let state = match cr.state {
                CacheState::Used => "used",
                CacheState::Profiled => "profiled",
                CacheState::Unused => "unused",
            };
            s.gauge("cache.state", &[("cache", name.as_str()), ("state", state)], 1.0);
            if let Some(m) = cr.miss_window.average() {
                s.ratio("cache.miss_prob", &labels, m, 1.0);
            }
            if let Some(bc) = cr.bc_now {
                bc.snapshot_into(&mut s, "cache.current", &labels);
            }
            if let Some(bc) = cr.bc_at_selection {
                bc.snapshot_into(&mut s, "cache.predicted", &labels);
            }
        }
        for g in 0..self.group_count {
            let mut st = self.group_stats[g];
            if let Some(store) = self.stores[g].as_ref() {
                st.absorb(&store.stats());
                let gl = g.to_string();
                s.gauge("store.memory_bytes", &[("group", &gl)], store.memory_bytes() as f64);
                s.gauge("store.buckets", &[("group", &gl)], store.num_buckets() as f64);
                s.gauge("store.entries", &[("group", &gl)], store.len() as f64);
            }
            st.snapshot_into(&mut s, g);
        }
        s.extend_events(self.tlog.iter().cloned(), self.tlog.dropped());
        s
    }

    /// Force an immediate re-optimization (tests, experiments).
    pub fn force_reoptimize(&mut self) {
        let now = self.core.now_ns();
        self.stats_epoch(now);
        self.reoptimize(now);
    }

    /// Install (or clear) an [`InjectedFault`]. Only compiled for tests and
    /// the `fault-injection` feature the conformance harness enables — there
    /// is deliberately no way to set a fault from a production build.
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn inject_fault(&mut self, fault: Option<InjectedFault>) {
        self.fault = fault;
    }

    /// Run every cheap-enough structural invariant in one sweep and return
    /// all violations (empty = healthy). Combines:
    ///
    /// * the Definition 3.1/6.1 cache-consistency check
    ///   ([`AdaptiveJoinEngine::check_consistency_invariant`]);
    /// * the §3 prefix invariant — every *used* plain cache's segment must be
    ///   a prefix set of the current pipeline orders (global candidates are
    ///   exempt: §6 exists to relax exactly this);
    /// * used-cache ⇄ store coherence — a used candidate's shared group must
    ///   have a live store;
    /// * store bookkeeping ([`CacheStore::check_accounting`]);
    /// * counter conservation — the aggregate `cache_hits`/`cache_misses`
    ///   engine counters must equal the per-candidate totals.
    ///
    /// O(everything); meant for the conformance harness's mid-run sweeps and
    /// post-run audits, not the hot path.
    pub fn check_structural_invariants(&self) -> Vec<String> {
        let mut violations = self.check_consistency_invariant();
        for cr in &self.cands {
            if cr.state != CacheState::Used {
                continue;
            }
            let c = &cr.cand;
            if !c.is_global() && !crate::candidates::is_prefix_set(&self.orders, &c.segment) {
                violations.push(format!(
                    "{}: used plain cache violates the prefix invariant under orders {:?}",
                    c.name(),
                    self.orders.pipelines[c.pipeline.0 as usize].order
                ));
            }
            if self.stores.get(c.group).is_none_or(|s| s.is_none()) {
                violations.push(format!("{}: used cache has no backing store", c.name()));
            }
        }
        for (g, store) in self.stores.iter().enumerate() {
            let Some(store) = store else { continue };
            for p in store.check_accounting() {
                violations.push(format!("store group {g}: {p}"));
            }
        }
        let (cand_hits, cand_misses) = self.cands.iter().fold(
            (self.retired_hits, self.retired_misses),
            |(h, m), cr| (h + cr.hits, m + cr.misses),
        );
        if cand_hits != self.counters.cache_hits {
            violations.push(format!(
                "counter conservation: engine.cache_hits = {} but Σ per-cache hits = {cand_hits}",
                self.counters.cache_hits
            ));
        }
        if cand_misses != self.counters.cache_misses {
            violations.push(format!(
                "counter conservation: engine.cache_misses = {} but Σ per-cache misses = {cand_misses}",
                self.counters.cache_misses
            ));
        }
        violations
    }

    /// Check every active cache against its consistency invariant
    /// (Definition 3.1 / 6.1) by recomputing the segment join from base
    /// relations. O(everything) — test/diagnostic use only.
    ///
    /// Returns a list of human-readable violations (empty = consistent).
    pub fn check_consistency_invariant(&self) -> Vec<String> {
        let mut violations = Vec::new();
        for cr in &self.cands {
            if cr.state != CacheState::Used {
                continue;
            }
            let c = &cr.cand;
            let Some(store) = self.stores[c.group].as_ref() else {
                violations.push(format!("{}: used but no store", c.name()));
                continue;
            };
            for entry in store.entries() {
                // Recompute σ_{K=u}(segment join) by brute force. Both plain
                // and globally-consistent caches maintain exactly this set
                // (the latter sits at Definition 6.1's upper bound).
                let expected = self.segment_join_matching(c, entry.key());
                let cached: std::collections::BTreeSet<CompositeId> =
                    entry.composites().map(|v| v.identity()).collect();
                if cached != expected {
                    violations.push(format!(
                        "{}: key {:?}: cached {} vs expected {} composites",
                        c.name(),
                        entry.key(),
                        cached.len(),
                        expected.len()
                    ));
                }
            }
        }
        violations
    }

    /// Brute-force σ_{K=u}(segment join) as identity sets.
    fn segment_join_matching(
        &self,
        c: &Candidate,
        key: &[Value],
    ) -> std::collections::BTreeSet<CompositeId> {
        let mut results = std::collections::BTreeSet::new();
        let mut partial: Vec<Composite> = vec![Composite::empty()];
        for (idx, &rel) in c.segment.iter().enumerate() {
            let mut next = Vec::new();
            for p in &partial {
                for t in self.core.relation(rel).scan() {
                    let cand = if idx == 0 {
                        Composite::unit(t.clone())
                    } else {
                        p.extend_with(t.clone())
                    };
                    // Enforce intra-segment predicates among bound rels.
                    let ok = self.core.query().predicates().iter().all(|pr| {
                        match (cand.get(pr.left), cand.get(pr.right)) {
                            (Some(a), Some(b)) => a.join_eq(b),
                            _ => true,
                        }
                    });
                    if ok {
                        next.push(cand);
                    }
                }
            }
            partial = next;
        }
        // Filter by key.
        for p in partial {
            let k: Vec<Value> = c
                .maint_attrs
                .iter()
                .map(|a| p.get(*a).expect("bound").clone())
                .collect();
            if k == key {
                results.insert(p.identity());
            }
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acq_mjoin::plan::PipelineOrder;
    use acq_stream::TupleData;

    /// Forced Figure-3 cache ({S,T} in ∆R's pipeline) over chain3.
    fn forced_engine() -> AdaptiveJoinEngine {
        let q = QuerySchema::chain3();
        let orders = PlanOrders::new(vec![
            PipelineOrder {
                stream: RelId(0),
                order: vec![RelId(1), RelId(2)],
            },
            PipelineOrder {
                stream: RelId(1),
                order: vec![RelId(2), RelId(0)],
            },
            PipelineOrder {
                stream: RelId(2),
                order: vec![RelId(1), RelId(0)],
            },
        ]);
        let config = EngineConfig {
            mode: CacheMode::Forced(vec![(RelId(0), vec![RelId(1), RelId(2)])]),
            ..EngineConfig::default()
        };
        AdaptiveJoinEngine::with_config(q, orders, config)
    }

    /// A workload that populates the cache, then updates the cached segment.
    fn drive(engine: &mut AdaptiveJoinEngine) {
        for i in 0..6i64 {
            engine.process(&Update::insert(RelId(1), TupleData::ints(&[i, i]), 0));
            engine.process(&Update::insert(RelId(2), TupleData::ints(&[i]), 0));
        }
        // Probe ∆R so entries get created…
        for i in 0..6i64 {
            engine.process(&Update::insert(RelId(0), TupleData::ints(&[i]), 1));
        }
        // …then churn the cached segment so maintenance must run. The
        // re-insert carries the same value but a fresh tuple identity, so
        // both the delete and the insert produce a nonempty maintenance
        // delta for the resident keys.
        for i in 0..6i64 {
            engine.process(&Update::delete(RelId(2), TupleData::ints(&[i]), 2));
            engine.process(&Update::insert(RelId(2), TupleData::ints(&[i]), 2));
        }
    }

    #[test]
    fn injected_fault_breaks_consistency_invariant() {
        // Sanity: the same workload with no fault is invariant-clean.
        let mut clean = forced_engine();
        drive(&mut clean);
        assert!(clean.check_structural_invariants().is_empty());

        // SkipTapDeletes leaves expired tuples in cached values — the
        // consistency checker must flag it.
        let mut broken = forced_engine();
        broken.inject_fault(Some(InjectedFault::SkipTapDeletes));
        drive(&mut broken);
        let violations = broken.check_structural_invariants();
        assert!(
            !violations.is_empty(),
            "stale-delete fault must violate Definition 3.1"
        );

        // Clearing the fault stops the bleeding (state stays corrupt, which
        // is fine — we only assert the setter round-trips).
        broken.inject_fault(None);
    }

    #[test]
    fn injected_insert_fault_detected_too() {
        let mut broken = forced_engine();
        broken.inject_fault(Some(InjectedFault::SkipTapInserts));
        drive(&mut broken);
        assert!(
            !broken.check_structural_invariants().is_empty(),
            "missed-insert fault must violate Definition 3.1"
        );
    }
}
