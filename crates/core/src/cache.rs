//! The cache store: a direct-mapped hash table of join-subresult entries.
//!
//! §3.3 of the paper: *"each cache is implemented as a hash table probed on
//! the cache key. … The cached values are sets of references to tuples in
//! relations, so actual tuples are never copied into the caches. … We use a
//! simple direct-mapped cache replacement scheme to keep its run-time
//! overhead low: If a new key hashes to a bucket that already contains
//! another key (i.e., a collision), then we simply replace the existing entry
//! with the new one, without violating consistency."*
//!
//! Entries are key → multiset of segment composites. Values carry
//! *witness counts* so the same store serves both plain prefix-invariant
//! caches (counts are join-result multiplicities) and globally-consistent
//! semijoin caches `X ⋉ Y` (§6), where the count of an `X`-composite is its
//! number of live witnesses in the `Y`-join and the composite is dropped when
//! the count reaches zero.

use acq_sketch::{BloomFilter, FxHashMap, FxHasher};
use acq_stream::{Composite, CompositeId, RelId, TupleId, Value};
use std::hash::Hasher;

/// Hash a cache key (a projected value vector).
///
/// The hot path computes this **once** per probe key and threads it through
/// [`CacheStore::probe_hashed`] / [`CacheStore::create_hashed`] /
/// [`CacheStore::insert_hashed`] / [`CacheStore::delete_hashed`]; resident
/// entries store it, so the map walk compares hashes before keys.
pub fn hash_key(key: &[Value]) -> u64 {
    let mut h = FxHasher::default();
    for v in key {
        v.hash_into(&mut h);
    }
    h.finish()
}

/// One cached entry: the key (with its precomputed hash) and the value
/// multiset.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    key: Vec<Value>,
    /// `hash_key(&key)`, computed when the entry was created. Probes compare
    /// this before the key values, and re-hashing on resize is free.
    hash: u64,
    /// Identity → (composite, witness count).
    value: FxHashMap<CompositeId, (Composite, u32)>,
    bytes: usize,
}

impl CacheEntry {
    fn new(key: Vec<Value>, hash: u64) -> CacheEntry {
        let bytes = 48 + key.iter().map(Value::memory_bytes).sum::<usize>();
        CacheEntry {
            key,
            hash,
            value: FxHashMap::default(),
            bytes,
        }
    }

    /// Recycle a displaced entry's allocations (key vector, value map) for
    /// a new key — the steady-state `create` path never touches the
    /// allocator once the store has warmed up.
    fn reset(&mut self, key: &[Value], hash: u64) {
        self.key.clear();
        self.key.extend_from_slice(key);
        self.hash = hash;
        self.value.clear();
        self.bytes = 48 + key.iter().map(Value::memory_bytes).sum::<usize>();
    }

    /// Number of distinct composites in the value.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True if the value set is empty (a *negative* entry — caching "no
    /// results" is exactly what saves work on repeated misses-to-be).
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// The entry's key.
    pub fn key(&self) -> &[Value] {
        &self.key
    }

    /// Iterate the composites.
    pub fn composites(&self) -> impl Iterator<Item = &Composite> {
        self.value.values().map(|(c, _)| c)
    }

    fn add(&mut self, c: Composite, count: u32) {
        let id = c.identity();
        let slot = self.value.entry(id).or_insert_with(|| {
            self.bytes += c.ref_memory_bytes() + 16;
            (c, 0)
        });
        slot.1 += count;
    }

    fn remove(&mut self, c: &Composite, count: u32) {
        let id = c.identity();
        if let Some(slot) = self.value.get_mut(&id) {
            slot.1 = slot.1.saturating_sub(count);
            if slot.1 == 0 {
                let (gone, _) = self.value.remove(&id).expect("present");
                self.bytes -= gone.ref_memory_bytes() + 16;
            }
        }
    }
}

/// Bits of Bloom filter per cache slot (the resident-key pre-filter).
const BLOOM_BITS_PER_SLOT: usize = 16;

fn resident_filter(slots: usize) -> BloomFilter {
    BloomFilter::new((slots * BLOOM_BITS_PER_SLOT).max(64), 2)
}

/// Running statistics of a cache store.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Probes that found their key.
    pub hits: u64,
    /// Probes that did not.
    pub misses: u64,
    /// `create` calls.
    pub creates: u64,
    /// `create` calls that displaced a colliding entry (direct-mapped
    /// replacement).
    pub collisions: u64,
    /// `insert`/`delete` maintenance calls applied (key present).
    pub maintenance_applied: u64,
    /// Maintenance calls ignored (key absent — allowed by §3.2).
    pub maintenance_ignored: u64,
    /// Misses answered by the resident-key Bloom pre-filter alone (no set
    /// walk). A subset of `misses`.
    pub bloom_filtered: u64,
}

impl CacheStats {
    /// Observed miss probability; `None` before any probe.
    pub fn miss_prob(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.misses as f64 / total as f64)
        }
    }

    /// Fold another stats block into this one (component-wise sum).
    ///
    /// The engine's telemetry keeps a per-group accumulator so statistics
    /// survive `reset_stats` epochs and store drops; this is the fold.
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.creates += other.creates;
        self.collisions += other.collisions;
        self.maintenance_applied += other.maintenance_applied;
        self.maintenance_ignored += other.maintenance_ignored;
        self.bloom_filtered += other.bloom_filtered;
    }

    /// Emit these stats into a snapshot as `store.*` counters labelled with
    /// the shared-group id.
    pub fn snapshot_into(&self, s: &mut acq_telemetry::TelemetrySnapshot, group: usize) {
        let g = group.to_string();
        let labels: [(&str, &str); 1] = [("group", &g)];
        s.counter("store.hits", &labels, self.hits);
        s.counter("store.misses", &labels, self.misses);
        s.counter("store.creates", &labels, self.creates);
        s.counter("store.collisions", &labels, self.collisions);
        s.counter("store.maintenance_applied", &labels, self.maintenance_applied);
        s.counter("store.maintenance_ignored", &labels, self.maintenance_ignored);
        s.counter("store.bloom_filtered", &labels, self.bloom_filtered);
    }
}

/// Set-associative cache store (paper §3.3).
///
/// The paper's implementation is **direct-mapped** (1-way): a colliding
/// `create` simply replaces the resident entry. §3.3 closes with *"In the
/// future we plan to experiment with other low-overhead cache replacement
/// schemes"* — this store implements that future work as N-way set
/// associativity with round-robin replacement within a set (still O(ways)
/// per operation, no recency metadata). `ways = 1` reproduces the paper
/// exactly and is the default.
#[derive(Debug)]
pub struct CacheStore {
    buckets: Vec<Option<CacheEntry>>,
    /// Number of sets (`buckets.len() / ways`), a power of two.
    set_mask: u64,
    ways: usize,
    /// Round-robin replacement cursor per set.
    cursor: Vec<u8>,
    /// Resident-key Bloom pre-filter: every resident key's hash is set, so
    /// a negative answer proves a miss without walking the set. Bits are
    /// *not* cleared on eviction — stale bits only cost a (confirmed) walk,
    /// never a false miss. Rebuilt on clear/resize.
    resident: BloomFilter,
    stats: CacheStats,
    entries: usize,
    value_bytes: usize,
}

impl CacheStore {
    /// A direct-mapped store with at least `min_buckets` buckets (rounded up
    /// to a power of two; §3.3: *"the number of hash buckets is chosen based
    /// on expected cache size"*).
    pub fn new(min_buckets: usize) -> CacheStore {
        CacheStore::with_associativity(min_buckets, 1)
    }

    /// An N-way set-associative store with at least `min_buckets` total
    /// slots. `ways` is clamped to a power of two ≤ 8.
    pub fn with_associativity(min_buckets: usize, ways: usize) -> CacheStore {
        let ways = ways.clamp(1, 8).next_power_of_two();
        let sets = (min_buckets.max(1).div_ceil(ways)).next_power_of_two();
        CacheStore {
            buckets: (0..sets * ways).map(|_| None).collect(),
            set_mask: sets as u64 - 1,
            ways,
            cursor: vec![0; sets],
            resident: resident_filter(sets * ways),
            stats: CacheStats::default(),
            entries: 0,
            value_bytes: 0,
        }
    }

    /// Configured associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    #[inline]
    fn set_of_hash(&self, hash: u64) -> usize {
        (acq_sketch::fx_hash_u64(hash) & self.set_mask) as usize
    }

    /// Slot index holding `key` (whose hash is `hash`), if resident.
    #[inline]
    fn slot_of_hashed(&self, key: &[Value], hash: u64) -> Option<usize> {
        let base = self.set_of_hash(hash) * self.ways;
        (base..base + self.ways).find(|&i| {
            self.buckets[i]
                .as_ref()
                .is_some_and(|e| e.hash == hash && e.key() == key)
        })
    }

    /// Slot index holding `key`, if resident.
    #[inline]
    fn slot_of(&self, key: &[Value]) -> Option<usize> {
        self.slot_of_hashed(key, hash_key(key))
    }

    /// `probe(u)` (§3.2): hit returns the entry, miss returns `None`.
    pub fn probe(&mut self, key: &[Value]) -> Option<&CacheEntry> {
        self.probe_hashed(key, hash_key(key))
    }

    /// [`CacheStore::probe`] with the key hash computed by the caller
    /// (hash-once discipline: the engine hashes the scratch probe key a
    /// single time and reuses it for the probe and any following create).
    /// Predicted misses are answered by the Bloom pre-filter without
    /// walking the set.
    pub fn probe_hashed(&mut self, key: &[Value], hash: u64) -> Option<&CacheEntry> {
        if !self.resident.contains(hash) {
            self.stats.misses += 1;
            self.stats.bloom_filtered += 1;
            return None;
        }
        match self.slot_of_hashed(key, hash) {
            Some(i) => {
                self.stats.hits += 1;
                self.buckets[i].as_ref()
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peek without touching hit/miss statistics (used by invariant checks).
    pub fn peek(&self, key: &[Value]) -> Option<&CacheEntry> {
        self.slot_of(key).and_then(|i| self.buckets[i].as_ref())
    }

    /// `create(u, v)` (§3.2): add a complete entry. Placement: the key's own
    /// slot if resident, else a free slot in its set, else the set's
    /// round-robin victim (replacement never violates consistency — it only
    /// loses completeness, which caches don't promise).
    pub fn create(
        &mut self,
        key: Vec<Value>,
        composites: impl IntoIterator<Item = (Composite, u32)>,
    ) {
        let hash = hash_key(&key);
        self.create_hashed(&key, hash, composites);
    }

    /// [`CacheStore::create`] with a borrowed key and caller-computed hash.
    /// A displaced entry's allocations (key vector, value map) are recycled
    /// for the new entry, so the steady-state miss→create cycle does not
    /// allocate.
    pub fn create_hashed(
        &mut self,
        key: &[Value],
        hash: u64,
        composites: impl IntoIterator<Item = (Composite, u32)>,
    ) {
        self.stats.creates += 1;
        let set = self.set_of_hash(hash);
        let base = set * self.ways;
        let slot = self
            .slot_of_hashed(key, hash)
            .or_else(|| (base..base + self.ways).find(|&i| self.buckets[i].is_none()))
            .unwrap_or_else(|| {
                let victim = base + self.cursor[set] as usize % self.ways;
                self.cursor[set] = (self.cursor[set] + 1) % self.ways as u8;
                victim
            });
        let mut entry = match self.buckets[slot].take() {
            Some(mut old) => {
                self.stats.collisions += 1;
                self.entries -= 1;
                self.value_bytes -= old.bytes;
                old.reset(key, hash);
                old
            }
            None => CacheEntry::new(key.to_vec(), hash),
        };
        for (c, count) in composites {
            entry.add(c, count);
        }
        self.value_bytes += entry.bytes;
        self.entries += 1;
        self.buckets[slot] = Some(entry);
        self.resident.insert(hash);
    }

    /// `insert(u, r)` (§3.2): add `r` to the value of `u` if the key is
    /// cached; ignored otherwise. `count` is the witness multiplicity (1 for
    /// plain caches).
    pub fn insert(&mut self, key: &[Value], c: Composite, count: u32) {
        self.insert_hashed(key, hash_key(key), c, count);
    }

    /// [`CacheStore::insert`] with a caller-computed key hash.
    pub fn insert_hashed(&mut self, key: &[Value], hash: u64, c: Composite, count: u32) {
        match self.slot_of_hashed(key, hash) {
            Some(i) => {
                let e = self.buckets[i].as_mut().expect("slot_of returns occupied");
                self.value_bytes -= e.bytes;
                e.add(c, count);
                self.value_bytes += e.bytes;
                self.stats.maintenance_applied += 1;
            }
            None => self.stats.maintenance_ignored += 1,
        }
    }

    /// `delete(u, r)` (§3.2): remove `r` (or `count` witnesses of it) from
    /// the value of `u` if cached; ignored otherwise.
    pub fn delete(&mut self, key: &[Value], c: &Composite, count: u32) {
        self.delete_hashed(key, hash_key(key), c, count);
    }

    /// [`CacheStore::delete`] with a caller-computed key hash.
    pub fn delete_hashed(&mut self, key: &[Value], hash: u64, c: &Composite, count: u32) {
        match self.slot_of_hashed(key, hash) {
            Some(i) => {
                let e = self.buckets[i].as_mut().expect("slot_of returns occupied");
                self.value_bytes -= e.bytes;
                e.remove(c, count);
                self.value_bytes += e.bytes;
                self.stats.maintenance_applied += 1;
            }
            None => self.stats.maintenance_ignored += 1,
        }
    }

    /// Drop every entry whose value contains a composite referencing the
    /// given stored tuple. A blunt instrument used only on exceptional paths
    /// (it is never needed during normal maintenance).
    pub fn invalidate_tuple(&mut self, rel: RelId, id: TupleId) {
        for slot in &mut self.buckets {
            let contains = slot
                .as_ref()
                .map(|e| e.value.keys().any(|idkey| idkey.contains(rel, id)))
                .unwrap_or(false);
            if contains {
                let e = slot.take().expect("checked above");
                self.entries -= 1;
                self.value_bytes -= e.bytes;
            }
        }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Approximate memory footprint: bucket array + entries.
    pub fn memory_bytes(&self) -> usize {
        self.buckets.len() * std::mem::size_of::<Option<CacheEntry>>() + self.value_bytes
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset hit/miss statistics (per observation window).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Remove all entries, keeping the bucket array.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            *b = None;
        }
        self.entries = 0;
        self.value_bytes = 0;
        self.resident.clear();
    }

    /// Rebuild with a new bucket count (adaptive memory allocation, §5),
    /// preserving associativity. Entries are rehashed; entries that no
    /// longer fit their set are dropped (safe: losing entries never violates
    /// consistency).
    pub fn resize(&mut self, min_buckets: usize) {
        let mut fresh = CacheStore::with_associativity(min_buckets, self.ways);
        for entry in self.buckets.drain(..).flatten() {
            let base = fresh.set_of_hash(entry.hash) * fresh.ways;
            if let Some(slot) = (base..base + fresh.ways).find(|&i| fresh.buckets[i].is_none()) {
                fresh.entries += 1;
                fresh.value_bytes += entry.bytes;
                fresh.resident.insert(entry.hash);
                fresh.buckets[slot] = Some(entry);
            }
        }
        fresh.stats = self.stats;
        *self = fresh;
    }

    /// Iterate over live entries (invariant checks).
    pub fn entries(&self) -> impl Iterator<Item = &CacheEntry> {
        self.buckets.iter().flatten()
    }

    /// Verify the store's internal bookkeeping against a from-scratch
    /// recount: `entries` equals the occupied-bucket count, `value_bytes`
    /// equals the sum of per-entry byte estimates, every resident key probes
    /// back to its own slot, and no set holds the same key twice. Returns a
    /// human-readable line per violation (empty = consistent). Used by the
    /// conformance harness's mid-run invariant sweeps.
    pub fn check_accounting(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let occupied = self.buckets.iter().flatten().count();
        if occupied != self.entries {
            problems.push(format!(
                "entry count drift: counted {occupied} occupied buckets but entries = {}",
                self.entries
            ));
        }
        let bytes: usize = self.buckets.iter().flatten().map(|e| e.bytes).sum();
        if bytes != self.value_bytes {
            problems.push(format!(
                "byte accounting drift: recomputed {bytes} but value_bytes = {}",
                self.value_bytes
            ));
        }
        for (i, e) in self.buckets.iter().enumerate() {
            let Some(e) = e else { continue };
            if e.hash != hash_key(e.key()) {
                problems.push(format!("stale stored hash for key {:?}", e.key()));
            }
            let set = self.set_of_hash(e.hash);
            let base = set * self.ways;
            if !(base..base + self.ways).contains(&i) {
                problems.push(format!(
                    "misplaced entry: key {:?} lives in slot {i}, outside its set {set}",
                    e.key()
                ));
            }
            if self.slot_of(e.key()) != Some(i) && self.slot_of(e.key()).is_none() {
                problems.push(format!("unreachable entry: key {:?} does not probe", e.key()));
            }
        }
        for set in 0..=self.set_mask as usize {
            let base = set * self.ways;
            let keys: Vec<&[Value]> = (base..base + self.ways)
                .filter_map(|i| self.buckets[i].as_ref().map(|e| e.key()))
                .collect();
            for (a, ka) in keys.iter().enumerate() {
                if keys[a + 1..].contains(ka) {
                    problems.push(format!("duplicate key {ka:?} within set {set}"));
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acq_stream::tuple::make_ref;
    use acq_stream::TupleData;

    fn comp(rel: u16, id: u64, vals: &[i64]) -> Composite {
        Composite::unit(make_ref(RelId(rel), id, TupleData::ints(vals)))
    }

    fn key(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn probe_miss_then_create_then_hit() {
        let mut c = CacheStore::new(16);
        assert!(c.probe(&key(&[1])).is_none());
        c.create(key(&[1]), vec![(comp(1, 1, &[1, 2]), 1)]);
        let e = c.probe(&key(&[1])).expect("hit");
        assert_eq!(e.len(), 1);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().miss_prob(), Some(0.5));
    }

    #[test]
    fn empty_value_entries_are_hits() {
        // Caching "no joining tuples" is valuable: repeated probes of a
        // non-joining key skip the whole segment.
        let mut c = CacheStore::new(16);
        c.create(key(&[9]), Vec::<(Composite, u32)>::new());
        let e = c.probe(&key(&[9])).expect("negative entry hit");
        assert!(e.is_empty());
    }

    #[test]
    fn insert_ignored_without_key() {
        // §3.2 Example 3.5: key ⟨2⟩ not present → insert ignored.
        let mut c = CacheStore::new(16);
        c.create(key(&[1]), vec![(comp(1, 1, &[1, 2]), 1)]);
        c.insert(&key(&[2]), comp(1, 2, &[2, 3]), 1);
        assert!(c.peek(&key(&[2])).is_none());
        assert_eq!(c.stats().maintenance_ignored, 1);
        // Key ⟨1⟩ present → insert applied.
        c.insert(&key(&[1]), comp(2, 7, &[1, 3]), 1);
        assert_eq!(c.peek(&key(&[1])).unwrap().len(), 2);
        assert_eq!(c.stats().maintenance_applied, 1);
    }

    #[test]
    fn delete_removes_exact_composite() {
        let mut c = CacheStore::new(16);
        let a = comp(1, 1, &[1, 2]);
        let b = comp(1, 2, &[1, 3]);
        c.create(key(&[1]), vec![(a.clone(), 1), (b.clone(), 1)]);
        c.delete(&key(&[1]), &a, 1);
        let e = c.peek(&key(&[1])).unwrap();
        assert_eq!(e.len(), 1);
        assert_eq!(e.composites().next().unwrap().identity(), b.identity());
        // Deleting something absent is a no-op.
        c.delete(&key(&[1]), &a, 1);
        assert_eq!(c.peek(&key(&[1])).unwrap().len(), 1);
    }

    #[test]
    fn witness_counting_semijoin_semantics() {
        // Two witnesses for the same X-composite: survives one delete,
        // vanishes after the second (globally-consistent caches, §6).
        let mut c = CacheStore::new(16);
        let x = comp(1, 1, &[1, 2]);
        c.create(key(&[1]), vec![(x.clone(), 1)]);
        c.insert(&key(&[1]), x.clone(), 1); // second witness
        c.delete(&key(&[1]), &x, 1);
        assert_eq!(c.peek(&key(&[1])).unwrap().len(), 1, "one witness left");
        c.delete(&key(&[1]), &x, 1);
        assert_eq!(c.peek(&key(&[1])).unwrap().len(), 0, "all witnesses gone");
    }

    #[test]
    fn direct_mapped_replacement() {
        // Single bucket: any second key displaces the first.
        let mut c = CacheStore::new(1);
        assert_eq!(c.num_buckets(), 1);
        c.create(key(&[1]), vec![(comp(1, 1, &[1, 1]), 1)]);
        c.create(key(&[2]), vec![(comp(1, 2, &[2, 2]), 1)]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().collisions, 1);
        assert!(c.peek(&key(&[1])).is_none(), "old entry replaced");
        assert!(c.peek(&key(&[2])).is_some());
    }

    #[test]
    fn memory_accounting_moves_with_entries() {
        let mut c = CacheStore::new(8);
        let base = c.memory_bytes();
        c.create(key(&[1]), vec![(comp(1, 1, &[1, 2]), 1)]);
        let with_one = c.memory_bytes();
        assert!(with_one > base);
        c.insert(&key(&[1]), comp(1, 2, &[1, 3]), 1);
        assert!(c.memory_bytes() > with_one);
        c.delete(&key(&[1]), &comp(1, 2, &[1, 3]), 1);
        assert_eq!(c.memory_bytes(), with_one);
        c.clear();
        assert_eq!(c.memory_bytes(), base);
        assert!(c.is_empty());
    }

    #[test]
    fn resize_preserves_what_fits() {
        let mut c = CacheStore::new(64);
        for i in 0..20 {
            c.create(key(&[i]), vec![(comp(1, i as u64, &[i, i]), 1)]);
        }
        let before = c.len();
        assert!(before >= 15, "64 buckets should hold most of 20 keys");
        c.resize(8);
        assert_eq!(c.num_buckets(), 8);
        assert!(c.len() <= 8);
        // Every surviving entry still probes correctly.
        let survivors: Vec<Vec<Value>> = c.entries().map(|e| e.key().to_vec()).collect();
        for k in survivors {
            assert!(c.peek(&k).is_some());
        }
    }

    #[test]
    fn invalidate_tuple_drops_referencing_entries() {
        let mut c = CacheStore::new(16);
        c.create(key(&[1]), vec![(comp(1, 42, &[1, 2]), 1)]);
        c.create(key(&[2]), vec![(comp(1, 43, &[2, 2]), 1)]);
        c.invalidate_tuple(RelId(1), 42);
        assert!(c.peek(&key(&[1])).is_none());
        assert!(c.peek(&key(&[2])).is_some());
    }

    #[test]
    fn bucket_count_rounds_to_power_of_two() {
        assert_eq!(CacheStore::new(100).num_buckets(), 128);
        assert_eq!(CacheStore::new(0).num_buckets(), 1);
        assert_eq!(CacheStore::new(128).num_buckets(), 128);
    }

    #[test]
    fn two_way_set_keeps_colliding_pair() {
        // One set, two ways: two distinct keys coexist; a third evicts the
        // round-robin victim, not both.
        let mut c = CacheStore::with_associativity(2, 2);
        assert_eq!(c.num_buckets(), 2);
        assert_eq!(c.ways(), 2);
        c.create(key(&[1]), vec![(comp(1, 1, &[1, 1]), 1)]);
        c.create(key(&[2]), vec![(comp(1, 2, &[2, 2]), 1)]);
        assert_eq!(c.len(), 2, "both keys resident under 2-way");
        assert!(c.peek(&key(&[1])).is_some());
        assert!(c.peek(&key(&[2])).is_some());
        c.create(key(&[3]), vec![(comp(1, 3, &[3, 3]), 1)]);
        assert_eq!(c.len(), 2);
        assert!(c.peek(&key(&[3])).is_some(), "newest always resident");
        let survivors = [1i64, 2]
            .iter()
            .filter(|&&k| c.peek(&key(&[k])).is_some())
            .count();
        assert_eq!(survivors, 1, "round-robin evicted exactly one");
    }

    #[test]
    fn recreate_same_key_stays_in_place() {
        let mut c = CacheStore::with_associativity(4, 2);
        c.create(key(&[7]), vec![(comp(1, 1, &[7, 7]), 1)]);
        c.create(key(&[7]), vec![(comp(1, 2, &[7, 8]), 1)]);
        assert_eq!(c.len(), 1, "same key replaced in place, no duplicate");
        let e = c.peek(&key(&[7])).unwrap();
        assert_eq!(e.len(), 1);
        assert_eq!(
            e.composites().next().unwrap().identity().pair(0).1,
            2,
            "newest value wins"
        );
    }

    #[test]
    fn associativity_clamped_and_rounded() {
        assert_eq!(CacheStore::with_associativity(8, 3).ways(), 4);
        assert_eq!(CacheStore::with_associativity(8, 100).ways(), 8);
        assert_eq!(CacheStore::with_associativity(0, 0).ways(), 1);
    }

    #[test]
    fn maintenance_works_across_ways() {
        let mut c = CacheStore::with_associativity(2, 2);
        c.create(key(&[1]), vec![(comp(1, 1, &[1, 1]), 1)]);
        c.create(key(&[2]), vec![(comp(1, 2, &[2, 2]), 1)]);
        c.insert(&key(&[2]), comp(1, 9, &[2, 9]), 1);
        assert_eq!(c.peek(&key(&[2])).unwrap().len(), 2);
        c.delete(&key(&[1]), &comp(1, 1, &[1, 1]), 1);
        assert_eq!(c.peek(&key(&[1])).unwrap().len(), 0);
    }

    #[test]
    fn resize_preserves_associativity() {
        let mut c = CacheStore::with_associativity(32, 4);
        for i in 0..20 {
            c.create(key(&[i]), vec![(comp(1, i as u64, &[i, i]), 1)]);
        }
        c.resize(8);
        assert_eq!(c.ways(), 4);
        assert!(c.len() <= 8);
    }

    #[test]
    fn accounting_check_clean_store() {
        let mut c = CacheStore::with_associativity(8, 2);
        for i in 0..6 {
            c.create(key(&[i]), vec![(comp(1, i as u64, &[i, i]), 1)]);
        }
        c.insert(&key(&[0]), comp(2, 9, &[0, 9]), 1);
        c.delete(&key(&[1]), &comp(1, 1, &[1, 1]), 1);
        c.resize(4);
        assert!(c.check_accounting().is_empty());
    }

    #[test]
    fn accounting_check_detects_drift() {
        let mut c = CacheStore::new(8);
        c.create(key(&[1]), vec![(comp(1, 1, &[1, 2]), 1)]);
        c.entries += 1; // simulate a bookkeeping bug
        let problems = c.check_accounting();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("entry count drift"), "{}", problems[0]);
    }

    #[test]
    fn stats_reset() {
        let mut c = CacheStore::new(4);
        c.probe(&key(&[1]));
        assert_eq!(c.stats().misses, 1);
        c.reset_stats();
        assert_eq!(c.stats().misses, 0);
        assert_eq!(c.stats().miss_prob(), None);
    }
}
