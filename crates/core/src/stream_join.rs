//! High-level facade: append-only streams in, join deltas out.
//!
//! [`AdaptiveJoinEngine`] speaks *update* streams (§3.1's inserts/deletes).
//! Most applications start from **append-only** streams plus a window clause
//! per relation (§7.1); [`StreamJoin`] owns the window operators and the
//! engine, so callers just push arriving tuples:
//!
//! ```
//! use acq::stream_join::{StreamJoin, WindowSpec};
//! use acq_stream::{parse_query, TupleData};
//!
//! let query = parse_query("R(A) JOIN S(A, B) ON R.A = S.A JOIN T(B) ON S.B = T.B").unwrap();
//! let mut join = StreamJoin::builder(query)
//!     .window(0, WindowSpec::Count(100))
//!     .window(1, WindowSpec::Count(100))
//!     .window(2, WindowSpec::Count(500))
//!     .build();
//! join.push(0, TupleData::ints(&[1]), 0);
//! join.push(1, TupleData::ints(&[1, 2]), 1);
//! let deltas = join.push(2, TupleData::ints(&[2]), 2);
//! assert_eq!(deltas.len(), 1);
//! ```

use crate::engine::{AdaptiveJoinEngine, EngineConfig};
use acq_mjoin::plan::PlanOrders;
use acq_stream::{
    Composite, CountWindow, Op, QuerySchema, RelId, StreamElement, TimeWindow, TupleData, WindowOp,
};

/// Window clause for one relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowSpec {
    /// `ROWS n`: keep the most recent `n` tuples.
    Count(usize),
    /// `RANGE t`: keep tuples younger than `t` nanoseconds.
    TimeNs(u64),
    /// No window: the relation only shrinks via explicit
    /// [`StreamJoin::delete`] calls (materialized-view maintenance mode).
    Unbounded,
}

enum WindowState {
    Count(CountWindow),
    Time(TimeWindow),
    Unbounded,
}

/// Builder for [`StreamJoin`].
pub struct StreamJoinBuilder {
    query: QuerySchema,
    windows: Vec<WindowSpec>,
    config: EngineConfig,
    orders: Option<PlanOrders>,
}

impl StreamJoinBuilder {
    /// Set the window for relation `rel` (default: unbounded).
    pub fn window(mut self, rel: u16, spec: WindowSpec) -> Self {
        self.windows[rel as usize] = spec;
        self
    }

    /// Use the same window for every relation.
    pub fn window_all(mut self, spec: WindowSpec) -> Self {
        self.windows.fill(spec);
        self
    }

    /// Override the engine configuration.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Override the initial pipeline orders (default: identity).
    pub fn orders(mut self, orders: PlanOrders) -> Self {
        self.orders = Some(orders);
        self
    }

    /// Build the join.
    pub fn build(self) -> StreamJoin {
        let orders = self
            .orders
            .unwrap_or_else(|| PlanOrders::identity(&self.query));
        let windows = self
            .windows
            .iter()
            .enumerate()
            .map(|(i, spec)| match spec {
                WindowSpec::Count(n) => WindowState::Count(CountWindow::new(RelId(i as u16), *n)),
                WindowSpec::TimeNs(t) => WindowState::Time(TimeWindow::new(RelId(i as u16), *t)),
                WindowSpec::Unbounded => WindowState::Unbounded,
            })
            .collect();
        StreamJoin {
            engine: AdaptiveJoinEngine::with_config(self.query, orders, self.config),
            windows,
            last_ts: 0,
        }
    }
}

/// Append-only stream join with per-relation windows.
pub struct StreamJoin {
    engine: AdaptiveJoinEngine,
    windows: Vec<WindowState>,
    last_ts: u64,
}

impl StreamJoin {
    /// Start building a join for `query`.
    pub fn builder(query: QuerySchema) -> StreamJoinBuilder {
        let n = query.num_relations();
        StreamJoinBuilder {
            query,
            windows: vec![WindowSpec::Unbounded; n],
            config: EngineConfig::default(),
            orders: None,
        }
    }

    /// Push one arriving tuple; returns the join-result deltas it induces
    /// (including deletions from window expiry).
    ///
    /// # Panics
    /// Panics if `ts` goes backwards — §3.1 requires a global arrival order.
    pub fn push(&mut self, rel: u16, data: TupleData, ts: u64) -> Vec<(Op, Composite)> {
        assert!(ts >= self.last_ts, "timestamps must be nondecreasing");
        self.last_ts = ts;
        let r = RelId(rel);
        let updates = match &mut self.windows[rel as usize] {
            WindowState::Count(w) => w.push(StreamElement::new(r, data, ts)),
            WindowState::Time(w) => w.push(StreamElement::new(r, data, ts)),
            WindowState::Unbounded => vec![acq_stream::Update::insert(r, data, ts)],
        };
        let mut out = Vec::new();
        for u in &updates {
            out.extend(self.engine.process(u));
        }
        out
    }

    /// Explicitly delete a tuple (by value) from an unbounded relation —
    /// materialized-view maintenance mode.
    pub fn delete(&mut self, rel: u16, data: TupleData, ts: u64) -> Vec<(Op, Composite)> {
        assert!(ts >= self.last_ts, "timestamps must be nondecreasing");
        self.last_ts = ts;
        self.engine
            .process(&acq_stream::Update::delete(RelId(rel), data, ts))
    }

    /// Advance time on time-windowed relations without pushing tuples,
    /// returning expirations.
    pub fn advance_time(&mut self, now: u64) -> Vec<(Op, Composite)> {
        assert!(now >= self.last_ts, "timestamps must be nondecreasing");
        self.last_ts = now;
        let mut expired = Vec::new();
        for w in &mut self.windows {
            if let WindowState::Time(tw) = w {
                expired.extend(tw.expire(now));
            }
        }
        let mut out = Vec::new();
        for u in &expired {
            out.extend(self.engine.process(u));
        }
        out
    }

    /// Capture the underlying engine's telemetry (see
    /// [`AdaptiveJoinEngine::telemetry_snapshot`]).
    pub fn telemetry_snapshot(&self) -> acq_telemetry::TelemetrySnapshot {
        self.engine.telemetry_snapshot()
    }

    /// The underlying engine (statistics, used caches, diagnostics).
    pub fn engine(&self) -> &AdaptiveJoinEngine {
        &self.engine
    }

    /// Mutable engine access.
    pub fn engine_mut(&mut self) -> &mut AdaptiveJoinEngine {
        &mut self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain3_join(spec: WindowSpec) -> StreamJoin {
        StreamJoin::builder(QuerySchema::chain3())
            .window_all(spec)
            .build()
    }

    #[test]
    fn count_windows_expire_results() {
        let mut j = chain3_join(WindowSpec::Count(2));
        j.push(0, TupleData::ints(&[1]), 0);
        j.push(1, TupleData::ints(&[1, 2]), 1);
        let out = j.push(2, TupleData::ints(&[2]), 2);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, Op::Insert);
        // Two more R tuples evict R=⟨1⟩: the result must be retracted.
        j.push(0, TupleData::ints(&[5]), 3);
        let out = j.push(0, TupleData::ints(&[6]), 4);
        let deletes: Vec<_> = out.iter().filter(|(op, _)| *op == Op::Delete).collect();
        assert_eq!(deletes.len(), 1, "window expiry retracts the join result");
    }

    #[test]
    fn time_windows_and_advance_time() {
        let mut j = chain3_join(WindowSpec::TimeNs(100));
        j.push(0, TupleData::ints(&[1]), 0);
        j.push(1, TupleData::ints(&[1, 2]), 10);
        let out = j.push(2, TupleData::ints(&[2]), 20);
        assert_eq!(out.len(), 1);
        // At t = 500 everything has expired; the result is retracted.
        let out = j.advance_time(500);
        let deletes = out.iter().filter(|(op, _)| *op == Op::Delete).count();
        assert_eq!(deletes, 1);
        assert!(j.advance_time(600).is_empty(), "idempotent");
    }

    #[test]
    fn unbounded_with_explicit_deletes() {
        let mut j = chain3_join(WindowSpec::Unbounded);
        j.push(0, TupleData::ints(&[1]), 0);
        j.push(1, TupleData::ints(&[1, 2]), 1);
        assert_eq!(j.push(2, TupleData::ints(&[2]), 2).len(), 1);
        let out = j.delete(1, TupleData::ints(&[1, 2]), 3);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, Op::Delete);
    }

    #[test]
    fn mixed_window_specs() {
        let mut j = StreamJoin::builder(QuerySchema::chain3())
            .window(0, WindowSpec::Count(1))
            .window(1, WindowSpec::Unbounded)
            .window(2, WindowSpec::TimeNs(1_000))
            .build();
        j.push(0, TupleData::ints(&[1]), 0);
        j.push(1, TupleData::ints(&[1, 2]), 1);
        assert_eq!(j.push(2, TupleData::ints(&[2]), 2).len(), 1);
        // New R evicts the old one (count window of 1) → retraction.
        let out = j.push(0, TupleData::ints(&[9]), 3);
        assert!(out.iter().any(|(op, _)| *op == Op::Delete));
    }

    #[test]
    #[should_panic(expected = "timestamps must be nondecreasing")]
    fn backwards_time_panics() {
        let mut j = chain3_join(WindowSpec::Count(10));
        j.push(0, TupleData::ints(&[1]), 100);
        j.push(0, TupleData::ints(&[2]), 50);
    }

    #[test]
    fn engine_accessible_for_diagnostics() {
        let mut j = chain3_join(WindowSpec::Count(50));
        for i in 0..200i64 {
            j.push(0, TupleData::ints(&[i % 5]), i as u64 * 3);
            j.push(1, TupleData::ints(&[i % 5, i % 7]), i as u64 * 3 + 1);
            j.push(2, TupleData::ints(&[i % 7]), i as u64 * 3 + 2);
        }
        assert!(j.engine().counters().tuples_processed > 600);
        assert!(j.engine().check_consistency_invariant().is_empty());
    }
}
